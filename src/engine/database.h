// The MayBMS engine facade: a complete probabilistic database management
// system (paper title) in a library. Parses the MayBMS query language,
// binds and plans it, and executes against the in-memory catalog.
//
// Quickstart:
//   maybms::Database db;
//   db.Execute("create table coin (face text)");
//   db.Execute("insert into coin values ('heads'), ('tails')");
//   auto r = db.Query(
//       "select face, conf() as p from (repair key face in coin) c group by face");
//
// Queries run morsel-parallel on a work-stealing pool sized by
// DatabaseOptions::exec.num_threads (default: hardware_concurrency; 1 runs
// fully serial). Deterministic queries — including conf() — return
// identical results at every thread count; aconf() estimates are identical
// across all thread counts >= 2, while 1 keeps the legacy sequential
// sampling stream (a different, equally valid (ε,δ) sample).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/engine/query_result.h"
#include "src/exec/executor.h"
#include "src/storage/catalog.h"

namespace maybms {

/// Session-level settings.
struct DatabaseOptions {
  /// RNG seed for aconf() Monte Carlo estimation (runs are reproducible).
  uint64_t seed = 42;
  ExecOptions exec;
};

class ThreadPool;

/// An embedded MayBMS instance: catalog + world table + query pipeline.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  /// Runs a single statement and returns its result (rows for selects,
  /// affected counts/messages for DDL and DML).
  Result<QueryResult> Query(std::string_view sql);

  /// Runs a statement for its side effects; errors if it fails.
  Status Execute(std::string_view sql);

  /// Runs a ';'-separated script, stopping at the first error. Returns
  /// the result of the last statement.
  Result<QueryResult> ExecuteScript(std::string_view sql);

  /// EXPLAIN: the bound logical plan for a query.
  Result<std::string> Explain(std::string_view sql);

  /// Direct access for embedding: the catalog and world table.
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  WorldTable& world_table() { return catalog_.world_table(); }
  /// The evidence asserted so far (ASSERT / CONDITION ON statements); all
  /// conf()/aconf()/tconf() answers are posteriors given this constraint.
  const ConstraintStore& constraints() const { return catalog_.constraints(); }

  DatabaseOptions& options() { return options_; }

  /// Reseeds the session RNG (aconf reproducibility).
  void Reseed(uint64_t seed);

 private:
  Result<QueryResult> RunStatement(const Statement& stmt);
  Result<QueryResult> RunSet(const SetStmt& stmt);

  DatabaseOptions options_;
  Catalog catalog_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;  // lazily sized per exec.num_threads
};

}  // namespace maybms
