// The MayBMS engine facade: a complete probabilistic database management
// system (paper title) in a library. Parses the MayBMS query language,
// binds and plans it, and executes against the in-memory catalog.
//
// Quickstart:
//   maybms::Database db;
//   db.Execute("create table coin (face text)");
//   db.Execute("insert into coin values ('heads'), ('tails')");
//   auto r = db.Query(
//       "select face, conf() as p from (repair key face in coin) c group by face");
//
// A Database is a SessionManager plus one root Session over it — the
// embedded single-connection shape. Additional concurrent sessions over
// the SAME catalog (each with its own knobs, RNG stream, and asserted
// evidence) come from session_manager().CreateSession(); see
// src/engine/session.h for the isolation model and src/server/server.h
// for the line-protocol front end built on it.
//
// Queries run morsel-parallel on a work-stealing pool sized by
// DatabaseOptions::exec.num_threads (default: hardware_concurrency; 1 runs
// fully serial). Deterministic queries — including conf() — return
// identical results at every thread count; aconf() estimates are identical
// across all thread counts >= 2, while 1 keeps the legacy sequential
// sampling stream (a different, equally valid (ε,δ) sample).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/engine/query_result.h"
#include "src/engine/session.h"
#include "src/storage/catalog.h"

namespace maybms {

/// Session-level settings (the historical name; a Database's options ARE
/// its root session's options).
using DatabaseOptions = SessionOptions;

/// An embedded MayBMS instance: catalog + world table + query pipeline.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  /// Runs a single statement and returns its result (rows for selects,
  /// affected counts/messages for DDL and DML).
  Result<QueryResult> Query(std::string_view sql);

  /// Runs a statement for its side effects; errors if it fails.
  Status Execute(std::string_view sql);

  /// Runs a ';'-separated script, stopping at the first error. Returns
  /// the result of the last statement.
  Result<QueryResult> ExecuteScript(std::string_view sql);

  /// EXPLAIN: the bound logical plan for a query.
  Result<std::string> Explain(std::string_view sql);

  /// Direct access for embedding: the catalog and world table.
  Catalog& catalog() { return manager_->catalog(); }
  const Catalog& catalog() const { return manager_->catalog(); }
  WorldTable& world_table() { return manager_->catalog().world_table(); }
  /// The evidence asserted so far (ASSERT / CONDITION ON statements) in
  /// the root session; its conf()/aconf()/tconf() answers are posteriors
  /// given this constraint. The mutable overload exists for persistence
  /// (RestoreDatabase loads a dump's EVIDENCE section into it).
  const ConstraintStore& constraints() const { return session_->constraints(); }
  ConstraintStore& constraints() { return session_->constraints(); }

  /// The root session's knobs. Mutations through this reference are
  /// validated at the next statement (see Session::options()).
  DatabaseOptions& options() { return session_->options(); }

  /// Reseeds the session RNG (aconf reproducibility).
  void Reseed(uint64_t seed);

  /// The root session (the one this facade's Query/Execute run on).
  Session& session() { return *session_; }
  /// The manager owning the shared catalog: CreateSession() here opens
  /// additional concurrent sessions over this database.
  SessionManager& session_manager() { return *manager_; }

 private:
  // Order matters: the root session must die before the manager. Both
  // live behind unique_ptrs so a Database stays movable (sessions hold a
  // stable pointer to their manager).
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<Session> session_;
};

}  // namespace maybms
