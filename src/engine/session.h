// Multi-session execution over one shared catalog.
//
// Paper §2.3 ("Updates, concurrency control, and recovery"): "As a
// consequence of our choice of a purely relational representation system,
// these issues cause surprisingly little difficulty" — U-relations are
// ordinary relations, so concurrency control is ordinary relational
// concurrency control. This file is that claim made concrete:
//
//   SessionManager — owns the Catalog (tables + world table + d-tree
//     compilation cache) and the locks that serialize access to it, plus
//     one shared worker pool for intra-query parallelism.
//   Session — everything that is PER CONNECTION in the original
//     PostgreSQL-based system: execution knobs (SET ...), the RNG stream
//     feeding aconf(), and the asserted-evidence ConstraintStore, so each
//     session's confidence answers are posteriors under ITS OWN evidence
//     (Koch & Olteanu VLDB'08 conditioning) while all sessions share one
//     set of possible worlds.
//
// Isolation model: statement-level snapshot consistency. Before running,
// a statement is classified by a pre-bind AST walk into the locks it
// needs, acquired in one fixed order (catalog → world table → tables in
// sorted-name order — deadlock-free by construction):
//
//   - catalog EXCLUSIVE: DDL (CREATE/DROP/CREATE AS), database-level SET
//     knobs, sole-session ASSERT (physical world pruning rewrites every
//     U-relation). Nothing else runs concurrently.
//   - world-table EXCLUSIVE: any statement containing repair-key /
//     pick-tuples anywhere (they mint new world variables), held together
//     with catalog SHARED.
//   - per-table statement locks: the write target of INSERT/UPDATE/DELETE
//     exclusively, every other referenced base table shared. Writers to
//     DIFFERENT tables therefore proceed in parallel; readers of a table
//     being written wait and then observe a whole statement's effect —
//     never a half-applied one (each read is a consistent cut at one
//     Table::version()).
//
// Shared caches stay shared safely: the DTreeCache is internally mutex-
// guarded and its keys pin lineage content + world version + options
// fingerprint, and evidence needs no key axis of its own (posterior
// queries reach the solver as explicit Q∧C product lineage), so sessions
// with different evidence can never alias each other's entries. Answers
// are bit-identical to single-session execution: the same morsel
// boundaries, fold orders, and seeded substreams apply regardless of how
// many sessions share the pool.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/cond/constraint_store.h"
#include "src/engine/query_result.h"
#include "src/exec/executor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/opt/stats.h"
#include "src/storage/catalog.h"

namespace maybms {

class SessionManager;
class ThreadPool;

/// Per-session settings: the RNG seed feeding aconf() plus the execution
/// knobs. Two of the ExecOptions fields (dtree_cache_budget,
/// snapshot_chunk_rows) configure DATABASE-level state shared by every
/// session; the session keeps them as its view and routes changes through
/// the serialized write path (see Session).
struct SessionOptions {
  /// RNG seed for aconf() Monte Carlo estimation (runs are reproducible).
  uint64_t seed = 42;
  ExecOptions exec;
};

/// One connection's worth of state over a shared catalog. Created by
/// SessionManager::CreateSession; statements on ONE session are serialized
/// (a session is a single logical connection), statements on different
/// sessions run concurrently under the statement locks described above.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs a single statement and returns its result (rows for selects,
  /// affected counts/messages for DDL and DML).
  Result<QueryResult> Query(std::string_view sql);

  /// Runs a statement for its side effects; errors if it fails.
  Status Execute(std::string_view sql);

  /// Runs a ';'-separated script, stopping at the first error. Returns
  /// the result of the last statement. Each statement is its own
  /// consistent cut; the script as a whole is not atomic.
  Result<QueryResult> ExecuteScript(std::string_view sql);

  /// EXPLAIN: the bound logical plan for a query.
  Result<std::string> Explain(std::string_view sql);

  /// Reseeds the session RNG (aconf reproducibility).
  void Reseed(uint64_t seed);

  /// The session's knobs. Mutating through this reference is supported
  /// for embedders, but values are VALIDATED at the point of use: the
  /// next statement rejects out-of-range settings (e.g. a fallback
  /// epsilon outside (0,1)) with the same errors SET would have raised,
  /// instead of feeding them to the solvers.
  SessionOptions& options() { return options_; }
  const SessionOptions& options() const { return options_; }

  /// The evidence asserted so far in THIS session (ASSERT / CONDITION ON
  /// statements); this session's conf()/aconf()/tconf() answers are
  /// posteriors given this constraint. Other sessions are unaffected.
  const ConstraintStore& constraints() const { return constraints_; }
  /// Mutable access for persistence (RestoreDatabase loads a dump's
  /// EVIDENCE section into the restoring session's store).
  ConstraintStore& constraints() { return constraints_; }

  SessionManager& manager() { return *manager_; }

  /// Stable id of this session (1-based, per manager); trace events carry
  /// it as their pid so multi-session timelines separate cleanly.
  uint64_t id() const { return id_; }

  /// Statements this session ran / failed (counted only while metrics are
  /// on). Read from the owning connection thread — plain, not atomic.
  uint64_t statements_run() const { return statements_run_; }
  uint64_t statements_failed() const { return statements_failed_; }

 private:
  friend class SessionManager;
  Session(SessionManager* manager, SessionOptions options);

  /// `sql_text` labels the statement's trace; `parse_ns` / `start_ns` are
  /// the caller-measured parse duration and statement start (0 when
  /// untimed — scripts, or metrics off at parse time).
  Result<QueryResult> RunStatement(const Statement& stmt,
                                   std::string_view sql_text,
                                   uint64_t parse_ns, uint64_t start_ns);
  /// Kind dispatch: SET / SHOW STATS are session-level, everything else
  /// goes through the bind/lock/execute path. `analyze` attaches the
  /// operator tree to `trace` (EXPLAIN ANALYZE).
  Result<QueryResult> DispatchStatement(const Statement& stmt,
                                        StatementTrace* trace,
                                        MetricsRegistry* reg, bool analyze);
  Result<QueryResult> RunOrdinary(const Statement& stmt, StatementTrace* trace,
                                  MetricsRegistry* reg, bool analyze);
  Result<QueryResult> RunSet(const SetStmt& stmt);
  Result<QueryResult> RunShowStats(const ShowStatsStmt& stmt);
  /// Plain EXPLAIN: bind only, render the plan, execute nothing.
  Result<QueryResult> RunExplainPlan(const ExplainStmt& stmt);

  SessionManager* manager_;  // non-owning; outlives every session
  uint64_t id_;
  SessionOptions options_;
  Rng rng_;
  ConstraintStore constraints_;
  uint64_t statements_run_ = 0;
  uint64_t statements_failed_ = 0;
  /// Position in this session's statement stream for SET trace_sample = N
  /// (every Nth statement records a full operator trace). Guarded by
  /// statement_mu_ like the statement counters above.
  uint64_t trace_sample_seq_ = 0;
  /// Values of the database-level knobs this session last applied (or
  /// adopted at creation). A statement re-applies a knob only when the
  /// session's OWN option drifted from this mirror — never merely because
  /// another session (or a restored dump) changed the shared state, which
  /// is exactly the bug the mirror exists to fix: blindly re-applying
  /// per-session defaults every statement silently rewrote every other
  /// session's snapshot layout.
  size_t applied_chunk_rows_;
  size_t applied_cache_budget_;
  /// Serializes statements WITHIN this session (one logical connection).
  std::mutex statement_mu_;
};

/// Owns one shared database — catalog, world table, d-tree cache, worker
/// pool — and hands out Sessions over it. Create/destroy sessions from a
/// single controlling thread (the server's accept loop; a test's main
/// thread); statements on live sessions may then run from any thread.
class SessionManager {
 public:
  SessionManager();
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a new session over the shared catalog. The session must not
  /// outlive the manager.
  std::unique_ptr<Session> CreateSession(SessionOptions options = {});

  /// Sessions currently alive.
  size_t num_sessions() const {
    return live_sessions_.load(std::memory_order_acquire);
  }

  /// Direct catalog access for embedding (bulk setup, persistence).
  /// UNSYNCHRONIZED: use it only while no concurrent session statement
  /// can run — before sessions are created, or from a test's single
  /// thread between statements.
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Rendered database summary (the shell's \d): per-table snapshot
  /// stats, world-table size, the CALLING session's evidence, and d-tree
  /// cache counters. Taken under the catalog/world/table locks, so it is
  /// safe while other sessions run statements.
  std::string Describe(const ConstraintStore* session_evidence);

  /// Rendered description of one table (the shell's \d <name>): kind,
  /// row count, columns. Lock-safe like Describe().
  std::string DescribeTable(const std::string& name);

  /// The shared metrics registry (SHOW STATS / server \stats / benches).
  /// Counters accumulate across every session over this manager; snapshot
  /// via StatsSnapshot() to also fold in cache / pool / session gauges.
  MetricsRegistry& metrics() { return metrics_; }

  /// Ring of recently completed statement traces (server \trace).
  TraceBuffer& traces() { return traces_; }

  /// Shared optimizer statistics cache (src/opt/stats.h). Like the
  /// columnar snapshots the stats derive from, it is one per database:
  /// internally synchronized, version-invalidated, chunk-incremental.
  StatsCache& stats() { return stats_; }

  /// One merged (name, value) listing: every registry counter and
  /// histogram aggregate, plus point-in-time gauges sourced from their
  /// owning components at snapshot time (d-tree cache stats, thread-pool
  /// task/steal counts, live sessions) — sourced, not double-counted: the
  /// registry itself never mirrors them. Sorted by name.
  std::vector<std::pair<std::string, double>> StatsSnapshot();

  /// The trace ring as chrome://tracing JSON (the \trace meta-command).
  std::string ExportTraceJson();

  /// The lock footprint of one statement, computed by a pre-bind AST walk
  /// (session.cc's classifier). Public only so the classifier can build
  /// it; acquisition stays private to Session's statement loop.
  struct LockPlan {
    bool catalog_exclusive = false;
    bool world_exclusive = false;
    std::vector<std::string> read_tables;   // lower-cased base-table names
    std::vector<std::string> write_tables;  // lower-cased DML targets
  };

 private:
  friend class Session;

  /// RAII acquisition of one LockPlan, held for the statement's duration.
  /// Locks are taken in the fixed catalog → world → sorted table-name
  /// order.
  struct StatementLocks {
    std::shared_lock<std::shared_mutex> catalog_shared;
    std::unique_lock<std::shared_mutex> catalog_unique;
    std::shared_lock<std::shared_mutex> world_shared;
    std::unique_lock<std::shared_mutex> world_unique;
    std::vector<TablePtr> pinned;  // keeps locked tables alive past DROP
    std::vector<std::shared_lock<std::shared_mutex>> table_shared;
    std::vector<std::unique_lock<std::shared_mutex>> table_unique;
  };
  /// Per-lock-class acquisition times for one statement (lock-wait
  /// visibility). Filled by Acquire when a sink is passed.
  struct LockWaitTimes {
    uint64_t catalog_ns = 0;
    uint64_t world_ns = 0;
    uint64_t table_ns = 0;  // summed over every table lock taken
  };
  StatementLocks Acquire(const LockPlan& plan, LockWaitTimes* waits = nullptr);

  /// The shared worker pool, created on first demand and sized once
  /// (max of the first requester's wish and the hardware default); never
  /// resized, because other sessions may be inside ParallelFor. Sound
  /// because results are bit-identical at every thread count >= 2 — pool
  /// size is a throughput knob, not a semantic one. Returns nullptr for
  /// want <= 1 (the fully serial legacy path).
  ThreadPool* SharedPool(unsigned want);

  Catalog catalog_;
  /// Catalog structure (the name → table map + everything at once for
  /// exclusive statements). Every statement holds it at least shared.
  std::shared_mutex catalog_mu_;
  /// World-table lock: shared to read distributions (all confidence
  /// computation), exclusive to mint variables (repair-key/pick-tuples).
  std::shared_mutex world_mu_;
  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<size_t> live_sessions_{0};
  std::atomic<uint64_t> next_session_id_{1};
  MetricsRegistry metrics_;
  TraceBuffer traces_;
  StatsCache stats_;
};

}  // namespace maybms
