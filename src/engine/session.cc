#include "src/engine/session.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <thread>
#include <utility>

#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/lineage/dtree_cache.h"
#include "src/opt/optimizer.h"
#include "src/plan/planner.h"
#include "src/sql/parser.h"

namespace maybms {

namespace {

/// " at l:c" suffix matching the parser's position-stamped errors; empty
/// for programmatically-built SetStmts that carry no source position.
std::string KnobPos(const SetStmt& set) {
  if (set.value_line == 0) return std::string();
  return StringFormat(" at %u:%u", set.value_line, set.value_col);
}

Status KnobError(const SetStmt& set, const char* expects) {
  return Status::InvalidArgument(StringFormat(
      "SET %s expects %s, got '%s'%s", set.name.c_str(), expects,
      set.value_text.c_str(), KnobPos(set).c_str()));
}

Result<bool> SetBool(const SetStmt& set) {
  if (set.value_text == "on" || set.value_text == "true" ||
      set.value_text == "1") {
    return true;
  }
  if (set.value_text == "off" || set.value_text == "false" ||
      set.value_text == "0") {
    return false;
  }
  return KnobError(set, "on/off");
}

// Numeric knobs re-parse value_text — the raw token spelling — strictly:
// the WHOLE token must convert (no '0.5' for an integer knob, no
// exponent/suffix leftovers) and the value must be finite and in range.
// The lexer's own conversion is a partial parse (strtod/strtoll stop at
// the first bad character and saturate on overflow, e.g. '1e999' → inf),
// which is fine for expression literals that the grammar already bounds,
// but silently truncates for knobs; casting such a value to an integer
// type is undefined behavior before it is even a wrong setting.

/// SET num_threads cap, also enforced on direct options() assignments.
constexpr unsigned kMaxThreads = 4096;

Result<uint64_t> SetUint(const SetStmt& set, const char* expects,
                         uint64_t max_value) {
  // Word values ('on', 'legacy', ...) carry no value_num: not a number.
  if (!set.value_num || set.value_text.empty()) return KnobError(set, expects);
  const char* text = set.value_text.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return KnobError(set, expects);
  if (errno == ERANGE || v > max_value) {
    return Status::InvalidArgument(StringFormat(
        "SET %s: value '%s' out of range (max %llu)%s", set.name.c_str(),
        set.value_text.c_str(), static_cast<unsigned long long>(max_value),
        KnobPos(set).c_str()));
  }
  return static_cast<uint64_t>(v);
}

/// The open-interval range every (ε,δ)-style knob must satisfy. Shared
/// between SET parsing and the point-of-use validation of options()
/// assignments, so both paths accept exactly the same values.
bool ValidFraction(double v) { return std::isfinite(v) && v > 0 && v < 1; }

Result<double> SetFraction(const SetStmt& set) {
  const char* expects = "a number in (0,1)";
  if (!set.value_num || set.value_text.empty()) return KnobError(set, expects);
  const char* text = set.value_text.c_str();
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return KnobError(set, expects);
  // ERANGE covers overflow to ±inf ('1e999') and underflow to denormals;
  // the open-interval check rejects both legitimately.
  if (errno == ERANGE || !ValidFraction(v)) return KnobError(set, expects);
  return v;
}

/// Point-of-use validation of the session's ExecOptions. SET already
/// validates each knob, but options() hands embedders a mutable reference
/// that bypasses it — and some invalid values are worse than wrong
/// answers (a fallback epsilon of 0 reaches Karp-Luby's sample-count
/// formula as a division by zero). Every statement revalidates here so a
/// bad assignment fails with the SET-style error instead.
Status ValidateExecOptions(const ExecOptions& exec) {
  if (!ValidFraction(exec.fallback_epsilon)) {
    return Status::InvalidArgument(StringFormat(
        "invalid session option fallback_epsilon = %g: expects a number in "
        "(0,1)", exec.fallback_epsilon));
  }
  if (!ValidFraction(exec.fallback_delta)) {
    return Status::InvalidArgument(StringFormat(
        "invalid session option fallback_delta = %g: expects a number in "
        "(0,1)", exec.fallback_delta));
  }
  if (exec.snapshot_chunk_rows == 0) {
    return Status::InvalidArgument(
        "invalid session option snapshot_chunk_rows = 0: expects a positive "
        "row count");
  }
  if (exec.num_threads > kMaxThreads) {
    return Status::InvalidArgument(StringFormat(
        "invalid session option num_threads = %u: expects at most %u "
        "(0 = hardware)", exec.num_threads, kMaxThreads));
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Statement classification: a pre-bind AST walk computing the lock plan.
// Conservative by construction — anything that can mint world-table
// variables (repair-key / pick-tuples, at any nesting depth including IN
// subqueries and UNION branches) takes the world lock exclusively, DDL
// takes the whole catalog, DML takes its target table exclusively.
// --------------------------------------------------------------------------

void ScanSelect(const SelectStmt* sel, SessionManager::LockPlan* plan);

void ScanExpr(const Expr* e, SessionManager::LockPlan* plan) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kUnary:
      ScanExpr(static_cast<const UnaryExpr*>(e)->operand.get(), plan);
      break;
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      ScanExpr(b->left.get(), plan);
      ScanExpr(b->right.get(), plan);
      break;
    }
    case ExprKind::kFunctionCall:
      for (const ExprPtr& arg : static_cast<const FunctionCallExpr*>(e)->args) {
        ScanExpr(arg.get(), plan);
      }
      break;
    case ExprKind::kInSubquery: {
      const auto* in = static_cast<const InSubqueryExpr*>(e);
      ScanExpr(in->operand.get(), plan);
      ScanSelect(in->subquery.get(), plan);
      break;
    }
    case ExprKind::kIsNull:
      ScanExpr(static_cast<const IsNullExpr*>(e)->operand.get(), plan);
      break;
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
      break;
  }
}

void ScanTableRef(const TableRef* ref, SessionManager::LockPlan* plan) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case TableRefKind::kBaseTable:
      plan->read_tables.push_back(
          ToLower(static_cast<const BaseTableRef*>(ref)->name));
      break;
    case TableRefKind::kSubquery:
      ScanSelect(static_cast<const SubqueryRef*>(ref)->select.get(), plan);
      break;
    case TableRefKind::kRepairKey: {
      const auto* rk = static_cast<const RepairKeyRef*>(ref);
      plan->world_exclusive = true;
      ScanTableRef(rk->input.get(), plan);
      ScanExpr(rk->weight.get(), plan);
      break;
    }
    case TableRefKind::kPickTuples: {
      const auto* pt = static_cast<const PickTuplesRef*>(ref);
      plan->world_exclusive = true;
      ScanTableRef(pt->input.get(), plan);
      ScanExpr(pt->probability.get(), plan);
      break;
    }
  }
}

void ScanSelect(const SelectStmt* sel, SessionManager::LockPlan* plan) {
  if (sel == nullptr) return;
  for (const SelectItem& item : sel->items) ScanExpr(item.expr.get(), plan);
  for (const TableRefPtr& ref : sel->from) ScanTableRef(ref.get(), plan);
  ScanExpr(sel->where.get(), plan);
  for (const ExprPtr& e : sel->group_by) ScanExpr(e.get(), plan);
  for (const OrderItem& o : sel->order_by) ScanExpr(o.expr.get(), plan);
  ScanSelect(sel->union_next.get(), plan);
}

SessionManager::LockPlan ClassifyStatement(const Statement& stmt,
                                           bool sole_session) {
  SessionManager::LockPlan plan;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      ScanSelect(&static_cast<const SelectStmt&>(stmt), &plan);
      break;
    case StatementKind::kCreateTable:
    case StatementKind::kCreateTableAs:
    case StatementKind::kDropTable:
    case StatementKind::kCreateIndex:
    case StatementKind::kDropIndex:
      plan.catalog_exclusive = true;  // structure change: run alone
      break;
    case StatementKind::kShowIndexes:
      break;  // registry reads are internally synchronized; catalog shared
    case StatementKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(stmt);
      plan.write_tables.push_back(ToLower(ins.table));
      for (const std::vector<ExprPtr>& row : ins.rows) {
        for (const ExprPtr& e : row) ScanExpr(e.get(), &plan);
      }
      ScanSelect(ins.select.get(), &plan);
      break;
    }
    case StatementKind::kUpdate: {
      const auto& upd = static_cast<const UpdateStmt&>(stmt);
      plan.write_tables.push_back(ToLower(upd.table));
      for (const auto& [name, e] : upd.assignments) ScanExpr(e.get(), &plan);
      ScanExpr(upd.where.get(), &plan);
      break;
    }
    case StatementKind::kDelete: {
      const auto& del = static_cast<const DeleteStmt&>(stmt);
      plan.write_tables.push_back(ToLower(del.table));
      ScanExpr(del.where.get(), &plan);
      break;
    }
    case StatementKind::kAssert: {
      const auto& a = static_cast<const AssertStmt&>(stmt);
      // A sole-session ASSERT (not the check-only CONFIDENCE form)
      // physically prunes: it rewrites every U-relation and collapses
      // world variables, so it needs the whole database to itself.
      if (sole_session && !a.min_confidence) {
        plan.catalog_exclusive = true;
      } else {
        ScanSelect(a.select.get(), &plan);
      }
      break;
    }
    case StatementKind::kShowEvidence:
    case StatementKind::kClearEvidence:
      break;  // session-local store; world shared (labels) via Acquire
    case StatementKind::kSet:
    case StatementKind::kExplain:
    case StatementKind::kShowStats:
      break;  // handled by the session before classification
  }
  return plan;
}

/// StatementKind -> dense metrics index (kStatementKindNames order in
/// metrics.cc mirrors the enum exactly).
size_t StatementKindIndex(StatementKind kind) {
  static_assert(static_cast<size_t>(StatementKind::kShowIndexes) + 1 ==
                    kNumStatementKinds,
                "kNumStatementKinds must track StatementKind");
  return static_cast<size_t>(kind);
}

uint64_t CurrentThreadHash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

/// Unwires the per-statement ConfPhaseCounters from the session's solver
/// options on every exit path (the options outlive the counters).
struct ConfWireGuard {
  explicit ConfWireGuard(ExecOptions* exec) : exec_(exec) {}
  ~ConfWireGuard() {
    exec_->exact.counters = nullptr;
    exec_->montecarlo.counters = nullptr;
  }
  ExecOptions* exec_;
};

}  // namespace

// --------------------------------------------------------------------------
// SessionManager
// --------------------------------------------------------------------------

SessionManager::SessionManager() = default;
SessionManager::~SessionManager() = default;

std::unique_ptr<Session> SessionManager::CreateSession(SessionOptions options) {
  // Not make_unique: the constructor is private to enforce creation here.
  return std::unique_ptr<Session>(new Session(this, std::move(options)));
}

SessionManager::StatementLocks SessionManager::Acquire(const LockPlan& plan,
                                                       LockWaitTimes* waits) {
  // Lock-wait visibility: time each acquisition only when a sink is
  // passed (metrics on), so the untimed path stays clock-free.
  StatementLocks held;
  uint64_t t0 = waits != nullptr ? MonotonicNs() : 0;
  if (plan.catalog_exclusive) {
    // Exclusive catalog access subsumes the world and table locks: every
    // other statement holds the catalog lock at least shared.
    held.catalog_unique = std::unique_lock<std::shared_mutex>(catalog_mu_);
    if (waits != nullptr) waits->catalog_ns = MonotonicNs() - t0;
    return held;
  }
  held.catalog_shared = std::shared_lock<std::shared_mutex>(catalog_mu_);
  if (waits != nullptr) {
    const uint64_t t1 = MonotonicNs();
    waits->catalog_ns = t1 - t0;
    t0 = t1;
  }
  if (plan.world_exclusive) {
    held.world_unique = std::unique_lock<std::shared_mutex>(world_mu_);
  } else {
    held.world_shared = std::shared_lock<std::shared_mutex>(world_mu_);
  }
  if (waits != nullptr) {
    const uint64_t t1 = MonotonicNs();
    waits->world_ns = t1 - t0;
    t0 = t1;
  }
  // Per-table statement locks in sorted-name order (the fixed global
  // order that makes the scheme deadlock-free). A name in both sets is
  // locked once, exclusively; names the catalog does not know are
  // skipped — the binder reports them moments later, under this same
  // catalog lock, so no table can appear in between.
  std::vector<std::pair<std::string, bool>> order;  // (name, exclusive)
  order.reserve(plan.read_tables.size() + plan.write_tables.size());
  for (const std::string& n : plan.read_tables) order.emplace_back(n, false);
  for (const std::string& n : plan.write_tables) order.emplace_back(n, true);
  std::sort(order.begin(), order.end());
  for (size_t i = 0; i < order.size();) {
    size_t j = i + 1;
    bool exclusive = order[i].second;
    while (j < order.size() && order[j].first == order[i].first) {
      exclusive = exclusive || order[j].second;
      ++j;
    }
    Result<TablePtr> table = catalog_.GetTable(order[i].first);
    if (table.ok()) {
      if (exclusive) {
        held.table_unique.emplace_back((*table)->statement_lock());
      } else {
        held.table_shared.emplace_back((*table)->statement_lock());
      }
      held.pinned.push_back(std::move(*table));
    }
    i = j;
  }
  if (waits != nullptr) waits->table_ns = MonotonicNs() - t0;
  return held;
}

std::vector<std::pair<std::string, double>> SessionManager::StatsSnapshot() {
  std::vector<std::pair<std::string, double>> out = metrics_.Snapshot();
  // Point-in-time gauges live with their owning components (all
  // internally synchronized) and are folded in here rather than mirrored
  // into the registry — one source of truth per number.
  const DTreeCache::Stats dc = catalog_.dtree_cache().stats();
  out.emplace_back("dtree_cache.entries", static_cast<double>(dc.entries));
  out.emplace_back("dtree_cache.bytes", static_cast<double>(dc.bytes));
  out.emplace_back("dtree_cache.hits", static_cast<double>(dc.hits));
  out.emplace_back("dtree_cache.misses", static_cast<double>(dc.misses));
  out.emplace_back("dtree_cache.evictions", static_cast<double>(dc.evictions));
  out.emplace_back("dtree_cache.stale_purged",
                   static_cast<double>(dc.stale_purged));
  out.emplace_back("dtree_cache.component.hits",
                   static_cast<double>(dc.component_hits));
  out.emplace_back("dtree_cache.component.misses",
                   static_cast<double>(dc.component_misses));
  out.emplace_back("dtree_cache.estimate.hits",
                   static_cast<double>(dc.estimate_hits));
  out.emplace_back("dtree_cache.estimate.misses",
                   static_cast<double>(dc.estimate_misses));
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (pool_ != nullptr) {
      out.emplace_back("pool.tasks_executed",
                       static_cast<double>(pool_->tasks_executed()));
      out.emplace_back("pool.tasks_stolen",
                       static_cast<double>(pool_->tasks_stolen()));
    }
  }
  out.emplace_back("sessions.live", static_cast<double>(num_sessions()));
  std::sort(out.begin(), out.end());
  return out;
}

std::string SessionManager::ExportTraceJson() {
  return ExportChromeTrace(traces_.Recent());
}

std::string SessionManager::Describe(const ConstraintStore* session_evidence) {
  // Same acquisition order as statements: catalog → world → tables (the
  // map iterates sorted names), each table shared so its stats are a
  // consistent cut against concurrent writers.
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  std::shared_lock<std::shared_mutex> world(world_mu_);
  std::string out = StringFormat("%-24s %-10s %8s %8s %8s %18s\n", "table",
                                 "kind", "rows", "chunks", "dirty",
                                 "snapshot reuse");
  for (const std::string& name : catalog_.TableNames()) {
    Result<TablePtr> table = catalog_.GetTable(name);
    if (!table.ok()) continue;
    std::shared_lock<std::shared_mutex> tl((*table)->statement_lock());
    const Table::SnapshotStats ss = (*table)->snapshot_stats();
    out += StringFormat("%-24s %-10s %8zu %8zu %8zu %8llu/%llu\n", name.c_str(),
                        (*table)->uncertain() ? "uncertain" : "t-certain",
                        (*table)->NumRows(), ss.chunks, ss.dirty_chunks,
                        static_cast<unsigned long long>(ss.chunks_reused),
                        static_cast<unsigned long long>(ss.chunks_reused +
                                                        ss.chunks_rebuilt));
  }
  out += StringFormat("world table: %zu variable(s)\n",
                      catalog_.world_table().NumVariables());
  size_t sessions = num_sessions();
  out += StringFormat("sessions: %zu live (snapshot_chunk_rows = %zu)\n",
                      sessions, catalog_.snapshot_chunk_rows());
  if (session_evidence != nullptr && session_evidence->active()) {
    out += StringFormat(
        "evidence (this session): %zu clause(s), P(C)=%.6g — conf()/aconf()/"
        "tconf() answers are posteriors (SHOW EVIDENCE; for details)\n",
        session_evidence->NumClauses(), session_evidence->probability());
  } else {
    out += "evidence (this session): none\n";
  }
  const DTreeCache::Stats dc = catalog_.dtree_cache().stats();
  const uint64_t probes = dc.hits + dc.misses;
  out += StringFormat(
      "d-tree cache: %zu entr%s (%.1f KiB), %llu hit(s) / %llu miss(es)",
      dc.entries, dc.entries == 1 ? "y" : "ies",
      static_cast<double>(dc.bytes) / 1024.0,
      static_cast<unsigned long long>(dc.hits),
      static_cast<unsigned long long>(dc.misses));
  if (probes > 0) {
    out += StringFormat(" — %.1f%% hit rate",
                        100.0 * static_cast<double>(dc.hits) /
                            static_cast<double>(probes));
  }
  if (dc.evictions + dc.stale_purged > 0) {
    out += StringFormat(", %llu evicted / %llu stale-purged",
                        static_cast<unsigned long long>(dc.evictions),
                        static_cast<unsigned long long>(dc.stale_purged));
  }
  out += "\n";
  if (dc.component_hits + dc.component_misses + dc.estimate_hits +
          dc.estimate_misses >
      0) {
    out += StringFormat(
        "  components: %llu hit(s) / %llu miss(es); aconf estimates: %llu "
        "hit(s) / %llu miss(es)\n",
        static_cast<unsigned long long>(dc.component_hits),
        static_cast<unsigned long long>(dc.component_misses),
        static_cast<unsigned long long>(dc.estimate_hits),
        static_cast<unsigned long long>(dc.estimate_misses));
  }
  return out;
}

std::string SessionManager::DescribeTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> cat(catalog_mu_);
  Result<TablePtr> table = catalog_.GetTable(name);
  if (!table.ok()) return table.status().ToString() + "\n";
  std::shared_lock<std::shared_mutex> tl((*table)->statement_lock());
  std::string out = StringFormat(
      "%s (%s, %zu rows)\n", (*table)->name().c_str(),
      (*table)->uncertain() ? "U-relation" : "t-certain table",
      (*table)->NumRows());
  for (const Column& col : (*table)->schema().columns()) {
    out += StringFormat("  %-20s %s\n", col.name.c_str(),
                        std::string(TypeIdToString(col.type)).c_str());
  }
  return out;
}

ThreadPool* SessionManager::SharedPool(unsigned want) {
  if (want <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        std::max(want, ThreadPool::DefaultThreads()));
  }
  return pool_.get();
}

// --------------------------------------------------------------------------
// Session
// --------------------------------------------------------------------------

Session::Session(SessionManager* manager, SessionOptions options)
    : manager_(manager),
      id_(manager->next_session_id_.fetch_add(1, std::memory_order_relaxed)),
      options_(std::move(options)),
      rng_(options_.seed) {
  // Reconcile the session's view of the DATABASE-level knobs with the
  // shared state, under the catalog lock (sessions may be created while
  // others run statements). An option differing from the compiled-in
  // default was set explicitly by this session's creator and is applied;
  // a default-valued option ADOPTS the current shared value instead, so
  // joining a server whose layout was restored from a dump (or tuned by
  // another session) does not silently reset it.
  const ExecOptions defaults;
  std::unique_lock<std::shared_mutex> lock(manager_->catalog_mu_);
  Catalog& catalog = manager_->catalog_;
  if (options_.exec.snapshot_chunk_rows != defaults.snapshot_chunk_rows) {
    catalog.SetSnapshotChunkRows(options_.exec.snapshot_chunk_rows);
  } else {
    options_.exec.snapshot_chunk_rows = catalog.snapshot_chunk_rows();
  }
  applied_chunk_rows_ = options_.exec.snapshot_chunk_rows;
  if (options_.exec.dtree_cache_budget != defaults.dtree_cache_budget) {
    catalog.dtree_cache().SetBudgetBytes(options_.exec.dtree_cache_budget);
  } else {
    options_.exec.dtree_cache_budget = catalog.dtree_cache().budget_bytes();
  }
  applied_cache_budget_ = options_.exec.dtree_cache_budget;
  manager_->live_sessions_.fetch_add(1, std::memory_order_acq_rel);
}

Session::~Session() {
  manager_->live_sessions_.fetch_sub(1, std::memory_order_acq_rel);
}

void Session::Reseed(uint64_t seed) { rng_ = Rng(seed); }

Result<QueryResult> Session::RunSet(const SetStmt& set) {
  ExecOptions& exec = options_.exec;
  if (set.name == "dtree_node_budget" || set.name == "max_steps") {
    MAYBMS_ASSIGN_OR_RETURN(
        exec.exact.max_steps,
        SetUint(set, "a non-negative node count (0 = unlimited)",
                ~0ull / 2));
  } else if (set.name == "dtree_cache") {
    MAYBMS_ASSIGN_OR_RETURN(exec.dtree_cache, SetBool(set));
  } else if (set.name == "dtree_cache_budget") {
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t budget,
        SetUint(set, "a byte budget (0 = unlimited)", ~0ull / 2));
    // DATABASE-level knob: resizes the one cache every session shares.
    // The cache is internally synchronized, so no statement lock is
    // needed; the mirror records the applied value so the next statement
    // does not re-route it.
    exec.dtree_cache_budget = static_cast<size_t>(budget);
    manager_->catalog_.dtree_cache().SetBudgetBytes(exec.dtree_cache_budget);
    applied_cache_budget_ = exec.dtree_cache_budget;
  } else if (set.name == "conf_fallback") {
    MAYBMS_ASSIGN_OR_RETURN(exec.conf_fallback, SetBool(set));
  } else if (set.name == "fallback_epsilon") {
    MAYBMS_ASSIGN_OR_RETURN(exec.fallback_epsilon, SetFraction(set));
  } else if (set.name == "fallback_delta") {
    MAYBMS_ASSIGN_OR_RETURN(exec.fallback_delta, SetFraction(set));
  } else if (set.name == "exact_solver") {
    if (set.value_text == "dtree") {
      exec.exact.use_legacy_solver = false;
    } else if (set.value_text == "legacy") {
      exec.exact.use_legacy_solver = true;
    } else {
      return Status::InvalidArgument(
          "SET exact_solver expects 'dtree' or 'legacy'");
    }
  } else if (set.name == "engine") {
    if (set.value_text == "row") {
      exec.engine = ExecEngine::kRow;
    } else if (set.value_text == "batch") {
      exec.engine = ExecEngine::kBatch;
    } else {
      return Status::InvalidArgument("SET engine expects 'row' or 'batch'");
    }
  } else if (set.name == "num_threads") {
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t threads,
        SetUint(set, "a non-negative thread count (0 = hardware)",
                kMaxThreads));
    exec.num_threads = static_cast<unsigned>(threads);
  } else if (set.name == "dtree_component_cache") {
    MAYBMS_ASSIGN_OR_RETURN(exec.exact.component_cache, SetBool(set));
  } else if (set.name == "metrics") {
    MAYBMS_ASSIGN_OR_RETURN(exec.metrics, SetBool(set));
  } else if (set.name == "optimizer") {
    MAYBMS_ASSIGN_OR_RETURN(exec.optimizer, SetBool(set));
  } else if (set.name == "optimizer_semijoin") {
    MAYBMS_ASSIGN_OR_RETURN(exec.optimizer_semijoin, SetBool(set));
  } else if (set.name == "use_indexes") {
    MAYBMS_ASSIGN_OR_RETURN(exec.use_indexes, SetBool(set));
  } else if (set.name == "trace_sample") {
    MAYBMS_ASSIGN_OR_RETURN(
        exec.trace_sample,
        SetUint(set, "a statement interval (0 = off)", ~0ull / 2));
  } else if (set.name == "snapshot_chunk_rows") {
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t rows, SetUint(set, "a positive row count", ~0ull / 2));
    if (rows == 0) return KnobError(set, "a positive row count");
    // DATABASE-level knob: relays out every table's snapshot chunks, so
    // the change goes through the serialized write path — exclusive
    // catalog access, exactly like DDL — rather than being re-applied
    // from per-session options on every statement (which would let one
    // session's SET silently rewrite every other session's snapshots).
    exec.snapshot_chunk_rows = static_cast<size_t>(rows);
    {
      std::unique_lock<std::shared_mutex> lock(manager_->catalog_mu_);
      manager_->catalog_.SetSnapshotChunkRows(exec.snapshot_chunk_rows);
    }
    applied_chunk_rows_ = exec.snapshot_chunk_rows;
  } else {
    return Status::InvalidArgument(StringFormat(
        "unknown setting '%s' (supported: dtree_node_budget, dtree_cache, "
        "dtree_cache_budget, dtree_component_cache, snapshot_chunk_rows, "
        "conf_fallback, fallback_epsilon, fallback_delta, exact_solver, "
        "engine, num_threads, metrics, optimizer, optimizer_semijoin, "
        "use_indexes, trace_sample)",
        set.name.c_str()));
  }
  return QueryResult(TableData{},
                     StringFormat("SET %s = %s", set.name.c_str(),
                                  set.value_text.c_str()));
}

Result<QueryResult> Session::RunStatement(const Statement& stmt,
                                          std::string_view sql_text,
                                          uint64_t parse_ns,
                                          uint64_t start_ns) {
  const bool obs = options_.exec.metrics;
  MetricsRegistry* reg = obs ? &manager_->metrics_ : nullptr;
  const auto* explain = stmt.kind == StatementKind::kExplain
                            ? static_cast<const ExplainStmt*>(&stmt)
                            : nullptr;
  if (explain != nullptr && !explain->analyze) {
    // Plain EXPLAIN never executes, so it skips the trace machinery too.
    Result<QueryResult> result = RunExplainPlan(*explain);
    if (reg != nullptr) {
      reg->AddStatement(StatementKindIndex(stmt.kind), !result.ok());
      ++statements_run_;
      if (!result.ok()) ++statements_failed_;
    }
    return result;
  }
  const bool analyze = explain != nullptr;
  const Statement& effective = analyze ? *explain->inner : stmt;
  // SET trace_sample = N collects a full EXPLAIN-ANALYZE-style operator
  // trace on every Nth statement of this session (counted here, under the
  // statement lock) into the shared trace buffer, without touching the
  // statement's own result. Like EXPLAIN ANALYZE, sampling is an explicit
  // request and works with metrics off; registry counters still honor the
  // metrics knob.
  const uint64_t sample_every = options_.exec.trace_sample;
  const bool sampled =
      sample_every > 0 && (++trace_sample_seq_ % sample_every == 0);
  if (!obs && !analyze && !sampled) {
    // Fast path with metrics off: no clocks, no trace, no counters.
    return DispatchStatement(effective, nullptr, nullptr, false);
  }
  // EXPLAIN ANALYZE traces even with metrics off — it is an explicit
  // request — but registry counters stay untouched in that case.
  StatementTrace trace;
  trace.session_id = id_;
  trace.thread_hash = CurrentThreadHash();
  trace.statement = std::string(sql_text.substr(0, 256));
  trace.parse_ns = parse_ns;
  const uint64_t t0 = MonotonicNs();
  trace.start_ns = start_ns != 0 ? start_ns : t0;
  Result<QueryResult> result =
      DispatchStatement(effective, &trace, reg, analyze || sampled);
  trace.total_ns = parse_ns + (MonotonicNs() - t0);
  trace.failed = !result.ok();
  if (reg != nullptr) {
    // The outer kind is counted — EXPLAIN ANALYZE is one kExplain
    // statement, never a double-count of its inner statement.
    reg->AddStatement(StatementKindIndex(stmt.kind), trace.failed);
    reg->RecordNs(Hist::kStmtTotal, trace.total_ns);
    if (trace.parse_ns != 0) reg->RecordNs(Hist::kStmtParse, trace.parse_ns);
    if (trace.bind_ns != 0) reg->RecordNs(Hist::kStmtBind, trace.bind_ns);
    if (trace.lock_wait_ns != 0) {
      reg->RecordNs(Hist::kStmtLockWait, trace.lock_wait_ns);
    }
    if (trace.execute_ns != 0) {
      reg->RecordNs(Hist::kStmtExecute, trace.execute_ns);
    }
    if (trace.lock_catalog_ns != 0) {
      reg->RecordNs(Hist::kLockCatalog, trace.lock_catalog_ns);
    }
    if (trace.lock_world_ns != 0) {
      reg->RecordNs(Hist::kLockWorld, trace.lock_world_ns);
    }
    if (trace.lock_table_ns != 0) {
      reg->RecordNs(Hist::kLockTable, trace.lock_table_ns);
    }
    // Confidence-phase durations (RunOrdinary folded the counters into
    // trace.conf). exact_ns times cache-miss solver work only, so warm
    // cache-hit statements record nothing here.
    if (trace.conf.exact_ns != 0) {
      reg->RecordNs(Hist::kConfExact, trace.conf.exact_ns);
    }
    if (trace.conf.aconf_ns != 0) {
      reg->RecordNs(Hist::kConfAconf, trace.conf.aconf_ns);
    }
    reg->Add(Counter::kTracesRecorded);
    ++statements_run_;
    if (trace.failed) ++statements_failed_;
  }
  auto rec = std::make_shared<const StatementTrace>(std::move(trace));
  if (analyze && result.ok()) {
    result->AppendMessage(rec->Render());
  }
  manager_->traces_.Record(std::move(rec));
  return result;
}

Result<QueryResult> Session::DispatchStatement(const Statement& stmt,
                                               StatementTrace* trace,
                                               MetricsRegistry* reg,
                                               bool analyze) {
  // Session settings mutate SessionOptions directly — no binding/planning.
  // Validation happens inside each knob's SET handler, never against the
  // current options (a SET must be able to FIX an invalid options()
  // assignment, not be blocked by it).
  if (stmt.kind == StatementKind::kSet) {
    return RunSet(static_cast<const SetStmt&>(stmt));
  }
  if (stmt.kind == StatementKind::kShowStats) {
    return RunShowStats(static_cast<const ShowStatsStmt&>(stmt));
  }
  return RunOrdinary(stmt, trace, reg, analyze);
}

Result<QueryResult> Session::RunShowStats(const ShowStatsStmt& stmt) {
  // No statement locks: every source is internally synchronized, and a
  // stats read must never queue behind a long-running writer.
  TableData data;
  data.schema.AddColumn(Column{"metric", TypeId::kString});
  data.schema.AddColumn(Column{"value", TypeId::kDouble});
  for (auto& [name, value] : manager_->StatsSnapshot()) {
    if (!stmt.pattern.empty() && !MetricNameLike(stmt.pattern, name)) continue;
    Row row;
    row.values.push_back(Value::String(std::move(name)));
    row.values.push_back(Value::Double(value));
    data.rows.push_back(std::move(row));
  }
  const size_t n = data.rows.size();
  return QueryResult(std::move(data), StringFormat("STATS %zu metric(s)", n));
}

Result<QueryResult> Session::RunExplainPlan(const ExplainStmt& stmt) {
  const StatementKind inner = stmt.inner->kind;
  if (inner == StatementKind::kSet || inner == StatementKind::kShowStats) {
    return QueryResult(TableData{}, "EXPLAIN: (no plan: session statement)");
  }
  // Binding reads table schemas only: catalog + world shared suffice.
  SessionManager::StatementLocks locks =
      manager_->Acquire(SessionManager::LockPlan{});
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound,
                          BindStatement(manager_->catalog_, *stmt.inner));
  if (!bound.plan) {
    return QueryResult(TableData{}, "EXPLAIN: (no plan: DDL/DML statement)");
  }
  // EXPLAIN shows the plan that WOULD run: the optimized one (with its
  // cardinality estimates) under the current knobs.
  MAYBMS_RETURN_NOT_OK(
      OptimizePlan(&bound.plan, &manager_->stats_, options_.exec, nullptr,
                   &manager_->catalog_.index_manager()));
  return QueryResult(TableData{}, "EXPLAIN\n" + ExplainPlan(*bound.plan));
}

Result<QueryResult> Session::RunOrdinary(const Statement& stmt,
                                         StatementTrace* trace,
                                         MetricsRegistry* reg, bool analyze) {
  MAYBMS_RETURN_NOT_OK(ValidateExecOptions(options_.exec));
  const bool sole_session = manager_->num_sessions() == 1;
  SessionManager::LockPlan plan = ClassifyStatement(stmt, sole_session);
  // Database-level knobs assigned through options() rather than SET are
  // detected as drift against the applied mirror and routed through the
  // same write path SET uses: a layout change relays out every table, so
  // it escalates to exclusive catalog access for this one statement.
  const bool layout_drift =
      options_.exec.snapshot_chunk_rows != applied_chunk_rows_;
  const bool budget_drift =
      options_.exec.dtree_cache_budget != applied_cache_budget_;
  if (layout_drift) plan.catalog_exclusive = true;
  SessionManager::LockWaitTimes waits;
  SessionManager::StatementLocks locks =
      manager_->Acquire(plan, trace != nullptr ? &waits : nullptr);
  if (trace != nullptr) {
    trace->lock_catalog_ns = waits.catalog_ns;
    trace->lock_world_ns = waits.world_ns;
    trace->lock_table_ns = waits.table_ns;
    trace->lock_wait_ns = waits.catalog_ns + waits.world_ns + waits.table_ns;
  }
  Catalog& catalog = manager_->catalog_;
  if (layout_drift) {
    catalog.SetSnapshotChunkRows(options_.exec.snapshot_chunk_rows);
    applied_chunk_rows_ = options_.exec.snapshot_chunk_rows;
  }
  if (budget_drift) {
    catalog.dtree_cache().SetBudgetBytes(options_.exec.dtree_cache_budget);
    applied_cache_budget_ = options_.exec.dtree_cache_budget;
  }
  const uint64_t bind0 = trace != nullptr ? MonotonicNs() : 0;
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(catalog, stmt));
  // Cost-based optimization is part of planning (counted in bind_ns).
  // OptimizePlan is a no-op when the knob is off; the stats cache is
  // shared across sessions and version-invalidated, so reading it here
  // under the statement locks observes the same consistent cut the
  // executor will.
  if (bound.plan != nullptr) {
    OptimizerCounters opt;
    MAYBMS_RETURN_NOT_OK(
        OptimizePlan(&bound.plan, &manager_->stats_, options_.exec, &opt,
                     &catalog.index_manager()));
    if (reg != nullptr) {
      auto add = [reg](Counter c, uint64_t v) {
        if (v != 0) reg->Add(c, v);
      };
      add(Counter::kOptPlansConsidered, opt.plans_considered);
      add(Counter::kOptReorders, opt.reorders_applied);
      add(Counter::kOptSemijoinsInserted, opt.semijoins_inserted);
      add(Counter::kOptSemijoinsSkipped, opt.semijoins_skipped);
      add(Counter::kOptIndexScans, opt.index_scans);
    }
  }
  if (trace != nullptr) trace->bind_ns = MonotonicNs() - bind0;
  // Wire the catalog's cross-statement compilation cache into the solver
  // options (re-pointed every statement: the knob may have toggled, and a
  // moved Database must not keep a pointer into its moved-from catalog).
  // Sessions with different evidence can never alias entries: evidence
  // rides in the Q∧C product lineage the keys hash, not in a key axis.
  options_.exec.exact.cache =
      options_.exec.dtree_cache ? &catalog.dtree_cache() : nullptr;
  // The seeded aconf estimate cache shares the same store and toggle; its
  // keys carry the world version the statement observes.
  options_.exec.montecarlo.cache = options_.exec.exact.cache;
  options_.exec.montecarlo.world_version = catalog.world_table().version();
  // Per-statement confidence-phase counters, wired through the solver
  // options so every conf path (both engines, fallbacks, posteriors)
  // reports to them. OUTSIDE the cache-key fingerprints — attaching them
  // cannot perturb cached results. Unwired on every exit path: options_
  // outlives the counters.
  ConfPhaseCounters conf_counters;
  ConfWireGuard unwire(&options_.exec);
  if (trace != nullptr) {
    options_.exec.exact.counters = &conf_counters;
    options_.exec.montecarlo.counters = &conf_counters;
  }
  ExecContext ctx;
  ctx.catalog = &catalog;
  ctx.rng = &rng_;
  ctx.options = &options_.exec;
  std::atomic<uint64_t> conf_fallbacks{0};
  ctx.conf_fallbacks = &conf_fallbacks;
  ctx.session_constraints = &constraints_;
  ctx.allow_prune = sole_session;
  ctx.metrics = reg;
  // The operator tree is collected only under EXPLAIN ANALYZE: routine
  // statements keep the phase-level trace (near-zero cost), never the
  // per-operator clock reads.
  ctx.trace = analyze ? trace : nullptr;
  ctx.trace_parent = nullptr;
  // num_threads == 1 runs fully serial (no pool, legacy bit-for-bit
  // behavior); anything else shares the manager's pool. Morsel boundaries
  // and fold orders are thread-count-invariant, so the shared pool's size
  // never shows in results.
  unsigned want = options_.exec.num_threads != 0 ? options_.exec.num_threads
                                                 : ThreadPool::DefaultThreads();
  ctx.pool = want > 1 ? manager_->SharedPool(want) : nullptr;
  const uint64_t exec0 = trace != nullptr ? MonotonicNs() : 0;
  Result<StatementResult> executed = ExecuteStatement(bound, &ctx);
  if (trace != nullptr || reg != nullptr) {
    // One atomic sweep of the statement's conf counters feeds both sinks.
    const ConfPhaseSample sample = conf_counters.Sample();
    if (trace != nullptr) {
      trace->execute_ns = MonotonicNs() - exec0;
      trace->conf = sample;
    }
    if (reg != nullptr) {
      reg->FoldConfPhases(sample);
      if (uint64_t n = conf_fallbacks.load(std::memory_order_relaxed); n > 0) {
        reg->Add(Counter::kConfFallbacks, n);
      }
    }
  }
  MAYBMS_RETURN_NOT_OK(executed.status());
  StatementResult result = std::move(*executed);
  if (uint64_t n = conf_fallbacks.load(std::memory_order_relaxed); n > 0) {
    if (!result.message.empty()) result.message += "\n";
    result.message += StringFormat(
        "warning: conf() exceeded the exact node budget (dtree_node_budget="
        "%llu) on %llu group(s); returned seeded aconf(%g, %g) fallback "
        "estimates",
        static_cast<unsigned long long>(options_.exec.exact.max_steps),
        static_cast<unsigned long long>(n), options_.exec.fallback_epsilon,
        options_.exec.fallback_delta);
  }
  if (result.has_data) {
    return QueryResult(std::move(result.data), std::move(result.message));
  }
  return QueryResult(TableData{}, std::move(result.message));
}

Result<QueryResult> Session::Query(std::string_view sql) {
  // Parsing happens inside the statement lock so the metrics knob (which
  // decides whether to time it, and is mutable via SET on this same
  // logical connection) is read race-free; parsing is pure and fast.
  std::lock_guard<std::mutex> lock(statement_mu_);
  const bool obs = options_.exec.metrics;
  const uint64_t t0 = obs ? MonotonicNs() : 0;
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  const uint64_t parse_ns = obs ? MonotonicNs() - t0 : 0;
  return RunStatement(*stmt, sql, parse_ns, t0);
}

Status Session::Execute(std::string_view sql) {
  Result<QueryResult> result = Query(sql);
  return result.ok() ? Status::OK() : result.status();
}

Result<QueryResult> Session::ExecuteScript(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  std::lock_guard<std::mutex> lock(statement_mu_);
  QueryResult last;
  for (const StatementPtr& stmt : stmts) {
    // Script statements share one upfront parse; their traces carry the
    // whole script text and no per-statement parse time.
    MAYBMS_ASSIGN_OR_RETURN(last, RunStatement(*stmt, sql, 0, 0));
  }
  return last;
}

Result<std::string> Session::Explain(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  std::lock_guard<std::mutex> lock(statement_mu_);
  // Binding reads table schemas only: catalog + world shared suffice.
  SessionManager::StatementLocks locks =
      manager_->Acquire(SessionManager::LockPlan{});
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound,
                          BindStatement(manager_->catalog_, *stmt));
  if (!bound.plan) return std::string("(no plan: DDL/DML statement)\n");
  MAYBMS_RETURN_NOT_OK(
      OptimizePlan(&bound.plan, &manager_->stats_, options_.exec, nullptr,
                   &manager_->catalog_.index_manager()));
  return ExplainPlan(*bound.plan);
}

}  // namespace maybms
