// Client-facing query results with pretty printing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/exec/exec_context.h"

namespace maybms {

/// The result of Database::Query: a schema, rows (with conditions when the
/// result is an uncertain relation), and convenience accessors.
class QueryResult {
 public:
  QueryResult() = default;
  QueryResult(TableData data, std::string message)
      : data_(std::move(data)), message_(std::move(message)) {}

  const Schema& schema() const { return data_.schema; }
  const std::vector<Row>& rows() const { return data_.rows; }
  size_t NumRows() const { return data_.rows.size(); }
  size_t NumColumns() const { return data_.schema.NumColumns(); }
  bool uncertain() const { return data_.uncertain; }
  const std::string& message() const { return message_; }

  /// Appends a paragraph to the message (EXPLAIN ANALYZE attaches the
  /// rendered trace to the executed statement's result this way).
  void AppendMessage(std::string_view text) {
    if (!message_.empty()) message_ += "\n";
    message_.append(text);
  }

  /// Cell accessor (row-major).
  const Value& At(size_t row, size_t col) const { return data_.rows[row].values[col]; }

  /// Finds the first row whose `key_col` equals `key` and returns the
  /// value at `value_col`; nullopt when absent. Convenient in tests.
  std::optional<Value> Lookup(size_t key_col, const Value& key, size_t value_col) const;

  /// Scalar result (exactly one row / one column).
  Result<Value> ScalarValue() const;

  /// ASCII table rendering; uncertain results include a condition column.
  std::string ToString() const;

 private:
  TableData data_;
  std::string message_;
};

}  // namespace maybms
