#include "src/engine/query_result.h"

#include <algorithm>

#include "src/common/str_util.h"

namespace maybms {

std::optional<Value> QueryResult::Lookup(size_t key_col, const Value& key,
                                         size_t value_col) const {
  for (const Row& row : data_.rows) {
    if (row.values[key_col].Equals(key)) return row.values[value_col];
  }
  return std::nullopt;
}

Result<Value> QueryResult::ScalarValue() const {
  if (NumRows() != 1 || NumColumns() != 1) {
    return Status::InvalidArgument(StringFormat(
        "expected a scalar result, got %zu rows x %zu columns", NumRows(),
        NumColumns()));
  }
  return data_.rows[0].values[0];
}

std::string QueryResult::ToString() const {
  std::vector<std::string> headers;
  for (const Column& col : data_.schema.columns()) headers.push_back(col.name);
  bool show_cond = data_.uncertain;
  if (show_cond) headers.push_back("condition");

  std::vector<std::vector<std::string>> cells;
  for (const Row& row : data_.rows) {
    std::vector<std::string> line;
    for (const Value& v : row.values) line.push_back(v.ToString());
    if (show_cond) line.push_back(row.condition.ToString());
    cells.push_back(std::move(line));
  }

  std::vector<size_t> widths(headers.size(), 0);
  for (size_t i = 0; i < headers.size(); ++i) widths[i] = headers[i].size();
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) widths[i] = std::max(widths[i], line[i].size());
  }

  auto render_row = [&](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t i = 0; i < headers.size(); ++i) {
      std::string cell = i < line.size() ? line[i] : "";
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers) + sep;
  for (const auto& line : cells) out += render_row(line);
  out += sep;
  out += StringFormat("(%zu row%s)\n", cells.size(), cells.size() == 1 ? "" : "s");
  return out;
}

}  // namespace maybms
