#include "src/engine/database.h"

#include "src/common/thread_pool.h"
#include "src/plan/planner.h"
#include "src/sql/parser.h"

namespace maybms {

Database::Database(DatabaseOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

void Database::Reseed(uint64_t seed) { rng_ = Rng(seed); }

Result<QueryResult> Database::RunStatement(const Statement& stmt) {
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(catalog_, stmt));
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.rng = &rng_;
  ctx.options = &options_.exec;
  // num_threads == 1 runs fully serial (no pool, legacy bit-for-bit
  // behavior); anything else gets a pool of the effective size, recreated
  // if the caller changed options() between statements.
  unsigned want = options_.exec.num_threads != 0 ? options_.exec.num_threads
                                                 : ThreadPool::DefaultThreads();
  if (want > 1) {
    if (pool_ == nullptr || pool_->num_threads() != want) {
      pool_ = std::make_unique<ThreadPool>(want);
    }
    ctx.pool = pool_.get();
  } else {
    pool_.reset();  // dropped back to serial: release the idle workers
  }
  MAYBMS_ASSIGN_OR_RETURN(StatementResult result, ExecuteStatement(bound, &ctx));
  if (result.has_data) {
    return QueryResult(std::move(result.data), std::move(result.message));
  }
  return QueryResult(TableData{}, std::move(result.message));
}

Result<QueryResult> Database::Query(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  return RunStatement(*stmt);
}

Status Database::Execute(std::string_view sql) {
  Result<QueryResult> result = Query(sql);
  return result.ok() ? Status::OK() : result.status();
}

Result<QueryResult> Database::ExecuteScript(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  QueryResult last;
  for (const StatementPtr& stmt : stmts) {
    MAYBMS_ASSIGN_OR_RETURN(last, RunStatement(*stmt));
  }
  return last;
}

Result<std::string> Database::Explain(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(catalog_, *stmt));
  if (!bound.plan) return std::string("(no plan: DDL/DML statement)\n");
  return ExplainPlan(*bound.plan);
}

}  // namespace maybms
