#include "src/engine/database.h"

#include <atomic>

#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/plan/planner.h"
#include "src/sql/parser.h"

namespace maybms {

Database::Database(DatabaseOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

void Database::Reseed(uint64_t seed) { rng_ = Rng(seed); }

namespace {

Result<bool> SetBool(const SetStmt& set) {
  if (set.value_text == "on" || set.value_text == "true" ||
      (set.value_num && *set.value_num == 1)) {
    return true;
  }
  if (set.value_text == "off" || set.value_text == "false" ||
      (set.value_num && *set.value_num == 0)) {
    return false;
  }
  return Status::InvalidArgument(StringFormat(
      "SET %s expects on/off, got '%s'", set.name.c_str(),
      set.value_text.c_str()));
}

Result<double> SetFraction(const SetStmt& set) {
  if (!set.value_num || !(*set.value_num > 0) || *set.value_num >= 1) {
    return Status::InvalidArgument(StringFormat(
        "SET %s expects a number in (0,1), got '%s'", set.name.c_str(),
        set.value_text.c_str()));
  }
  return *set.value_num;
}

}  // namespace

Result<QueryResult> Database::RunSet(const SetStmt& set) {
  ExecOptions& exec = options_.exec;
  if (set.name == "dtree_node_budget" || set.name == "max_steps") {
    if (!set.value_num || *set.value_num < 0) {
      return Status::InvalidArgument(StringFormat(
          "SET %s expects a non-negative node count (0 = unlimited)",
          set.name.c_str()));
    }
    exec.exact.max_steps = static_cast<uint64_t>(*set.value_num);
  } else if (set.name == "conf_fallback") {
    MAYBMS_ASSIGN_OR_RETURN(exec.conf_fallback, SetBool(set));
  } else if (set.name == "fallback_epsilon") {
    MAYBMS_ASSIGN_OR_RETURN(exec.fallback_epsilon, SetFraction(set));
  } else if (set.name == "fallback_delta") {
    MAYBMS_ASSIGN_OR_RETURN(exec.fallback_delta, SetFraction(set));
  } else if (set.name == "exact_solver") {
    if (set.value_text == "dtree") {
      exec.exact.use_legacy_solver = false;
    } else if (set.value_text == "legacy") {
      exec.exact.use_legacy_solver = true;
    } else {
      return Status::InvalidArgument(
          "SET exact_solver expects 'dtree' or 'legacy'");
    }
  } else if (set.name == "engine") {
    if (set.value_text == "row") {
      exec.engine = ExecEngine::kRow;
    } else if (set.value_text == "batch") {
      exec.engine = ExecEngine::kBatch;
    } else {
      return Status::InvalidArgument("SET engine expects 'row' or 'batch'");
    }
  } else if (set.name == "num_threads") {
    if (!set.value_num || *set.value_num < 0) {
      return Status::InvalidArgument(
          "SET num_threads expects a non-negative thread count (0 = hardware)");
    }
    exec.num_threads = static_cast<unsigned>(*set.value_num);
  } else {
    return Status::InvalidArgument(StringFormat(
        "unknown setting '%s' (supported: dtree_node_budget, conf_fallback, "
        "fallback_epsilon, fallback_delta, exact_solver, engine, "
        "num_threads)", set.name.c_str()));
  }
  return QueryResult(TableData{},
                     StringFormat("SET %s = %s", set.name.c_str(),
                                  set.value_text.c_str()));
}

Result<QueryResult> Database::RunStatement(const Statement& stmt) {
  // Session settings mutate DatabaseOptions directly — no binding/planning.
  if (stmt.kind == StatementKind::kSet) {
    return RunSet(static_cast<const SetStmt&>(stmt));
  }
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(catalog_, stmt));
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.rng = &rng_;
  ctx.options = &options_.exec;
  std::atomic<uint64_t> conf_fallbacks{0};
  ctx.conf_fallbacks = &conf_fallbacks;
  // num_threads == 1 runs fully serial (no pool, legacy bit-for-bit
  // behavior); anything else gets a pool of the effective size, recreated
  // if the caller changed options() between statements.
  unsigned want = options_.exec.num_threads != 0 ? options_.exec.num_threads
                                                 : ThreadPool::DefaultThreads();
  if (want > 1) {
    if (pool_ == nullptr || pool_->num_threads() != want) {
      pool_ = std::make_unique<ThreadPool>(want);
    }
    ctx.pool = pool_.get();
  } else {
    pool_.reset();  // dropped back to serial: release the idle workers
  }
  MAYBMS_ASSIGN_OR_RETURN(StatementResult result, ExecuteStatement(bound, &ctx));
  if (uint64_t n = conf_fallbacks.load(std::memory_order_relaxed); n > 0) {
    if (!result.message.empty()) result.message += "\n";
    result.message += StringFormat(
        "warning: conf() exceeded the exact node budget (dtree_node_budget="
        "%llu) on %llu group(s); returned seeded aconf(%g, %g) fallback "
        "estimates",
        static_cast<unsigned long long>(options_.exec.exact.max_steps),
        static_cast<unsigned long long>(n), options_.exec.fallback_epsilon,
        options_.exec.fallback_delta);
  }
  if (result.has_data) {
    return QueryResult(std::move(result.data), std::move(result.message));
  }
  return QueryResult(TableData{}, std::move(result.message));
}

Result<QueryResult> Database::Query(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  return RunStatement(*stmt);
}

Status Database::Execute(std::string_view sql) {
  Result<QueryResult> result = Query(sql);
  return result.ok() ? Status::OK() : result.status();
}

Result<QueryResult> Database::ExecuteScript(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  QueryResult last;
  for (const StatementPtr& stmt : stmts) {
    MAYBMS_ASSIGN_OR_RETURN(last, RunStatement(*stmt));
  }
  return last;
}

Result<std::string> Database::Explain(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(catalog_, *stmt));
  if (!bound.plan) return std::string("(no plan: DDL/DML statement)\n");
  return ExplainPlan(*bound.plan);
}

}  // namespace maybms
