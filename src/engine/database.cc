#include "src/engine/database.h"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/lineage/dtree_cache.h"
#include "src/plan/planner.h"
#include "src/sql/parser.h"

namespace maybms {

Database::Database(DatabaseOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

void Database::Reseed(uint64_t seed) { rng_ = Rng(seed); }

namespace {

/// " at l:c" suffix matching the parser's position-stamped errors; empty
/// for programmatically-built SetStmts that carry no source position.
std::string KnobPos(const SetStmt& set) {
  if (set.value_line == 0) return std::string();
  return StringFormat(" at %u:%u", set.value_line, set.value_col);
}

Status KnobError(const SetStmt& set, const char* expects) {
  return Status::InvalidArgument(StringFormat(
      "SET %s expects %s, got '%s'%s", set.name.c_str(), expects,
      set.value_text.c_str(), KnobPos(set).c_str()));
}

Result<bool> SetBool(const SetStmt& set) {
  if (set.value_text == "on" || set.value_text == "true" ||
      set.value_text == "1") {
    return true;
  }
  if (set.value_text == "off" || set.value_text == "false" ||
      set.value_text == "0") {
    return false;
  }
  return KnobError(set, "on/off");
}

// Numeric knobs re-parse value_text — the raw token spelling — strictly:
// the WHOLE token must convert (no '0.5' for an integer knob, no
// exponent/suffix leftovers) and the value must be finite and in range.
// The lexer's own conversion is a partial parse (strtod/strtoll stop at
// the first bad character and saturate on overflow, e.g. '1e999' → inf),
// which is fine for expression literals that the grammar already bounds,
// but silently truncates for knobs; casting such a value to an integer
// type is undefined behavior before it is even a wrong setting.

Result<uint64_t> SetUint(const SetStmt& set, const char* expects,
                         uint64_t max_value) {
  // Word values ('on', 'legacy', ...) carry no value_num: not a number.
  if (!set.value_num || set.value_text.empty()) return KnobError(set, expects);
  const char* text = set.value_text.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return KnobError(set, expects);
  if (errno == ERANGE || v > max_value) {
    return Status::InvalidArgument(StringFormat(
        "SET %s: value '%s' out of range (max %llu)%s", set.name.c_str(),
        set.value_text.c_str(), static_cast<unsigned long long>(max_value),
        KnobPos(set).c_str()));
  }
  return static_cast<uint64_t>(v);
}

Result<double> SetFraction(const SetStmt& set) {
  const char* expects = "a number in (0,1)";
  if (!set.value_num || set.value_text.empty()) return KnobError(set, expects);
  const char* text = set.value_text.c_str();
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return KnobError(set, expects);
  // ERANGE covers overflow to ±inf ('1e999') and underflow to denormals;
  // the open-interval check rejects both legitimately.
  if (errno == ERANGE || !std::isfinite(v) || !(v > 0) || v >= 1) {
    return KnobError(set, expects);
  }
  return v;
}

}  // namespace

Result<QueryResult> Database::RunSet(const SetStmt& set) {
  ExecOptions& exec = options_.exec;
  if (set.name == "dtree_node_budget" || set.name == "max_steps") {
    MAYBMS_ASSIGN_OR_RETURN(
        exec.exact.max_steps,
        SetUint(set, "a non-negative node count (0 = unlimited)",
                ~0ull / 2));
  } else if (set.name == "dtree_cache") {
    MAYBMS_ASSIGN_OR_RETURN(exec.dtree_cache, SetBool(set));
  } else if (set.name == "dtree_cache_budget") {
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t budget,
        SetUint(set, "a byte budget (0 = unlimited)", ~0ull / 2));
    exec.dtree_cache_budget = static_cast<size_t>(budget);
  } else if (set.name == "conf_fallback") {
    MAYBMS_ASSIGN_OR_RETURN(exec.conf_fallback, SetBool(set));
  } else if (set.name == "fallback_epsilon") {
    MAYBMS_ASSIGN_OR_RETURN(exec.fallback_epsilon, SetFraction(set));
  } else if (set.name == "fallback_delta") {
    MAYBMS_ASSIGN_OR_RETURN(exec.fallback_delta, SetFraction(set));
  } else if (set.name == "exact_solver") {
    if (set.value_text == "dtree") {
      exec.exact.use_legacy_solver = false;
    } else if (set.value_text == "legacy") {
      exec.exact.use_legacy_solver = true;
    } else {
      return Status::InvalidArgument(
          "SET exact_solver expects 'dtree' or 'legacy'");
    }
  } else if (set.name == "engine") {
    if (set.value_text == "row") {
      exec.engine = ExecEngine::kRow;
    } else if (set.value_text == "batch") {
      exec.engine = ExecEngine::kBatch;
    } else {
      return Status::InvalidArgument("SET engine expects 'row' or 'batch'");
    }
  } else if (set.name == "num_threads") {
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t threads,
        SetUint(set, "a non-negative thread count (0 = hardware)", 4096));
    exec.num_threads = static_cast<unsigned>(threads);
  } else if (set.name == "dtree_component_cache") {
    MAYBMS_ASSIGN_OR_RETURN(exec.exact.component_cache, SetBool(set));
  } else if (set.name == "snapshot_chunk_rows") {
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t rows, SetUint(set, "a positive row count", ~0ull / 2));
    if (rows == 0) return KnobError(set, "a positive row count");
    exec.snapshot_chunk_rows = static_cast<size_t>(rows);
  } else {
    return Status::InvalidArgument(StringFormat(
        "unknown setting '%s' (supported: dtree_node_budget, dtree_cache, "
        "dtree_cache_budget, dtree_component_cache, snapshot_chunk_rows, "
        "conf_fallback, fallback_epsilon, fallback_delta, exact_solver, "
        "engine, num_threads)",
        set.name.c_str()));
  }
  return QueryResult(TableData{},
                     StringFormat("SET %s = %s", set.name.c_str(),
                                  set.value_text.c_str()));
}

Result<QueryResult> Database::RunStatement(const Statement& stmt) {
  // Session settings mutate DatabaseOptions directly — no binding/planning.
  if (stmt.kind == StatementKind::kSet) {
    return RunSet(static_cast<const SetStmt&>(stmt));
  }
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(catalog_, stmt));
  // Wire the catalog's cross-statement compilation cache into the solver
  // options (re-pointed every statement: the knob may have toggled, and a
  // moved Database must not keep a pointer into its moved-from catalog).
  // The budget applies even while the cache is toggled off, so a shrunken
  // dtree_cache_budget reclaims resident entries immediately — disabling
  // only bypasses probes, it does not orphan the memory.
  catalog_.dtree_cache().SetBudgetBytes(options_.exec.dtree_cache_budget);
  options_.exec.exact.cache =
      options_.exec.dtree_cache ? &catalog_.dtree_cache() : nullptr;
  // The seeded aconf estimate cache shares the same store and toggle; its
  // keys carry the world version the statement observes.
  options_.exec.montecarlo.cache = options_.exec.exact.cache;
  options_.exec.montecarlo.world_version = catalog_.world_table().version();
  // Chunked-snapshot layout knob: applied to existing and future tables.
  catalog_.SetSnapshotChunkRows(options_.exec.snapshot_chunk_rows);
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.rng = &rng_;
  ctx.options = &options_.exec;
  std::atomic<uint64_t> conf_fallbacks{0};
  ctx.conf_fallbacks = &conf_fallbacks;
  // num_threads == 1 runs fully serial (no pool, legacy bit-for-bit
  // behavior); anything else gets a pool of the effective size, recreated
  // if the caller changed options() between statements.
  unsigned want = options_.exec.num_threads != 0 ? options_.exec.num_threads
                                                 : ThreadPool::DefaultThreads();
  if (want > 1) {
    if (pool_ == nullptr || pool_->num_threads() != want) {
      pool_ = std::make_unique<ThreadPool>(want);
    }
    ctx.pool = pool_.get();
  } else {
    pool_.reset();  // dropped back to serial: release the idle workers
  }
  MAYBMS_ASSIGN_OR_RETURN(StatementResult result, ExecuteStatement(bound, &ctx));
  if (uint64_t n = conf_fallbacks.load(std::memory_order_relaxed); n > 0) {
    if (!result.message.empty()) result.message += "\n";
    result.message += StringFormat(
        "warning: conf() exceeded the exact node budget (dtree_node_budget="
        "%llu) on %llu group(s); returned seeded aconf(%g, %g) fallback "
        "estimates",
        static_cast<unsigned long long>(options_.exec.exact.max_steps),
        static_cast<unsigned long long>(n), options_.exec.fallback_epsilon,
        options_.exec.fallback_delta);
  }
  if (result.has_data) {
    return QueryResult(std::move(result.data), std::move(result.message));
  }
  return QueryResult(TableData{}, std::move(result.message));
}

Result<QueryResult> Database::Query(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  return RunStatement(*stmt);
}

Status Database::Execute(std::string_view sql) {
  Result<QueryResult> result = Query(sql);
  return result.ok() ? Status::OK() : result.status();
}

Result<QueryResult> Database::ExecuteScript(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  QueryResult last;
  for (const StatementPtr& stmt : stmts) {
    MAYBMS_ASSIGN_OR_RETURN(last, RunStatement(*stmt));
  }
  return last;
}

Result<std::string> Database::Explain(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  MAYBMS_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(catalog_, *stmt));
  if (!bound.plan) return std::string("(no plan: DDL/DML statement)\n");
  return ExplainPlan(*bound.plan);
}

}  // namespace maybms
