#include "src/engine/database.h"

namespace maybms {

Database::Database(DatabaseOptions options)
    : manager_(std::make_unique<SessionManager>()),
      session_(manager_->CreateSession(std::move(options))) {}

Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

Result<QueryResult> Database::Query(std::string_view sql) {
  return session_->Query(sql);
}

Status Database::Execute(std::string_view sql) { return session_->Execute(sql); }

Result<QueryResult> Database::ExecuteScript(std::string_view sql) {
  return session_->ExecuteScript(sql);
}

Result<std::string> Database::Explain(std::string_view sql) {
  return session_->Explain(sql);
}

void Database::Reseed(uint64_t seed) { session_->Reseed(seed); }

}  // namespace maybms
