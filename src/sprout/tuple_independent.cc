#include "src/sprout/tuple_independent.h"

#include <unordered_set>

#include "src/common/str_util.h"

namespace maybms {

bool IsTupleIndependent(const Table& table) {
  std::unordered_set<VarId> seen;
  for (const Row& row : table.rows()) {
    if (row.condition.IsTrue()) continue;
    if (row.condition.NumAtoms() != 1) return false;
    VarId var = row.condition.atoms()[0].var;
    if (!seen.insert(var).second) return false;  // variable shared across rows
  }
  return true;
}

Result<TablePtr> MakeTupleIndependentTable(
    const std::string& name, const Schema& schema,
    const std::vector<std::pair<std::vector<Value>, double>>& rows, WorldTable* wt) {
  auto table = std::make_shared<Table>(name, schema, /*uncertain=*/true);
  for (const auto& [values, p] : rows) {
    if (p < 0 || p > 1) {
      return Status::InvalidArgument(
          StringFormat("tuple probability %g outside [0,1]", p));
    }
    Row row{values};
    if (p < 1.0) {
      MAYBMS_ASSIGN_OR_RETURN(VarId var, wt->NewBooleanVariable(p, name));
      row.condition.AddAtom(Atom{var, 1});
    }
    MAYBMS_RETURN_NOT_OK(table->Append(std::move(row)));
  }
  return table;
}

}  // namespace maybms
