// SPROUT: scalable query processing on tuple-independent probabilistic
// databases "by reduction of confidence computation to a sequence of
// SQL-like aggregations" (paper §2.3, citing [5] "SPROUT: Lazy vs. Eager
// Query Plans for Tuple-Independent Probabilistic Databases", ICDE'09).
//
// Queries are conjunctive queries without self-joins over tuple-independent
// U-relations. For *hierarchical* queries, a safe plan computes exact
// confidences with relational aggregation:
//   - independent-join: probabilities of variable-disjoint subqueries
//     multiply;
//   - independent-project: eliminating a root variable combines the
//     per-value probabilities as 1 − Π(1 − p).
// Two plan styles are provided:
//   - EAGER: aggregations are interleaved with the joins (intermediate
//     results stay small, probabilities are folded in early);
//   - LAZY:  the plan first materializes the full join lineage, then
//     computes the confidence at the end (one pass over the lineage with
//     the generic exact algorithm, which is polynomial here because
//     hierarchical lineage decomposes without Shannon expansion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/prob/world_table.h"
#include "src/storage/table.h"

namespace maybms {
namespace sprout {

/// One subgoal R(x1, ..., xn): a relation plus one query-variable name per
/// column. Repeated variable names inside an atom express equality
/// selections; shared names across atoms express equality joins.
struct QueryAtom {
  TablePtr relation;
  std::vector<std::string> vars;
};

/// A conjunctive query without self-joins over tuple-independent tables.
struct ConjunctiveQuery {
  std::vector<std::string> head;  ///< distinguished (group-by) variables
  std::vector<QueryAtom> atoms;
};

/// One result tuple: head-variable values and the confidence.
struct ResultTuple {
  std::vector<Value> head_values;
  double probability = 0;
};

enum class PlanStyle { kEager, kLazy };

/// Counters describing the work a plan performed.
struct PlanStats {
  uint64_t intermediate_tuples = 0;  ///< tuples materialized across operators
  uint64_t independent_projects = 0;
  uint64_t independent_joins = 0;
  uint64_t lineage_clauses = 0;  ///< lazy only: clauses of the final lineage
};

/// True iff the query is hierarchical: for any two non-head variables, the
/// sets of atoms using them are disjoint or nested. Hierarchical queries
/// (without self-joins) are exactly the tractable ones — SPROUT's target.
bool IsHierarchical(const ConjunctiveQuery& query);

/// Validates the query (arity match, tuple-independent inputs).
Status ValidateQuery(const ConjunctiveQuery& query);

/// Evaluates the query, returning one ResultTuple per head-value
/// combination possible in some world. kEager requires a hierarchical
/// query (returns InvalidArgument otherwise); kLazy works for any
/// conjunctive query (falls back to the generic exact algorithm on the
/// materialized lineage).
Result<std::vector<ResultTuple>> Evaluate(const ConjunctiveQuery& query,
                                          const WorldTable& wt, PlanStyle style,
                                          PlanStats* stats = nullptr);

}  // namespace sprout
}  // namespace maybms
