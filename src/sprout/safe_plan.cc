#include "src/sprout/safe_plan.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/common/row_index.h"
#include "src/common/str_util.h"
#include "src/conf/exact.h"
#include "src/lineage/compiled_dnf.h"
#include "src/sprout/tuple_independent.h"
#include "src/types/condition_column.h"
#include "src/types/row.h"

namespace maybms {
namespace sprout {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
//
// Both plan styles keep intermediate relations FLAT: bindings in one
// arity-strided Value array, conditions in a packed ConditionColumn, and
// hash indexes that store row numbers instead of copied keys. The per-row
// vector allocations of a nested representation dominated the sprout
// benches; this layout removes them from the join and aggregation loops.
// ---------------------------------------------------------------------------

// HashValueSpan/HashValueProjection (src/types/row.h) are the shared key
// hashes; every index below is built and probed with the same functions.
uint64_t HashProjection(const Value* row, const std::vector<uint32_t>& idxs) {
  return HashValueProjection(row, idxs.data(), idxs.size());
}

bool SpanEq(const Value* a, const Value* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

// HashRowIndex (src/common/row_index.h) keys every map below: callers keep
// rows in their own flat storage and re-check values on hash matches.

// A relation of key bindings with a probability per key (the output of
// eager aggregation operators). Rows are unique on their binding.
struct ProbRel {
  std::vector<std::string> vars;
  uint32_t arity = 0;
  std::vector<Value> values;  // row i at [i*arity, (i+1)*arity)
  std::vector<double> probs;
  HashRowIndex index;  // binding hash -> rows

  size_t NumRows() const { return probs.size(); }
  const Value* RowVals(size_t i) const {
    return values.data() + static_cast<size_t>(arity) * i;
  }

  /// Row with this binding, inserting (prob 0) when absent.
  uint32_t FindOrInsert(const Value* vals, bool* inserted) {
    uint64_t h = HashValueSpan(vals, arity);
    uint32_t found = 0xffffffffu;
    index.ForEach(h, [&](uint32_t idx) {
      if (SpanEq(RowVals(idx), vals, arity)) {
        found = idx;
        return false;
      }
      return true;
    });
    if (found != 0xffffffffu) {
      *inserted = false;
      return found;
    }
    uint32_t idx = static_cast<uint32_t>(NumRows());
    values.insert(values.end(), vals, vals + arity);
    probs.push_back(0);
    index.Insert(h, idx);
    *inserted = true;
    return idx;
  }

  /// Independent-project combination: P(some row matches the binding).
  void OrCombine(const Value* vals, double p) {
    bool inserted = false;
    uint32_t idx = FindOrInsert(vals, &inserted);
    probs[idx] = 1.0 - (1.0 - probs[idx]) * (1.0 - p);
  }
};

// A relation of bindings with lineage (lazy plans).
struct LineageRel {
  std::vector<std::string> vars;
  uint32_t arity = 0;
  std::vector<Value> values;
  ConditionColumn conds;

  size_t NumRows() const { return conds.size(); }
  const Value* RowVals(size_t i) const {
    return values.data() + static_cast<size_t>(arity) * i;
  }
};

// Precompiled column routing for one atom: which relation column writes
// each binding slot (first occurrence of a variable), and which columns
// must equal an already-written slot (repeated variables express equality
// selections). Compiled once per atom; matching a row is then a straight
// copy plus the equality checks, with no per-row name lookups.
struct TuplePattern {
  std::vector<std::pair<uint32_t, uint32_t>> writes;  // (binding slot, column)
  std::vector<std::pair<uint32_t, uint32_t>> checks;  // (column, binding slot)
};

TuplePattern MakePattern(const QueryAtom& atom,
                         const std::vector<std::string>& out_vars) {
  TuplePattern p;
  std::vector<bool> bound(out_vars.size(), false);
  for (size_t i = 0; i < atom.vars.size(); ++i) {
    auto it = std::find(out_vars.begin(), out_vars.end(), atom.vars[i]);
    uint32_t idx = static_cast<uint32_t>(it - out_vars.begin());
    if (bound[idx]) {
      p.checks.emplace_back(static_cast<uint32_t>(i), idx);
    } else {
      p.writes.emplace_back(idx, static_cast<uint32_t>(i));
      bound[idx] = true;
    }
  }
  return p;
}

bool MatchTuple(const TuplePattern& pattern, const Row& row, Value* out) {
  for (const auto& [slot, col] : pattern.writes) out[slot] = row.values[col];
  for (const auto& [col, slot] : pattern.checks) {
    if (!row.values[col].Equals(out[slot])) return false;
  }
  return true;
}

std::vector<std::string> DistinctVars(const QueryAtom& atom) {
  std::vector<std::string> vars;
  for (const std::string& v : atom.vars) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
  }
  return vars;
}

// ---------------------------------------------------------------------------
// Eager (safe-plan) evaluation
// ---------------------------------------------------------------------------

class EagerEvaluator {
 public:
  EagerEvaluator(const WorldTable& wt, PlanStats* stats) : wt_(wt), stats_(stats) {}

  Result<ProbRel> Eval(std::vector<const QueryAtom*> atoms,
                       std::set<std::string> fixed) {
    // Base case: a single subgoal. Project onto the fixed variables;
    // existential variables are eliminated by the independent-project
    // combination 1 − Π(1 − p) over the tuple-independent rows.
    if (atoms.size() == 1) {
      const QueryAtom& atom = *atoms[0];
      std::vector<std::string> all_vars = DistinctVars(atom);
      ProbRel out;
      std::vector<uint32_t> proj;
      for (size_t i = 0; i < all_vars.size(); ++i) {
        if (fixed.count(all_vars[i])) {
          out.vars.push_back(all_vars[i]);
          proj.push_back(static_cast<uint32_t>(i));
        }
      }
      out.arity = static_cast<uint32_t>(out.vars.size());
      TuplePattern pattern = MakePattern(atom, all_vars);
      std::vector<Value> binding(all_vars.size());
      std::vector<Value> key(out.arity);
      for (const Row& row : atom.relation->rows()) {
        if (!MatchTuple(pattern, row, binding.data())) continue;
        for (size_t k = 0; k < proj.size(); ++k) key[k] = binding[proj[k]];
        out.OrCombine(key.data(), wt_.ConditionProb(row.condition));
      }
      if (stats_ != nullptr) {
        stats_->intermediate_tuples += out.NumRows();
        ++stats_->independent_projects;
      }
      return out;
    }

    // Independent-join: split into components connected via non-fixed
    // variables; their probabilities multiply.
    std::vector<std::vector<const QueryAtom*>> components =
        Components(atoms, fixed);
    if (components.size() > 1) {
      if (stats_ != nullptr) ++stats_->independent_joins;
      MAYBMS_ASSIGN_OR_RETURN(ProbRel acc, Eval(components[0], fixed));
      for (size_t i = 1; i < components.size(); ++i) {
        MAYBMS_ASSIGN_OR_RETURN(ProbRel next, Eval(components[i], fixed));
        acc = NaturalJoin(acc, next);
      }
      return acc;
    }

    // Independent-project: find a root variable (a non-fixed variable
    // occurring in every atom), fix it, recurse, then project it away.
    std::optional<std::string> root = FindRootVariable(atoms, fixed);
    if (!root) {
      return Status::InvalidArgument(
          "query is not hierarchical: no safe plan exists (SPROUT eager "
          "plans require hierarchical queries)");
    }
    std::set<std::string> fixed2 = fixed;
    fixed2.insert(*root);
    MAYBMS_ASSIGN_OR_RETURN(ProbRel inner, Eval(std::move(atoms), std::move(fixed2)));

    // Group by the key without the root variable: 1 − Π(1 − p).
    size_t root_idx = static_cast<size_t>(
        std::find(inner.vars.begin(), inner.vars.end(), *root) - inner.vars.begin());
    ProbRel out;
    for (const std::string& v : inner.vars) {
      if (v != *root) out.vars.push_back(v);
    }
    out.arity = static_cast<uint32_t>(out.vars.size());
    std::vector<Value> reduced(out.arity);
    for (size_t i = 0; i < inner.NumRows(); ++i) {
      const Value* row = inner.RowVals(i);
      size_t k = 0;
      for (size_t j = 0; j < inner.arity; ++j) {
        if (j != root_idx) reduced[k++] = row[j];
      }
      out.OrCombine(reduced.data(), inner.probs[i]);
    }
    if (stats_ != nullptr) {
      stats_->intermediate_tuples += out.NumRows();
      ++stats_->independent_projects;
    }
    return out;
  }

 private:
  static std::vector<std::vector<const QueryAtom*>> Components(
      const std::vector<const QueryAtom*>& atoms, const std::set<std::string>& fixed) {
    std::vector<int> component(atoms.size(), -1);
    std::vector<std::vector<const QueryAtom*>> out;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (component[i] >= 0) continue;
      // BFS over atoms sharing non-fixed variables.
      std::vector<size_t> queue{i};
      component[i] = static_cast<int>(out.size());
      out.emplace_back();
      while (!queue.empty()) {
        size_t cur = queue.back();
        queue.pop_back();
        out.back().push_back(atoms[cur]);
        for (size_t j = 0; j < atoms.size(); ++j) {
          if (component[j] >= 0) continue;
          bool shares = false;
          for (const std::string& v : atoms[cur]->vars) {
            if (fixed.count(v)) continue;
            if (std::find(atoms[j]->vars.begin(), atoms[j]->vars.end(), v) !=
                atoms[j]->vars.end()) {
              shares = true;
              break;
            }
          }
          if (shares) {
            component[j] = component[i];
            queue.push_back(j);
          }
        }
      }
    }
    return out;
  }

  static std::optional<std::string> FindRootVariable(
      const std::vector<const QueryAtom*>& atoms, const std::set<std::string>& fixed) {
    for (const std::string& v : atoms[0]->vars) {
      if (fixed.count(v)) continue;
      bool in_all = true;
      for (const QueryAtom* atom : atoms) {
        if (std::find(atom->vars.begin(), atom->vars.end(), v) == atom->vars.end()) {
          in_all = false;
          break;
        }
      }
      if (in_all) return v;
    }
    return std::nullopt;
  }

  ProbRel NaturalJoin(const ProbRel& a, const ProbRel& b) {
    // Shared key variables.
    std::vector<uint32_t> a_shared, b_shared, b_extra;
    for (size_t j = 0; j < b.vars.size(); ++j) {
      auto it = std::find(a.vars.begin(), a.vars.end(), b.vars[j]);
      if (it != a.vars.end()) {
        a_shared.push_back(static_cast<uint32_t>(it - a.vars.begin()));
        b_shared.push_back(static_cast<uint32_t>(j));
      } else {
        b_extra.push_back(static_cast<uint32_t>(j));
      }
    }
    ProbRel out;
    out.vars = a.vars;
    for (uint32_t j : b_extra) out.vars.push_back(b.vars[j]);
    out.arity = static_cast<uint32_t>(out.vars.size());

    // Index b by the hash of its shared projection (row numbers only).
    HashRowIndex b_index(b.NumRows());
    for (size_t i = 0; i < b.NumRows(); ++i) {
      b_index.Insert(HashProjection(b.RowVals(i), b_shared),
                     static_cast<uint32_t>(i));
    }
    std::vector<Value> joined(out.arity);
    for (size_t i = 0; i < a.NumRows(); ++i) {
      const Value* arow = a.RowVals(i);
      b_index.ForEach(HashProjection(arow, a_shared), [&](uint32_t bi) {
        const Value* brow = b.RowVals(bi);
        for (size_t k = 0; k < a_shared.size(); ++k) {
          if (!arow[a_shared[k]].Equals(brow[b_shared[k]])) return true;
        }
        for (size_t k = 0; k < a.arity; ++k) joined[k] = arow[k];
        for (size_t k = 0; k < b_extra.size(); ++k) {
          joined[a.arity + k] = brow[b_extra[k]];
        }
        bool inserted = false;
        uint32_t idx = out.FindOrInsert(joined.data(), &inserted);
        out.probs[idx] = a.probs[i] * b.probs[bi];
        return true;
      });
    }
    if (stats_ != nullptr) stats_->intermediate_tuples += out.NumRows();
    return out;
  }

  const WorldTable& wt_;
  PlanStats* stats_;
};

// ---------------------------------------------------------------------------
// Lazy evaluation: materialize lineage, then one confidence pass
// ---------------------------------------------------------------------------

Result<LineageRel> MaterializeJoin(const ConjunctiveQuery& query, PlanStats* stats) {
  LineageRel acc;
  bool first = true;
  for (const QueryAtom& atom : query.atoms) {
    std::vector<std::string> atom_vars = DistinctVars(atom);
    if (first) {
      acc.vars = atom_vars;
      acc.arity = static_cast<uint32_t>(atom_vars.size());
      TuplePattern pattern = MakePattern(atom, atom_vars);
      std::vector<Value> binding(atom_vars.size());
      for (const Row& row : atom.relation->rows()) {
        if (!MatchTuple(pattern, row, binding.data())) continue;
        acc.values.insert(acc.values.end(), binding.begin(), binding.end());
        acc.conds.AppendCondition(row.condition);
      }
      first = false;
      if (stats != nullptr) stats->intermediate_tuples += acc.NumRows();
      continue;
    }
    // Hash join with the accumulated bindings on shared variables.
    std::vector<uint32_t> acc_shared, atom_shared, atom_extra;
    for (size_t j = 0; j < atom_vars.size(); ++j) {
      auto it = std::find(acc.vars.begin(), acc.vars.end(), atom_vars[j]);
      if (it != acc.vars.end()) {
        acc_shared.push_back(static_cast<uint32_t>(it - acc.vars.begin()));
        atom_shared.push_back(static_cast<uint32_t>(j));
      } else {
        atom_extra.push_back(static_cast<uint32_t>(j));
      }
    }
    // Flatten the atom's matching rows, indexed by shared-projection hash.
    std::vector<Value> atom_values;
    std::vector<const Condition*> atom_conds;
    HashRowIndex atom_index(atom.relation->NumRows());
    uint32_t atom_arity = static_cast<uint32_t>(atom_vars.size());
    TuplePattern pattern = MakePattern(atom, atom_vars);
    std::vector<Value> binding(atom_vars.size());
    for (const Row& row : atom.relation->rows()) {
      if (!MatchTuple(pattern, row, binding.data())) continue;
      uint32_t idx = static_cast<uint32_t>(atom_conds.size());
      uint64_t h = HashValueProjection(binding.data(), atom_shared.data(),
                                       atom_shared.size());
      atom_values.insert(atom_values.end(), binding.begin(), binding.end());
      atom_conds.push_back(&row.condition);
      atom_index.Insert(h, idx);
    }
    LineageRel next;
    next.vars = acc.vars;
    for (uint32_t j : atom_extra) next.vars.push_back(atom_vars[j]);
    next.arity = static_cast<uint32_t>(next.vars.size());
    for (size_t i = 0; i < acc.NumRows(); ++i) {
      const Value* arow = acc.RowVals(i);
      AtomSpan acond = acc.conds.Span(i);
      atom_index.ForEach(HashProjection(arow, acc_shared), [&](uint32_t bi) {
        const Value* brow =
            atom_values.data() + static_cast<size_t>(atom_arity) * bi;
        for (size_t k = 0; k < acc_shared.size(); ++k) {
          if (!arow[acc_shared[k]].Equals(brow[atom_shared[k]])) return true;
        }
        const std::vector<Atom>& batoms = atom_conds[bi]->atoms();
        // Merge conditions first: an inconsistent pair drops out before
        // any values are copied.
        if (!next.conds.AppendMerged(acond,
                                     AtomSpan{batoms.data(), batoms.size()})) {
          return true;
        }
        next.values.insert(next.values.end(), arow, arow + acc.arity);
        for (uint32_t j : atom_extra) next.values.push_back(brow[j]);
        return true;
      });
    }
    acc = std::move(next);
    if (stats != nullptr) stats->intermediate_tuples += acc.NumRows();
  }
  return acc;
}

}  // namespace

bool IsHierarchical(const ConjunctiveQuery& query) {
  // Collect, per non-head variable, the set of atoms using it.
  std::set<std::string> head(query.head.begin(), query.head.end());
  std::map<std::string, std::set<size_t>> atom_sets;
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    for (const std::string& v : query.atoms[i].vars) {
      if (!head.count(v)) atom_sets[v].insert(i);
    }
  }
  for (auto it1 = atom_sets.begin(); it1 != atom_sets.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != atom_sets.end(); ++it2) {
      const std::set<size_t>& a = it1->second;
      const std::set<size_t>& b = it2->second;
      std::vector<size_t> inter;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(inter));
      if (inter.empty()) continue;
      bool a_in_b = std::includes(b.begin(), b.end(), a.begin(), a.end());
      bool b_in_a = std::includes(a.begin(), a.end(), b.begin(), b.end());
      if (!a_in_b && !b_in_a) return false;
    }
  }
  return true;
}

Status ValidateQuery(const ConjunctiveQuery& query) {
  if (query.atoms.empty()) {
    return Status::InvalidArgument("conjunctive query has no atoms");
  }
  std::set<const Table*> seen;
  std::set<std::string> all_vars;
  for (const QueryAtom& atom : query.atoms) {
    if (atom.relation == nullptr) {
      return Status::InvalidArgument("query atom has no relation");
    }
    if (atom.vars.size() != atom.relation->schema().NumColumns()) {
      return Status::InvalidArgument(StringFormat(
          "atom over '%s' has %zu variables but the relation has %zu columns",
          atom.relation->name().c_str(), atom.vars.size(),
          atom.relation->schema().NumColumns()));
    }
    if (!seen.insert(atom.relation.get()).second) {
      return Status::InvalidArgument(
          "self-joins are not supported by SPROUT plans (the class of "
          "queries in [5] is conjunctive queries without self-joins)");
    }
    if (!IsTupleIndependent(*atom.relation)) {
      return Status::InvalidArgument(StringFormat(
          "relation '%s' is not tuple-independent", atom.relation->name().c_str()));
    }
    all_vars.insert(atom.vars.begin(), atom.vars.end());
  }
  for (const std::string& h : query.head) {
    if (!all_vars.count(h)) {
      return Status::InvalidArgument(
          StringFormat("head variable '%s' does not occur in any atom", h.c_str()));
    }
  }
  return Status::OK();
}

Result<std::vector<ResultTuple>> Evaluate(const ConjunctiveQuery& query,
                                          const WorldTable& wt, PlanStyle style,
                                          PlanStats* stats) {
  MAYBMS_RETURN_NOT_OK(ValidateQuery(query));

  if (style == PlanStyle::kEager) {
    if (!IsHierarchical(query)) {
      return Status::InvalidArgument(
          "query is not hierarchical: no eager safe plan exists");
    }
    EagerEvaluator evaluator(wt, stats);
    std::vector<const QueryAtom*> atoms;
    for (const QueryAtom& atom : query.atoms) atoms.push_back(&atom);
    std::set<std::string> fixed(query.head.begin(), query.head.end());
    MAYBMS_ASSIGN_OR_RETURN(ProbRel rel, evaluator.Eval(std::move(atoms), fixed));

    // Reorder keys into query.head order.
    std::vector<size_t> order;
    for (const std::string& h : query.head) {
      auto it = std::find(rel.vars.begin(), rel.vars.end(), h);
      if (it == rel.vars.end()) {
        return Status::Internal("head variable missing from eager plan output");
      }
      order.push_back(static_cast<size_t>(it - rel.vars.begin()));
    }
    std::vector<ResultTuple> out;
    out.reserve(rel.NumRows());
    for (size_t i = 0; i < rel.NumRows(); ++i) {
      const Value* row = rel.RowVals(i);
      ResultTuple t;
      for (size_t idx : order) t.head_values.push_back(row[idx]);
      t.probability = rel.probs[i];
      out.push_back(std::move(t));
    }
    return out;
  }

  // Lazy: materialize the join lineage, then evaluate per head group. The
  // lineage never leaves its packed condition column: each group's clause
  // rows compile straight into the exact solver's representation.
  MAYBMS_ASSIGN_OR_RETURN(LineageRel joined, MaterializeJoin(query, stats));
  std::vector<uint32_t> head_idx;
  for (const std::string& h : query.head) {
    auto it = std::find(joined.vars.begin(), joined.vars.end(), h);
    if (it == joined.vars.end()) {
      return Status::Internal("head variable missing from join output");
    }
    head_idx.push_back(static_cast<uint32_t>(it - joined.vars.begin()));
  }
  // Group rows by head projection (group-number index, first-seen order).
  HashRowIndex group_index;
  std::vector<std::vector<uint32_t>> groups;  // member row numbers
  for (size_t i = 0; i < joined.NumRows(); ++i) {
    const Value* row = joined.RowVals(i);
    uint64_t h = HashProjection(row, head_idx);
    uint32_t found = 0xffffffffu;
    group_index.ForEach(h, [&](uint32_t g) {
      const Value* rep = joined.RowVals(groups[g][0]);
      for (uint32_t idx : head_idx) {
        if (!row[idx].Equals(rep[idx])) return true;
      }
      found = g;
      return false;
    });
    if (found != 0xffffffffu) {
      groups[found].push_back(static_cast<uint32_t>(i));
    } else {
      group_index.Insert(h, static_cast<uint32_t>(groups.size()));
      groups.push_back({static_cast<uint32_t>(i)});
    }
  }
  std::vector<ResultTuple> out;
  out.reserve(groups.size());
  for (const std::vector<uint32_t>& members : groups) {
    if (stats != nullptr) stats->lineage_clauses += members.size();
    CompiledDnf compiled(joined.conds, members.data(), members.size(), wt);
    MAYBMS_ASSIGN_OR_RETURN(double p, ExactConfidence(std::move(compiled), wt));
    ResultTuple t;
    const Value* rep = joined.RowVals(members[0]);
    for (uint32_t idx : head_idx) t.head_values.push_back(rep[idx]);
    t.probability = p;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace sprout
}  // namespace maybms
