#include "src/sprout/safe_plan.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "src/common/str_util.h"
#include "src/conf/exact.h"
#include "src/lineage/dnf.h"
#include "src/sprout/tuple_independent.h"
#include "src/types/row.h"

namespace maybms {
namespace sprout {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const { return HashValues(v); }
};
struct VecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    return ValuesEqual(a, b);
  }
};

// A relation of key-value bindings with a probability per key (the output
// of eager aggregation operators).
struct ProbRel {
  std::vector<std::string> vars;
  std::unordered_map<std::vector<Value>, double, VecHash, VecEq> rows;
};

// A relation of bindings with lineage (lazy plans).
struct LineageRel {
  std::vector<std::string> vars;
  std::vector<std::pair<std::vector<Value>, Condition>> rows;
};

// Checks that a tuple matches an atom's variable pattern (repeated
// variables must hold equal values) and extracts the binding in
// first-occurrence variable order.
bool MatchTuple(const QueryAtom& atom, const Row& row,
                const std::vector<std::string>& out_vars,
                std::vector<Value>* out_values) {
  out_values->clear();
  out_values->resize(out_vars.size());
  std::vector<bool> bound(out_vars.size(), false);
  for (size_t i = 0; i < atom.vars.size(); ++i) {
    auto it = std::find(out_vars.begin(), out_vars.end(), atom.vars[i]);
    size_t idx = static_cast<size_t>(it - out_vars.begin());
    if (bound[idx]) {
      if (!(*out_values)[idx].Equals(row.values[i])) return false;
    } else {
      (*out_values)[idx] = row.values[i];
      bound[idx] = true;
    }
  }
  return true;
}

std::vector<std::string> DistinctVars(const QueryAtom& atom) {
  std::vector<std::string> vars;
  for (const std::string& v : atom.vars) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
  }
  return vars;
}

// ---------------------------------------------------------------------------
// Eager (safe-plan) evaluation
// ---------------------------------------------------------------------------

class EagerEvaluator {
 public:
  EagerEvaluator(const WorldTable& wt, PlanStats* stats) : wt_(wt), stats_(stats) {}

  Result<ProbRel> Eval(std::vector<const QueryAtom*> atoms,
                       std::set<std::string> fixed) {
    // Base case: a single subgoal. Project onto the fixed variables;
    // existential variables are eliminated by the independent-project
    // combination 1 − Π(1 − p) over the tuple-independent rows.
    if (atoms.size() == 1) {
      const QueryAtom& atom = *atoms[0];
      std::vector<std::string> all_vars = DistinctVars(atom);
      ProbRel out;
      for (const std::string& v : all_vars) {
        if (fixed.count(v)) out.vars.push_back(v);
      }
      std::vector<Value> binding;
      for (const Row& row : atom.relation->rows()) {
        if (!MatchTuple(atom, row, all_vars, &binding)) continue;
        std::vector<Value> key;
        key.reserve(out.vars.size());
        for (const std::string& v : out.vars) {
          size_t idx = static_cast<size_t>(
              std::find(all_vars.begin(), all_vars.end(), v) - all_vars.begin());
          key.push_back(binding[idx]);
        }
        double p = wt_.ConditionProb(row.condition);
        auto [it, inserted] = out.rows.try_emplace(std::move(key), 0.0);
        // Accumulate "probability that none matches" complement-wise.
        it->second = 1.0 - (1.0 - it->second) * (1.0 - p);
      }
      if (stats_ != nullptr) {
        stats_->intermediate_tuples += out.rows.size();
        ++stats_->independent_projects;
      }
      return out;
    }

    // Independent-join: split into components connected via non-fixed
    // variables; their probabilities multiply.
    std::vector<std::vector<const QueryAtom*>> components =
        Components(atoms, fixed);
    if (components.size() > 1) {
      if (stats_ != nullptr) ++stats_->independent_joins;
      MAYBMS_ASSIGN_OR_RETURN(ProbRel acc, Eval(components[0], fixed));
      for (size_t i = 1; i < components.size(); ++i) {
        MAYBMS_ASSIGN_OR_RETURN(ProbRel next, Eval(components[i], fixed));
        acc = NaturalJoin(acc, next);
      }
      return acc;
    }

    // Independent-project: find a root variable (a non-fixed variable
    // occurring in every atom), fix it, recurse, then project it away.
    std::optional<std::string> root = FindRootVariable(atoms, fixed);
    if (!root) {
      return Status::InvalidArgument(
          "query is not hierarchical: no safe plan exists (SPROUT eager "
          "plans require hierarchical queries)");
    }
    std::set<std::string> fixed2 = fixed;
    fixed2.insert(*root);
    MAYBMS_ASSIGN_OR_RETURN(ProbRel inner, Eval(std::move(atoms), std::move(fixed2)));

    // Group by the key without the root variable: 1 − Π(1 − p).
    size_t root_idx = static_cast<size_t>(
        std::find(inner.vars.begin(), inner.vars.end(), *root) - inner.vars.begin());
    ProbRel out;
    for (const std::string& v : inner.vars) {
      if (v != *root) out.vars.push_back(v);
    }
    for (const auto& [key, p] : inner.rows) {
      std::vector<Value> reduced;
      reduced.reserve(key.size() - 1);
      for (size_t i = 0; i < key.size(); ++i) {
        if (i != root_idx) reduced.push_back(key[i]);
      }
      auto [it, inserted] = out.rows.try_emplace(std::move(reduced), 0.0);
      it->second = 1.0 - (1.0 - it->second) * (1.0 - p);
    }
    if (stats_ != nullptr) {
      stats_->intermediate_tuples += out.rows.size();
      ++stats_->independent_projects;
    }
    return out;
  }

 private:
  static std::vector<std::vector<const QueryAtom*>> Components(
      const std::vector<const QueryAtom*>& atoms, const std::set<std::string>& fixed) {
    std::vector<int> component(atoms.size(), -1);
    std::vector<std::vector<const QueryAtom*>> out;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (component[i] >= 0) continue;
      // BFS over atoms sharing non-fixed variables.
      std::vector<size_t> queue{i};
      component[i] = static_cast<int>(out.size());
      out.emplace_back();
      while (!queue.empty()) {
        size_t cur = queue.back();
        queue.pop_back();
        out.back().push_back(atoms[cur]);
        for (size_t j = 0; j < atoms.size(); ++j) {
          if (component[j] >= 0) continue;
          bool shares = false;
          for (const std::string& v : atoms[cur]->vars) {
            if (fixed.count(v)) continue;
            if (std::find(atoms[j]->vars.begin(), atoms[j]->vars.end(), v) !=
                atoms[j]->vars.end()) {
              shares = true;
              break;
            }
          }
          if (shares) {
            component[j] = component[i];
            queue.push_back(j);
          }
        }
      }
    }
    return out;
  }

  static std::optional<std::string> FindRootVariable(
      const std::vector<const QueryAtom*>& atoms, const std::set<std::string>& fixed) {
    for (const std::string& v : atoms[0]->vars) {
      if (fixed.count(v)) continue;
      bool in_all = true;
      for (const QueryAtom* atom : atoms) {
        if (std::find(atom->vars.begin(), atom->vars.end(), v) == atom->vars.end()) {
          in_all = false;
          break;
        }
      }
      if (in_all) return v;
    }
    return std::nullopt;
  }

  ProbRel NaturalJoin(const ProbRel& a, const ProbRel& b) {
    // Shared key variables.
    std::vector<size_t> a_shared, b_shared, b_extra;
    for (size_t j = 0; j < b.vars.size(); ++j) {
      auto it = std::find(a.vars.begin(), a.vars.end(), b.vars[j]);
      if (it != a.vars.end()) {
        a_shared.push_back(static_cast<size_t>(it - a.vars.begin()));
        b_shared.push_back(j);
      } else {
        b_extra.push_back(j);
      }
    }
    ProbRel out;
    out.vars = a.vars;
    for (size_t j : b_extra) out.vars.push_back(b.vars[j]);

    // Hash the smaller input by its shared projection.
    std::unordered_map<std::vector<Value>,
                       std::vector<std::pair<const std::vector<Value>*, double>>,
                       VecHash, VecEq>
        index;
    for (const auto& [key, p] : b.rows) {
      std::vector<Value> proj;
      proj.reserve(b_shared.size());
      for (size_t j : b_shared) proj.push_back(key[j]);
      index[std::move(proj)].emplace_back(&key, p);
    }
    for (const auto& [key, p] : a.rows) {
      std::vector<Value> proj;
      proj.reserve(a_shared.size());
      for (size_t i : a_shared) proj.push_back(key[i]);
      auto it = index.find(proj);
      if (it == index.end()) continue;
      for (const auto& [bkey, bp] : it->second) {
        std::vector<Value> joined = key;
        for (size_t j : b_extra) joined.push_back((*bkey)[j]);
        out.rows[std::move(joined)] = p * bp;
      }
    }
    if (stats_ != nullptr) stats_->intermediate_tuples += out.rows.size();
    return out;
  }

  const WorldTable& wt_;
  PlanStats* stats_;
};

// ---------------------------------------------------------------------------
// Lazy evaluation: materialize lineage, then one confidence pass
// ---------------------------------------------------------------------------

Result<LineageRel> MaterializeJoin(const ConjunctiveQuery& query, PlanStats* stats) {
  LineageRel acc;
  bool first = true;
  for (const QueryAtom& atom : query.atoms) {
    std::vector<std::string> atom_vars = DistinctVars(atom);
    if (first) {
      acc.vars = atom_vars;
      std::vector<Value> binding;
      for (const Row& row : atom.relation->rows()) {
        if (!MatchTuple(atom, row, atom_vars, &binding)) continue;
        acc.rows.emplace_back(binding, row.condition);
      }
      first = false;
      if (stats != nullptr) stats->intermediate_tuples += acc.rows.size();
      continue;
    }
    // Hash join with the accumulated bindings on shared variables.
    std::vector<size_t> acc_shared, atom_shared, atom_extra;
    for (size_t j = 0; j < atom_vars.size(); ++j) {
      auto it = std::find(acc.vars.begin(), acc.vars.end(), atom_vars[j]);
      if (it != acc.vars.end()) {
        acc_shared.push_back(static_cast<size_t>(it - acc.vars.begin()));
        atom_shared.push_back(j);
      } else {
        atom_extra.push_back(j);
      }
    }
    std::unordered_map<std::vector<Value>,
                       std::vector<std::pair<std::vector<Value>, const Condition*>>,
                       VecHash, VecEq>
        index;
    std::vector<Value> binding;
    for (const Row& row : atom.relation->rows()) {
      if (!MatchTuple(atom, row, atom_vars, &binding)) continue;
      std::vector<Value> proj;
      proj.reserve(atom_shared.size());
      for (size_t j : atom_shared) proj.push_back(binding[j]);
      index[std::move(proj)].emplace_back(binding, &row.condition);
    }
    LineageRel next;
    next.vars = acc.vars;
    for (size_t j : atom_extra) next.vars.push_back(atom_vars[j]);
    for (const auto& [values, cond] : acc.rows) {
      std::vector<Value> proj;
      proj.reserve(acc_shared.size());
      for (size_t i : acc_shared) proj.push_back(values[i]);
      auto it = index.find(proj);
      if (it == index.end()) continue;
      for (const auto& [avalues, acond] : it->second) {
        std::optional<Condition> merged = Condition::Merge(cond, *acond);
        if (!merged) continue;
        std::vector<Value> joined = values;
        for (size_t j : atom_extra) joined.push_back(avalues[j]);
        next.rows.emplace_back(std::move(joined), std::move(*merged));
      }
    }
    acc = std::move(next);
    if (stats != nullptr) stats->intermediate_tuples += acc.rows.size();
  }
  return acc;
}

}  // namespace

bool IsHierarchical(const ConjunctiveQuery& query) {
  // Collect, per non-head variable, the set of atoms using it.
  std::set<std::string> head(query.head.begin(), query.head.end());
  std::map<std::string, std::set<size_t>> atom_sets;
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    for (const std::string& v : query.atoms[i].vars) {
      if (!head.count(v)) atom_sets[v].insert(i);
    }
  }
  for (auto it1 = atom_sets.begin(); it1 != atom_sets.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != atom_sets.end(); ++it2) {
      const std::set<size_t>& a = it1->second;
      const std::set<size_t>& b = it2->second;
      std::vector<size_t> inter;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(inter));
      if (inter.empty()) continue;
      bool a_in_b = std::includes(b.begin(), b.end(), a.begin(), a.end());
      bool b_in_a = std::includes(a.begin(), a.end(), b.begin(), b.end());
      if (!a_in_b && !b_in_a) return false;
    }
  }
  return true;
}

Status ValidateQuery(const ConjunctiveQuery& query) {
  if (query.atoms.empty()) {
    return Status::InvalidArgument("conjunctive query has no atoms");
  }
  std::set<const Table*> seen;
  std::set<std::string> all_vars;
  for (const QueryAtom& atom : query.atoms) {
    if (atom.relation == nullptr) {
      return Status::InvalidArgument("query atom has no relation");
    }
    if (atom.vars.size() != atom.relation->schema().NumColumns()) {
      return Status::InvalidArgument(StringFormat(
          "atom over '%s' has %zu variables but the relation has %zu columns",
          atom.relation->name().c_str(), atom.vars.size(),
          atom.relation->schema().NumColumns()));
    }
    if (!seen.insert(atom.relation.get()).second) {
      return Status::InvalidArgument(
          "self-joins are not supported by SPROUT plans (the class of "
          "queries in [5] is conjunctive queries without self-joins)");
    }
    if (!IsTupleIndependent(*atom.relation)) {
      return Status::InvalidArgument(StringFormat(
          "relation '%s' is not tuple-independent", atom.relation->name().c_str()));
    }
    all_vars.insert(atom.vars.begin(), atom.vars.end());
  }
  for (const std::string& h : query.head) {
    if (!all_vars.count(h)) {
      return Status::InvalidArgument(
          StringFormat("head variable '%s' does not occur in any atom", h.c_str()));
    }
  }
  return Status::OK();
}

Result<std::vector<ResultTuple>> Evaluate(const ConjunctiveQuery& query,
                                          const WorldTable& wt, PlanStyle style,
                                          PlanStats* stats) {
  MAYBMS_RETURN_NOT_OK(ValidateQuery(query));

  if (style == PlanStyle::kEager) {
    if (!IsHierarchical(query)) {
      return Status::InvalidArgument(
          "query is not hierarchical: no eager safe plan exists");
    }
    EagerEvaluator evaluator(wt, stats);
    std::vector<const QueryAtom*> atoms;
    for (const QueryAtom& atom : query.atoms) atoms.push_back(&atom);
    std::set<std::string> fixed(query.head.begin(), query.head.end());
    MAYBMS_ASSIGN_OR_RETURN(ProbRel rel, evaluator.Eval(std::move(atoms), fixed));

    // Reorder keys into query.head order.
    std::vector<size_t> order;
    for (const std::string& h : query.head) {
      auto it = std::find(rel.vars.begin(), rel.vars.end(), h);
      if (it == rel.vars.end()) {
        return Status::Internal("head variable missing from eager plan output");
      }
      order.push_back(static_cast<size_t>(it - rel.vars.begin()));
    }
    std::vector<ResultTuple> out;
    out.reserve(rel.rows.size());
    for (const auto& [key, p] : rel.rows) {
      ResultTuple t;
      for (size_t idx : order) t.head_values.push_back(key[idx]);
      t.probability = p;
      out.push_back(std::move(t));
    }
    return out;
  }

  // Lazy: materialize the join lineage, then evaluate per head group.
  MAYBMS_ASSIGN_OR_RETURN(LineageRel joined, MaterializeJoin(query, stats));
  std::vector<size_t> head_idx;
  for (const std::string& h : query.head) {
    auto it = std::find(joined.vars.begin(), joined.vars.end(), h);
    if (it == joined.vars.end()) {
      return Status::Internal("head variable missing from join output");
    }
    head_idx.push_back(static_cast<size_t>(it - joined.vars.begin()));
  }
  std::unordered_map<std::vector<Value>, Dnf, VecHash, VecEq> groups;
  for (const auto& [values, cond] : joined.rows) {
    std::vector<Value> key;
    key.reserve(head_idx.size());
    for (size_t i : head_idx) key.push_back(values[i]);
    groups[std::move(key)].AddClause(cond);
  }
  std::vector<ResultTuple> out;
  out.reserve(groups.size());
  for (auto& [key, dnf] : groups) {
    if (stats != nullptr) stats->lineage_clauses += dnf.NumClauses();
    MAYBMS_ASSIGN_OR_RETURN(double p, ExactConfidence(dnf, wt));
    ResultTuple t;
    t.head_values = key;
    t.probability = p;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace sprout
}  // namespace maybms
