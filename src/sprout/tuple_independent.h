// Tuple-independent probabilistic relations: every tuple is present
// independently with its own probability — the input class of SPROUT
// (paper §2.3, citing Olteanu/Huang/Koch, ICDE'09).
#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/prob/world_table.h"
#include "src/storage/table.h"

namespace maybms {

/// True iff every row of the table either is certain or carries exactly
/// one condition atom over a variable private to that row (within the
/// table): the tuple-independence test.
bool IsTupleIndependent(const Table& table);

/// Builds a tuple-independent U-relation: each (values, p) entry becomes a
/// row present with probability p via a fresh Boolean variable (p = 1 rows
/// are stored as certain).
Result<TablePtr> MakeTupleIndependentTable(
    const std::string& name, const Schema& schema,
    const std::vector<std::pair<std::vector<Value>, double>>& rows, WorldTable* wt);

}  // namespace maybms
