// Secondary-index registry and maintenance: named single-column B+ tree
// indexes over catalog tables.
//
// Maintenance model (honest about what is incremental):
//   - CREATE INDEX builds eagerly (the creating statement holds the
//     catalog lock).
//   - INSERT maintains incrementally: the executor calls NotifyAppend
//     after appending rows, and an index that was current before the
//     statement absorbs just the appended keys (streaming ingest never
//     rebuilds).
//   - UPDATE / DELETE / world pruning / bulk rewrites simply advance the
//     table's version; the index notices the mismatch on its next lookup
//     and rebuilds from scratch. Chunk versions cannot distinguish "append
//     extended the tail chunk" from "UPDATE rewrote a row in it", so a
//     partial re-index on that signal could silently miss updates — the
//     rebuild is the correct (and still lazy) answer.
// Every lookup therefore sees exactly the rows of the table version the
// running statement locked: answers are bit-identical with indexes on or
// off.
//
// Trees live in pages of a MemPageStore behind a per-index BufferPool
// (src/storage/page.h), so the same node/split/scan code serves the
// file-backed trees of bench_paged_storage.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/index/bplus_tree.h"
#include "src/storage/table.h"

namespace maybms {

class MetricsRegistry;  // src/obs/metrics.h

/// Definition of one secondary index (also what binary persistence saves).
struct IndexDef {
  std::string name;
  std::string table;     ///< table name as registered in the catalog
  std::string column;    ///< indexed column name
  size_t column_idx = 0; ///< resolved position in the table schema
};

/// One single-column B+ tree index. Null column values are not indexed
/// (SQL comparisons never select them; the IndexScan contract is a
/// candidate superset of the rows matching a non-null-literal predicate).
/// Thread-safe: a mutex serializes lookups and maintenance per index —
/// concurrent readers of one table may race to refresh the same index.
class SecondaryIndex {
 public:
  explicit SecondaryIndex(IndexDef def) : def_(std::move(def)) {}

  const IndexDef& def() const { return def_; }

  /// Ensures the index matches `table`'s current version (building or
  /// rebuilding if not), then collects the row ids whose key lies in
  /// [lo, hi] (unset = unbounded; boundary inclusivity is resolved by the
  /// caller's re-check, see BPlusTree::Scan). Ids are returned ASCENDING —
  /// table order — so an IndexScan emits rows in SeqScan order.
  /// `metrics` (nullable) receives index.* and bufpool.* counter deltas.
  Status Lookup(const Table& table, const std::optional<Value>& lo,
                const std::optional<Value>& hi, std::vector<uint64_t>* out,
                MetricsRegistry* metrics = nullptr);

  /// Eager append maintenance: the executor calls this after appending
  /// rows [first_row, table.NumRows()) under the table's exclusive lock.
  /// `pre_version` is table.version() before the appends; an index that
  /// was current at that version absorbs the new keys, anything else stays
  /// stale for the next lookup's rebuild.
  Status NotifyAppend(const Table& table, size_t first_row,
                      uint64_t pre_version, MetricsRegistry* metrics = nullptr);

  /// Builds now if stale (CREATE INDEX eager build).
  Status EnsureBuilt(const Table& table, MetricsRegistry* metrics = nullptr);

  /// Observability snapshot (SHOW INDEXES, \d).
  struct Stats {
    bool built = false;
    size_t entries = 0;
    size_t height = 0;
    uint64_t lookups = 0;
    uint64_t rebuilds = 0;
    uint64_t appended_rows = 0;
  };
  Stats stats() const;

 private:
  /// Rebuild / incremental checks with mu_ held.
  Status RefreshLocked(const Table& table, MetricsRegistry* metrics);
  Status BuildLocked(const Table& table);
  void FoldPoolDelta(const BufferPoolStats& before, MetricsRegistry* metrics);

  const IndexDef def_;
  mutable std::mutex mu_;
  std::unique_ptr<MemPageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  std::optional<BPlusTree> tree_;
  bool built_ = false;
  uint64_t built_version_ = 0;
  uint64_t lookups_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t appended_rows_ = 0;
};

using SecondaryIndexPtr = std::shared_ptr<SecondaryIndex>;

/// Name → index registry, owned by the Catalog. Structure changes (CREATE
/// / DROP INDEX, DROP TABLE) run under the catalog-exclusive statement
/// lock; the internal mutex additionally makes concurrent readers safe.
/// Index names are case-insensitive like table names.
class IndexManager {
 public:
  /// Validates the column, registers the index, and (when `build_now`)
  /// builds it eagerly. Errors if the name exists.
  Result<SecondaryIndexPtr> CreateIndex(const std::string& name,
                                        const TablePtr& table,
                                        const std::string& column,
                                        bool build_now = true,
                                        MetricsRegistry* metrics = nullptr);

  /// Drops by name; with `if_exists` a missing index is OK.
  Status DropIndex(const std::string& name, bool if_exists);

  /// Drops every index of `table_name` (DROP TABLE cleanup).
  void DropTableIndexes(const std::string& table_name);

  SecondaryIndexPtr Find(const std::string& name) const;

  /// The index on (table, column position), or null. At most the first in
  /// name order when several cover the same column (deterministic).
  SecondaryIndexPtr FindOn(const std::string& table_name,
                           size_t column_idx) const;

  /// All indexes of one table (append maintenance fan-out).
  std::vector<SecondaryIndexPtr> IndexesOn(const std::string& table_name) const;

  /// Every definition, sorted by (lower-cased) name — SHOW INDEXES and
  /// binary persistence.
  std::vector<IndexDef> ListDefs() const;

  size_t NumIndexes() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, SecondaryIndexPtr> indexes_;  // key: lower-cased name
};

}  // namespace maybms
