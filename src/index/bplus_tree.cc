#include "src/index/bplus_tree.h"

#include <cstring>

#include "src/common/str_util.h"

namespace maybms {

namespace {

// Node page layout on top of Page's 12-byte user area:
//   user[0]      1 = leaf, 0 = internal
//   user[4..8)   leaf: next-leaf page id (kInvalidPageId at the end)
//   user[8..12)  internal: leftmost child page id
// Leaf records:     encoded key + 8-byte row id (LE)
// Internal records: encoded key + 4-byte child page id (LE)

bool IsLeaf(const Page& p) { return p.user()[0] == 1; }
void SetLeaf(Page* p, bool leaf) { p->user()[0] = leaf ? 1 : 0; }

PageId NextLeaf(const Page& p) {
  PageId id;
  std::memcpy(&id, p.user() + 4, 4);
  return id;
}
void SetNextLeaf(Page* p, PageId id) { std::memcpy(p->user() + 4, &id, 4); }

PageId LeftmostChild(const Page& p) {
  PageId id;
  std::memcpy(&id, p.user() + 8, 4);
  return id;
}
void SetLeftmostChild(Page* p, PageId id) {
  std::memcpy(p->user() + 8, &id, 4);
}

std::string_view LeafKey(std::string_view record) {
  return record.substr(0, record.size() - 8);
}
uint64_t LeafRowId(std::string_view record) {
  uint64_t id;
  std::memcpy(&id, record.data() + record.size() - 8, 8);
  return id;
}
std::string_view InternalKey(std::string_view record) {
  return record.substr(0, record.size() - 4);
}
PageId InternalChild(std::string_view record) {
  PageId id;
  std::memcpy(&id, record.data() + record.size() - 4, 4);
  return id;
}

int CompareEncoded(std::string_view a, std::string_view b) {
  return BPlusTree::DecodeKey(a).Compare(BPlusTree::DecodeKey(b));
}

/// First slot whose key compares >= `key` (lower bound) or > `key` (upper
/// bound) under the node's key extractor.
template <typename KeyFn>
uint16_t LowerBound(const Page& p, std::string_view key, KeyFn key_of) {
  uint16_t lo = 0, hi = p.NumSlots();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (CompareEncoded(key_of(p.Record(mid)), key) < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

template <typename KeyFn>
uint16_t UpperBound(const Page& p, std::string_view key, KeyFn key_of) {
  uint16_t lo = 0, hi = p.NumSlots();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (CompareEncoded(key_of(p.Record(mid)), key) <= 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child to descend into for `key`: the child of the last entry whose key
/// satisfies the comparison (`strict` = keys < key, for scans seeking the
/// FIRST occurrence; non-strict = keys <= key, for inserts appending after
/// duplicates), or the leftmost child when no entry qualifies.
PageId ChildFor(const Page& p, std::string_view key, bool strict) {
  const uint16_t idx = strict ? LowerBound(p, key, InternalKey)
                              : UpperBound(p, key, InternalKey);
  if (idx == 0) return LeftmostChild(p);
  return InternalChild(p.Record(static_cast<uint16_t>(idx - 1)));
}

}  // namespace

std::string BPlusTree::EncodeKey(const Value& key) {
  std::string out;
  out.push_back(static_cast<char>(key.type()));
  switch (key.type()) {
    case TypeId::kNull:
      break;  // callers never index nulls; encoded defensively as tag-only
    case TypeId::kBool: {
      out.push_back(key.AsBool() ? 1 : 0);
      break;
    }
    case TypeId::kInt: {
      int64_t v = key.AsInt();
      out.append(reinterpret_cast<const char*>(&v), 8);
      break;
    }
    case TypeId::kDouble: {
      double v = key.AsDouble();
      out.append(reinterpret_cast<const char*>(&v), 8);
      break;
    }
    case TypeId::kString: {
      const std::string& s = key.AsString();
      out.append(s, 0, kMaxKeyBytes - 1);  // monotone truncation
      break;
    }
  }
  return out;
}

Value BPlusTree::DecodeKey(std::string_view bytes) {
  const TypeId tag = static_cast<TypeId>(bytes[0]);
  switch (tag) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool:
      return Value::Bool(bytes[1] != 0);
    case TypeId::kInt: {
      int64_t v;
      std::memcpy(&v, bytes.data() + 1, 8);
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      double v;
      std::memcpy(&v, bytes.data() + 1, 8);
      return Value::Double(v);
    }
    case TypeId::kString:
      return Value::String(std::string(bytes.substr(1)));
  }
  return Value::Null();
}

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  MAYBMS_ASSIGN_OR_RETURN(PageRef root, pool->New());
  root.page()->Init();
  SetLeaf(root.page(), true);
  SetNextLeaf(root.page(), kInvalidPageId);
  root.MarkDirty();
  return BPlusTree(pool, root.id(), /*height=*/1, /*entries=*/0);
}

Result<BPlusTree> BPlusTree::Open(BufferPool* pool, PageId root) {
  // Height from the leftmost descent; entry count is unknown for reopened
  // trees (counting would scan every leaf, defeating cold-lookup tests).
  size_t height = 1;
  PageId node = root;
  for (;;) {
    MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool->Fetch(node));
    if (IsLeaf(*ref.page())) break;
    node = LeftmostChild(*ref.page());
    ++height;
  }
  return BPlusTree(pool, root, height, /*entries=*/0);
}

Status BPlusTree::Insert(const Value& key, uint64_t row_id) {
  if (key.is_null()) {
    return Status::InvalidArgument("B+ tree keys must be non-null");
  }
  const std::string encoded = EncodeKey(key);
  MAYBMS_ASSIGN_OR_RETURN(std::optional<Split> split,
                          InsertInto(root_, encoded, row_id));
  if (split.has_value()) {
    // Root split: the tree grows a level.
    MAYBMS_ASSIGN_OR_RETURN(PageRef new_root, pool_->New());
    new_root.page()->Init();
    SetLeaf(new_root.page(), false);
    SetLeftmostChild(new_root.page(), root_);
    std::string rec = split->key;
    rec.append(reinterpret_cast<const char*>(&split->right), 4);
    if (!new_root.page()->AppendRecord(rec)) {
      return Status::Internal("B+ tree root record does not fit a fresh page");
    }
    new_root.MarkDirty();
    root_ = new_root.id();
    ++height_;
  }
  ++entries_;
  return Status::OK();
}

Result<std::optional<BPlusTree::Split>> BPlusTree::InsertInto(
    PageId node, const std::string& key, uint64_t row_id) {
  MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(node));
  Page* p = ref.page();

  if (!IsLeaf(*p)) {
    const PageId child = ChildFor(*p, key, /*strict=*/false);
    // Recurse with the parent still pinned: pins per insert are bounded by
    // the tree height, well under any pool capacity used here.
    MAYBMS_ASSIGN_OR_RETURN(std::optional<Split> child_split,
                            InsertInto(child, key, row_id));
    if (!child_split.has_value()) return std::optional<Split>();

    std::string rec = child_split->key;
    rec.append(reinterpret_cast<const char*>(&child_split->right), 4);
    const uint16_t pos = UpperBound(*p, child_split->key, InternalKey);
    if (p->InsertRecordAt(pos, rec)) {
      ref.MarkDirty();
      return std::optional<Split>();
    }

    // Internal split: the middle entry's key moves up, its child becomes
    // the right node's leftmost.
    std::vector<std::string> entries;
    entries.reserve(p->NumSlots() + 1);
    for (uint16_t i = 0; i < p->NumSlots(); ++i) {
      entries.emplace_back(p->Record(i));
    }
    entries.insert(entries.begin() + pos, rec);
    const size_t mid = entries.size() / 2;

    MAYBMS_ASSIGN_OR_RETURN(PageRef right, pool_->New());
    right.page()->Init();
    SetLeaf(right.page(), false);
    SetLeftmostChild(right.page(), InternalChild(entries[mid]));
    for (size_t i = mid + 1; i < entries.size(); ++i) {
      if (!right.page()->AppendRecord(entries[i])) {
        return Status::Internal("B+ tree internal split overflowed");
      }
    }
    right.MarkDirty();

    const PageId leftmost = LeftmostChild(*p);
    p->Init();
    SetLeaf(p, false);
    SetLeftmostChild(p, leftmost);
    for (size_t i = 0; i < mid; ++i) {
      if (!p->AppendRecord(entries[i])) {
        return Status::Internal("B+ tree internal split overflowed");
      }
    }
    ref.MarkDirty();
    return std::optional<Split>(
        Split{std::string(InternalKey(entries[mid])), right.id()});
  }

  // Leaf: insert after any duplicates of the key.
  std::string rec = key;
  rec.append(reinterpret_cast<const char*>(&row_id), 8);
  const uint16_t pos = UpperBound(*p, key, LeafKey);
  if (p->InsertRecordAt(pos, rec)) {
    ref.MarkDirty();
    return std::optional<Split>();
  }

  // Leaf split: upper half moves to a new right sibling.
  std::vector<std::string> records;
  records.reserve(p->NumSlots() + 1);
  for (uint16_t i = 0; i < p->NumSlots(); ++i) {
    records.emplace_back(p->Record(i));
  }
  records.insert(records.begin() + pos, rec);
  const size_t mid = records.size() / 2;

  MAYBMS_ASSIGN_OR_RETURN(PageRef right, pool_->New());
  right.page()->Init();
  SetLeaf(right.page(), true);
  SetNextLeaf(right.page(), NextLeaf(*p));
  for (size_t i = mid; i < records.size(); ++i) {
    if (!right.page()->AppendRecord(records[i])) {
      return Status::Internal("B+ tree leaf split overflowed");
    }
  }
  right.MarkDirty();

  p->Init();
  SetLeaf(p, true);
  SetNextLeaf(p, right.id());
  for (size_t i = 0; i < mid; ++i) {
    if (!p->AppendRecord(records[i])) {
      return Status::Internal("B+ tree leaf split overflowed");
    }
  }
  ref.MarkDirty();
  return std::optional<Split>(
      Split{std::string(LeafKey(records[mid])), right.id()});
}

Status BPlusTree::Scan(const std::optional<Value>& lo, bool lo_inclusive,
                       const std::optional<Value>& hi, bool hi_inclusive,
                       std::vector<uint64_t>* out) const {
  // The tree collects the CLOSED interval [lo, hi] regardless of the
  // inclusivity flags: boundary rows are a superset the caller's filter
  // predicate re-checks (and with truncated string keys, excluding an
  // "equal" boundary could drop a true strict match).
  (void)lo_inclusive;
  (void)hi_inclusive;
  const std::string lo_enc = lo.has_value() ? EncodeKey(*lo) : std::string();
  const std::string hi_enc = hi.has_value() ? EncodeKey(*hi) : std::string();

  PageId node = root_;
  for (;;) {
    MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(node));
    if (IsLeaf(*ref.page())) break;
    node = lo.has_value() ? ChildFor(*ref.page(), lo_enc, /*strict=*/true)
                          : LeftmostChild(*ref.page());
  }

  while (node != kInvalidPageId) {
    MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(node));
    const Page& p = *ref.page();
    for (uint16_t i = 0; i < p.NumSlots(); ++i) {
      const std::string_view rec = p.Record(i);
      const std::string_view key = LeafKey(rec);
      if (lo.has_value() && CompareEncoded(key, lo_enc) < 0) continue;
      if (hi.has_value() && CompareEncoded(key, hi_enc) > 0) return Status::OK();
      out->push_back(LeafRowId(rec));
    }
    node = NextLeaf(p);
  }
  return Status::OK();
}

}  // namespace maybms
