#include "src/index/index_manager.h"

#include <algorithm>

#include "src/common/str_util.h"
#include "src/obs/metrics.h"

namespace maybms {

namespace {

/// Frames per live-index buffer pool: 8 MiB of 8 KiB pages. Live indexes
/// sit entirely in memory either way (MemPageStore); the pool in front
/// keeps the access path identical to the file-backed trees.
constexpr size_t kLiveIndexPoolFrames = 1024;

}  // namespace

// ---------------------------------------------------------------------------
// SecondaryIndex
// ---------------------------------------------------------------------------

void SecondaryIndex::FoldPoolDelta(const BufferPoolStats& before,
                                   MetricsRegistry* metrics) {
  if (metrics == nullptr || pool_ == nullptr) return;
  const BufferPoolStats now = pool_->stats();
  metrics->Add(Counter::kBufferPoolHits, now.hits - before.hits);
  metrics->Add(Counter::kBufferPoolMisses, now.misses - before.misses);
  metrics->Add(Counter::kBufferPoolEvictions, now.evictions - before.evictions);
  metrics->Add(Counter::kBufferPoolWritebacks,
               now.writebacks - before.writebacks);
}

Status SecondaryIndex::BuildLocked(const Table& table) {
  store_ = std::make_unique<MemPageStore>();
  pool_ = std::make_unique<BufferPool>(store_.get(), kLiveIndexPoolFrames);
  MAYBMS_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool_.get()));
  tree_.emplace(std::move(tree));
  const std::vector<Row>& rows = table.rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& key = rows[i].values[def_.column_idx];
    if (key.is_null()) continue;
    MAYBMS_RETURN_NOT_OK(tree_->Insert(key, i));
  }
  built_ = true;
  built_version_ = table.version();
  ++rebuilds_;
  return Status::OK();
}

Status SecondaryIndex::RefreshLocked(const Table& table,
                                     MetricsRegistry* metrics) {
  if (built_ && built_version_ == table.version()) return Status::OK();
  const BufferPoolStats before =
      pool_ != nullptr ? pool_->stats() : BufferPoolStats{};
  MAYBMS_RETURN_NOT_OK(BuildLocked(table));
  if (metrics != nullptr) metrics->Add(Counter::kIndexRebuilds);
  FoldPoolDelta(before, metrics);
  return Status::OK();
}

Status SecondaryIndex::Lookup(const Table& table, const std::optional<Value>& lo,
                              const std::optional<Value>& hi,
                              std::vector<uint64_t>* out,
                              MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  MAYBMS_RETURN_NOT_OK(RefreshLocked(table, metrics));
  const BufferPoolStats before = pool_->stats();
  MAYBMS_RETURN_NOT_OK(tree_->Scan(lo, /*lo_inclusive=*/true, hi,
                                   /*hi_inclusive=*/true, out));
  // The tree yields key order; IndexScan must emit TABLE order so its
  // output is bit-identical to the SeqScan the optimizer replaced.
  std::sort(out->begin(), out->end());
  ++lookups_;
  if (metrics != nullptr) {
    metrics->Add(Counter::kIndexLookups);
    metrics->Add(Counter::kIndexScanRows, out->size());
  }
  FoldPoolDelta(before, metrics);
  return Status::OK();
}

Status SecondaryIndex::NotifyAppend(const Table& table, size_t first_row,
                                    uint64_t pre_version,
                                    MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  // Only an index that was current going into the statement can absorb
  // the appends; a stale one stays stale (lazily rebuilt on next lookup).
  if (!built_ || built_version_ != pre_version) return Status::OK();
  const BufferPoolStats before = pool_->stats();
  const std::vector<Row>& rows = table.rows();
  for (size_t i = first_row; i < rows.size(); ++i) {
    const Value& key = rows[i].values[def_.column_idx];
    if (key.is_null()) continue;
    MAYBMS_RETURN_NOT_OK(tree_->Insert(key, i));
  }
  built_version_ = table.version();
  appended_rows_ += rows.size() - first_row;
  if (metrics != nullptr) {
    metrics->Add(Counter::kIndexAppendedRows, rows.size() - first_row);
  }
  FoldPoolDelta(before, metrics);
  return Status::OK();
}

Status SecondaryIndex::EnsureBuilt(const Table& table,
                                   MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  return RefreshLocked(table, metrics);
}

SecondaryIndex::Stats SecondaryIndex::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.built = built_;
  s.entries = tree_.has_value() ? tree_->num_entries() : 0;
  s.height = tree_.has_value() ? tree_->height() : 0;
  s.lookups = lookups_;
  s.rebuilds = rebuilds_;
  s.appended_rows = appended_rows_;
  return s;
}

// ---------------------------------------------------------------------------
// IndexManager
// ---------------------------------------------------------------------------

Result<SecondaryIndexPtr> IndexManager::CreateIndex(const std::string& name,
                                                    const TablePtr& table,
                                                    const std::string& column,
                                                    bool build_now,
                                                    MetricsRegistry* metrics) {
  MAYBMS_ASSIGN_OR_RETURN(size_t col_idx, table->schema().GetColumnIndex(column));
  const std::string key = ToLower(name);
  std::unique_lock<std::mutex> lock(mu_);
  if (indexes_.count(key)) {
    return Status::AlreadyExists(
        StringFormat("index '%s' already exists", name.c_str()));
  }
  IndexDef def;
  def.name = name;
  def.table = table->name();
  def.column = table->schema().column(col_idx).name;
  def.column_idx = col_idx;
  auto index = std::make_shared<SecondaryIndex>(std::move(def));
  indexes_[key] = index;
  lock.unlock();
  if (build_now) {
    MAYBMS_RETURN_NOT_OK(index->EnsureBuilt(*table, metrics));
  }
  return index;
}

Status IndexManager::DropIndex(const std::string& name, bool if_exists) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(ToLower(name));
  if (it == indexes_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound(
        StringFormat("index '%s' does not exist", name.c_str()));
  }
  indexes_.erase(it);
  return Status::OK();
}

void IndexManager::DropTableIndexes(const std::string& table_name) {
  const std::string table_key = ToLower(table_name);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (ToLower(it->second->def().table) == table_key) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
}

SecondaryIndexPtr IndexManager::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(ToLower(name));
  return it == indexes_.end() ? nullptr : it->second;
}

SecondaryIndexPtr IndexManager::FindOn(const std::string& table_name,
                                       size_t column_idx) const {
  const std::string table_key = ToLower(table_name);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, index] : indexes_) {
    if (index->def().column_idx == column_idx &&
        ToLower(index->def().table) == table_key) {
      return index;
    }
  }
  return nullptr;
}

std::vector<SecondaryIndexPtr> IndexManager::IndexesOn(
    const std::string& table_name) const {
  const std::string table_key = ToLower(table_name);
  std::vector<SecondaryIndexPtr> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, index] : indexes_) {
    if (ToLower(index->def().table) == table_key) out.push_back(index);
  }
  return out;
}

std::vector<IndexDef> IndexManager::ListDefs() const {
  std::vector<IndexDef> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(indexes_.size());
  for (const auto& [key, index] : indexes_) out.push_back(index->def());
  return out;
}

size_t IndexManager::NumIndexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.size();
}

}  // namespace maybms
