// A B+ tree over buffer-pool pages: the secondary-index structure mapping
// column values to row ids.
//
// MayBMS runs inside PostgreSQL and indexes U-relations with ordinary
// B-trees (paper §2.3-§2.4: "U-relations are represented relationally",
// so "standard indexes apply"). Here the tree's nodes are slotted pages
// (src/storage/page.h) fetched through a BufferPool, so the same structure
// serves live in-memory indexes (MemPageStore) and file-backed trees that
// exceed the pool (FilePageStore) — the latter is what bench_paged_storage
// measures: a cold point lookup touches height()+1 pages instead of the
// whole heap.
//
// Keys are single column Values in a tagged binary encoding; duplicates
// are allowed (secondary index: many rows share a key). String keys are
// TRUNCATED to kMaxKeyBytes — truncation is monotone, so range scans over
// truncated keys return a SUPERSET of the true matches, which is exactly
// the contract the IndexScan operator needs (the original filter predicate
// re-checks every candidate row; see src/opt/optimizer.cc).
//
// Not thread-safe: callers serialize per tree (SecondaryIndex holds a
// mutex; the bench and persistence are single-threaded).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/storage/page.h"
#include "src/types/value.h"

namespace maybms {

class BPlusTree {
 public:
  /// Longest encoded key stored in a node (tag byte included); longer
  /// string keys are truncated (see the superset contract above).
  static constexpr size_t kMaxKeyBytes = 256;

  /// Creates an empty tree: allocates a root leaf in `pool`'s store.
  static Result<BPlusTree> Create(BufferPool* pool);

  /// Opens an existing tree rooted at `root` (e.g. after reopening a
  /// file-backed store); derives height by descending the leftmost path.
  static Result<BPlusTree> Open(BufferPool* pool, PageId root);

  /// Inserts one (key, row id) entry. Null keys are the caller's problem:
  /// secondary indexes skip null column values entirely (SQL comparisons
  /// never select them), so inserting a null key here is an error.
  Status Insert(const Value& key, uint64_t row_id);

  /// Appends every row id whose key lies within the given bounds to *out
  /// (an unset bound is unbounded on that side). Ids arrive in key order,
  /// NOT row order — callers that need row order sort afterwards. May
  /// return a superset for truncated string keys; never misses a match.
  Status Scan(const std::optional<Value>& lo, bool lo_inclusive,
              const std::optional<Value>& hi, bool hi_inclusive,
              std::vector<uint64_t>* out) const;

  PageId root() const { return root_; }
  /// Levels from root to leaf inclusive (1 = the root is a leaf). This is
  /// the page-fetch cost of a point lookup, which is what the optimizer's
  /// access-path cost model charges.
  size_t height() const { return height_; }
  size_t num_entries() const { return entries_; }

  /// Encodes a key for node storage (exposed for tests).
  static std::string EncodeKey(const Value& key);
  /// Decodes an encoded key back to a Value (string keys possibly
  /// truncated).
  static Value DecodeKey(std::string_view bytes);

 private:
  BPlusTree(BufferPool* pool, PageId root, size_t height, size_t entries)
      : pool_(pool), root_(root), height_(height), entries_(entries) {}

  struct Split {
    std::string key;  ///< separator key to push into the parent
    PageId right = kInvalidPageId;
  };

  /// Inserts into the subtree at `node`; on node overflow returns the
  /// split the caller must record in the parent.
  Result<std::optional<Split>> InsertInto(PageId node, const std::string& key,
                                          uint64_t row_id);

  BufferPool* pool_;
  PageId root_;
  size_t height_;
  size_t entries_;
};

}  // namespace maybms
