// A thin multi-session server front end over one SessionManager: a line
// protocol on a local (AF_UNIX) stream socket, one Session per
// connection. This is the repo's stand-in for the original system's
// PostgreSQL server process (paper §2.3-§2.4: MayBMS is "a complete DBMS"
// — concurrent clients over one probabilistic database); all isolation
// semantics live in src/engine/session.h, the server only moves bytes.
//
// Protocol (text, newline-framed, one request per line):
//
//   request  := one line; embedded newlines in the SQL must be flattened
//               by the client (Client::Request does).
//               Either a SQL statement (EXPLAIN [ANALYZE] and SHOW STATS
//               included — they are ordinary statements), or a
//               meta-command:
//                 \seed <n>       reseed this session's aconf RNG
//                 \d              database summary (server-rendered)
//                 \d <table>      describe one table
//                 \explain <sql>  bound logical plan (without executing;
//                                 same as the EXPLAIN statement)
//                 \stats [pat]    shared metrics snapshot (optionally
//                                 LIKE-filtered by pat) plus this
//                                 session's statement counts
//                 \trace <file>   write the recent statement traces as
//                                 chrome://tracing JSON to <file>
//                                 (server-side path)
//                 \q              close this connection
//   response := zero or more payload lines, each "D <escaped text>",
//               terminated by exactly one "OK <escaped message>" or
//               "ERR <escaped message>" line. Escaping: backslash,
//               newline, CR, tab as \\ \n \r \t (the dump format's
//               field escaping).
//
// Sessions die with their connection; their evidence and knobs die with
// them. The shared catalog lives as long as the SessionManager.
//
// Threading: a FIXED worker pool (not thread-per-connection). The accept
// loop enqueues accepted sockets; each of N worker threads serves one
// connection start-to-finish, then takes the next from the queue. A
// burst of more than N concurrent connections therefore queues — the
// extra clients block in connect/first-read until a worker frees up —
// which bounds server-side thread count and memory under load. N is a
// constructor knob (0 = kDefaultWorkers).
//
// Observability: the server counts connections, requests, and payload
// bytes into the manager's MetricsRegistry (server.* metrics). These are
// front-end counters owned by the server, always on — the per-session
// `SET metrics` knob governs engine-side instrumentation only.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/engine/session.h"

namespace maybms {

class Server {
 public:
  /// Worker threads when the constructor is passed 0.
  static constexpr size_t kDefaultWorkers = 8;

  /// Serves sessions of `manager` (non-owning; must outlive the server).
  /// Every connection's session starts from `session_defaults` — the
  /// server analogue of the shell's interactive defaults. `num_workers`
  /// sizes the fixed worker pool (0 = kDefaultWorkers).
  explicit Server(SessionManager* manager, SessionOptions session_defaults = {},
                  size_t num_workers = 0);
  ~Server();  // calls Stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on `socket_path` (an AF_UNIX path; an existing
  /// stale socket file is replaced) and starts the accept loop.
  Status Start(const std::string& socket_path);

  /// Shuts the listener and every live connection down, joins all
  /// threads, and removes the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Size of the fixed worker pool.
  size_t num_workers() const { return num_workers_; }

 private:
  void AcceptLoop();
  /// Takes connections off the queue until Stop(); one at a time, each
  /// served start-to-finish.
  void WorkerLoop();
  void Serve(int fd);

  SessionManager* manager_;
  SessionOptions session_defaults_;
  const size_t num_workers_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> accepted_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  /// Guards the pending queue AND the in-service fd list. Stop() shuts
  /// active sockets down through the latter so blocked reads return.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;
  std::vector<int> active_fds_;
};

/// One parsed server response.
struct ServerReply {
  bool ok = false;
  std::string message;              ///< the OK/ERR line's payload
  std::vector<std::string> lines;   ///< the D lines, unescaped
};

/// A blocking client for the line protocol above. Not thread-safe; use
/// one Client (= one session) per thread.
class Client {
 public:
  Client() = default;
  ~Client();  // closes
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& socket_path);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request (embedded newlines are flattened to spaces) and
  /// reads the reply. A protocol or socket error closes the connection.
  Result<ServerReply> Request(std::string_view request);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last parsed line
};

}  // namespace maybms
