#include "src/server/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/str_util.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace maybms {

namespace {

/// Same field escaping as the dump format: the protocol is newline-framed,
/// so payload text must never contain a raw newline.
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

/// Loops write() to completion; MSG_NOSIGNAL turns a torn-down peer into
/// EPIPE instead of killing the process with SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line into *line (without the newline),
/// buffering leftovers in *buffer. False on EOF/error with nothing read.
bool RecvLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buffer, 0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// Splits rendered multi-line text into protocol payload ("D ...") lines.
void AppendPayload(std::string_view text, std::string* out) {
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    size_t end = nl == std::string_view::npos ? text.size() : nl;
    *out += "D ";
    *out += Escape(text.substr(start, end - start));
    *out += "\n";
    start = end + 1;
  }
}

}  // namespace

Server::Server(SessionManager* manager, SessionOptions session_defaults,
               size_t num_workers)
    : manager_(manager),
      session_defaults_(std::move(session_defaults)),
      num_workers_(num_workers != 0 ? num_workers : kDefaultWorkers) {}

Server::~Server() { Stop(); }

Status Server::Start(const std::string& socket_path) {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument(
        StringFormat("socket path too long: '%s'", socket_path.c_str()));
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StringFormat("socket(): %s", std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::IoError(StringFormat("bind('%s'): %s",
                                             socket_path.c_str(),
                                             std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    Status st =
        Status::IoError(StringFormat("listen(): %s", std::strerror(errno)));
    ::close(fd);
    ::unlink(socket_path.c_str());
    return st;
  }
  socket_path_ = socket_path;
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Wake idle workers, shut down in-service sockets so blocked reads
  // return, and refuse whatever queued but was never picked up.
  std::deque<int> never_served;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    never_served.swap(pending_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  for (int fd : never_served) ::close(fd);
  ::unlink(socket_path_.c_str());
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or broken
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void Server::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping, queue drained by Stop()
      fd = pending_.front();
      pending_.pop_front();
      active_fds_.push_back(fd);
    }
    Serve(fd);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      active_fds_.erase(
          std::find(active_fds_.begin(), active_fds_.end(), fd));
    }
    ::close(fd);
  }
}

void Server::Serve(int fd) {
  std::unique_ptr<Session> session = manager_->CreateSession(session_defaults_);
  MetricsRegistry& metrics = manager_->metrics();
  metrics.Add(Counter::kServerConnections);
  std::string buffer, line;
  while (RecvLine(fd, &buffer, &line)) {
    metrics.Add(Counter::kServerRequests);
    metrics.Add(Counter::kServerBytesIn, line.size() + 1);
    std::string_view req = Trim(line);
    std::string reply;
    if (req == "\\q") {
      metrics.Add(Counter::kServerBytesOut, 7);  // "OK bye\n"
      SendAll(fd, "OK bye\n");
      break;
    } else if (req == "\\d") {
      AppendPayload(manager_->Describe(&session->constraints()), &reply);
      reply += "OK \n";
    } else if (req.rfind("\\d ", 0) == 0) {
      AppendPayload(manager_->DescribeTable(std::string(Trim(req.substr(3)))),
                    &reply);
      reply += "OK \n";
    } else if (req.rfind("\\explain ", 0) == 0) {
      Result<std::string> plan = session->Explain(req.substr(9));
      if (plan.ok()) {
        AppendPayload(*plan, &reply);
        reply += "OK \n";
      } else {
        reply += "ERR " + Escape(plan.status().ToString()) + "\n";
      }
    } else if (req.rfind("\\seed ", 0) == 0) {
      session->Reseed(std::strtoull(std::string(req.substr(6)).c_str(),
                                    nullptr, 10));
      reply += "OK RNG reseeded\n";
    } else if (req == "\\stats" || req.rfind("\\stats ", 0) == 0) {
      // Shared registry snapshot (optionally LIKE-filtered), then this
      // session's own statement counts.
      const std::string pattern =
          req.size() > 7 ? std::string(Trim(req.substr(7))) : std::string();
      if (pattern == "--prom") {
        // Prometheus text exposition (scrape-ready payload).
        AppendPayload(manager_->metrics().PrometheusText(), &reply);
        reply += "OK \n";
      } else {
        std::string text;
        for (const auto& [name, value] : manager_->StatsSnapshot()) {
          if (!pattern.empty() && !MetricNameLike(pattern, name)) continue;
          text += StringFormat("%-44s %.6g\n", name.c_str(), value);
        }
        text += StringFormat(
            "session: id=%llu statements=%llu failed=%llu\n",
            static_cast<unsigned long long>(session->id()),
            static_cast<unsigned long long>(session->statements_run()),
            static_cast<unsigned long long>(session->statements_failed()));
        AppendPayload(text, &reply);
        reply += "OK \n";
      }
    } else if (req.rfind("\\trace ", 0) == 0) {
      const std::string path(Trim(req.substr(7)));
      const auto traces = manager_->traces().Recent();
      const std::string json = ExportChromeTrace(traces);
      FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        reply += "ERR " +
                 Escape(StringFormat("\\trace: cannot open '%s': %s",
                                     path.c_str(), std::strerror(errno))) +
                 "\n";
      } else {
        const size_t written = std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        if (written != json.size()) {
          reply += "ERR " +
                   Escape(StringFormat("\\trace: short write to '%s'",
                                       path.c_str())) +
                   "\n";
        } else {
          reply += "OK " +
                   Escape(StringFormat("wrote %zu trace(s) to %s",
                                       traces.size(), path.c_str())) +
                   "\n";
        }
      }
    } else if (!req.empty() && req[0] == '\\') {
      reply += "ERR unknown meta-command; try \\d [table], \\explain <q>, "
               "\\stats [pattern], \\trace <file>, \\seed <n>, \\q\n";
    } else if (req.empty()) {
      reply += "OK \n";
    } else {
      Result<QueryResult> result = session->Query(req);
      if (!result.ok()) {
        reply += "ERR " + Escape(result.status().ToString()) + "\n";
      } else {
        if (result->NumColumns() > 0) AppendPayload(result->ToString(), &reply);
        reply += "OK " + Escape(result->message()) + "\n";
      }
    }
    metrics.Add(Counter::kServerBytesOut, reply.size());
    if (!SendAll(fd, reply)) break;
  }
  // The session (its knobs, RNG stream, and evidence) dies with the
  // connection; the worker loop reclaims the fd.
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status Client::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument(
        StringFormat("socket path too long: '%s'", socket_path.c_str()));
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StringFormat("socket(): %s", std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::IoError(StringFormat("connect('%s'): %s",
                                             socket_path.c_str(),
                                             std::strerror(errno)));
    ::close(fd);
    return st;
  }
  fd_ = fd;
  return Status::OK();
}

Result<ServerReply> Client::Request(std::string_view request) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  // One request = one line: flatten any newlines in multi-line SQL.
  std::string line(request);
  for (char& c : line) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  line += "\n";
  if (!SendAll(fd_, line)) {
    Close();
    return Status::IoError("server connection lost while sending");
  }
  ServerReply reply;
  std::string resp;
  for (;;) {
    if (!RecvLine(fd_, &buffer_, &resp)) {
      Close();
      return Status::IoError("server connection lost while receiving");
    }
    if (resp.rfind("D ", 0) == 0) {
      reply.lines.push_back(Unescape(std::string_view(resp).substr(2)));
    } else if (resp.rfind("OK", 0) == 0) {
      reply.ok = true;
      reply.message =
          Unescape(Trim(std::string_view(resp).substr(2)));
      return reply;
    } else if (resp.rfind("ERR", 0) == 0) {
      reply.ok = false;
      reply.message =
          Unescape(Trim(std::string_view(resp).substr(3)));
      return reply;
    } else {
      Close();
      return Status::ParseError(
          StringFormat("malformed server response line: '%s'", resp.c_str()));
    }
  }
}

}  // namespace maybms
