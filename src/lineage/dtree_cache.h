// Version-keyed d-tree compilation cache: persists compiled-lineage
// results ACROSS statements.
//
// PR 4 made a single conf() call fast by compiling its lineage into a
// d-tree, but every statement still recompiled from scratch. The paper's
// dashboard workload — repeated confidence queries over slowly-changing
// U-relations ("Conditioning Probabilistic Databases", Koch & Olteanu,
// VLDB'08, motivates the same reuse for evidence) — recompiles the SAME
// lineage over and over. This cache maps the canonical content of a
// CompiledDnf plus the versions of everything its probability depends on
// to the CompileValue() result, so a repeated conf()/tconf()/posterior
// query over unchanged tables skips compilation entirely.
//
// The cache holds three kinds of entries, distinguished by a leading KIND
// word so their keys can never collide across kinds:
//
//   kind 0 — whole-statement values: CompileValue() of a full lineage
//     (PR 5's original entry kind).
//   kind 1 — per-component d-trees: the materialized DTree (and its root
//     value) of ONE connected component of a lineage. Streaming ingest
//     appends clauses over fresh variables, which arrive as NEW components
//     while old components' content is untouched — so a dashboard
//     statement after an append misses its whole-statement key but re-uses
//     every untouched component and compiles only the delta
//     (src/conf/exact.cc, ExactOptions::component_cache).
//   kind 2 — seeded aconf estimates: the (estimate, samples) result of a
//     seeded Monte Carlo run, a pure function of lineage content + world
//     version + base seed + (ε,δ) + sampling knobs. Repeated aconf
//     dashboards between writes reuse the estimate without re-sampling —
//     and without changing any sampled value, since the cached result IS
//     the value the rerun would produce.
//
// KEY = one flat word vector:
//   kind 0/1: [ kind | options fingerprint | world version | content ]
//   kind 2:   [ kind | base seed | world version | ε | δ |
//               num-query-clauses | sampling knobs | content ]
//
//   - CONTENT: the (sub)lineage's clause list in input order, each clause
//     as its sorted (GLOBAL variable id, assignment) atoms, length-
//     prefixed. CompileValue() and the seeded estimators are pure
//     functions of exactly this list plus the variable distributions, and
//     the compiler's decisions (subsumption order, partition order,
//     elimination choice, branch order) depend on clause input order — so
//     the key preserves it, and a hit is provably bit-identical to a fresh
//     compile. For kind-1 entries the content is the component's clauses
//     in the parent lineage's sorted-clause order — the component-
//     canonical form every statement containing this component agrees on.
//     Content keying makes row-storage invalidation AUTOMATIC and
//     PRECISE: every DML/prune mutation bumps the owning table's
//     columnar-snapshot version counter (src/storage/table.h), the dirty
//     snapshot chunks (and their condition columns) rebuild, and changed
//     lineage simply hashes to a different key — while mutations that do
//     not touch the lineage (an UPDATE of a data column) keep hitting.
//   - WORLD VERSION (always words[2]): probabilities are NOT part of the
//     key; they are baked into the CompiledDnf from the world table, which
//     carries its own version counter (same scheme as the columnar-
//     snapshot counters), bumped whenever a distribution changes —
//     WorldTable::CollapseVariable, i.e. world pruning after
//     ASSERT/CONDITION ON. Same atoms + same world version ⟹ same baked
//     probabilities. Entries keyed to an older world version can never hit
//     again and are purged when a newer version is first seen.
//   - OPTIONS FINGERPRINT (kinds 0/1): heuristic, subsumption/caching
//     toggles, cache caps, and the max_steps node budget. A tree compiled
//     under a large budget must not leak past a later-tightened budget
//     (the lookup misses and the fresh compile re-raises OutOfRange);
//     conversely a budget-failed compile is never inserted. The legacy
//     recursive solver bypasses the cache entirely (it is the reference
//     the bit-identity contract is defined against).
//   - SAMPLING KNOBS (kind 2): ε, δ, the base seed, max_samples,
//     sample_batch_size, and use_reference_kernel — everything the seeded
//     estimate is a function of. batches_per_wave is deliberately absent:
//     it is a pure scheduling knob (montecarlo.h pins that it never
//     changes the estimate). num_query_clauses distinguishes conjunction
//     estimates (P(Q∧C) with a query prefix) from plain ones (~0).
//
// Evidence (ASSERT / CONDITION ON / CLEAR EVIDENCE) needs no axis of its
// own: posterior queries reach the solver as explicit Q∧C / Q∨C product
// lineage, so evidence changes change the content; physical pruning flows
// through the table version counters (row rewrites) and the world version
// (variable collapse).
//
// Entries are verified by FULL key comparison (never by hash alone — a
// 64-bit collision would silently break the bit-identity contract) and
// evicted LRU-first under a shared byte budget
// (ExecOptions::dtree_cache_budget); kind-1 entries account their
// materialized tree's nodes and edges. All methods are thread-safe:
// group-parallel conf() aggregates and morsel-parallel tconf() projections
// probe one shared cache.
//
// ONE CACHE PER CATALOG: global variable ids and version counters are
// only meaningful against the world table they were read from, so a
// cache must never be shared across databases. The Database facade
// enforces this by re-pointing ExactOptions::cache at its own catalog's
// cache on every statement (a copied DatabaseOptions cannot smuggle a
// foreign cache in).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace maybms {

class CompiledDnf;
class DTree;
struct ExactOptions;
struct MonteCarloOptions;
using ClauseId = uint32_t;

/// The cache key: a flat, self-delimiting word vector (see file comment
/// for the layout). Equality is whole-vector equality; `hash` is a
/// precomputed mix over the words.
struct LineageKey {
  std::vector<uint64_t> words;
  uint64_t hash = 0;

  bool operator==(const LineageKey& other) const {
    return hash == other.hash && words == other.words;
  }
  /// Resident cost estimate of an entry built from this key.
  size_t ResidentBytes() const;
};

/// Builds the kind-0 (whole-statement) key for `dnf` as compiled under
/// `options` against a world table currently at `world_version`.
/// O(atoms); the caller compares this cost against a full compilation,
/// which it replaces on a hit.
LineageKey BuildLineageKey(const CompiledDnf& dnf, uint64_t world_version,
                           const ExactOptions& options);

/// Builds the kind-1 (per-component) key for the component of `dnf` made
/// of `clauses[0..n)` (clause ids of `dnf`, in component-canonical order:
/// ascending within the parent's sorted root set).
LineageKey BuildComponentKey(const CompiledDnf& dnf, const ClauseId* clauses,
                             size_t n, uint64_t world_version,
                             const ExactOptions& options);

/// Builds the kind-2 (seeded estimate) key. `num_query_clauses` is the
/// conjunction-estimate prefix length, or ~0ull for a plain estimate.
LineageKey BuildEstimateKey(const CompiledDnf& dnf, uint64_t world_version,
                            uint64_t base_seed, double epsilon, double delta,
                            uint64_t num_query_clauses,
                            const MonteCarloOptions& options);

/// Thread-safe LRU cache of CompileValue() results, per-component d-trees,
/// and seeded estimates, keyed by LineageKey. Owned by the Catalog (one
/// per database); ExecOptions::dtree_cache decides per statement whether
/// the solvers consult it.
class DTreeCache {
 public:
  /// Default byte budget (ExecOptions::dtree_cache_budget overrides;
  /// 0 = unlimited).
  static constexpr size_t kDefaultBudgetBytes = 64ull << 20;
  /// Lineages below this many clauses compile in the noise floor of a key
  /// probe — callers skip the cache for them so per-row marginal products
  /// do not pollute it. Applies per component on the kind-1 path.
  static constexpr size_t kMinCachedClauses = 4;

  explicit DTreeCache(size_t budget_bytes = kDefaultBudgetBytes)
      : budget_bytes_(budget_bytes) {}

  /// Counter snapshot for shell `\d`, benches, and the invalidation tests'
  /// hit/miss assertions. Each entry kind counts its probes separately so
  /// the kinds' hit rates stay individually observable; entries/bytes/
  /// evictions/stale_purged are shared (one LRU, one budget).
  struct Stats {
    uint64_t hits = 0;        ///< kind-0 (whole-statement) probes
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t component_hits = 0;  ///< kind-1 (per-component) probes
    uint64_t component_misses = 0;
    uint64_t component_insertions = 0;
    uint64_t estimate_hits = 0;  ///< kind-2 (seeded aconf) probes
    uint64_t estimate_misses = 0;
    uint64_t estimate_insertions = 0;
    uint64_t evictions = 0;      ///< budget-evicted (LRU)
    uint64_t stale_purged = 0;   ///< dropped on a world-version advance
    size_t entries = 0;
    size_t bytes = 0;
  };

  /// True (and fills *value) iff an entry matches the full key. A hit
  /// refreshes the entry's LRU position. Seeing a newer world version in
  /// `key` first purges entries of older versions (they can never match
  /// again — the counter is monotonic).
  bool Lookup(const LineageKey& key, double* value);

  /// Inserts (or refreshes) key → value and evicts LRU entries past the
  /// byte budget. Oversized entries (> budget/4) are not inserted, so one
  /// adversarial lineage cannot flush the whole working set.
  void Insert(const LineageKey& key, double value);

  /// Kind-1: per-component root value + materialized d-tree. `tree` out
  /// param is optional.
  bool LookupComponent(const LineageKey& key, double* value,
                       std::shared_ptr<const DTree>* tree = nullptr);
  void InsertComponent(const LineageKey& key, double value,
                       std::shared_ptr<const DTree> tree);

  /// Kind-2: seeded (estimate, samples consumed) pairs.
  bool LookupEstimate(const LineageKey& key, double* estimate,
                      uint64_t* samples);
  void InsertEstimate(const LineageKey& key, double estimate, uint64_t samples);

  /// Sets the byte budget (0 = unlimited), evicting down immediately.
  void SetBudgetBytes(size_t bytes);
  size_t budget_bytes() const;

  /// Drops every entry (counters survive; see ResetCounters).
  void Clear();

  Stats stats() const;
  /// Zeroes hit/miss/insert/evict counters (entries stay). Test hook.
  void ResetCounters();

 private:
  struct Entry {
    LineageKey key;
    double value = 0;
    uint64_t samples = 0;                  // kind-2 payload
    std::shared_ptr<const DTree> tree;     // kind-1 payload
    size_t bytes = 0;                      // resident cost incl. tree
  };
  using EntryList = std::list<Entry>;  // front = most recently used

  bool LookupEntry(const LineageKey& key, Entry* out, uint64_t* hits,
                   uint64_t* misses);
  void InsertEntry(Entry entry, uint64_t* insertions);

  // All Locked() helpers require mu_ held.
  void EvictToBudgetLocked();
  void PurgeStaleLocked(uint64_t world_version);
  void EraseLocked(EntryList::iterator it, uint64_t* counter);

  mutable std::mutex mu_;
  EntryList lru_;
  /// hash → entries with that hash (collisions chain; full-key compare).
  std::unordered_map<uint64_t, std::vector<EntryList::iterator>> index_;
  size_t bytes_ = 0;
  size_t budget_bytes_;
  uint64_t latest_world_version_ = 0;
  Stats stats_;
};

}  // namespace maybms
