// Version-keyed d-tree compilation cache: persists compiled-lineage
// results ACROSS statements.
//
// PR 4 made a single conf() call fast by compiling its lineage into a
// d-tree, but every statement still recompiled from scratch. The paper's
// dashboard workload — repeated confidence queries over slowly-changing
// U-relations ("Conditioning Probabilistic Databases", Koch & Olteanu,
// VLDB'08, motivates the same reuse for evidence) — recompiles the SAME
// lineage over and over. This cache maps the canonical content of a
// CompiledDnf plus the versions of everything its probability depends on
// to the CompileValue() result, so a repeated conf()/tconf()/posterior
// query over unchanged tables skips compilation entirely.
//
// KEY = one flat word vector:
//   [ options fingerprint | world-table version | clause/atom content ]
//
//   - CONTENT: the original clause list in input order, each clause as its
//     sorted (GLOBAL variable id, assignment) atoms. CompileValue() is a
//     pure function of exactly this list plus the variable distributions,
//     and the compiler's decisions (subsumption order, partition order,
//     elimination choice, branch order) depend on clause input order — so
//     the key preserves it, and a hit is provably bit-identical to a fresh
//     compile. Content keying makes row-storage invalidation AUTOMATIC and
//     PRECISE: every DML/prune mutation bumps the owning table's
//     columnar-snapshot version counter (src/storage/table.h), the snapshot
//     (and its condition columns) rebuilds, and changed lineage simply
//     hashes to a different key — while mutations that do not touch the
//     lineage (an UPDATE of a data column) keep hitting.
//   - WORLD VERSION: probabilities are NOT part of the key; they are baked
//     into the CompiledDnf from the world table, which now carries its own
//     version counter (same scheme as the columnar-snapshot counters),
//     bumped whenever a distribution changes — WorldTable::CollapseVariable,
//     i.e. world pruning after ASSERT/CONDITION ON. Same atoms + same world
//     version ⟹ same baked probabilities. Entries keyed to an older world
//     version can never hit again and are purged when a newer version is
//     first seen.
//   - OPTIONS FINGERPRINT: heuristic, subsumption/caching toggles, cache
//     caps, and the max_steps node budget. A tree compiled under a large
//     budget must not leak past a later-tightened budget (the lookup
//     misses and the fresh compile re-raises OutOfRange); conversely a
//     budget-failed compile is never inserted. The legacy recursive solver
//     bypasses the cache entirely (it is the reference the bit-identity
//     contract is defined against).
//
// Evidence (ASSERT / CONDITION ON / CLEAR EVIDENCE) needs no axis of its
// own: posterior queries reach the solver as explicit Q∧C / Q∨C product
// lineage, so evidence changes change the content; physical pruning flows
// through the table version counters (row rewrites) and the world version
// (variable collapse).
//
// Entries are verified by FULL key comparison (never by hash alone — a
// 64-bit collision would silently break the bit-identity contract) and
// evicted LRU-first under a byte budget (ExecOptions::dtree_cache_budget).
// All methods are thread-safe: group-parallel conf() aggregates and
// morsel-parallel tconf() projections probe one shared cache.
//
// ONE CACHE PER CATALOG: global variable ids and version counters are
// only meaningful against the world table they were read from, so a
// cache must never be shared across databases. The Database facade
// enforces this by re-pointing ExactOptions::cache at its own catalog's
// cache on every statement (a copied DatabaseOptions cannot smuggle a
// foreign cache in).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace maybms {

class CompiledDnf;
struct ExactOptions;

/// The cache key: a flat, self-delimiting word vector (see file comment
/// for the layout). Equality is whole-vector equality; `hash` is a
/// precomputed mix over the words.
struct LineageKey {
  std::vector<uint64_t> words;
  uint64_t hash = 0;

  bool operator==(const LineageKey& other) const {
    return hash == other.hash && words == other.words;
  }
  /// Resident cost estimate of an entry built from this key.
  size_t ResidentBytes() const;
};

/// Builds the key for `dnf` as compiled under `options` against a world
/// table currently at `world_version`. O(atoms); the caller compares this
/// cost against a full compilation, which it replaces on a hit.
LineageKey BuildLineageKey(const CompiledDnf& dnf, uint64_t world_version,
                           const ExactOptions& options);

/// Thread-safe LRU cache of CompileValue() results, keyed by LineageKey.
/// Owned by the Catalog (one per database); ExecOptions::dtree_cache
/// decides per statement whether the solver consults it.
class DTreeCache {
 public:
  /// Default byte budget (ExecOptions::dtree_cache_budget overrides;
  /// 0 = unlimited).
  static constexpr size_t kDefaultBudgetBytes = 64ull << 20;
  /// Lineages below this many clauses compile in the noise floor of a key
  /// probe — callers skip the cache for them so per-row marginal products
  /// do not pollute it.
  static constexpr size_t kMinCachedClauses = 4;

  explicit DTreeCache(size_t budget_bytes = kDefaultBudgetBytes)
      : budget_bytes_(budget_bytes) {}

  /// Counter snapshot for shell `\d`, benches, and the invalidation tests'
  /// hit/miss assertions.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< budget-evicted (LRU)
    uint64_t stale_purged = 0;   ///< dropped on a world-version advance
    size_t entries = 0;
    size_t bytes = 0;
  };

  /// True (and fills *value) iff an entry matches the full key. A hit
  /// refreshes the entry's LRU position. Seeing a newer world version in
  /// `key` first purges entries of older versions (they can never match
  /// again — the counter is monotonic).
  bool Lookup(const LineageKey& key, double* value);

  /// Inserts (or refreshes) key → value and evicts LRU entries past the
  /// byte budget. Oversized entries (> budget/4) are not inserted, so one
  /// adversarial lineage cannot flush the whole working set.
  void Insert(const LineageKey& key, double value);

  /// Sets the byte budget (0 = unlimited), evicting down immediately.
  void SetBudgetBytes(size_t bytes);
  size_t budget_bytes() const;

  /// Drops every entry (counters survive; see ResetCounters).
  void Clear();

  Stats stats() const;
  /// Zeroes hit/miss/insert/evict counters (entries stay). Test hook.
  void ResetCounters();

 private:
  struct Entry {
    LineageKey key;
    double value = 0;
  };
  using EntryList = std::list<Entry>;  // front = most recently used

  // All Locked() helpers require mu_ held.
  void EvictToBudgetLocked();
  void PurgeStaleLocked(uint64_t world_version);
  void EraseLocked(EntryList::iterator it, uint64_t* counter);

  mutable std::mutex mu_;
  EntryList lru_;
  /// hash → entries with that hash (collisions chain; full-key compare).
  std::unordered_map<uint64_t, std::vector<EntryList::iterator>> index_;
  size_t bytes_ = 0;
  size_t budget_bytes_;
  uint64_t latest_world_version_ = 0;
  Stats stats_;
};

}  // namespace maybms
