// Knowledge compilation of DNF lineage into decomposition trees (d-trees).
//
// The exact confidence algorithm (paper §2.3; Koch & Olteanu, VLDB'08;
// SPROUT's d-tree evaluation, Olteanu/Huang/Koch ICDE'09) interleaves two
// rules — DECOMPOSITION into variable-disjoint independent partitions and
// Shannon VARIABLE ELIMINATION — until the residual formulas are single
// clauses. Instead of computing probabilities while searching (and
// re-searching on every call), DTreeCompiler records the rule applications
// ONCE as a reduced decomposition tree:
//
//   ⊗ (kIndep)    independent-partition node:  P = 1 − Π(1 − P_child)
//   ⊕ (kShannon)  variable-elimination node:   P = Σ w_i · P_child_i
//                 (one weighted branch per world-table alternative of the
//                 eliminated variable, plus the residual "other
//                 assignments" branch; branches over mutually-exclusive
//                 alternatives whose clauses are all decided compile to a
//                 closed 1-OF node with no recursion)
//   leaf          a single conjunctive clause:  P = Π atom probabilities
//   const         decided subformulas (true/false) and parallel-shard
//                 component summaries
//
// Reconverging Shannon branches are HASH-CONSED: a residual clause set
// already compiled is shared (a DAG edge), not rebuilt — the ws-tree
// sharing of [Koch & Olteanu '08] as structure instead of a transient
// memo. Probability evaluation is then one linear bottom-up pass over the
// node array (children always precede parents).
//
// BIT-IDENTITY CONTRACT: the compiler makes exactly the same rule choices
// (same subsumption removals, same partition order, same elimination
// variable, same branch order) and the evaluation performs exactly the
// same floating-point operations in the same order as the legacy
// recursive solver in src/conf/exact.cc — so compiled probabilities are
// bit-for-bit equal to the recursive ones (pinned by
// tests/dtree_property_test.cc). The speed comes from how the same
// decisions are reached: word-wide clause variable masks prefilter
// subsumption probes, reduction-aware bookkeeping skips absorption passes
// that provably cannot fire, clause sets live in a stack arena instead of
// per-node vectors, and the hash-cons table is open-addressed with
// incremental hashes. Step/budget COUNTS are representation-specific
// (closed 1-OF nodes expand no recursion, so the d-tree compiler counts
// fewer nodes than the legacy recursion on the same input); only the
// probabilities are pinned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/lineage/compiled_dnf.h"

namespace maybms {

class DTreeCache;
class ThreadPool;
struct ConfPhaseCounters;  // src/obs/metrics.h

/// Which variable the elimination step picks inside a component.
enum class EliminationHeuristic {
  /// Variable occurring in the most clauses — maximizes immediate
  /// simplification and the chance of disconnecting the component (the
  /// paper's cost-estimation-driven default behaves like this on most
  /// inputs).
  kMaxOccurrence,
  /// Variable minimizing (branching factor) / (clauses touched): a direct
  /// cost estimate of the expansion.
  kMinCostEstimate,
  /// First variable in id order (baseline for ablation benchmarks).
  kFirstVariable,
};

/// Tuning knobs shared by the d-tree compiler and the legacy recursive
/// solver.
struct ExactOptions {
  EliminationHeuristic heuristic = EliminationHeuristic::kMaxOccurrence;
  /// Remove subsumed clauses before recursion (absorption).
  bool remove_subsumed = true;
  /// Share reconverging sub-DNFs (d-tree hash-consing / the legacy solver's
  /// memo — the ws-tree sharing of [Koch & Olteanu '08]).
  bool use_cache = true;
  /// Cap on hash-cons/memo entries (0 disables the cap).
  size_t max_cache_entries = 1u << 20;
  /// Node budget: abort once this many nodes have been expanded (0 = no
  /// limit). Exact confidence is #P-hard; engine callers prefer falling
  /// back to approximation over unbounded compilation (the conf()
  /// fallback knob in ExecOptions). The count is representation-specific:
  /// the d-tree compiler's closed fast paths visit fewer nodes than the
  /// legacy recursion for the same formula.
  uint64_t max_steps = 0;
  /// Solve with the legacy recursive solver instead of d-tree
  /// compilation. Kept for parity tests and ablation benchmarks; both
  /// paths return bit-identical probabilities.
  bool use_legacy_solver = false;
  /// Cross-statement compilation cache (src/lineage/dtree_cache.h), or
  /// null to compile fresh every call. Non-owning: the Database wires the
  /// catalog's cache in per statement when ExecOptions::dtree_cache is on.
  /// Consulted only by the d-tree path (the legacy solver is the
  /// bit-identity reference and always recomputes) and only when no
  /// ExactStats sink is attached (cached answers have no step counts, and
  /// ablation measurements must stay honest).
  DTreeCache* cache = nullptr;
  /// Component-level reuse (SET dtree_component_cache): on a
  /// whole-statement cache miss, partition the root set into connected
  /// components, answer untouched components from their cached kind-1
  /// entries, and compile only new/changed components. The per-component
  /// values (and their fold) are provably bit-identical to a cold whole
  /// compile, so this flag never changes results — only which work is
  /// skipped. Ignored unless `cache` is wired.
  bool component_cache = true;
  /// Observability sink (src/obs/metrics.h), or null when metrics are
  /// off. Counters only — never consulted for any solver decision — and
  /// deliberately OUTSIDE the cache-key fingerprint (OptionsFingerprint
  /// in dtree_cache.cc hashes named fields only), so attaching it cannot
  /// perturb cached results. Non-owning; the Session wires a
  /// per-statement instance in.
  ConfPhaseCounters* counters = nullptr;
};

/// Counters describing the shape of the decomposition tree that was built.
struct ExactStats {
  uint64_t steps = 0;             ///< nodes expanded
  uint64_t decompositions = 0;    ///< independent-partition applications
  uint64_t shannon_expansions = 0;///< variable eliminations
  uint64_t max_depth = 0;
  uint64_t cache_hits = 0;        ///< hash-cons / memo hits
  uint64_t cache_entries = 0;
};

/// A compiled decomposition DAG. Immutable after compilation;
/// probabilities were baked in from the CompiledDnf's variable table, so
/// evaluation needs no world table.
class DTree {
 public:
  enum class Kind : uint8_t {
    kConst,    ///< decided subformula or parallel-shard summary; value only
    kClause,   ///< single conjunctive clause; value = Π atom probs
    kIndep,    ///< ⊗: value = 1 − Π(1 − child)
    kShannon,  ///< ⊕: value = Σ weight · child
  };

  struct Node {
    Kind kind;
    /// kShannon: all branches decided — a closed 1-OF (mutual exclusion)
    /// node over world-table alternatives.
    bool exclusive = false;
    /// kShannon: the eliminated variable (local id); kClause: the clause.
    uint32_t payload = 0;
    uint32_t edge_begin = 0;
    uint32_t edge_end = 0;
    /// The node's probability, computed bottom-up at compile time with the
    /// same arithmetic Evaluate() re-runs.
    double value = 0;
  };
  struct Edge {
    double weight;   ///< kShannon: branch probability mass; kIndep: unused
    uint32_t child;  ///< index of a PRECEDING node
  };

  double root_value() const { return nodes_[root_].value; }
  uint32_t root() const { return root_; }
  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  const Node& node(uint32_t id) const { return nodes_[id]; }
  const Edge& edge(uint32_t e) const { return edges_[e]; }

  /// Recomputes the root probability in one linear bottom-up pass
  /// (children precede parents in the node array). Bit-identical to
  /// root_value(); exposed so tests can pin the pass and callers can
  /// re-score a cached tree.
  double Evaluate() const;

  /// Node-count/shape summary, e.g. "dtree(nodes=12, edges=14, ⊗=3, ⊕=2,
  /// 1-of=1, leaves=6)".
  std::string Summary() const;

 private:
  friend class DTreeCompiler;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  uint32_t root_ = 0;
};

/// One-shot compiler: construct, Compile(), discard. With a non-null pool
/// the variable-disjoint root components compile in parallel shards (each
/// with a private compiler over its own clause-store copy) and fold as
/// P = 1 − Π(1 − P_i) in component order — the root of the returned tree
/// is then a ⊗ node over per-component kConst summaries, and the value is
/// bit-identical to the serial compile at any thread count. The shared
/// cross-shard node budget keeps max_steps outcomes deterministic.
class DTreeCompiler {
 public:
  DTreeCompiler(CompiledDnf dnf, const ExactOptions& options,
                ExactStats* stats = nullptr);
  ~DTreeCompiler();

  DTreeCompiler(const DTreeCompiler&) = delete;
  DTreeCompiler& operator=(const DTreeCompiler&) = delete;

  /// Compiles the DNF's root clause set. Returns OutOfRange when the node
  /// budget (options.max_steps) is exceeded. Single use.
  Result<DTree> Compile(ThreadPool* pool = nullptr);

  /// Same compilation, but keeps only the bottom-up values (no node/edge
  /// materialization) and returns the root probability — the conf() hot
  /// path. Identical decisions and arithmetic to Compile(): the returned
  /// value is bit-for-bit Compile()'s root_value(). Single use.
  Result<double> CompileValue(ThreadPool* pool = nullptr);

  /// Nodes visited by the completed compile — the same count the
  /// max_steps budget is charged against, maintained unconditionally, so
  /// callers that only need a node count never pay for an ExactStats
  /// sink's per-node increments inside the recursion.
  uint64_t StepsUsed() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Convenience wrapper: compile `dnf` serially into a d-tree.
Result<DTree> CompileDTree(CompiledDnf dnf, const ExactOptions& options = {},
                           ExactStats* stats = nullptr);

}  // namespace maybms
