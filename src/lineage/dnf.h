// DNF lineage. The confidence of a (group of duplicate) result tuple(s) is
// the probability of the disjunction of the tuples' conjunctive conditions
// (paper §2.3: "Given a DNF (of which each clause is a conjunctive local
// condition) ...").
#pragma once

#include <string>
#include <vector>

#include "src/prob/condition.h"

namespace maybms {

/// A disjunction of conjunctive clauses over independent random variables.
/// Clauses are Conditions (consistent conjunctions).
class Dnf {
 public:
  Dnf() = default;
  explicit Dnf(std::vector<Condition> clauses) : clauses_(std::move(clauses)) {}

  void AddClause(Condition clause) { clauses_.push_back(std::move(clause)); }

  size_t NumClauses() const { return clauses_.size(); }
  const std::vector<Condition>& clauses() const { return clauses_; }

  /// True iff some clause is the empty conjunction (formula is valid).
  bool HasEmptyClause() const;
  /// True iff there are no clauses (formula is unsatisfiable).
  bool IsEmpty() const { return clauses_.empty(); }

  /// All distinct variables mentioned, sorted.
  std::vector<VarId> Variables() const;

  /// Removes duplicate clauses and clauses subsumed by a more general one
  /// (clause B is redundant if some clause A's atoms are a subset of B's).
  void RemoveSubsumed();

  /// Partition of clause indices into connected components under the
  /// "shares a variable" relation. Two components are probabilistically
  /// independent — the basis of the decomposition step of the exact
  /// algorithm (paper §2.3).
  std::vector<std::vector<size_t>> IndependentComponents() const;

  /// The DNF conditioned on var := asg. Clauses with a conflicting atom
  /// drop out; matching atoms are erased (a clause shrinking to empty makes
  /// the result valid).
  Dnf Assign(VarId var, AsgId asg) const;

  /// Clauses that do not mention `var` (the residual branch of Shannon
  /// expansion over assignments absent from the DNF).
  Dnf DropVariable(VarId var) const;

  /// "(x1->0 ∧ x2->1) ∨ (x3->2)"
  std::string ToString() const;

 private:
  std::vector<Condition> clauses_;
};

}  // namespace maybms
