#include "src/lineage/dtree.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "src/common/status.h"
#include "src/common/str_util.h"
#include "src/common/thread_pool.h"

namespace maybms {

namespace {

// Node ids 0/1 are the shared decided constants, created before any
// compilation step.
constexpr uint32_t kTrueNode = 0;
constexpr uint32_t kZeroNode = 1;
constexpr uint32_t kNoNode = 0xffffffffu;

// Absorption is quadratic; cap matches the legacy solver exactly so both
// representations keep/drop the same clauses on the same inputs.
constexpr size_t kSubsumptionLimit = 512;

uint64_t HashSpan(const ClauseId* ids, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= ids[i] + 0x9e3779b9ULL + (h << 6) + (h >> 2);
  }
  return h;
}

// True iff a's atoms are a subset of b's (both sorted by var, unique vars).
bool SpanSubset(AtomSpan a, AtomSpan b) {
  if (a.size > b.size) return false;
  size_t j = 0;
  for (const Atom& atom : a) {
    while (j < b.size && b[j].var < atom.var) ++j;
    if (j >= b.size || b[j].var != atom.var || b[j].asg != atom.asg) return false;
    ++j;
  }
  return true;
}

// True iff the two (var-sorted) spans mention a common variable.
bool SpansShareVar(AtomSpan a, AtomSpan b) {
  size_t i = 0, j = 0;
  while (i < a.size && j < b.size) {
    if (a[i].var < b[j].var) {
      ++i;
    } else if (b[j].var < a[i].var) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

const Atom* FindVar(AtomSpan span, LocalVar var) {
  // Clause widths are small; a linear scan over the sorted span beats a
  // branchy binary search.
  for (const Atom& a : span) {
    if (a.var >= var) return a.var == var ? &a : nullptr;
  }
  return nullptr;
}

}  // namespace

double DTree::Evaluate() const {
  std::vector<double> v(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.kind) {
      case Kind::kConst:
      case Kind::kClause:
        v[i] = n.value;
        break;
      case Kind::kIndep: {
        double none = 1.0;
        for (uint32_t e = n.edge_begin; e < n.edge_end; ++e) {
          none *= (1.0 - v[edges_[e].child]);
        }
        v[i] = 1.0 - none;
        break;
      }
      case Kind::kShannon: {
        double total = 0;
        for (uint32_t e = n.edge_begin; e < n.edge_end; ++e) {
          total += edges_[e].weight * v[edges_[e].child];
        }
        v[i] = total;
        break;
      }
    }
  }
  return v[root_];
}

std::string DTree::Summary() const {
  size_t indep = 0, shannon = 0, oneof = 0, leaves = 0;
  for (const Node& n : nodes_) {
    switch (n.kind) {
      case Kind::kIndep: ++indep; break;
      case Kind::kShannon:
        ++shannon;
        if (n.exclusive) ++oneof;
        break;
      case Kind::kClause: ++leaves; break;
      case Kind::kConst: break;
    }
  }
  return StringFormat(
      "dtree(nodes=%zu, edges=%zu, indep=%zu, shannon=%zu, 1-of=%zu, "
      "leaves=%zu)",
      nodes_.size(), edges_.size(), indep, shannon, oneof, leaves);
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

struct DTreeCompiler::Impl {
  Impl(CompiledDnf d, const ExactOptions& o, ExactStats* s)
      : dnf(std::move(d)), options(o), stats(s) {
    masks_exact = dnf.MasksExact();
    size_t n_vars = dnf.NumVars();
    var_occ.assign(n_vars, 0);
    var_epoch.assign(n_vars, 0);
    var_pos.assign(n_vars, 0);
    size_t slots = 0;
    for (size_t v = 0; v < n_vars; ++v) slots += dnf.DomainSize(v);
    asg_epoch.assign(slots, 0);
    tree.nodes_.push_back(
        DTree::Node{DTree::Kind::kConst, false, 0, 0, 0, 1.0});
    tree.nodes_.push_back(
        DTree::Node{DTree::Kind::kConst, false, 0, 0, 0, 0.0});
    values.assign({1.0, 0.0});  // same ids in value-only mode
  }

  CompiledDnf dnf;
  ExactOptions options;
  ExactStats* stats;
  DTree tree;
  /// Dense local ids fit 128 mask bits: mask intersection ⟺ shared
  /// variable, so independence probes run on words instead of union-find.
  bool masks_exact = false;
  /// Structure recording. Compile() materializes nodes and edges (the
  /// reusable d-tree); CompileValue() — the conf() hot path — runs the
  /// identical compilation but keeps only the per-node values, cutting the
  /// memory traffic of node/edge writes. Same decisions, same arithmetic,
  /// same result bits.
  bool record = true;
  std::vector<double> values;  // node id -> value in value-only mode

  // Clause sets live in a stack arena, referenced by (offset, length):
  // child sets are appended past the parent's span and popped when the
  // child node is built — no per-node vector allocations.
  std::vector<ClauseId> arena;
  // A node's edges collect on this stack (children push/pop their own
  // frames in between) and commit contiguously into tree.edges_.
  std::vector<DTree::Edge> edge_stack;

  // Hash-cons table: open-addressed, one 24-byte slot per entry so a probe
  // touches one cache line. Keys are canonical reduced clause sets copied
  // into an append-only pool.
  struct MemoSlot {
    uint64_t hash;
    uint32_t node;  // kNoNode = empty slot
    uint32_t off;
    uint32_t len;
  };
  std::vector<MemoSlot> memo;
  std::vector<ClauseId> key_pool;
  size_t memo_count = 0;
  uint64_t cache_hits = 0;

  // Per-clause leaf node cache (a leaf's probability never changes).
  std::vector<uint32_t> leaf_node;

  // Reusable epoch-stamped scratch (mirrors the legacy solver).
  std::vector<uint32_t> var_occ;
  std::vector<uint64_t> var_epoch;
  std::vector<uint32_t> var_pos;
  std::vector<uint64_t> asg_epoch;
  std::vector<uint32_t> asg_count;
  std::vector<LocalVar> touched;
  std::vector<size_t> parent;
  std::vector<uint32_t> comp_idx;
  std::vector<uint64_t> clu_lo;       // live cluster masks (mask closure)
  std::vector<uint64_t> clu_hi;
  std::vector<uint32_t> clu_parent;   // cluster union-find
  std::vector<uint32_t> clu_live;     // live (unmerged) cluster ids
  std::vector<uint32_t> clu_order;    // cluster root -> component index
  // Component (offset, length) descriptors, stack-framed like the arena.
  std::vector<std::pair<uint32_t, uint32_t>> comp_desc;
  std::vector<Atom> scratch_atoms;
  std::vector<ClauseId> olds;       // untouched clauses of one branch (sorted)
  std::vector<ClauseId> news;       // newly-reduced clauses of one branch
  std::vector<ClauseId> order;      // full-absorption size ordering
  std::vector<ClauseId> kept;
  std::vector<AsgId> mentioned;
  uint64_t epoch = 0;
  uint64_t asg_pass = 0;

  uint64_t steps = 0;
  // Component-parallel mode: the cross-shard node total the max_steps
  // budget applies to (null in serial mode).
  std::atomic<uint64_t>* shared_steps = nullptr;

  // -- budget ---------------------------------------------------------------

  uint64_t Bump() {
    ++steps;
    if (shared_steps != nullptr) {
      return shared_steps->fetch_add(1, std::memory_order_relaxed) + 1;
    }
    return steps;
  }

  Status BumpChecked() {
    uint64_t visited = Bump();
    if (options.max_steps != 0 && visited > options.max_steps) {
      return Status::OutOfRange(
          "exact confidence computation exceeded max_steps");
    }
    return Status::OK();
  }

  // -- tree construction ----------------------------------------------------

  uint32_t AddNode(DTree::Kind kind, uint32_t payload, bool exclusive,
                   size_t edge_mark, double value) {
    if (!record) {
      values.push_back(value);
      return static_cast<uint32_t>(values.size() - 1);
    }
    DTree::Node n;
    n.kind = kind;
    n.exclusive = exclusive;
    n.payload = payload;
    n.edge_begin = static_cast<uint32_t>(tree.edges_.size());
    tree.edges_.insert(tree.edges_.end(), edge_stack.begin() + edge_mark,
                       edge_stack.end());
    edge_stack.resize(edge_mark);
    n.edge_end = static_cast<uint32_t>(tree.edges_.size());
    n.value = value;
    tree.nodes_.push_back(n);
    return static_cast<uint32_t>(tree.nodes_.size() - 1);
  }

  void AddEdge(double weight, uint32_t child) {
    if (record) edge_stack.push_back(DTree::Edge{weight, child});
  }

  size_t EdgeMark() const { return edge_stack.size(); }

  double NodeValue(uint32_t id) const {
    return record ? tree.nodes_[id].value : values[id];
  }

  uint32_t LeafNode(ClauseId id) {
    if (leaf_node.size() <= id) leaf_node.resize(dnf.NumStoredClauses(), kNoNode);
    if (leaf_node[id] != kNoNode) return leaf_node[id];
    double p = dnf.ClauseProb(id);
    uint32_t n = AddNode(DTree::Kind::kClause, id, false, EdgeMark(), p);
    leaf_node[id] = n;
    return n;
  }

  // -- hash-cons table ------------------------------------------------------

  void MemoGrow() {
    size_t new_cap = memo.empty() ? 1024 : memo.size() * 2;
    std::vector<MemoSlot> old = std::move(memo);
    memo.assign(new_cap, MemoSlot{0, kNoNode, 0, 0});
    size_t mask = new_cap - 1;
    for (const MemoSlot& e : old) {
      if (e.node == kNoNode) continue;
      size_t slot = static_cast<size_t>(e.hash) & mask;
      while (memo[slot].node != kNoNode) slot = (slot + 1) & mask;
      memo[slot] = e;
    }
  }

  uint32_t MemoFind(uint64_t h, uint32_t off, uint32_t len) {
    if (memo.empty()) return kNoNode;
    size_t mask = memo.size() - 1;
    size_t slot = static_cast<size_t>(h) & mask;
    while (memo[slot].node != kNoNode) {
      if (memo[slot].hash == h && memo[slot].len == len &&
          std::equal(key_pool.begin() + memo[slot].off,
                     key_pool.begin() + memo[slot].off + len,
                     arena.begin() + off)) {
        return memo[slot].node;
      }
      slot = (slot + 1) & mask;
    }
    return kNoNode;
  }

  void MemoInsert(uint64_t h, uint32_t off, uint32_t len, uint32_t node) {
    if (options.max_cache_entries != 0 && memo_count >= options.max_cache_entries) {
      return;
    }
    if (memo_count * 4 >= memo.size() * 3) MemoGrow();
    size_t mask = memo.size() - 1;
    size_t slot = static_cast<size_t>(h) & mask;
    while (memo[slot].node != kNoNode) slot = (slot + 1) & mask;
    memo[slot].hash = h;
    memo[slot].node = node;
    memo[slot].off = static_cast<uint32_t>(key_pool.size());
    memo[slot].len = len;
    key_pool.insert(key_pool.end(), arena.begin() + off, arena.begin() + off + len);
    ++memo_count;
    if (stats) stats->cache_entries = memo_count;
  }

  // -- clause-set reductions ------------------------------------------------

  // Full absorption pass over the (sorted, duplicate-free) span — only the
  // root needs it; every derived set gets the incremental variant or a
  // provable skip. Identical kept set to the legacy RemoveSubsumed: the
  // variable-mask test only skips pairs that cannot be in subset relation.
  void FullReduce(uint32_t off, uint32_t* len) {
    if (*len > kSubsumptionLimit) return;
    order.assign(arena.begin() + off, arena.begin() + off + *len);
    std::sort(order.begin(), order.end(), [&](ClauseId a, ClauseId b) {
      return dnf.ClauseSize(a) < dnf.ClauseSize(b);
    });
    kept.clear();
    for (ClauseId cand : order) {
      AtomSpan cand_span = dnf.Clause(cand);
      uint64_t cand_lo = dnf.ClauseVarMask(cand);
      uint64_t cand_hi = dnf.ClauseVarMaskHi(cand);
      bool subsumed = false;
      for (ClauseId k : kept) {
        if ((dnf.ClauseVarMask(k) & ~cand_lo) != 0 ||
            (dnf.ClauseVarMaskHi(k) & ~cand_hi) != 0) {
          continue;
        }
        if (SpanSubset(dnf.Clause(k), cand_span)) {
          subsumed = true;
          break;
        }
      }
      if (!subsumed) kept.push_back(cand);
    }
    std::sort(kept.begin(), kept.end());
    std::copy(kept.begin(), kept.end(), arena.begin() + off);
    *len = static_cast<uint32_t>(kept.size());
  }

  // Conditions the span on var := asg and appends the REDUCED child set
  // (sorted, unique, absorption-free) to the arena. Sets *valid when a
  // clause shrinks to empty (the branch is decided true).
  //
  // Absorption over the child needs only pairs (reduced, unreduced): the
  // parent span is absorption-free, an unchanged clause cannot newly
  // contain another unchanged clause, an unchanged clause contained in a
  // reduced one would already have been contained in its parent clause,
  // and two reduced clauses in subset relation would imply their parents
  // were too. So the pass is O(new · old) with word-wide mask prefilters
  // instead of the legacy quadratic rescan — with an identical kept set.
  void AssignVarReduce(uint32_t off, uint32_t len, LocalVar var, AsgId asg,
                       bool* valid, uint32_t* child_off, uint32_t* child_len) {
    // Untouched clauses stay in span order (already sorted); only the few
    // reduced ids need sorting before the two lists merge — O(n + k log k)
    // instead of sorting the whole child set.
    olds.clear();
    news.clear();
    for (uint32_t i = 0; i < len; ++i) {
      ClauseId id = arena[off + i];
      AtomSpan span = dnf.Clause(id);
      const Atom* atom = FindVar(span, var);
      if (atom == nullptr) {
        olds.push_back(id);
        continue;
      }
      if (atom->asg != asg) continue;  // clause false under this branch
      if (span.size == 1) {
        *valid = true;
        return;
      }
      scratch_atoms.clear();
      for (const Atom& a : span) {
        if (a.var != var) scratch_atoms.push_back(a);
      }
      news.push_back(dnf.Intern(scratch_atoms.data(), scratch_atoms.size()));
    }
    std::sort(news.begin(), news.end());
    news.erase(std::unique(news.begin(), news.end()), news.end());
    // Merge-dedup into the arena (an id in both lists is "reduced").
    uint32_t out = static_cast<uint32_t>(arena.size());
    size_t i = 0, j = 0;
    while (i < olds.size() && j < news.size()) {
      if (olds[i] < news[j]) {
        arena.push_back(olds[i++]);
      } else if (news[j] < olds[i]) {
        arena.push_back(news[j++]);
      } else {
        arena.push_back(olds[i]);
        ++i;
        ++j;
      }
    }
    arena.insert(arena.end(), olds.begin() + i, olds.end());
    arena.insert(arena.end(), news.begin() + j, news.end());
    uint32_t n = static_cast<uint32_t>(arena.size()) - out;
    if (options.remove_subsumed && !news.empty() && n <= kSubsumptionLimit &&
        news.size() < n) {
      uint32_t w = out;
      size_t k = 0;  // two-pointer walk: news ⊆ span ids, both sorted
      for (uint32_t r = out; r < out + n; ++r) {
        ClauseId id = arena[r];
        if (k < news.size() && news[k] == id) {
          // Reduced clauses are always kept (no reduced clause can contain
          // another surviving clause — see the invariant above).
          ++k;
          arena[w++] = id;
          continue;
        }
        AtomSpan span = dnf.Clause(id);
        uint64_t lo = dnf.ClauseVarMask(id);
        uint64_t hi = dnf.ClauseVarMaskHi(id);
        size_t size = span.size;
        bool subsumed = false;
        for (ClauseId nw : news) {
          if (dnf.ClauseSize(nw) >= size) continue;
          if ((dnf.ClauseVarMask(nw) & ~lo) != 0 ||
              (dnf.ClauseVarMaskHi(nw) & ~hi) != 0) {
            continue;
          }
          if (SpanSubset(dnf.Clause(nw), span)) {
            subsumed = true;
            break;
          }
        }
        if (!subsumed) arena[w++] = id;
      }
      arena.resize(w);
      n = w - out;
    }
    *child_off = out;
    *child_len = n;
  }

  // -- decomposition --------------------------------------------------------

  // Connected components of span positions under "shares a variable".
  // Returns 0 for a single component (nothing materialized); otherwise
  // appends each component's ids to the arena in first-occurrence order
  // (preserving the span's sortedness within each component) and pushes
  // (offset, length) descriptors onto the comp_desc stack past `dmark`.
  // With exact masks the partition probe is a word-wide mask closure; the
  // epoch-stamped union-find remains for > 128 dense variables. Both
  // produce the identical partition in the identical order.
  size_t Components(uint32_t off, uint32_t len, size_t dmark) {
    if (masks_exact) return ComponentsMask(off, len, dmark);
    return ComponentsUnionFind(off, len, dmark);
  }

  size_t ComponentsMask(uint32_t off, uint32_t len, size_t dmark) {
    // Single pass: each position's mask is tested against the live cluster
    // masks (word-wide AND); intersecting clusters merge through a tiny
    // union-find over cluster ids. Cluster counts stay small, so this is
    // O(len · clusters) word operations with no fixpoint rescans.
    clu_lo.clear();
    clu_hi.clear();
    clu_parent.clear();
    clu_live.clear();
    comp_idx.resize(len);  // position -> cluster id (pre-compression)
    auto clu_find = [&](uint32_t c) {
      while (clu_parent[c] != c) {
        clu_parent[c] = clu_parent[clu_parent[c]];
        c = clu_parent[c];
      }
      return c;
    };
    for (uint32_t i = 0; i < len; ++i) {
      ClauseId id = arena[off + i];
      uint64_t lo = dnf.ClauseVarMask(id);
      uint64_t hi = dnf.ClauseVarMaskHi(id);
      uint32_t target = kNoNode;
      for (size_t li = 0; li < clu_live.size();) {
        uint32_t c = clu_live[li];
        if (((clu_lo[c] & lo) | (clu_hi[c] & hi)) == 0) {
          ++li;
          continue;
        }
        if (target == kNoNode) {
          target = c;
          ++li;
        } else {
          clu_parent[c] = target;
          clu_lo[target] |= clu_lo[c];
          clu_hi[target] |= clu_hi[c];
          clu_live[li] = clu_live.back();  // swap-remove the merged cluster
          clu_live.pop_back();
        }
      }
      if (target == kNoNode) {
        target = static_cast<uint32_t>(clu_parent.size());
        clu_parent.push_back(target);
        clu_lo.push_back(lo);
        clu_hi.push_back(hi);
        clu_live.push_back(target);
      } else {
        clu_lo[target] |= lo;
        clu_hi[target] |= hi;
      }
      comp_idx[i] = target;
    }
    // Compress to final components in first-occurrence position order (the
    // same order the union-find variant and the legacy solver produce).
    size_t ncomp = clu_live.size();
    if (ncomp <= 1) return 0;
    clu_order.assign(clu_parent.size(), kNoNode);
    uint32_t seen = 0;
    for (uint32_t i = 0; i < len; ++i) {
      uint32_t root = clu_find(comp_idx[i]);
      if (clu_order[root] == kNoNode) {
        clu_order[root] = seen++;
        comp_desc.emplace_back(0, 0);
      }
      comp_idx[i] = clu_order[root];
      ++comp_desc[dmark + comp_idx[i]].second;
    }
    uint32_t base = static_cast<uint32_t>(arena.size());
    for (size_t c = dmark; c < comp_desc.size(); ++c) {
      comp_desc[c].first = base;
      base += comp_desc[c].second;
      comp_desc[c].second = 0;
    }
    arena.resize(base);
    for (uint32_t i = 0; i < len; ++i) {
      auto& [o, l] = comp_desc[dmark + comp_idx[i]];
      arena[o + l] = arena[off + i];
      ++l;
    }
    return ncomp;
  }

  size_t ComponentsUnionFind(uint32_t off, uint32_t len, size_t dmark) {
    parent.resize(len);
    for (uint32_t i = 0; i < len; ++i) parent[i] = i;
    auto find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    ++epoch;
    for (uint32_t i = 0; i < len; ++i) {
      for (const Atom& a : dnf.Clause(arena[off + i])) {
        if (var_epoch[a.var] == epoch) {
          parent[find(i)] = find(var_pos[a.var]);
        } else {
          var_epoch[a.var] = epoch;
          var_pos[a.var] = i;
        }
      }
    }
    size_t root0 = find(0);
    bool single = true;
    for (uint32_t i = 1; i < len; ++i) {
      if (find(i) != root0) {
        single = false;
        break;
      }
    }
    if (single) return 0;
    comp_idx.assign(len, kNoNode);
    // Pass 1: component index per position (first-occurrence order) and
    // component sizes.
    for (uint32_t i = 0; i < len; ++i) {
      size_t root = find(i);
      if (comp_idx[root] == kNoNode) {
        comp_idx[root] = static_cast<uint32_t>(comp_desc.size() - dmark);
        comp_desc.emplace_back(0, 0);
      }
      ++comp_desc[dmark + comp_idx[root]].second;
    }
    // Pass 2: arena offsets per component, then place ids.
    uint32_t base = static_cast<uint32_t>(arena.size());
    for (size_t c = dmark; c < comp_desc.size(); ++c) {
      comp_desc[c].first = base;
      base += comp_desc[c].second;
      comp_desc[c].second = 0;
    }
    arena.resize(base);
    for (uint32_t i = 0; i < len; ++i) {
      auto& [o, l] = comp_desc[dmark + comp_idx[find(i)]];
      arena[o + l] = arena[off + i];
      ++l;
    }
    return comp_desc.size() - dmark;
  }

  // -- elimination heuristic (identical to the legacy solver) ---------------

  size_t ProbSlot(LocalVar v, AsgId a) const {
    return static_cast<size_t>(dnf.VarProbs(v) - dnf.VarProbs(0)) + a;
  }

  LocalVar ChooseVariable(uint32_t off, uint32_t len) {
    ++epoch;
    touched.clear();
    for (uint32_t i = 0; i < len; ++i) {
      for (const Atom& a : dnf.Clause(arena[off + i])) {
        if (var_epoch[a.var] != epoch) {
          var_epoch[a.var] = epoch;
          var_occ[a.var] = 0;
          touched.push_back(a.var);
        }
        ++var_occ[a.var];
      }
    }
    switch (options.heuristic) {
      case EliminationHeuristic::kFirstVariable: {
        return *std::min_element(touched.begin(), touched.end());
      }
      case EliminationHeuristic::kMaxOccurrence: {
        LocalVar best = touched[0];
        uint32_t best_n = 0;
        for (LocalVar v : touched) {
          uint32_t n = var_occ[v];
          if (n > best_n || (n == best_n && v < best)) {
            best = v;
            best_n = n;
          }
        }
        return best;
      }
      case EliminationHeuristic::kMinCostEstimate: {
        ++asg_pass;
        asg_count.assign(touched.size(), 0);
        for (size_t i = 0; i < touched.size(); ++i) {
          var_pos[touched[i]] = static_cast<uint32_t>(i);
        }
        for (uint32_t i = 0; i < len; ++i) {
          for (const Atom& a : dnf.Clause(arena[off + i])) {
            size_t slot = ProbSlot(a.var, a.asg);
            if (asg_epoch[slot] != asg_pass) {
              asg_epoch[slot] = asg_pass;
              ++asg_count[var_pos[a.var]];
            }
          }
        }
        LocalVar best = touched[0];
        double best_cost = std::numeric_limits<double>::infinity();
        size_t total = len;
        for (size_t i = 0; i < touched.size(); ++i) {
          LocalVar v = touched[i];
          uint32_t n = var_occ[v];
          double branches = static_cast<double>(asg_count[i]) + 1;
          double survivors = static_cast<double>(total - n) + 1;
          double cost = branches * survivors / (static_cast<double>(n) + 1);
          if (cost < best_cost || (cost == best_cost && v < best)) {
            best = v;
            best_cost = cost;
          }
        }
        return best;
      }
    }
    return touched[0];
  }

  // -- compilation ----------------------------------------------------------

  // Compiles one clause set (must already be sorted, duplicate-free and —
  // when options.remove_subsumed — absorption-reduced; every caller
  // guarantees this, so no per-node rescans). `connected` marks sets that
  // are provably one variable-connected component (children of a
  // decomposition node) — the partition probe would find nothing, so it is
  // skipped.
  Result<uint32_t> CompileSpan(uint32_t off, uint32_t len, uint64_t depth,
                               bool connected = false) {
    if (stats) {
      ++stats->steps;
      stats->max_depth = std::max(stats->max_depth, depth);
    }
    MAYBMS_RETURN_NOT_OK(BumpChecked());
    if (len == 0) return kZeroNode;
    if (len == 1) return LeafNode(arena[off]);

    bool use_cache = options.use_cache && len > 2;
    uint64_t h = 0;
    if (use_cache) {
      h = HashSpan(&arena[off], len);
      uint32_t hit = MemoFind(h, off, len);
      if (hit != kNoNode) {
        ++cache_hits;
        if (stats) ++stats->cache_hits;
        return hit;
      }
    }

    // Fast-path scan: sets of single-atom clauses close without recursion.
    bool all_width1 = true;
    for (uint32_t i = 0; i < len && all_width1; ++i) {
      all_width1 = dnf.ClauseSize(arena[off + i]) == 1;
    }
    uint32_t node = kNoNode;
    if (all_width1) {
      MAYBMS_ASSIGN_OR_RETURN(node, CompileWidth1(off, len));
    }
    if (node == kNoNode && len == 2) {
      // Pair sets resolve without the union-find: either the two clauses
      // share a variable (one component → Shannon) or they are an
      // independent pair of leaves — the same decision Components makes.
      ClauseId a = arena[off], b = arena[off + 1];
      bool overlap = ((dnf.ClauseVarMask(a) & dnf.ClauseVarMask(b)) |
                      (dnf.ClauseVarMaskHi(a) & dnf.ClauseVarMaskHi(b))) != 0;
      bool share =
          overlap && (masks_exact || SpansShareVar(dnf.Clause(a), dnf.Clause(b)));
      if (share) {
        MAYBMS_ASSIGN_OR_RETURN(node, CompileShannon(off, len, depth));
      } else {
        if (stats) ++stats->decompositions;
        size_t mark = EdgeMark();
        double none = 1.0;
        for (uint32_t i = 0; i < 2; ++i) {
          uint32_t leaf = LeafNode(arena[off + i]);
          if (stats) ++stats->steps;
          MAYBMS_RETURN_NOT_OK(BumpChecked());
          none *= (1.0 - NodeValue(leaf));
          AddEdge(1.0, leaf);
        }
        node = AddNode(DTree::Kind::kIndep, 0, false, mark, 1.0 - none);
      }
    }
    if (node == kNoNode) {
      size_t arena_mark = arena.size();
      size_t dmark = comp_desc.size();
      size_t ncomp = connected ? 0 : Components(off, len, dmark);
      if (ncomp > 1) {
        MAYBMS_ASSIGN_OR_RETURN(node, CompileIndep(dmark, depth));
      } else {
        MAYBMS_ASSIGN_OR_RETURN(node, CompileShannon(off, len, depth));
      }
      comp_desc.resize(dmark);
      arena.resize(arena_mark);
    }
    if (use_cache) MemoInsert(h, off, len, node);
    return node;
  }

  // All clauses single-atom. Same variable → a closed 1-OF node (the
  // alternatives are mutually exclusive world-table assignments, every
  // Shannon branch is decided, the residual contributes exactly 0);
  // all-distinct variables → an independent partition of leaf clauses.
  // Both produce the same floating-point operations the legacy recursion
  // performs, without recursing. Mixed repetition falls back (kNoNode).
  Result<uint32_t> CompileWidth1(uint32_t off, uint32_t len) {
    LocalVar first = dnf.Clause(arena[off])[0].var;
    bool same_var = true;
    bool distinct = true;
    ++epoch;
    for (uint32_t i = 0; i < len; ++i) {
      LocalVar v = dnf.Clause(arena[off + i])[0].var;
      if (v != first) same_var = false;
      if (var_epoch[v] == epoch) distinct = false;
      var_epoch[v] = epoch;
    }
    if (same_var) {
      if (stats) ++stats->shannon_expansions;
      mentioned.clear();
      for (uint32_t i = 0; i < len; ++i) {
        mentioned.push_back(dnf.Clause(arena[off + i])[0].asg);
      }
      std::sort(mentioned.begin(), mentioned.end());
      // Interned single-atom clauses are distinct (var, asg) pairs, so
      // `mentioned` is already unique.
      size_t mark = EdgeMark();
      double total = 0;
      for (AsgId a : mentioned) {
        double pa = dnf.AtomProbLocal(first, a);
        if (pa == 0.0) continue;
        // Decided branch: identical arithmetic to the legacy
        // `total += pa * sub` with sub == 1.0.
        total += pa * 1.0;
        AddEdge(pa, kTrueNode);
        if (stats) ++stats->steps;
        MAYBMS_RETURN_NOT_OK(BumpChecked());
      }
      return AddNode(DTree::Kind::kShannon, first, true, mark, total);
    }
    if (distinct) {
      if (stats) ++stats->decompositions;
      size_t mark = EdgeMark();
      double none = 1.0;
      for (uint32_t i = 0; i < len; ++i) {
        uint32_t leaf = LeafNode(arena[off + i]);
        if (stats) ++stats->steps;
        MAYBMS_RETURN_NOT_OK(BumpChecked());
        none *= (1.0 - NodeValue(leaf));
        AddEdge(1.0, leaf);
      }
      return AddNode(DTree::Kind::kIndep, 0, false, mark, 1.0 - none);
    }
    return kNoNode;
  }

  Result<uint32_t> CompileIndep(size_t dmark, uint64_t depth) {
    if (stats) ++stats->decompositions;
    size_t mark = EdgeMark();
    size_t dend = comp_desc.size();
    double none = 1.0;
    for (size_t c = dmark; c < dend; ++c) {
      auto [coff, clen] = comp_desc[c];
      uint32_t child;
      if (clen == 1) {
        // Single-clause component: the child resolves to a leaf without a
        // recursion frame (counted as a step to keep budgets comparable).
        child = LeafNode(arena[coff]);
        if (stats) ++stats->steps;
        MAYBMS_RETURN_NOT_OK(BumpChecked());
      } else {
        MAYBMS_ASSIGN_OR_RETURN(
            child, CompileSpan(coff, clen, depth + 1, /*connected=*/true));
      }
      none *= (1.0 - NodeValue(child));
      AddEdge(1.0, child);
    }
    return AddNode(DTree::Kind::kIndep, 0, false, mark, 1.0 - none);
  }

  Result<uint32_t> CompileShannon(uint32_t off, uint32_t len, uint64_t depth) {
    LocalVar var = ChooseVariable(off, len);
    if (stats) ++stats->shannon_expansions;

    mentioned.clear();
    for (uint32_t i = 0; i < len; ++i) {
      const Atom* atom = FindVar(dnf.Clause(arena[off + i]), var);
      if (atom != nullptr) mentioned.push_back(atom->asg);
    }
    std::sort(mentioned.begin(), mentioned.end());
    mentioned.erase(std::unique(mentioned.begin(), mentioned.end()),
                    mentioned.end());
    // `mentioned` is scratch shared across recursion levels — snapshot the
    // assignments of THIS node before recursing.
    uint32_t asg_begin = static_cast<uint32_t>(arena.size());
    for (AsgId a : mentioned) arena.push_back(a);
    uint32_t num_asgs = static_cast<uint32_t>(arena.size()) - asg_begin;

    size_t mark = EdgeMark();
    double total = 0;
    double mentioned_mass = 0;
    bool exclusive = true;
    for (uint32_t ai = 0; ai < num_asgs; ++ai) {
      AsgId a = static_cast<AsgId>(arena[asg_begin + ai]);
      double pa = dnf.AtomProbLocal(var, a);
      mentioned_mass += pa;
      if (pa == 0.0) continue;
      bool valid = false;
      uint32_t child_off = 0, child_len = 0;
      size_t branch_mark = arena.size();
      AssignVarReduce(off, len, var, a, &valid, &child_off, &child_len);
      if (valid) {
        total += pa * 1.0;
        AddEdge(pa, kTrueNode);
        if (stats) ++stats->steps;
        MAYBMS_RETURN_NOT_OK(BumpChecked());
      } else {
        exclusive = false;
        MAYBMS_ASSIGN_OR_RETURN(uint32_t child,
                                CompileSpan(child_off, child_len, depth + 1));
        total += pa * NodeValue(child);
        AddEdge(pa, child);
      }
      arena.resize(branch_mark);
    }
    // Residual branch: var takes an assignment not mentioned in the DNF;
    // every clause mentioning var is false there.
    double other_mass = 1.0 - mentioned_mass;
    if (other_mass > 1e-15) {
      exclusive = false;
      uint32_t rest_off = static_cast<uint32_t>(arena.size());
      for (uint32_t i = 0; i < len; ++i) {
        ClauseId id = arena[off + i];
        if (FindVar(dnf.Clause(id), var) == nullptr) arena.push_back(id);
      }
      uint32_t rest_len = static_cast<uint32_t>(arena.size()) - rest_off;
      MAYBMS_ASSIGN_OR_RETURN(uint32_t child,
                              CompileSpan(rest_off, rest_len, depth + 1));
      total += other_mass * NodeValue(child);
      AddEdge(other_mass, child);
      arena.resize(rest_off);
    }
    uint32_t node = AddNode(DTree::Kind::kShannon, var, exclusive, mark, total);
    arena.resize(asg_begin);
    return node;
  }

  // -- root -----------------------------------------------------------------

  // Returns the root node id; works in both recording and value-only mode.
  Result<uint32_t> CompileRoot(ThreadPool* pool) {
    std::vector<ClauseId> root = dnf.RootSet();
    for (ClauseId id : root) {
      if (dnf.ClauseSize(id) == 0) {
        if (stats) ++stats->steps;
        Bump();
        return kTrueNode;
      }
    }
    uint32_t off = static_cast<uint32_t>(arena.size());
    arena.insert(arena.end(), root.begin(), root.end());
    uint32_t len = static_cast<uint32_t>(root.size());
    if (len > 0 && options.remove_subsumed) FullReduce(off, &len);
    if (pool != nullptr && len > 1) {
      if (Components(off, len, 0) > 1) {
        return CompileRootParallel(pool);
      }
      comp_desc.clear();
    }
    return CompileSpan(off, len, 0);
  }

  // Component-parallel root: shard the variable-disjoint components into at
  // most 16 contiguous ranges (FIXED count, so per-shard budgets cannot
  // depend on the thread count); each shard compiles with a private
  // compiler over its own clause-store copy. Component probabilities fold
  // as none *= (1 - p_i) in component order — the same arithmetic, in the
  // same order, as the serial compile, so the value is bit-identical at
  // any pool size. The root of the resulting tree is a ⊗ node over
  // per-component kConst summaries.
  Result<uint32_t> CompileRootParallel(ThreadPool* pool) {
    // comp_desc[0..) holds the root components (this compiler does nothing
    // else afterwards, so no frame bookkeeping is needed).
    if (stats) {
      ++stats->steps;
      ++stats->decompositions;
    }
    std::atomic<uint64_t> shared{steps};
    shared_steps = &shared;
    Bump();
    const size_t n = comp_desc.size();
    constexpr size_t kRootShards = 16;
    const size_t grain = std::max<size_t>(1, (n + kRootShards - 1) / kRootShards);
    const size_t num_shards = (n + grain - 1) / grain;
    std::vector<double> probs(n, 0.0);
    std::vector<Status> statuses(n, Status::OK());
    std::vector<ExactStats> shard_stats(stats != nullptr ? num_shards : 0);
    pool->ParallelFor(0, n, grain, [&](size_t chunk_begin, size_t chunk_end) {
      CompiledDnf copy = dnf;
      Impl sub(std::move(copy), options,
               stats != nullptr ? &shard_stats[chunk_begin / grain] : nullptr);
      sub.shared_steps = &shared;
      sub.record = false;  // shards contribute values; the root summarizes
      for (size_t i = chunk_begin; i < chunk_end; ++i) {
        auto [coff, clen] = comp_desc[i];
        uint32_t sub_off = static_cast<uint32_t>(sub.arena.size());
        sub.arena.insert(sub.arena.end(), arena.begin() + coff,
                         arena.begin() + coff + clen);
        Result<uint32_t> r = sub.CompileSpan(sub_off, clen, 1);
        if (r.ok()) {
          probs[i] = sub.NodeValue(*r);
        } else {
          statuses[i] = r.status();
        }
        sub.arena.resize(sub_off);
      }
    });
    shared_steps = nullptr;
    // Fold the cross-shard total back into the serial counter so
    // StepsUsed() reports the same number the budget saw. Compilation is
    // single-use and done bumping at this point, so overwriting is safe.
    steps = shared.load(std::memory_order_relaxed);
    for (const Status& s : statuses) {
      if (!s.ok()) return s;  // first failed component in order
    }
    if (stats) {
      for (const ExactStats& cs : shard_stats) {
        stats->steps += cs.steps;
        stats->decompositions += cs.decompositions;
        stats->shannon_expansions += cs.shannon_expansions;
        stats->max_depth = std::max(stats->max_depth, cs.max_depth);
        stats->cache_hits += cs.cache_hits;
        stats->cache_entries += cs.cache_entries;
      }
    }
    size_t mark = EdgeMark();
    double none = 1.0;
    for (double p : probs) {
      uint32_t child =
          AddNode(DTree::Kind::kConst, 0, false, EdgeMark(), p);
      none *= (1.0 - p);
      AddEdge(1.0, child);
    }
    return AddNode(DTree::Kind::kIndep, 0, false, mark, 1.0 - none);
  }
};

DTreeCompiler::DTreeCompiler(CompiledDnf dnf, const ExactOptions& options,
                             ExactStats* stats)
    : impl_(new Impl(std::move(dnf), options, stats)) {}

DTreeCompiler::~DTreeCompiler() { delete impl_; }

Result<DTree> DTreeCompiler::Compile(ThreadPool* pool) {
  MAYBMS_ASSIGN_OR_RETURN(uint32_t root, impl_->CompileRoot(pool));
  impl_->tree.root_ = root;
  return std::move(impl_->tree);
}

Result<double> DTreeCompiler::CompileValue(ThreadPool* pool) {
  impl_->record = false;
  MAYBMS_ASSIGN_OR_RETURN(uint32_t root, impl_->CompileRoot(pool));
  return impl_->values[root];
}

uint64_t DTreeCompiler::StepsUsed() const { return impl_->steps; }

Result<DTree> CompileDTree(CompiledDnf dnf, const ExactOptions& options,
                           ExactStats* stats) {
  DTreeCompiler compiler(std::move(dnf), options, stats);
  return compiler.Compile(nullptr);
}

}  // namespace maybms
