// Compiled DNF lineage: the flat, interned representation the confidence
// algorithms actually run on.
//
// A Dnf of heap-allocated Conditions is friendly to build incrementally but
// hostile to the exact solver's inner loops: every Shannon branch copies
// clause vectors, every memo probe sorts and hashes whole conditions, and
// every probability lookup chases the world table. CompiledDnf fixes the
// representation once up front:
//
//   - clauses live in one packed atom array with offsets (the same CSR
//     layout as ConditionColumn — batch condition columns compile without
//     per-row re-parsing);
//   - clauses are INTERNED: identical atom sets share one ClauseId, so a
//     sub-DNF is just a sorted vector<ClauseId>, memo keys hash a handful
//     of u32s, and duplicate elimination is sort+unique;
//   - variables are remapped to dense local ids 0..V-1 (order-preserving),
//     with their distributions copied into one flat probability array, so
//     occurrence counting and world sampling index plain arrays.
//
// The exact solver grows the store with reduced clauses while it recurses;
// Karp-Luby uses it read-only.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"
#include "src/types/condition_column.h"

namespace maybms {

using ClauseId = uint32_t;
using LocalVar = uint32_t;

inline constexpr ClauseId kNoClause = 0xffffffffu;

class CompiledDnf {
 public:
  /// Compiles a Dnf (clause order and duplicates preserved in
  /// original_clauses()).
  CompiledDnf(const Dnf& dnf, const WorldTable& wt);

  /// Compiles the conditions of the given rows of a batch condition column
  /// — the batch engine's conf() path.
  CompiledDnf(const ConditionColumn& conds, const uint32_t* rows, size_t n,
              const WorldTable& wt);

  /// Compiles a CSR clause list over GLOBAL variable ids (each clause's
  /// atoms sorted by variable, consistent). This is the zero-copy entry for
  /// callers that assemble lineage from pre-merged atom spans — the
  /// posterior layer builds Q ∧ C products and Q+C combined lineage here
  /// without materializing intermediate Dnf/Condition heaps.
  CompiledDnf(const Atom* atoms, const uint32_t* offsets, size_t num_clauses,
              const WorldTable& wt);

  // -- clause store ---------------------------------------------------------

  /// The input clauses, in input order, duplicates preserved (Karp-Luby's
  /// coverage distribution is defined over this list).
  const std::vector<ClauseId>& original_clauses() const { return original_; }

  /// The input clauses deduplicated and sorted (the exact solver's root
  /// clause set).
  std::vector<ClauseId> RootSet() const;

  size_t NumStoredClauses() const { return clause_meta_.size(); }

  /// Atoms of a clause, over LOCAL variable ids, sorted by variable.
  AtomSpan Clause(ClauseId id) const {
    const ClauseMeta& m = clause_meta_[id];
    return AtomSpan{clause_atoms_.data() + m.begin, m.size};
  }
  size_t ClauseSize(ClauseId id) const { return clause_meta_[id].size; }

  /// Marginal probability of a clause (product of its atom probabilities;
  /// cached per stored clause).
  double ClauseProb(ClauseId id);

  /// Variable-occurrence masks of a clause — the word-wide kernels the
  /// d-tree compiler's subsumption and independence probes run on. With
  /// MasksExact() (dense local ids 0..V-1, V <= 128) the pair
  /// (lo, hi) has exactly bit v set for every atom variable v (lo covers
  /// v < 64, hi the rest), so mask intersection ⟺ shared variable and
  /// mask subset ⟺ variable-set subset. Beyond 128 variables the masks
  /// degrade to a Bloom filter: intersections may be false positives, but
  /// (mask(a) & ~mask(b)) != 0 still proves non-subset.
  uint64_t ClauseVarMask(ClauseId id) const { return clause_meta_[id].mask_lo; }
  uint64_t ClauseVarMaskHi(ClauseId id) const { return clause_meta_[id].mask_hi; }
  bool MasksExact() const { return NumVars() <= 128; }

  /// Interns a clause given by local-var atoms (sorted by var, unique
  /// vars). Returns the existing id when an identical clause is stored.
  ClauseId Intern(const Atom* atoms, size_t n);

  // -- variables ------------------------------------------------------------

  size_t NumVars() const { return local_to_global_.size(); }
  VarId GlobalVar(LocalVar v) const { return local_to_global_[v]; }
  uint32_t DomainSize(LocalVar v) const {
    return var_prob_offsets_[v + 1] - var_prob_offsets_[v];
  }
  double AtomProbLocal(LocalVar v, AsgId a) const {
    return var_probs_[var_prob_offsets_[v] + a];
  }
  /// Contiguous distribution of a local variable.
  const double* VarProbs(LocalVar v) const {
    return var_probs_.data() + var_prob_offsets_[v];
  }

 private:
  struct Remap {
    std::vector<LocalVar> dense;  // empty: remap by binary search instead
  };

  void BuildVariableTable(const WorldTable& wt);
  Remap MakeRemap(size_t total_atoms) const;
  void ReserveClauses(size_t expected);
  ClauseId InternGlobal(const Atom* atoms, size_t n, const Remap& remap,
                        std::vector<Atom>* scratch);

  void GrowInternTable();

  // Clause store: one packed atom array plus a 32-byte metadata record per
  // clause, so the compiler's scanning loops (size, masks, atom offset,
  // cached probability) touch ONE cache line per clause id instead of four
  // scattered arrays.
  struct ClauseMeta {
    uint32_t begin;    // into clause_atoms_
    uint32_t size;
    uint64_t mask_lo;  // variable mask, vars < 64 (see MasksExact)
    uint64_t mask_hi;  // vars 64..127
    double prob;       // cache; -1 = not computed
  };
  std::vector<Atom> clause_atoms_;
  std::vector<ClauseMeta> clause_meta_;
  // Intern table: open-addressed (hash, id) slots — the solver interns a
  // reduced clause on every Shannon branch, so probes must not allocate.
  std::vector<uint64_t> intern_hash_;
  std::vector<ClauseId> intern_id_;  // kNoClause = empty slot
  size_t intern_count_ = 0;

  std::vector<ClauseId> original_;

  // Dense variable table.
  std::vector<VarId> local_to_global_;
  std::vector<uint32_t> var_prob_offsets_;  // size NumVars()+1
  std::vector<double> var_probs_;
};

}  // namespace maybms
