#include "src/lineage/dtree_cache.h"

#include <algorithm>

#include "src/common/row_index.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dtree.h"

namespace maybms {

namespace {

/// Entry overhead beyond the key words: list node, index slot, value.
constexpr size_t kEntryOverheadBytes = 96;

uint64_t HashWords(const std::vector<uint64_t>& words) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (uint64_t w : words) {
    h ^= Mix64(w + 0x9e3779b97f4a7c15ULL);
    h = Mix64(h);
  }
  return h;
}

/// Everything that changes which decisions the compiler makes, or whether
/// it is allowed to finish: a different fingerprint is a different key, so
/// a value compiled under one budget/heuristic can never answer for
/// another (the "tightened budget" leak of ISSUE 5's satellite list).
/// use_legacy_solver is deliberately absent — the legacy path bypasses the
/// cache entirely (see ExactConfidence).
uint64_t OptionsFingerprint(const ExactOptions& options) {
  uint64_t h = static_cast<uint64_t>(options.heuristic);
  h |= static_cast<uint64_t>(options.remove_subsumed) << 8;
  h |= static_cast<uint64_t>(options.use_cache) << 9;
  h = Mix64(h);
  h = Mix64(h ^ static_cast<uint64_t>(options.max_cache_entries));
  h = Mix64(h ^ options.max_steps);
  return h;
}

}  // namespace

size_t LineageKey::ResidentBytes() const {
  return words.size() * sizeof(uint64_t) + kEntryOverheadBytes;
}

LineageKey BuildLineageKey(const CompiledDnf& dnf, uint64_t world_version,
                           const ExactOptions& options) {
  LineageKey key;
  const std::vector<ClauseId>& original = dnf.original_clauses();
  size_t total_atoms = 0;
  for (ClauseId id : original) total_atoms += dnf.ClauseSize(id);
  key.words.reserve(3 + original.size() + total_atoms);
  key.words.push_back(OptionsFingerprint(options));
  key.words.push_back(world_version);
  key.words.push_back(original.size());
  // Length-prefixed clauses make the flat vector self-delimiting — no
  // separator value can collide with an atom word. Atoms are emitted over
  // GLOBAL variable ids: local ids are a per-CompiledDnf dense remap, so
  // two different groups could share local shapes while meaning different
  // variables (with different distributions).
  for (ClauseId id : original) {
    AtomSpan span = dnf.Clause(id);
    key.words.push_back(span.size);
    for (const Atom& a : span) {
      key.words.push_back(
          (static_cast<uint64_t>(dnf.GlobalVar(a.var)) << 32) | a.asg);
    }
  }
  key.hash = HashWords(key.words);
  return key;
}

bool DTreeCache::Lookup(const LineageKey& key, double* value) {
  std::lock_guard<std::mutex> lock(mu_);
  // key.words[1] is the world version the caller observed. The counter is
  // monotonic, so once a newer version appears, entries keyed to older
  // versions are dead weight — drop them eagerly instead of waiting for
  // LRU pressure.
  PurgeStaleLocked(key.words[1]);
  auto bucket = index_.find(key.hash);
  if (bucket != index_.end()) {
    for (EntryList::iterator it : bucket->second) {
      if (it->key == key) {
        *value = it->value;
        lru_.splice(lru_.begin(), lru_, it);
        ++stats_.hits;
        return true;
      }
    }
  }
  ++stats_.misses;
  return false;
}

void DTreeCache::Insert(const LineageKey& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  PurgeStaleLocked(key.words[1]);
  size_t bytes = key.ResidentBytes();
  if (budget_bytes_ != 0 && bytes > budget_bytes_ / 4) return;
  auto bucket = index_.find(key.hash);
  if (bucket != index_.end()) {
    for (EntryList::iterator it : bucket->second) {
      if (it->key == key) {  // racing insert of the same lineage: refresh
        it->value = value;
        lru_.splice(lru_.begin(), lru_, it);
        return;
      }
    }
  }
  lru_.push_front(Entry{key, value});
  index_[key.hash].push_back(lru_.begin());
  bytes_ += bytes;
  ++stats_.insertions;
  EvictToBudgetLocked();
}

void DTreeCache::SetBudgetBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
  EvictToBudgetLocked();
}

size_t DTreeCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_;
}

void DTreeCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

DTreeCache::Stats DTreeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void DTreeCache::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void DTreeCache::EraseLocked(EntryList::iterator it, uint64_t* counter) {
  auto bucket = index_.find(it->key.hash);
  if (bucket != index_.end()) {
    std::vector<EntryList::iterator>& chain = bucket->second;
    chain.erase(std::remove(chain.begin(), chain.end(), it), chain.end());
    if (chain.empty()) index_.erase(bucket);
  }
  bytes_ -= std::min(bytes_, it->key.ResidentBytes());
  lru_.erase(it);
  ++*counter;
}

void DTreeCache::EvictToBudgetLocked() {
  if (budget_bytes_ == 0) return;
  while (bytes_ > budget_bytes_ && !lru_.empty()) {
    EraseLocked(std::prev(lru_.end()), &stats_.evictions);
  }
}

void DTreeCache::PurgeStaleLocked(uint64_t world_version) {
  if (world_version <= latest_world_version_) return;
  latest_world_version_ = world_version;
  for (EntryList::iterator it = lru_.begin(); it != lru_.end();) {
    EntryList::iterator next = std::next(it);
    if (it->key.words[1] < world_version) {
      EraseLocked(it, &stats_.stale_purged);
    }
    it = next;
  }
}

}  // namespace maybms
