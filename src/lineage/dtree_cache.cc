#include "src/lineage/dtree_cache.h"

#include <algorithm>

#include "src/common/row_index.h"
#include "src/conf/montecarlo.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dtree.h"

namespace maybms {

namespace {

/// Entry kinds (words[0]); see the file comment in the header.
constexpr uint64_t kKindValue = 0;
constexpr uint64_t kKindComponent = 1;
constexpr uint64_t kKindEstimate = 2;

/// Entry overhead beyond the key words: list node, index slot, payload.
constexpr size_t kEntryOverheadBytes = 96;

uint64_t HashWords(const std::vector<uint64_t>& words) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (uint64_t w : words) {
    h ^= Mix64(w + 0x9e3779b97f4a7c15ULL);
    h = Mix64(h);
  }
  return h;
}

/// Everything that changes which decisions the compiler makes, or whether
/// it is allowed to finish: a different fingerprint is a different key, so
/// a value compiled under one budget/heuristic can never answer for
/// another (the "tightened budget" leak of ISSUE 5's satellite list).
/// use_legacy_solver is deliberately absent — the legacy path bypasses the
/// cache entirely (see ExactConfidence). component_cache is also absent:
/// it selects HOW a value is computed, and the component path is provably
/// bit-identical to the whole compile, so values are mode-independent.
uint64_t OptionsFingerprint(const ExactOptions& options) {
  uint64_t h = static_cast<uint64_t>(options.heuristic);
  h |= static_cast<uint64_t>(options.remove_subsumed) << 8;
  h |= static_cast<uint64_t>(options.use_cache) << 9;
  h = Mix64(h);
  h = Mix64(h ^ static_cast<uint64_t>(options.max_cache_entries));
  h = Mix64(h ^ options.max_steps);
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Appends the length-prefixed clause content of `clauses[0..n)` over
/// GLOBAL variable ids. Length prefixes make the flat vector
/// self-delimiting — no separator value can collide with an atom word.
/// Atoms are emitted over GLOBAL ids: local ids are a per-CompiledDnf
/// dense remap, so two different groups could share local shapes while
/// meaning different variables (with different distributions).
void AppendClauseWords(const CompiledDnf& dnf, const ClauseId* clauses,
                       size_t n, std::vector<uint64_t>* words) {
  words->push_back(n);
  for (size_t i = 0; i < n; ++i) {
    AtomSpan span = dnf.Clause(clauses[i]);
    words->push_back(span.size);
    for (const Atom& a : span) {
      words->push_back(
          (static_cast<uint64_t>(dnf.GlobalVar(a.var)) << 32) | a.asg);
    }
  }
}

size_t TotalAtoms(const CompiledDnf& dnf, const ClauseId* clauses, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += dnf.ClauseSize(clauses[i]);
  return total;
}

}  // namespace

size_t LineageKey::ResidentBytes() const {
  return words.size() * sizeof(uint64_t) + kEntryOverheadBytes;
}

LineageKey BuildLineageKey(const CompiledDnf& dnf, uint64_t world_version,
                           const ExactOptions& options) {
  LineageKey key;
  const std::vector<ClauseId>& original = dnf.original_clauses();
  key.words.reserve(4 + original.size() +
                    TotalAtoms(dnf, original.data(), original.size()));
  key.words.push_back(kKindValue);
  key.words.push_back(OptionsFingerprint(options));
  key.words.push_back(world_version);
  AppendClauseWords(dnf, original.data(), original.size(), &key.words);
  key.hash = HashWords(key.words);
  return key;
}

LineageKey BuildComponentKey(const CompiledDnf& dnf, const ClauseId* clauses,
                             size_t n, uint64_t world_version,
                             const ExactOptions& options) {
  LineageKey key;
  key.words.reserve(4 + n + TotalAtoms(dnf, clauses, n));
  key.words.push_back(kKindComponent);
  key.words.push_back(OptionsFingerprint(options));
  key.words.push_back(world_version);
  AppendClauseWords(dnf, clauses, n, &key.words);
  key.hash = HashWords(key.words);
  return key;
}

LineageKey BuildEstimateKey(const CompiledDnf& dnf, uint64_t world_version,
                            uint64_t base_seed, double epsilon, double delta,
                            uint64_t num_query_clauses,
                            const MonteCarloOptions& options) {
  LineageKey key;
  const std::vector<ClauseId>& original = dnf.original_clauses();
  key.words.reserve(10 + original.size() +
                    TotalAtoms(dnf, original.data(), original.size()));
  key.words.push_back(kKindEstimate);
  key.words.push_back(base_seed);
  key.words.push_back(world_version);
  key.words.push_back(DoubleBits(epsilon));
  key.words.push_back(DoubleBits(delta));
  key.words.push_back(num_query_clauses);
  // The sampling knobs the seeded estimate is a function of.
  // batches_per_wave is a pure scheduling knob and deliberately absent.
  key.words.push_back(options.max_samples);
  key.words.push_back(options.sample_batch_size);
  key.words.push_back(static_cast<uint64_t>(options.use_reference_kernel));
  AppendClauseWords(dnf, original.data(), original.size(), &key.words);
  key.hash = HashWords(key.words);
  return key;
}

bool DTreeCache::LookupEntry(const LineageKey& key, Entry* out, uint64_t* hits,
                             uint64_t* misses) {
  std::lock_guard<std::mutex> lock(mu_);
  // key.words[2] is the world version the caller observed. The counter is
  // monotonic, so once a newer version appears, entries keyed to older
  // versions are dead weight — drop them eagerly instead of waiting for
  // LRU pressure.
  PurgeStaleLocked(key.words[2]);
  auto bucket = index_.find(key.hash);
  if (bucket != index_.end()) {
    for (EntryList::iterator it : bucket->second) {
      if (it->key == key) {
        *out = *it;
        lru_.splice(lru_.begin(), lru_, it);
        ++*hits;
        return true;
      }
    }
  }
  ++*misses;
  return false;
}

void DTreeCache::InsertEntry(Entry entry, uint64_t* insertions) {
  std::lock_guard<std::mutex> lock(mu_);
  PurgeStaleLocked(entry.key.words[2]);
  entry.bytes = entry.key.ResidentBytes();
  if (entry.tree != nullptr) {
    entry.bytes += entry.tree->NumNodes() * sizeof(DTree::Node) +
                   entry.tree->NumEdges() * sizeof(DTree::Edge);
  }
  if (budget_bytes_ != 0 && entry.bytes > budget_bytes_ / 4) return;
  auto bucket = index_.find(entry.key.hash);
  if (bucket != index_.end()) {
    for (EntryList::iterator it : bucket->second) {
      if (it->key == entry.key) {  // racing insert of the same lineage: refresh
        bytes_ -= std::min(bytes_, it->bytes);
        bytes_ += entry.bytes;
        *it = std::move(entry);
        lru_.splice(lru_.begin(), lru_, it);
        return;
      }
    }
  }
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[lru_.front().key.hash].push_back(lru_.begin());
  ++*insertions;
  EvictToBudgetLocked();
}

bool DTreeCache::Lookup(const LineageKey& key, double* value) {
  Entry e;
  if (!LookupEntry(key, &e, &stats_.hits, &stats_.misses)) return false;
  *value = e.value;
  return true;
}

void DTreeCache::Insert(const LineageKey& key, double value) {
  Entry e;
  e.key = key;
  e.value = value;
  InsertEntry(std::move(e), &stats_.insertions);
}

bool DTreeCache::LookupComponent(const LineageKey& key, double* value,
                                 std::shared_ptr<const DTree>* tree) {
  Entry e;
  if (!LookupEntry(key, &e, &stats_.component_hits, &stats_.component_misses)) {
    return false;
  }
  *value = e.value;
  if (tree != nullptr) *tree = e.tree;
  return true;
}

void DTreeCache::InsertComponent(const LineageKey& key, double value,
                                 std::shared_ptr<const DTree> tree) {
  Entry e;
  e.key = key;
  e.value = value;
  e.tree = std::move(tree);
  InsertEntry(std::move(e), &stats_.component_insertions);
}

bool DTreeCache::LookupEstimate(const LineageKey& key, double* estimate,
                                uint64_t* samples) {
  Entry e;
  if (!LookupEntry(key, &e, &stats_.estimate_hits, &stats_.estimate_misses)) {
    return false;
  }
  *estimate = e.value;
  *samples = e.samples;
  return true;
}

void DTreeCache::InsertEstimate(const LineageKey& key, double estimate,
                                uint64_t samples) {
  Entry e;
  e.key = key;
  e.value = estimate;
  e.samples = samples;
  InsertEntry(std::move(e), &stats_.estimate_insertions);
}

void DTreeCache::SetBudgetBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
  EvictToBudgetLocked();
}

size_t DTreeCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_;
}

void DTreeCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

DTreeCache::Stats DTreeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void DTreeCache::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void DTreeCache::EraseLocked(EntryList::iterator it, uint64_t* counter) {
  auto bucket = index_.find(it->key.hash);
  if (bucket != index_.end()) {
    std::vector<EntryList::iterator>& chain = bucket->second;
    chain.erase(std::remove(chain.begin(), chain.end(), it), chain.end());
    if (chain.empty()) index_.erase(bucket);
  }
  bytes_ -= std::min(bytes_, it->bytes);
  lru_.erase(it);
  ++*counter;
}

void DTreeCache::EvictToBudgetLocked() {
  if (budget_bytes_ == 0) return;
  while (bytes_ > budget_bytes_ && !lru_.empty()) {
    EraseLocked(std::prev(lru_.end()), &stats_.evictions);
  }
}

void DTreeCache::PurgeStaleLocked(uint64_t world_version) {
  if (world_version <= latest_world_version_) return;
  latest_world_version_ = world_version;
  for (EntryList::iterator it = lru_.begin(); it != lru_.end();) {
    EntryList::iterator next = std::next(it);
    if (it->key.words[2] < world_version) {
      EraseLocked(it, &stats_.stale_purged);
    }
    it = next;
  }
}

}  // namespace maybms
