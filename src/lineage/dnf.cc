#include "src/lineage/dnf.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>

namespace maybms {

bool Dnf::HasEmptyClause() const {
  for (const Condition& c : clauses_) {
    if (c.IsTrue()) return true;
  }
  return false;
}

std::vector<VarId> Dnf::Variables() const {
  std::vector<VarId> vars;
  for (const Condition& c : clauses_) {
    for (const Atom& a : c.atoms()) vars.push_back(a.var);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

void Dnf::RemoveSubsumed() {
  // Exact duplicates are dropped with a hash set (linear).
  {
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    std::vector<Condition> unique;
    unique.reserve(clauses_.size());
    for (Condition& c : clauses_) {
      std::vector<size_t>& bucket = buckets[c.Hash()];
      bool dup = false;
      for (size_t idx : bucket) {
        if (unique[idx] == c) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        bucket.push_back(unique.size());
        unique.push_back(std::move(c));
      }
    }
    clauses_ = std::move(unique);
  }

  // Pairwise absorption (a clause is redundant if a more general clause's
  // atoms are a subset of its atoms) is quadratic; it only pays off on the
  // small DNFs the exact solver recurses into, so cap it.
  constexpr size_t kSubsumptionLimit = 512;
  if (clauses_.size() > kSubsumptionLimit) return;

  std::vector<size_t> order(clauses_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return clauses_[a].NumAtoms() < clauses_[b].NumAtoms();
  });
  std::vector<Condition> kept;
  kept.reserve(clauses_.size());
  for (size_t idx : order) {
    const Condition& cand = clauses_[idx];
    bool subsumed = false;
    for (const Condition& k : kept) {
      if (k.SubsetOf(cand)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(cand);
  }
  clauses_ = std::move(kept);
}

std::vector<std::vector<size_t>> Dnf::IndependentComponents() const {
  // Union-find over clause indices, joined through shared variables.
  std::vector<size_t> parent(clauses_.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  std::unordered_map<VarId, size_t> first_clause_with_var;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    for (const Atom& a : clauses_[i].atoms()) {
      auto [it, inserted] = first_clause_with_var.try_emplace(a.var, i);
      if (!inserted) unite(i, it->second);
    }
  }

  std::unordered_map<size_t, size_t> root_to_component;
  std::vector<std::vector<size_t>> components;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    size_t root = find(i);
    auto [it, inserted] = root_to_component.try_emplace(root, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(i);
  }
  return components;
}

Dnf Dnf::Assign(VarId var, AsgId asg) const {
  Dnf out;
  for (const Condition& c : clauses_) {
    std::optional<Condition> reduced = c.Assign(var, asg);
    if (reduced) out.AddClause(std::move(*reduced));
  }
  return out;
}

Dnf Dnf::DropVariable(VarId var) const {
  Dnf out;
  for (const Condition& c : clauses_) {
    if (!c.Lookup(var)) out.AddClause(c);
  }
  return out;
}

std::string Dnf::ToString() const {
  if (clauses_.empty()) return "false";
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " ∨ ";
    out += clauses_[i].ToString();
  }
  return out;
}

}  // namespace maybms
