#include "src/lineage/compiled_dnf.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/row_index.h"

namespace maybms {

namespace {

uint64_t HashAtoms(const Atom* atoms, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= (static_cast<uint64_t>(atoms[i].var) << 32) | atoms[i].asg;
    h *= 0x100000001b3ULL;
  }
  // The open-addressed intern table masks with a power of two, and raw
  // FNV's low bits barely depend on the high input bits where the variable
  // ids live.
  return Mix64(h);
}

}  // namespace

ClauseId CompiledDnf::InternGlobal(const Atom* atoms, size_t n,
                                   const Remap& remap,
                                   std::vector<Atom>* scratch) {
  scratch->clear();
  scratch->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LocalVar local;
    if (!remap.dense.empty()) {
      local = remap.dense[atoms[i].var];
    } else {
      // local_to_global_ is sorted ascending, so the remap is a binary
      // search and preserves the span's by-variable sort order.
      auto it = std::lower_bound(local_to_global_.begin(), local_to_global_.end(),
                                 atoms[i].var);
      local = static_cast<LocalVar>(it - local_to_global_.begin());
    }
    // Validate assignments once at the compile boundary so the solver's and
    // estimator's hot loops can index the flat probability array unchecked
    // (mirrors WorldTable's checked AtomProb).
    if (atoms[i].asg >= DomainSize(local)) {
      std::fprintf(stderr,
                   "compiled lineage: assignment %u out of range for variable "
                   "x%u (domain size %u) — corrupt condition column\n",
                   atoms[i].asg, local_to_global_[local], DomainSize(local));
      std::abort();
    }
    scratch->push_back(Atom{local, atoms[i].asg});
  }
  return Intern(scratch->data(), scratch->size());
}

CompiledDnf::Remap CompiledDnf::MakeRemap(size_t total_atoms) const {
  // A dense global->local array costs O(max global id) to build; binary
  // search costs O(total_atoms · log V). Pick the cheaper one — compiles of
  // big lineages get the flat array, small per-group compiles avoid the
  // huge allocation.
  Remap remap;
  if (local_to_global_.empty()) return remap;
  size_t max_gid = static_cast<size_t>(local_to_global_.back()) + 1;
  if (max_gid < total_atoms * 8) {
    remap.dense.assign(max_gid, 0);
    for (size_t l = 0; l < local_to_global_.size(); ++l) {
      remap.dense[local_to_global_[l]] = static_cast<LocalVar>(l);
    }
  }
  return remap;
}

void CompiledDnf::ReserveClauses(size_t expected) {
  size_t cap = 64;
  while (cap * 3 < expected * 4 * 2) cap *= 2;  // load < 0.75 after 2x growth
  if (cap > intern_id_.size()) {
    intern_hash_.assign(cap, 0);
    intern_id_.assign(cap, kNoClause);
  }
}

void CompiledDnf::GrowInternTable() {
  size_t new_cap = intern_id_.empty() ? 64 : intern_id_.size() * 2;
  std::vector<uint64_t> old_hash = std::move(intern_hash_);
  std::vector<ClauseId> old_id = std::move(intern_id_);
  intern_hash_.assign(new_cap, 0);
  intern_id_.assign(new_cap, kNoClause);
  size_t mask = new_cap - 1;
  for (size_t i = 0; i < old_id.size(); ++i) {
    if (old_id[i] == kNoClause) continue;
    size_t slot = static_cast<size_t>(old_hash[i]) & mask;
    while (intern_id_[slot] != kNoClause) slot = (slot + 1) & mask;
    intern_hash_[slot] = old_hash[i];
    intern_id_[slot] = old_id[i];
  }
}

ClauseId CompiledDnf::Intern(const Atom* atoms, size_t n) {
  if (intern_count_ * 4 >= intern_id_.size() * 3) GrowInternTable();
  uint64_t h = HashAtoms(atoms, n);
  size_t mask = intern_id_.size() - 1;
  size_t slot = static_cast<size_t>(h) & mask;
  while (intern_id_[slot] != kNoClause) {
    if (intern_hash_[slot] == h) {
      AtomSpan existing = Clause(intern_id_[slot]);
      if (existing.size == n &&
          std::equal(existing.begin(), existing.end(), atoms)) {
        return intern_id_[slot];
      }
    }
    slot = (slot + 1) & mask;
  }
  ClauseId id = static_cast<ClauseId>(NumStoredClauses());
  ClauseMeta meta;
  meta.begin = static_cast<uint32_t>(clause_atoms_.size());
  meta.size = static_cast<uint32_t>(n);
  meta.prob = -1;
  meta.mask_lo = 0;
  meta.mask_hi = 0;
  clause_atoms_.insert(clause_atoms_.end(), atoms, atoms + n);
  for (size_t i = 0; i < n; ++i) {
    LocalVar v = atoms[i].var;
    if (v < 64) {
      meta.mask_lo |= 1ull << v;
    } else if (v < 128) {
      meta.mask_hi |= 1ull << (v - 64);
    } else {  // Bloom degradation past 128 dense variables
      meta.mask_lo |= 1ull << (v & 63u);
      meta.mask_hi |= 1ull << ((v >> 6) & 63u);
    }
  }
  clause_meta_.push_back(meta);
  intern_hash_[slot] = h;
  intern_id_[slot] = id;
  ++intern_count_;
  return id;
}

void CompiledDnf::BuildVariableTable(const WorldTable& wt) {
  // local_to_global_ holds every mentioned global id, possibly with
  // duplicates; dense ids are its sorted-unique positions — a monotone
  // remap, so clause spans stay sorted by variable after remapping.
  std::sort(local_to_global_.begin(), local_to_global_.end());
  local_to_global_.erase(
      std::unique(local_to_global_.begin(), local_to_global_.end()),
      local_to_global_.end());
  var_prob_offsets_.push_back(0);
  for (VarId g : local_to_global_) {
    size_t domain = wt.DomainSize(g);
    for (size_t a = 0; a < domain; ++a) {
      var_probs_.push_back(wt.AtomProb(Atom{g, static_cast<AsgId>(a)}));
    }
    var_prob_offsets_.push_back(static_cast<uint32_t>(var_probs_.size()));
  }
}

CompiledDnf::CompiledDnf(const Dnf& dnf, const WorldTable& wt) {
  size_t total_atoms = 0;
  for (const Condition& c : dnf.clauses()) {
    for (const Atom& a : c.atoms()) local_to_global_.push_back(a.var);
    total_atoms += c.atoms().size();
  }
  BuildVariableTable(wt);
  Remap remap = MakeRemap(total_atoms);
  ReserveClauses(dnf.NumClauses());
  std::vector<Atom> scratch;
  original_.reserve(dnf.NumClauses());
  for (const Condition& c : dnf.clauses()) {
    original_.push_back(
        InternGlobal(c.atoms().data(), c.atoms().size(), remap, &scratch));
  }
}

CompiledDnf::CompiledDnf(const ConditionColumn& conds, const uint32_t* rows,
                         size_t n, const WorldTable& wt) {
  size_t total_atoms = 0;
  for (size_t i = 0; i < n; ++i) {
    AtomSpan span = conds.Span(rows[i]);
    for (const Atom& a : span) local_to_global_.push_back(a.var);
    total_atoms += span.size;
  }
  BuildVariableTable(wt);
  Remap remap = MakeRemap(total_atoms);
  ReserveClauses(n);
  std::vector<Atom> scratch;
  original_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    AtomSpan span = conds.Span(rows[i]);
    original_.push_back(InternGlobal(span.data, span.size, remap, &scratch));
  }
}

CompiledDnf::CompiledDnf(const Atom* atoms, const uint32_t* offsets,
                         size_t num_clauses, const WorldTable& wt) {
  size_t total_atoms = offsets[num_clauses];
  for (size_t i = 0; i < total_atoms; ++i) {
    local_to_global_.push_back(atoms[i].var);
  }
  BuildVariableTable(wt);
  Remap remap = MakeRemap(total_atoms);
  ReserveClauses(num_clauses);
  std::vector<Atom> scratch;
  original_.reserve(num_clauses);
  for (size_t i = 0; i < num_clauses; ++i) {
    original_.push_back(InternGlobal(atoms + offsets[i],
                                     offsets[i + 1] - offsets[i], remap,
                                     &scratch));
  }
}

std::vector<ClauseId> CompiledDnf::RootSet() const {
  std::vector<ClauseId> set = original_;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

double CompiledDnf::ClauseProb(ClauseId id) {
  ClauseMeta& m = clause_meta_[id];
  if (m.prob >= 0) return m.prob;
  double p = 1.0;
  for (const Atom& a : Clause(id)) p *= AtomProbLocal(a.var, a.asg);
  m.prob = p;
  return p;
}

}  // namespace maybms
