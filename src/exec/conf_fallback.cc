#include "src/exec/conf_fallback.h"

#include <atomic>

#include "src/common/row_index.h"
#include "src/cond/posterior.h"
#include "src/conf/exact.h"
#include "src/conf/montecarlo.h"

namespace maybms {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr uint64_t kClauseSep = 0x9e3779b97f4a7c15ULL;

uint64_t AccumAtom(uint64_t h, const Atom& a) {
  h ^= (static_cast<uint64_t>(a.var) << 32) | a.asg;
  return h * kFnvPrime;
}

uint64_t AccumClauseEnd(uint64_t h) { return (h ^ kClauseSep) * kFnvPrime; }

bool WantsFallback(const Result<double>& exact, const ExecContext* ctx) {
  return !exact.ok() && ctx->options->conf_fallback &&
         exact.status().code() == StatusCode::kOutOfRange;
}

Result<double> Fallback(Result<MonteCarloResult> mc, const Status& exact_error,
                        ExecContext* ctx) {
  if (!mc.ok()) return exact_error;  // surface the original budget error
  if (ctx->conf_fallbacks != nullptr) {
    ctx->conf_fallbacks->fetch_add(1, std::memory_order_relaxed);
  }
  return mc->estimate;
}

}  // namespace

/// Content hash of the group lineage over GLOBAL variable ids. Both
/// engines feed identical clause lists for the same group (pinned by the
/// parity suites), so the seed — and with it the estimate — is
/// engine-independent.
uint64_t LineageSeed(const Dnf& dnf) {
  uint64_t h = kFnvOffset;
  for (const Condition& c : dnf.clauses()) {
    for (const Atom& a : c.atoms()) h = AccumAtom(h, a);
    h = AccumClauseEnd(h);
  }
  return Mix64(h);
}

/// Same content hash over compiled lineage: the original clause list in
/// input order with local atoms mapped back to their GLOBAL ids — exactly
/// the byte sequence the Dnf/span overloads hash (clause order, atom order
/// within a clause, and duplicate clauses are all preserved by
/// CompiledDnf). This is the SAME canonical form the d-tree compilation
/// cache keys on (src/lineage/dtree_cache.h), and it is computed from the
/// CompiledDnf BEFORE the exact attempt — so the fallback seed (and with
/// it the aconf estimate) is identical whether the exact path compiled
/// fresh, hit the cache, or was answered with the cache disabled.
uint64_t LineageSeed(const CompiledDnf& dnf) {
  uint64_t h = kFnvOffset;
  for (ClauseId id : dnf.original_clauses()) {
    for (const Atom& a : dnf.Clause(id)) {
      h = AccumAtom(h, Atom{dnf.GlobalVar(a.var), a.asg});
    }
    h = AccumClauseEnd(h);
  }
  return Mix64(h);
}

Result<double> GroupConfidence(const Dnf& dnf, ExecContext* ctx) {
  const ConstraintStore& cs = ctx->constraints();
  const WorldTable& wt = ctx->worlds();
  const ExecOptions& options = *ctx->options;
  Result<double> exact =
      cs.active()
          ? PosteriorExactConfidence(dnf, cs, wt, options.exact, ctx->pool)
          : ExactConfidence(dnf, wt, options.exact, nullptr, ctx->pool);
  if (!WantsFallback(exact, ctx)) return exact;
  uint64_t seed = LineageSeed(dnf);
  Result<MonteCarloResult> mc =
      cs.active()
          ? PosteriorApproxConfidenceSeeded(
                dnf, cs, wt, options.fallback_epsilon, options.fallback_delta,
                seed, options.montecarlo, options.exact, ctx->pool)
          : ApproxConfidenceSeeded(CompiledDnf(dnf, wt),
                                   options.fallback_epsilon,
                                   options.fallback_delta, seed,
                                   options.montecarlo, ctx->pool);
  return Fallback(std::move(mc), exact.status(), ctx);
}

Result<double> GroupConfidence(const ConditionColumn& conds,
                               const uint32_t* rows, size_t n,
                               ExecContext* ctx) {
  const WorldTable& wt = ctx->worlds();
  const ExecOptions& options = *ctx->options;
  // ONE compilation of the group's lineage feeds everything downstream:
  // the seed, the exact attempt, and the Karp-Luby fallback. Deriving the
  // seed from the same canonical object the cache key and the sampler
  // consume — BEFORE the exact attempt — pins the fallback estimate
  // against any drift between re-compilations. With the fallback disabled
  // (the library default) neither seed nor retained copy is ever needed,
  // so the compiled form moves straight into the solver.
  CompiledDnf compiled(conds, rows, n, wt);
  if (!options.conf_fallback) {
    return ExactConfidence(std::move(compiled), wt, options.exact, nullptr,
                           ctx->pool);
  }
  const uint64_t seed = LineageSeed(compiled);
  Result<double> exact =
      ExactConfidence(std::move(compiled), wt, options.exact, nullptr,
                      ctx->pool);
  if (!WantsFallback(exact, ctx)) return exact;
  // Rare branch: rebuild the compiled form for the sampler. Construction
  // is pure, so this is the identical canonical lineage the seed above
  // was hashed from — cheaper than deep-copying it on every non-fallback
  // group just to keep it alive for this path.
  Result<MonteCarloResult> mc = ApproxConfidenceSeeded(
      CompiledDnf(conds, rows, n, wt), options.fallback_epsilon,
      options.fallback_delta, seed, options.montecarlo, ctx->pool);
  return Fallback(std::move(mc), exact.status(), ctx);
}

}  // namespace maybms
