#include "src/exec/conf_fallback.h"

#include <atomic>

#include "src/common/row_index.h"
#include "src/cond/posterior.h"
#include "src/conf/exact.h"
#include "src/conf/montecarlo.h"

namespace maybms {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr uint64_t kClauseSep = 0x9e3779b97f4a7c15ULL;

uint64_t AccumAtom(uint64_t h, const Atom& a) {
  h ^= (static_cast<uint64_t>(a.var) << 32) | a.asg;
  return h * kFnvPrime;
}

uint64_t AccumClauseEnd(uint64_t h) { return (h ^ kClauseSep) * kFnvPrime; }

/// Content hash of the group lineage over GLOBAL variable ids. Both
/// engines feed identical clause lists for the same group (pinned by the
/// parity suites), so the fallback seed — and with it the estimate — is
/// engine-independent.
uint64_t LineageSeed(const Dnf& dnf) {
  uint64_t h = kFnvOffset;
  for (const Condition& c : dnf.clauses()) {
    for (const Atom& a : c.atoms()) h = AccumAtom(h, a);
    h = AccumClauseEnd(h);
  }
  return Mix64(h);
}

uint64_t LineageSeed(const ConditionColumn& conds, const uint32_t* rows,
                     size_t n) {
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < n; ++i) {
    for (const Atom& a : conds.Span(rows[i])) h = AccumAtom(h, a);
    h = AccumClauseEnd(h);
  }
  return Mix64(h);
}

bool WantsFallback(const Result<double>& exact, const ExecContext* ctx) {
  return !exact.ok() && ctx->options->conf_fallback &&
         exact.status().code() == StatusCode::kOutOfRange;
}

Result<double> Fallback(Result<MonteCarloResult> mc, const Status& exact_error,
                        ExecContext* ctx) {
  if (!mc.ok()) return exact_error;  // surface the original budget error
  if (ctx->conf_fallbacks != nullptr) {
    ctx->conf_fallbacks->fetch_add(1, std::memory_order_relaxed);
  }
  return mc->estimate;
}

}  // namespace

Result<double> GroupConfidence(const Dnf& dnf, ExecContext* ctx) {
  const ConstraintStore& cs = ctx->constraints();
  const WorldTable& wt = ctx->worlds();
  const ExecOptions& options = *ctx->options;
  Result<double> exact =
      cs.active()
          ? PosteriorExactConfidence(dnf, cs, wt, options.exact, ctx->pool)
          : ExactConfidence(dnf, wt, options.exact, nullptr, ctx->pool);
  if (!WantsFallback(exact, ctx)) return exact;
  uint64_t seed = LineageSeed(dnf);
  Result<MonteCarloResult> mc =
      cs.active()
          ? PosteriorApproxConfidenceSeeded(
                dnf, cs, wt, options.fallback_epsilon, options.fallback_delta,
                seed, options.montecarlo, options.exact, ctx->pool)
          : ApproxConfidenceSeeded(CompiledDnf(dnf, wt),
                                   options.fallback_epsilon,
                                   options.fallback_delta, seed,
                                   options.montecarlo, ctx->pool);
  return Fallback(std::move(mc), exact.status(), ctx);
}

Result<double> GroupConfidence(const ConditionColumn& conds,
                               const uint32_t* rows, size_t n,
                               ExecContext* ctx) {
  const WorldTable& wt = ctx->worlds();
  const ExecOptions& options = *ctx->options;
  Result<double> exact = ExactConfidence(CompiledDnf(conds, rows, n, wt), wt,
                                         options.exact, nullptr, ctx->pool);
  if (!WantsFallback(exact, ctx)) return exact;
  Result<MonteCarloResult> mc = ApproxConfidenceSeeded(
      CompiledDnf(conds, rows, n, wt), options.fallback_epsilon,
      options.fallback_delta, LineageSeed(conds, rows, n), options.montecarlo,
      ctx->pool);
  return Fallback(std::move(mc), exact.status(), ctx);
}

}  // namespace maybms
