// Per-group aggregate computation, including the probabilistic aggregates
// of paper §2.2: conf (exact), aconf (Karp-Luby + DKLR), esum/ecount
// (linearity of expectation), and argmax.
#pragma once

#include <vector>

#include "src/exec/exec_context.h"
#include "src/plan/logical_plan.h"

namespace maybms {

/// Computes all aggregates over one group of input rows. Returns one
/// result row of aggregate values — or several when an argmax aggregate
/// ties (paper §2.2 item 3: argmax outputs *all* arg values attaining the
/// group maximum); non-argmax aggregate values are replicated across ties.
Result<std::vector<std::vector<Value>>> ComputeGroupAggregates(
    const std::vector<const Row*>& group_rows,
    const std::vector<BoundAggregate>& aggs, ExecContext* ctx);

}  // namespace maybms
