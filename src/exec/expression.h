// Bound expressions: AST expressions resolved against an input schema
// (column references become indexes) and type-checked. Evaluated by tree
// walking over row value vectors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {

enum class BoundExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kScalarFunction,
  kIsNull,
  /// Placeholder for tconf(): evaluated by the projection operator, which
  /// has access to the row condition (Eval() on it is an internal error).
  kTconf,
};

struct BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

struct BoundExpr {
  BoundExpr(BoundExprKind k, TypeId t) : kind(k), type(t) {}
  virtual ~BoundExpr() = default;

  /// Evaluates over a row of the bound input schema. SQL null semantics:
  /// null operands propagate (comparisons yield null, which filters treat
  /// as false).
  virtual Result<Value> Eval(const std::vector<Value>& row) const = 0;

  /// Display string for naming output columns / error messages.
  virtual std::string ToString() const = 0;

  /// Collects referenced column indexes (for join-key analysis).
  virtual void CollectColumns(std::vector<size_t>* out) const = 0;

  /// Structural deep copy.
  virtual BoundExprPtr Clone() const = 0;

  const BoundExprKind kind;
  const TypeId type;  ///< static result type (kNull = unknown/any)
};

struct BoundLiteral : BoundExpr {
  explicit BoundLiteral(Value v)
      : BoundExpr(BoundExprKind::kLiteral, v.type()), value(std::move(v)) {}
  Result<Value> Eval(const std::vector<Value>&) const override { return value; }
  std::string ToString() const override { return value.ToString(); }
  void CollectColumns(std::vector<size_t>*) const override {}
  BoundExprPtr Clone() const override { return std::make_unique<BoundLiteral>(value); }

  Value value;
};

struct BoundColumnRef : BoundExpr {
  BoundColumnRef(size_t i, TypeId t, std::string n)
      : BoundExpr(BoundExprKind::kColumnRef, t), index(i), name(std::move(n)) {}
  Result<Value> Eval(const std::vector<Value>& row) const override {
    if (index >= row.size()) {
      return Status::Internal("column index out of range during evaluation");
    }
    return row[index];
  }
  std::string ToString() const override { return name; }
  void CollectColumns(std::vector<size_t>* out) const override {
    out->push_back(index);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundColumnRef>(index, type, name);
  }

  size_t index;
  std::string name;
};

struct BoundUnary : BoundExpr {
  BoundUnary(UnaryOp o, BoundExprPtr e, TypeId t)
      : BoundExpr(BoundExprKind::kUnary, t), op(o), operand(std::move(e)) {}
  Result<Value> Eval(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    operand->CollectColumns(out);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundUnary>(op, operand->Clone(), type);
  }

  UnaryOp op;
  BoundExprPtr operand;
};

struct BoundBinary : BoundExpr {
  BoundBinary(BinaryOp o, BoundExprPtr l, BoundExprPtr r, TypeId t)
      : BoundExpr(BoundExprKind::kBinary, t), op(o), left(std::move(l)),
        right(std::move(r)) {}
  Result<Value> Eval(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    left->CollectColumns(out);
    right->CollectColumns(out);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundBinary>(op, left->Clone(), right->Clone(), type);
  }

  BinaryOp op;
  BoundExprPtr left;
  BoundExprPtr right;
};

/// Scalar math/string functions usable anywhere an expression is (abs,
/// sqrt, exp, ln, pow, round, floor, ceil, least, greatest, length, lower,
/// upper).
struct BoundScalarFunction : BoundExpr {
  BoundScalarFunction(std::string n, std::vector<BoundExprPtr> a, TypeId t)
      : BoundExpr(BoundExprKind::kScalarFunction, t), name(std::move(n)),
        args(std::move(a)) {}
  Result<Value> Eval(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    for (const BoundExprPtr& a : args) a->CollectColumns(out);
  }
  BoundExprPtr Clone() const override;

  std::string name;
  std::vector<BoundExprPtr> args;
};

/// `expr IS [NOT] NULL` — does not propagate nulls.
struct BoundIsNull : BoundExpr {
  BoundIsNull(BoundExprPtr e, bool neg)
      : BoundExpr(BoundExprKind::kIsNull, TypeId::kBool), operand(std::move(e)),
        negated(neg) {}
  Result<Value> Eval(const std::vector<Value>& row) const override {
    MAYBMS_ASSIGN_OR_RETURN(Value v, operand->Eval(row));
    return Value::Bool(v.is_null() != negated);
  }
  std::string ToString() const override {
    return operand->ToString() + (negated ? " is not null" : " is null");
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    operand->CollectColumns(out);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<BoundIsNull>(operand->Clone(), negated);
  }

  BoundExprPtr operand;
  bool negated;
};

/// tconf() placeholder (see BoundExprKind::kTconf).
struct BoundTconf : BoundExpr {
  BoundTconf() : BoundExpr(BoundExprKind::kTconf, TypeId::kDouble) {}
  Result<Value> Eval(const std::vector<Value>&) const override {
    return Status::Internal("tconf() evaluated outside a projection");
  }
  std::string ToString() const override { return "tconf()"; }
  void CollectColumns(std::vector<size_t>*) const override {}
  BoundExprPtr Clone() const override { return std::make_unique<BoundTconf>(); }
};

/// Scalar kernels shared by the row-at-a-time tree walk and the vectorized
/// executor (src/exec/vector_expression.h), so both engines agree on SQL
/// semantics to the bit.
///
/// EvalUnaryValue/EvalBinaryValue accept null operands and propagate them
/// per SQL rules (AND/OR use Kleene three-valued logic over the two given
/// values). EvalScalarFunctionValue requires non-null arguments (callers
/// return null when any argument is null).
Result<Value> EvalUnaryValue(UnaryOp op, const Value& v);
Result<Value> EvalBinaryValue(BinaryOp op, const Value& l, const Value& r);
Result<Value> EvalScalarFunctionValue(const std::string& name,
                                      const std::vector<Value>& vals);

/// True if `name` is one of the scalar function names BoundScalarFunction
/// understands.
bool IsScalarFunction(const std::string& name);

/// Result type of a scalar function given argument types.
Result<TypeId> ScalarFunctionResultType(const std::string& name,
                                        const std::vector<TypeId>& arg_types);

/// SQL truthiness: true values only; null and false both reject.
bool IsTruthy(const Value& v);

}  // namespace maybms
