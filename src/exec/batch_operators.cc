#include "src/exec/batch_operators.h"

#include "src/exec/conf_fallback.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>

#include "src/common/row_index.h"
#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/cond/posterior.h"
#include "src/conf/karp_luby.h"
#include "src/exec/vector_expression.h"
#include "src/lineage/compiled_dnf.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/columnar.h"

namespace maybms {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

bool TruthyCell(const ColumnVector& mask, size_t k) {
  if (!mask.boxed() && mask.type() == TypeId::kBool) {
    return !mask.IsNull(k) && mask.BoolData()[k] != 0;
  }
  return IsTruthy(mask.GetValue(k));
}

ConditionColumn GatherConditions(const ConditionColumn& in,
                                 const std::vector<uint32_t>& sel) {
  ConditionColumn out;
  if (in.AllTrue()) {
    for (size_t i = 0; i < sel.size(); ++i) out.AppendTrue();
    return out;
  }
  for (uint32_t i : sel) out.AppendFrom(in, i);
  return out;
}

Batch GatherBatch(const Batch& in, const std::vector<uint32_t>& sel) {
  Batch out;
  out.columns.reserve(in.columns.size());
  for (const ColumnVectorPtr& col : in.columns) {
    out.columns.push_back(std::make_shared<ColumnVector>(col->Gather(sel)));
  }
  out.conditions = GatherConditions(in.conditions, sel);
  out.num_rows = sel.size();
  return out;
}

/// Filters a batch by a predicate: evaluates it vectorized, keeps truthy
/// rows. Passes the batch through untouched when every row survives.
Result<Batch> FilterBatch(const BoundExpr& pred, Batch in) {
  MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr mask, EvalVector(pred, in));
  std::vector<uint32_t> sel;
  sel.reserve(in.num_rows);
  for (size_t k = 0; k < in.num_rows; ++k) {
    if (TruthyCell(*mask, k)) sel.push_back(static_cast<uint32_t>(k));
  }
  if (sel.size() == in.num_rows) return in;
  return GatherBatch(in, sel);
}

// ---------------------------------------------------------------------------
// Parallel execution helpers (morsel-driven)
//
// With ExecContext::pool set (ExecOptions::num_threads > 1), operators
// split their input into row morsels and fan pure per-morsel work out on
// the pool. Three invariants keep the parallel engine bit-for-bit equal to
// the serial one at every thread count:
//   1. children are always DRAINED serially (side effects — repair-key /
//      pick-tuples variable registration — keep their order);
//   2. morsel boundaries depend only on the input and morsel_size, never
//      on the thread count;
//   3. per-morsel results land in indexed slots and fold in morsel order.
// ---------------------------------------------------------------------------

size_t MorselRows(const ExecContext* ctx) {
  size_t m = ctx->options->morsel_size;
  return m == 0 ? std::numeric_limits<size_t>::max() : m;
}

/// Gathers rows [begin, end) of a batch into a fresh one. Only reached for
/// strict sub-ranges (DrainMorsels moves whole batches through untouched),
/// i.e. when morsel_size undercuts the scan chunk size — a testing/tuning
/// knob that pays a copy.
Batch SliceBatch(const Batch& in, size_t begin, size_t end) {
  std::vector<uint32_t> sel;
  sel.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) sel.push_back(static_cast<uint32_t>(i));
  return GatherBatch(in, sel);
}

// ---------------------------------------------------------------------------
// Operator interface
// ---------------------------------------------------------------------------

class BatchOperator {
 public:
  virtual ~BatchOperator() = default;
  /// Fills *out with the next batch; returns false when exhausted.
  virtual Result<bool> Next(Batch* out) = 0;
};

using BatchOperatorPtr = std::unique_ptr<BatchOperator>;

Result<BatchOperatorPtr> BuildOperator(const PlanNode& plan, ExecContext* ctx);

/// Base for pipeline breakers: Compute() materializes everything on the
/// first pull, then batches are handed out one by one.
class MaterializedOperator : public BatchOperator {
 public:
  Result<bool> Next(Batch* out) override {
    if (!computed_) {
      MAYBMS_RETURN_NOT_OK(Compute());
      computed_ = true;
    }
    if (cursor_ >= ready_.size()) return false;
    *out = std::move(ready_[cursor_++]);
    return true;
  }

 protected:
  virtual Status Compute() = 0;

  std::vector<Batch> ready_;

 private:
  bool computed_ = false;
  size_t cursor_ = 0;
};

/// A fully drained child: its batches plus flat row -> (batch, index) maps
/// and the concatenated condition column (pipeline breakers work over it).
struct Drained {
  std::vector<Batch> batches;
  std::vector<uint32_t> row_batch;
  std::vector<uint32_t> row_idx;
  ConditionColumn conds;
  size_t num_rows = 0;

  Value GetValue(size_t col, size_t row) const {
    return batches[row_batch[row]].columns[col]->GetValue(row_idx[row]);
  }
};

/// `concat_conds` controls whether the per-batch conditions are also
/// concatenated into Drained::conds — callers that read conditions from the
/// batches directly (the hash join) skip the copy.
Result<Drained> DrainAll(BatchOperator* child, bool concat_conds = true) {
  Drained d;
  Batch b;
  while (true) {
    MAYBMS_ASSIGN_OR_RETURN(bool more, child->Next(&b));
    if (!more) break;
    uint32_t bi = static_cast<uint32_t>(d.batches.size());
    for (size_t i = 0; i < b.num_rows; ++i) {
      d.row_batch.push_back(bi);
      d.row_idx.push_back(static_cast<uint32_t>(i));
      if (concat_conds) d.conds.AppendFrom(b.conditions, i);
    }
    d.num_rows += b.num_rows;
    d.batches.push_back(std::move(b));
    b = Batch();
  }
  return d;
}

/// Drains the child (serially — side-effect order) and splits its batches
/// into morsels of at most `morsel_rows` rows, preserving row order.
Result<std::vector<Batch>> DrainMorsels(BatchOperator* child, size_t morsel_rows) {
  std::vector<Batch> morsels;
  Batch b;
  while (true) {
    MAYBMS_ASSIGN_OR_RETURN(bool more, child->Next(&b));
    if (!more) break;
    if (b.num_rows <= morsel_rows) {
      morsels.push_back(std::move(b));
    } else {
      for (size_t begin = 0; begin < b.num_rows; begin += morsel_rows) {
        morsels.push_back(
            SliceBatch(b, begin, std::min(b.num_rows, begin + morsel_rows)));
      }
    }
    b = Batch();
  }
  return morsels;
}

/// Evaluates an expression over every drained batch; with a pool the
/// batches evaluate concurrently (expression evaluation is pure), results
/// land in per-batch slots either way.
Result<std::vector<ColumnVectorPtr>> EvalPerBatch(const BoundExpr& expr,
                                                  const Drained& d,
                                                  ThreadPool* pool = nullptr) {
  std::vector<ColumnVectorPtr> out(d.batches.size());
  if (pool == nullptr) {
    for (size_t i = 0; i < d.batches.size(); ++i) {
      MAYBMS_ASSIGN_OR_RETURN(out[i], EvalVector(expr, d.batches[i]));
    }
    return out;
  }
  MAYBMS_RETURN_NOT_OK(pool->ParallelForStatus(0, d.batches.size(), [&](size_t i) {
    MAYBMS_ASSIGN_OR_RETURN(out[i], EvalVector(expr, d.batches[i]));
    return Status::OK();
  }));
  return out;
}

/// An output batch under construction: columns typed per the output schema,
/// values appended row-wise by scatter-style operators (joins etc.).
Batch AllocateOutput(const Schema& schema) { return Batch::Allocate(schema, 0); }

// ---------------------------------------------------------------------------
// Scan: hands out the table's cached columnar chunks, sharing columns.
// ---------------------------------------------------------------------------

class ScanOp : public BatchOperator {
 public:
  explicit ScanOp(const ScanNode& node) : columnar_(node.table->Columnar()) {}

  Result<bool> Next(Batch* out) override {
    if (chunk_ >= columnar_->chunks.size()) return false;
    const Batch& src = *columnar_->chunks[chunk_++];
    out->columns = src.columns;  // shared; downstream operators never mutate
    out->conditions = src.conditions;
    out->num_rows = src.num_rows;
    return true;
  }

 private:
  std::shared_ptr<const ColumnarTable> columnar_;
  size_t chunk_ = 0;
};

// ---------------------------------------------------------------------------
// IndexScan: pulls the candidate row ids from the B+ tree (ascending, so
// emission order matches ScanOp's) and gathers the rows into fresh batches.
// The parent Filter re-checks its full predicate over these candidates,
// which is what keeps Filter(IndexScan) bit-identical to Filter(Scan).
// ---------------------------------------------------------------------------

class IndexScanOp : public BatchOperator {
 public:
  IndexScanOp(const IndexScanNode& node, ExecContext* ctx)
      : node_(node), ctx_(ctx) {}

  Result<bool> Next(Batch* out) override {
    if (!initialized_) {
      initialized_ = true;
      SecondaryIndexPtr index =
          ctx_->catalog->index_manager().Find(node_.index_name);
      if (index != nullptr) {
        MAYBMS_RETURN_NOT_OK(
            index->Lookup(*node_.table, node_.lo, node_.hi, &ids_, ctx_->metrics));
      } else {
        // Index dropped between planning and execution: degrade to a full
        // scan's candidate set (the filter still produces exact answers).
        ids_.resize(node_.table->NumRows());
        for (size_t i = 0; i < ids_.size(); ++i) ids_[i] = i;
      }
    }
    const std::vector<Row>& rows = node_.table->rows();
    if (pos_ >= ids_.size()) return false;
    const size_t n = std::min(Batch::kDefaultCapacity, ids_.size() - pos_);
    Batch b = Batch::Allocate(node_.table->schema(), n);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t id = ids_[pos_ + i];
      if (id < rows.size()) b.AppendRow(rows[static_cast<size_t>(id)]);
    }
    pos_ += n;
    if (b.num_rows == 0) return Next(out);  // all ids stale; try next slice
    *out = std::move(b);
    return true;
  }

 private:
  const IndexScanNode& node_;
  ExecContext* ctx_;
  bool initialized_ = false;
  std::vector<uint64_t> ids_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

class FilterOp : public BatchOperator {
 public:
  FilterOp(BatchOperatorPtr child, const BoundExpr* pred)
      : child_(std::move(child)), pred_(pred) {}

  Result<bool> Next(Batch* out) override {
    Batch in;
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) return false;
      MAYBMS_ASSIGN_OR_RETURN(Batch filtered, FilterBatch(*pred_, std::move(in)));
      if (filtered.num_rows == 0) {
        in = Batch();
        continue;
      }
      *out = std::move(filtered);
      return true;
    }
  }

 private:
  BatchOperatorPtr child_;
  const BoundExpr* pred_;
};

// ---------------------------------------------------------------------------
// Morsel-driven parallel map: the parallel engine's Filter and Project.
// Drains the child, splits into morsels, applies the (pure, thread-safe)
// transform per morsel on the pool, and emits the surviving results in
// morsel order — bit-for-bit the serial operators' output order. Trades
// streaming for parallelism: the morsels (and their transforms) are
// resident at once, like the engine's other pipeline breakers.
// ---------------------------------------------------------------------------

class MorselMapOp : public MaterializedOperator {
 public:
  // trace_node_ is captured at build time: ctx->trace_parent points at THIS
  // operator's trace node while its plan node is being built, but the field
  // is rewound as the build recursion unwinds — Compute() runs much later.
  MorselMapOp(BatchOperatorPtr child, ExecContext* ctx)
      : child_(std::move(child)), ctx_(ctx), trace_node_(ctx->trace_parent) {}

 protected:
  // Morsels are single-use: taken by value so transforms move instead of
  // copying the condition column.
  virtual Result<Batch> Transform(Batch morsel) const = 0;

  Status Compute() override {
    MAYBMS_ASSIGN_OR_RETURN(std::vector<Batch> morsels,
                            DrainMorsels(child_.get(), MorselRows(ctx_)));
    size_t n = morsels.size();
    if (ctx_->metrics != nullptr) {
      ctx_->metrics->Add(Counter::kBatchMorsels, n);
    }
    if (trace_node_ != nullptr) trace_node_->morsels += n;
    std::vector<Batch> outs(n);
    MAYBMS_RETURN_NOT_OK(ctx_->pool->ParallelForStatus(0, n, [&](size_t i) {
      MAYBMS_ASSIGN_OR_RETURN(outs[i], Transform(std::move(morsels[i])));
      return Status::OK();
    }));
    for (Batch& out : outs) {
      if (out.num_rows > 0) ready_.push_back(std::move(out));
    }
    return Status::OK();
  }

  BatchOperatorPtr child_;
  ExecContext* ctx_;
  TraceNode* trace_node_;
};

class ParallelFilterOp final : public MorselMapOp {
 public:
  ParallelFilterOp(BatchOperatorPtr child, const BoundExpr* pred, ExecContext* ctx)
      : MorselMapOp(std::move(child), ctx), pred_(pred) {}

 protected:
  Result<Batch> Transform(Batch morsel) const override {
    return FilterBatch(*pred_, std::move(morsel));
  }

 private:
  const BoundExpr* pred_;
};

// ---------------------------------------------------------------------------
// Project (including tconf(): per-row marginal probability from the
// condition column, output t-certain)
// ---------------------------------------------------------------------------

// One batch through a projection: shared by the serial (streaming) and
// parallel (morsel-map) operators. Reads the world table and constraint
// store only through const lookups, so it is safe to run concurrently on
// distinct batches.
Result<Batch> ProjectBatch(const ProjectNode& node, const ExecContext& ctx,
                           Batch in) {
  const WorldTable& wt = ctx.worlds();
  const ConstraintStore& cs = ctx.constraints();
  Batch out;
  out.columns.reserve(node.exprs.size());
  for (const BoundExprPtr& e : node.exprs) {
    if (e->kind == BoundExprKind::kTconf) {
      // tconf(): the marginal probability of this tuple in isolation —
      // the product of its condition's atom probabilities (§2.2),
      // computed straight off the packed condition spans. Under asserted
      // evidence this becomes the posterior marginal P(cond | C).
      auto col = std::make_shared<ColumnVector>(TypeId::kDouble);
      col->Reserve(in.num_rows);
      for (size_t k = 0; k < in.num_rows; ++k) {
        AtomSpan span = in.conditions.Span(k);
        MAYBMS_ASSIGN_OR_RETURN(
            double p, PosteriorConditionProb(span.data, span.size, cs, wt,
                                             ctx.options->exact));
        col->AppendDouble(p);
      }
      out.columns.push_back(std::move(col));
    } else {
      MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*e, in));
      out.columns.push_back(std::move(col));
    }
  }
  out.num_rows = in.num_rows;
  if (node.has_tconf) {
    // tconf() maps uncertain to t-certain: conditions are consumed.
    for (size_t k = 0; k < in.num_rows; ++k) out.conditions.AppendTrue();
  } else {
    out.conditions = std::move(in.conditions);
  }
  return out;
}

class ProjectOp : public BatchOperator {
 public:
  ProjectOp(BatchOperatorPtr child, const ProjectNode& node, ExecContext* ctx)
      : child_(std::move(child)), node_(node), ctx_(ctx) {}

  Result<bool> Next(Batch* out) override {
    Batch in;
    MAYBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    MAYBMS_ASSIGN_OR_RETURN(*out, ProjectBatch(node_, *ctx_, std::move(in)));
    return true;
  }

 private:
  BatchOperatorPtr child_;
  const ProjectNode& node_;
  ExecContext* ctx_;
};

class ParallelProjectOp final : public MorselMapOp {
 public:
  ParallelProjectOp(BatchOperatorPtr child, const ProjectNode& node,
                    ExecContext* ctx)
      : MorselMapOp(std::move(child), ctx), node_(node) {}

 protected:
  Result<Batch> Transform(Batch morsel) const override {
    return ProjectBatch(node_, *ctx_, std::move(morsel));
  }

 private:
  const ProjectNode& node_;
};

// ---------------------------------------------------------------------------
// Join: hash join (equi-keys) or cross product, with the parsimonious
// condition merge and an optional residual predicate.
// ---------------------------------------------------------------------------

class JoinOp : public BatchOperator {
 public:
  JoinOp(BatchOperatorPtr left, BatchOperatorPtr right, const JoinNode& node,
         ExecContext* ctx)
      : left_(std::move(left)), right_(std::move(right)), node_(node), ctx_(ctx) {}

  Result<bool> Next(Batch* out) override {
    if (!built_) {
      MAYBMS_RETURN_NOT_OK(Build());
      built_ = true;
    }
    Batch in;
    while (true) {
      // Parallel probes yield one output batch per left-row morsel; hand
      // them out in morsel order (batch boundaries are semantically
      // invisible — row order is what parity pins down).
      if (!pending_.empty()) {
        *out = std::move(pending_.front());
        pending_.pop_front();
        return true;
      }
      MAYBMS_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
      if (!more) return false;
      MAYBMS_ASSIGN_OR_RETURN(std::vector<Batch> joined, JoinLeftBatch(in));
      for (Batch& b : joined) {
        if (node_.residual != nullptr && b.num_rows > 0) {
          MAYBMS_ASSIGN_OR_RETURN(b, FilterBatch(*node_.residual, std::move(b)));
        }
        if (b.num_rows > 0) pending_.push_back(std::move(b));
      }
      in = Batch();
    }
  }

 private:
  // Hash partitioning (parallel build): partition by the hash's HIGH bits
  // — HashRowIndex buckets by the low bits, so the two stay independent.
  // The partition count is fixed; a row's partition never depends on the
  // thread count.
  static constexpr size_t kPartitionBits = 6;
  static constexpr size_t kPartitions = size_t{1} << kPartitionBits;
  static size_t PartitionOf(uint64_t h) { return h >> (64 - kPartitionBits); }

  Status Build() {
    // EmitPair reads conditions from the per-batch columns; skip the
    // concatenated copy.
    MAYBMS_ASSIGN_OR_RETURN(right_data_,
                            DrainAll(right_.get(), /*concat_conds=*/false));
    if (node_.left_keys.empty()) return Status::OK();  // cross product
    if (ctx_->pool != nullptr) return BuildParallel();
    right_key_cols_.reserve(right_data_.batches.size());
    for (const Batch& b : right_data_.batches) {
      std::vector<ColumnVectorPtr> keys;
      keys.reserve(node_.right_keys.size());
      for (const BoundExprPtr& e : node_.right_keys) {
        MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*e, b));
        keys.push_back(std::move(col));
      }
      right_key_cols_.push_back(std::move(keys));
    }
    index_ = HashRowIndex(right_data_.num_rows);
    std::vector<Value> key(node_.right_keys.size());
    for (size_t row = 0; row < right_data_.num_rows; ++row) {
      uint32_t b = right_data_.row_batch[row];
      uint32_t i = right_data_.row_idx[row];
      bool has_null = false;
      for (size_t k = 0; k < key.size(); ++k) {
        key[k] = right_key_cols_[b][k]->GetValue(i);
        has_null |= key[k].is_null();
      }
      if (has_null) continue;  // SQL equality: null joins nothing
      index_.Insert(HashValueSpan(key.data(), key.size()),
                    static_cast<uint32_t>(row));
    }
    return Status::OK();
  }

  // Partitioned parallel build: key columns evaluate per batch on the
  // pool, rows radix-partition by hash, and each partition's index builds
  // independently — inserting in global row order, so every partition
  // reproduces the serial index's per-key candidate order.
  Status BuildParallel() {
    ThreadPool* pool = ctx_->pool;
    size_t num_batches = right_data_.batches.size();
    right_key_cols_.assign(num_batches, {});
    MAYBMS_RETURN_NOT_OK(pool->ParallelForStatus(0, num_batches, [&](size_t i) {
      std::vector<ColumnVectorPtr> keys;
      keys.reserve(node_.right_keys.size());
      for (const BoundExprPtr& e : node_.right_keys) {
        MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                                EvalVector(*e, right_data_.batches[i]));
        keys.push_back(std::move(col));
      }
      right_key_cols_[i] = std::move(keys);
      return Status::OK();
    }));

    // Hash every right row (null keys never join).
    size_t num_rows = right_data_.num_rows;
    right_hash_.assign(num_rows, 0);
    right_skip_.assign(num_rows, 0);
    size_t morsel = std::min(MorselRows(ctx_), std::max<size_t>(num_rows, 1));
    pool->ParallelFor(0, num_rows, morsel, [&](size_t begin, size_t end) {
      std::vector<Value> key(node_.right_keys.size());
      for (size_t row = begin; row < end; ++row) {
        uint32_t b = right_data_.row_batch[row];
        uint32_t i = right_data_.row_idx[row];
        bool has_null = false;
        for (size_t k = 0; k < key.size(); ++k) {
          key[k] = right_key_cols_[b][k]->GetValue(i);
          has_null |= key[k].is_null();
        }
        if (has_null) {
          right_skip_[row] = 1;
          continue;
        }
        right_hash_[row] = HashValueSpan(key.data(), key.size());
      }
    });

    // Radix partition: per-morsel buckets (parallel), then one index per
    // partition built from the morsel buckets in morsel order (parallel
    // across partitions — the "partitioned parallel hash-join build").
    size_t num_morsels = (num_rows + morsel - 1) / morsel;
    std::vector<std::vector<std::vector<uint32_t>>> buckets(num_morsels);
    pool->ParallelFor(0, num_morsels, 1, [&](size_t begin, size_t end) {
      for (size_t m = begin; m < end; ++m) {
        std::vector<std::vector<uint32_t>>& local = buckets[m];
        local.resize(kPartitions);
        size_t row_begin = m * morsel;
        size_t row_end = std::min(num_rows, row_begin + morsel);
        for (size_t row = row_begin; row < row_end; ++row) {
          if (right_skip_[row]) continue;
          local[PartitionOf(right_hash_[row])].push_back(
              static_cast<uint32_t>(row));
        }
      }
    });
    part_index_.assign(kPartitions, HashRowIndex());
    pool->ParallelFor(0, kPartitions, 1, [&](size_t begin, size_t end) {
      for (size_t p = begin; p < end; ++p) {
        size_t total = 0;
        for (const auto& local : buckets) total += local[p].size();
        HashRowIndex index(total);
        for (const auto& local : buckets) {
          for (uint32_t row : local[p]) index.Insert(right_hash_[row], row);
        }
        part_index_[p] = std::move(index);
      }
    });
    partitioned_ = true;
    return Status::OK();
  }

  // Appends left row `li` of `lb` joined with global right row `row`,
  // unless their conditions are inconsistent.
  void EmitPair(const Batch& lb, size_t li, size_t row, Batch* out) {
    uint32_t b = right_data_.row_batch[row];
    uint32_t ri = right_data_.row_idx[row];
    const Batch& rb = right_data_.batches[b];
    // Merge the condition columns first; inconsistent pairs drop out
    // [ICDE'08] before any values are copied.
    if (!out->conditions.AppendMerged(lb.conditions.Span(li),
                                      rb.conditions.Span(ri))) {
      return;
    }
    size_t lcols = lb.columns.size();
    for (size_t c = 0; c < lcols; ++c) {
      out->columns[c]->Append(lb.columns[c]->GetValue(li));
    }
    for (size_t c = 0; c < rb.columns.size(); ++c) {
      out->columns[lcols + c]->Append(rb.columns[c]->GetValue(ri));
    }
    ++out->num_rows;
  }

  // Probes left rows [begin, end): thread-safe (only touches *out and
  // read-only build state). Candidates sort into build-insertion (= right
  // input) order, like the row engine's per-key bucket vectors — and like
  // the serial single index, since every partition inserts in global row
  // order.
  Result<Batch> ProbeRange(const Batch& lb,
                           const std::vector<ColumnVectorPtr>& left_keys,
                           size_t begin, size_t end) {
    Batch out = AllocateOutput(node_.output_schema);
    std::vector<Value> key(left_keys.size());
    std::vector<uint32_t> candidates;
    for (size_t li = begin; li < end; ++li) {
      bool has_null = false;
      for (size_t k = 0; k < left_keys.size(); ++k) {
        key[k] = left_keys[k]->GetValue(li);
        has_null |= key[k].is_null();
      }
      if (has_null) continue;
      uint64_t h = HashValueSpan(key.data(), key.size());
      const HashRowIndex& index = partitioned_ ? part_index_[PartitionOf(h)] : index_;
      candidates.clear();
      index.ForEach(h, [&](uint32_t row) {
        candidates.push_back(row);
        return true;
      });
      std::sort(candidates.begin(), candidates.end());
      for (uint32_t row : candidates) {
        uint32_t b = right_data_.row_batch[row];
        uint32_t ri = right_data_.row_idx[row];
        bool match = true;
        for (size_t k = 0; k < key.size(); ++k) {
          if (!key[k].Equals(right_key_cols_[b][k]->GetValue(ri))) {
            match = false;
            break;
          }
        }
        if (match) EmitPair(lb, li, row, &out);
      }
    }
    return out;
  }

  Batch CrossRange(const Batch& lb, size_t begin, size_t end) {
    Batch out = AllocateOutput(node_.output_schema);
    for (size_t li = begin; li < end; ++li) {
      for (size_t row = 0; row < right_data_.num_rows; ++row) {
        EmitPair(lb, li, row, &out);
      }
    }
    return out;
  }

  // Probes one left batch across left-row morsels on the pool. Each
  // morsel's output stays its own batch, returned in morsel order — the
  // serial row order, with no second copy to merge them. A left batch is
  // at most one scan chunk (<= the default morsel_size), so probe morsels
  // split each batch kProbeSplit ways — a FIXED fan-out, independent of
  // the thread count, or probes would never parallelize at defaults.
  template <typename RangeFn>
  Result<std::vector<Batch>> ParallelOverLeftRows(const Batch& lb,
                                                  RangeFn&& range_fn) {
    constexpr size_t kProbeSplit = 8;
    size_t morsel = std::max<size_t>(
        1, std::min(MorselRows(ctx_),
                    (lb.num_rows + kProbeSplit - 1) / kProbeSplit));
    size_t num_morsels = (lb.num_rows + morsel - 1) / morsel;
    std::vector<Batch> outs(num_morsels);
    std::vector<Status> statuses(num_morsels, Status::OK());
    ctx_->pool->ParallelFor(0, lb.num_rows, morsel, [&](size_t begin, size_t end) {
      size_t m = begin / morsel;
      Result<Batch> r = range_fn(begin, end);
      if (r.ok()) {
        outs[m] = std::move(*r);
      } else {
        statuses[m] = r.status();
      }
    });
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return outs;
  }

  Result<std::vector<Batch>> JoinLeftBatch(const Batch& lb) {
    std::vector<Batch> out;
    if (node_.left_keys.empty()) {
      if (ctx_->pool == nullptr) {
        out.push_back(CrossRange(lb, 0, lb.num_rows));
        return out;
      }
      return ParallelOverLeftRows(lb, [&](size_t begin, size_t end) {
        return Result<Batch>(CrossRange(lb, begin, end));
      });
    }
    std::vector<ColumnVectorPtr> left_keys;
    left_keys.reserve(node_.left_keys.size());
    for (const BoundExprPtr& e : node_.left_keys) {
      MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*e, lb));
      left_keys.push_back(std::move(col));
    }
    if (ctx_->pool == nullptr) {
      MAYBMS_ASSIGN_OR_RETURN(Batch joined, ProbeRange(lb, left_keys, 0, lb.num_rows));
      out.push_back(std::move(joined));
      return out;
    }
    return ParallelOverLeftRows(lb, [&](size_t begin, size_t end) {
      return ProbeRange(lb, left_keys, begin, end);
    });
  }

  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  const JoinNode& node_;
  ExecContext* ctx_;
  bool built_ = false;
  std::deque<Batch> pending_;  // parallel probe outputs awaiting hand-out
  Drained right_data_;
  std::vector<std::vector<ColumnVectorPtr>> right_key_cols_;  // per batch
  HashRowIndex index_;                     // serial build
  bool partitioned_ = false;               // parallel build used part_index_
  std::vector<HashRowIndex> part_index_;   // kPartitions indexes
  std::vector<uint64_t> right_hash_;       // per global right row
  std::vector<uint8_t> right_skip_;        // 1 = null key, never joins
};

// ---------------------------------------------------------------------------
// SemiJoinIn: IN / NOT IN (subquery) with condition merging.
// ---------------------------------------------------------------------------

class SemiJoinInOp : public BatchOperator {
 public:
  SemiJoinInOp(BatchOperatorPtr left, BatchOperatorPtr right,
               const SemiJoinInNode& node)
      : left_(std::move(left)), right_(std::move(right)), node_(node) {}

  Result<bool> Next(Batch* out) override {
    if (!built_) {
      MAYBMS_RETURN_NOT_OK(Build());
      built_ = true;
    }
    Batch in;
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
      if (!more) return false;
      MAYBMS_ASSIGN_OR_RETURN(Batch result, ProbeLeftBatch(in));
      if (result.num_rows == 0) {
        in = Batch();
        continue;
      }
      *out = std::move(result);
      return true;
    }
  }

 private:
  Status Build() {
    // Key value -> the conditions under which it appears on the right;
    // identical conditions deduplicate, a true condition subsumes all.
    MAYBMS_ASSIGN_OR_RETURN(Drained right, DrainAll(right_.get()));
    for (size_t row = 0; row < right.num_rows; ++row) {
      Value key = right.GetValue(0, row);
      if (key.is_null()) continue;
      uint64_t h = HashValueSpan(&key, 1);
      uint32_t entry = HashRowIndex::kNoRow;
      index_.ForEach(h, [&](uint32_t e) {
        if (keys_[e].Equals(key)) {
          entry = e;
          return false;
        }
        return true;
      });
      if (entry == HashRowIndex::kNoRow) {
        entry = static_cast<uint32_t>(keys_.size());
        keys_.push_back(std::move(key));
        conds_.emplace_back();
        index_.Insert(h, entry);
      }
      std::vector<Condition>& conds = conds_[entry];
      if (!conds.empty() && conds.front().IsTrue()) continue;
      Condition cond = right.conds.ToCondition(row);
      if (cond.IsTrue()) {
        conds.clear();
        conds.push_back(Condition());
        continue;
      }
      if (std::find(conds.begin(), conds.end(), cond) == conds.end()) {
        conds.push_back(std::move(cond));
      }
    }
    return Status::OK();
  }

  Result<Batch> ProbeLeftBatch(const Batch& lb) {
    Batch out = AllocateOutput(node_.output_schema);
    MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr key_col,
                            EvalVector(*node_.left_key, lb));
    for (size_t li = 0; li < lb.num_rows; ++li) {
      Value key = key_col->GetValue(li);
      if (key.is_null()) continue;  // null never matches IN / NOT IN
      uint32_t entry = HashRowIndex::kNoRow;
      index_.ForEach(HashValueSpan(&key, 1), [&](uint32_t e) {
        if (keys_[e].Equals(key)) {
          entry = e;
          return false;
        }
        return true;
      });
      if (node_.anti) {
        // NOT IN: binder guarantees the right side is t-certain.
        if (entry == HashRowIndex::kNoRow) AppendRow(lb, li, nullptr, &out);
        continue;
      }
      if (entry == HashRowIndex::kNoRow) continue;
      for (const Condition& cond : conds_[entry]) {
        AppendRow(lb, li, &cond, &out);
      }
    }
    return out;
  }

  // Appends left row li; when `cond` is given, merges it into the row's
  // condition (skipping the row on inconsistency).
  void AppendRow(const Batch& lb, size_t li, const Condition* cond, Batch* out) {
    AtomSpan left_span = lb.conditions.Span(li);
    if (cond == nullptr) {
      out->conditions.AppendAtoms(left_span);
    } else {
      AtomSpan right_span{cond->atoms().data(), cond->atoms().size()};
      if (!out->conditions.AppendMerged(left_span, right_span)) return;
    }
    for (size_t c = 0; c < lb.columns.size(); ++c) {
      out->columns[c]->Append(lb.columns[c]->GetValue(li));
    }
    ++out->num_rows;
  }

  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  const SemiJoinInNode& node_;
  bool built_ = false;
  HashRowIndex index_;
  std::vector<Value> keys_;
  std::vector<std::vector<Condition>> conds_;
};

// ---------------------------------------------------------------------------
// SemiJoinReduce: optimizer-inserted annotated semijoin reducer (src/opt/).
// Drains the key source (child 1), indexes its key tuples with the
// conditions they appear under, then streams the source (child 0) through,
// keeping exactly the rows some key tuple matches under a consistent
// condition merge. Survivors keep their ORIGINAL values, conditions, and
// relative order, so the later full hash join's output is unchanged.
// ---------------------------------------------------------------------------

class SemiJoinReduceOp : public BatchOperator {
 public:
  SemiJoinReduceOp(BatchOperatorPtr source, BatchOperatorPtr key_source,
                   const SemiJoinReduceNode& node)
      : source_(std::move(source)), keys_in_(std::move(key_source)), node_(node) {}

  Result<bool> Next(Batch* out) override {
    if (!built_) {
      MAYBMS_RETURN_NOT_OK(Build());
      built_ = true;
    }
    Batch in;
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(bool more, source_->Next(&in));
      if (!more) return false;
      MAYBMS_ASSIGN_OR_RETURN(Batch result, ReduceBatch(in));
      if (result.num_rows == 0) {
        in = Batch();
        continue;
      }
      *out = std::move(result);
      return true;
    }
  }

 private:
  Status Build() {
    // Key tuple -> the conditions under which it appears in the key source;
    // identical conditions deduplicate, a true condition subsumes all (the
    // SemiJoinIn idiom, generalized to multi-column keys).
    MAYBMS_ASSIGN_OR_RETURN(Drained keys, DrainAll(keys_in_.get()));
    const size_t nk = node_.keys.size();
    std::vector<Value> key(nk);
    for (size_t row = 0; row < keys.num_rows; ++row) {
      bool has_null = false;
      for (size_t k = 0; k < nk; ++k) {
        key[k] = keys.GetValue(k, row);
        has_null |= key[k].is_null();
      }
      if (has_null) continue;  // SQL equality: null joins nothing
      uint64_t h = HashValueSpan(key.data(), nk);
      uint32_t entry = FindEntry(h, key);
      if (entry == HashRowIndex::kNoRow) {
        entry = static_cast<uint32_t>(conds_.size());
        for (size_t k = 0; k < nk; ++k) keys_.push_back(key[k]);
        conds_.emplace_back();
        index_.Insert(h, entry);
      }
      std::vector<Condition>& conds = conds_[entry];
      if (!conds.empty() && conds.front().IsTrue()) continue;
      Condition cond = keys.conds.ToCondition(row);
      if (cond.IsTrue()) {
        conds.clear();
        conds.push_back(Condition());
        continue;
      }
      if (std::find(conds.begin(), conds.end(), cond) == conds.end()) {
        conds.push_back(std::move(cond));
      }
    }
    return Status::OK();
  }

  uint32_t FindEntry(uint64_t h, const std::vector<Value>& key) const {
    const size_t nk = key.size();
    uint32_t entry = HashRowIndex::kNoRow;
    index_.ForEach(h, [&](uint32_t e) {
      for (size_t k = 0; k < nk; ++k) {
        if (!keys_[e * nk + k].Equals(key[k])) return true;
      }
      entry = e;
      return false;
    });
    return entry;
  }

  /// Would merging the span with the condition be consistent? Both atom
  /// lists are sorted by variable with at most one atom per variable.
  static bool MergeConsistent(AtomSpan a, const Condition& cond) {
    const std::vector<Atom>& b = cond.atoms();
    size_t bi = 0;
    for (size_t ai = 0; ai < a.size; ++ai) {
      while (bi < b.size() && b[bi].var < a[ai].var) ++bi;
      if (bi < b.size() && b[bi].var == a[ai].var && b[bi].asg != a[ai].asg) {
        return false;
      }
    }
    return true;
  }

  Result<Batch> ReduceBatch(const Batch& in) {
    Batch out = AllocateOutput(node_.output_schema);
    const size_t nk = node_.keys.size();
    std::vector<ColumnVectorPtr> key_cols;
    key_cols.reserve(nk);
    for (const BoundExprPtr& e : node_.keys) {
      MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*e, in));
      key_cols.push_back(std::move(col));
    }
    std::vector<Value> key(nk);
    for (size_t i = 0; i < in.num_rows; ++i) {
      bool has_null = false;
      for (size_t k = 0; k < nk; ++k) {
        key[k] = key_cols[k]->GetValue(i);
        has_null |= key[k].is_null();
      }
      if (has_null) continue;
      uint32_t entry = FindEntry(HashValueSpan(key.data(), nk), key);
      if (entry == HashRowIndex::kNoRow) continue;
      AtomSpan span = in.conditions.Span(i);
      bool consistent = false;
      for (const Condition& cond : conds_[entry]) {
        if (MergeConsistent(span, cond)) {
          consistent = true;
          break;
        }
      }
      if (!consistent) continue;
      out.conditions.AppendAtoms(span);
      for (size_t c = 0; c < in.columns.size(); ++c) {
        out.columns[c]->Append(in.columns[c]->GetValue(i));
      }
      ++out.num_rows;
    }
    return out;
  }

  BatchOperatorPtr source_;
  BatchOperatorPtr keys_in_;
  const SemiJoinReduceNode& node_;
  bool built_ = false;
  HashRowIndex index_;
  std::vector<Value> keys_;  // nk values per entry, flattened
  std::vector<std::vector<Condition>> conds_;
};

// ---------------------------------------------------------------------------
// Duplicate elimination (Distinct / deduplicating Union / Possible): an
// accumulated value-row set over an open-addressed index.
// ---------------------------------------------------------------------------

class DedupAccumulator {
 public:
  explicit DedupAccumulator(const Schema& schema) : acc_(AllocateOutput(schema)) {}

  /// True if the value row was new (and was appended).
  bool Add(const Batch& in, size_t row) {
    size_t ncols = in.columns.size();
    key_.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) key_[c] = in.columns[c]->GetValue(row);
    uint64_t h = HashValueSpan(key_.data(), key_.size());
    bool dup = false;
    index_.ForEach(h, [&](uint32_t prev) {
      for (size_t c = 0; c < ncols; ++c) {
        if (!acc_.columns[c]->GetValue(prev).Equals(key_[c])) return true;
      }
      dup = true;
      return false;
    });
    if (dup) return false;
    index_.Insert(h, static_cast<uint32_t>(acc_.num_rows));
    for (size_t c = 0; c < ncols; ++c) acc_.columns[c]->Append(key_[c]);
    ++acc_.num_rows;
    return true;
  }

  /// The accumulated distinct value rows (conditions owed by the caller).
  Batch& batch() { return acc_; }

 private:
  Batch acc_;
  HashRowIndex index_;
  std::vector<Value> key_;
};

class DistinctOp : public MaterializedOperator {
 public:
  DistinctOp(BatchOperatorPtr child, const DistinctNode& node)
      : child_(std::move(child)), node_(node) {}

 protected:
  Status Compute() override {
    DedupAccumulator acc(node_.output_schema);
    ConditionColumn conds;
    Batch in;
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) break;
      for (size_t i = 0; i < in.num_rows; ++i) {
        // First-occurrence row (values AND its condition) survives,
        // matching the row engine.
        if (acc.Add(in, i)) conds.AppendFrom(in.conditions, i);
      }
      in = Batch();
    }
    acc.batch().conditions = std::move(conds);
    ready_.push_back(std::move(acc.batch()));
    return Status::OK();
  }

 private:
  BatchOperatorPtr child_;
  const DistinctNode& node_;
};

class UnionOp : public MaterializedOperator {
 public:
  UnionOp(BatchOperatorPtr left, BatchOperatorPtr right, const UnionNode& node)
      : left_(std::move(left)), right_(std::move(right)), node_(node) {}

 protected:
  Status Compute() override {
    if (!node_.deduplicate) {
      Batch in;
      for (BatchOperator* side : {left_.get(), right_.get()}) {
        while (true) {
          MAYBMS_ASSIGN_OR_RETURN(bool more, side->Next(&in));
          if (!more) break;
          ready_.push_back(std::move(in));
          in = Batch();
        }
      }
      return Status::OK();
    }
    DedupAccumulator acc(node_.output_schema);
    ConditionColumn conds;
    Batch in;
    for (BatchOperator* side : {left_.get(), right_.get()}) {
      while (true) {
        MAYBMS_ASSIGN_OR_RETURN(bool more, side->Next(&in));
        if (!more) break;
        for (size_t i = 0; i < in.num_rows; ++i) {
          if (acc.Add(in, i)) conds.AppendFrom(in.conditions, i);
        }
        in = Batch();
      }
    }
    acc.batch().conditions = std::move(conds);
    ready_.push_back(std::move(acc.batch()));
    return Status::OK();
  }

 private:
  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  const UnionNode& node_;
};

// possible: filter probability-zero tuples, eliminate duplicates, output
// t-certain (§2.2).
class PossibleOp : public MaterializedOperator {
 public:
  PossibleOp(BatchOperatorPtr child, const PossibleNode& node, ExecContext* ctx)
      : child_(std::move(child)), node_(node), ctx_(ctx) {}

 protected:
  Status Compute() override {
    DedupAccumulator acc(node_.output_schema);
    const WorldTable& wt = ctx_->worlds();
    // Under evidence a tuple is possible iff P(cond ∧ C) > 0; with no
    // evidence CompatiblePositive is exactly the P(cond) > 0 check.
    const ConstraintStore& cs = ctx_->constraints();
    if (ctx_->pool != nullptr) {
      // The per-row probability check is pure — run it over morsels; the
      // order-sensitive dedup then folds the keep-mask serially.
      MAYBMS_ASSIGN_OR_RETURN(Drained in, DrainAll(child_.get()));
      std::vector<uint8_t> keep(in.num_rows, 0);
      if (in.num_rows > 0) {
        ctx_->pool->ParallelFor(
            0, in.num_rows, std::min(MorselRows(ctx_), in.num_rows),
            [&](size_t begin, size_t end) {
              for (size_t row = begin; row < end; ++row) {
                AtomSpan span = in.conds.Span(row);
                keep[row] = cs.CompatiblePositive(span.data, span.size, wt) ? 1 : 0;
              }
            });
      }
      for (size_t row = 0; row < in.num_rows; ++row) {
        if (!keep[row]) continue;
        acc.Add(in.batches[in.row_batch[row]], in.row_idx[row]);
      }
    } else {
      Batch in;
      while (true) {
        MAYBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
        if (!more) break;
        for (size_t i = 0; i < in.num_rows; ++i) {
          AtomSpan span = in.conditions.Span(i);
          if (!cs.CompatiblePositive(span.data, span.size, wt)) continue;
          acc.Add(in, i);
        }
        in = Batch();
      }
    }
    Batch& b = acc.batch();
    for (size_t i = 0; i < b.num_rows; ++i) b.conditions.AppendTrue();
    ready_.push_back(std::move(b));
    return Status::OK();
  }

 private:
  BatchOperatorPtr child_;
  const PossibleNode& node_;
  ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// Sort / Limit
// ---------------------------------------------------------------------------

class SortOp : public MaterializedOperator {
 public:
  SortOp(BatchOperatorPtr child, const SortNode& node, ExecContext* ctx)
      : child_(std::move(child)), node_(node), ctx_(ctx) {}

 protected:
  Status Compute() override {
    MAYBMS_ASSIGN_OR_RETURN(Drained in, DrainAll(child_.get()));
    // Precompute sort keys, column-at-a-time per batch (parallel across
    // batches; the stable sort itself stays serial — a barrier).
    std::vector<std::vector<ColumnVectorPtr>> key_cols;  // [key][batch]
    key_cols.reserve(node_.keys.size());
    for (const SortNode::Key& k : node_.keys) {
      MAYBMS_ASSIGN_OR_RETURN(std::vector<ColumnVectorPtr> cols,
                              EvalPerBatch(*k.expr, in, ctx_->pool));
      key_cols.push_back(std::move(cols));
    }
    std::vector<uint32_t> order(in.num_rows);
    for (size_t i = 0; i < in.num_rows; ++i) order[i] = static_cast<uint32_t>(i);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      for (size_t k = 0; k < node_.keys.size(); ++k) {
        Value va = key_cols[k][in.row_batch[a]]->GetValue(in.row_idx[a]);
        Value vb = key_cols[k][in.row_batch[b]]->GetValue(in.row_idx[b]);
        int c = va.Compare(vb);
        if (c != 0) return node_.keys[k].descending ? c > 0 : c < 0;
      }
      return false;
    });
    Batch out = AllocateOutput(node_.output_schema);
    for (uint32_t row : order) {
      const Batch& b = in.batches[in.row_batch[row]];
      uint32_t i = in.row_idx[row];
      for (size_t c = 0; c < b.columns.size(); ++c) {
        out.columns[c]->Append(b.columns[c]->GetValue(i));
      }
      out.conditions.AppendFrom(in.conds, row);
      ++out.num_rows;
    }
    ready_.push_back(std::move(out));
    return Status::OK();
  }

 private:
  BatchOperatorPtr child_;
  const SortNode& node_;
  ExecContext* ctx_;
};

class LimitOp : public BatchOperator {
 public:
  LimitOp(BatchOperatorPtr child, const LimitNode& node)
      : child_(std::move(child)), remaining_(node.limit) {}

  Result<bool> Next(Batch* out) override {
    if (remaining_ == 0) return Drain();
    Batch in;
    MAYBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    if (remaining_ < 0 || static_cast<size_t>(remaining_) >= in.num_rows) {
      if (remaining_ >= 0) remaining_ -= static_cast<int64_t>(in.num_rows);
      *out = std::move(in);
      return true;
    }
    std::vector<uint32_t> sel(static_cast<size_t>(remaining_));
    for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint32_t>(i);
    *out = GatherBatch(in, sel);
    remaining_ = 0;
    return true;
  }

 private:
  // The row engine materializes the child fully before truncating, so its
  // side effects (pick-tuples/repair-key variable registration) and errors
  // past the cutoff still happen. Drain the rest for engine parity.
  Result<bool> Drain() {
    Batch in;
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) return false;
      in = Batch();
    }
  }

  BatchOperatorPtr child_;
  int64_t remaining_;  // negative = unlimited
};

// ---------------------------------------------------------------------------
// repair-key: group by the key attributes and introduce one finite random
// variable per multi-alternative group (paper §2.2 / Fig. 1).
// ---------------------------------------------------------------------------

class RepairKeyOp : public MaterializedOperator {
 public:
  RepairKeyOp(BatchOperatorPtr child, const RepairKeyNode& node, ExecContext* ctx)
      : child_(std::move(child)), node_(node), ctx_(ctx) {}

 protected:
  Status Compute() override {
    MAYBMS_ASSIGN_OR_RETURN(Drained in, DrainAll(child_.get()));

    // Group rows by the raw key attribute values, first-seen order.
    HashRowIndex group_index;
    std::vector<std::vector<uint32_t>> groups;
    std::vector<Value> key(node_.key_indices.size());
    for (size_t row = 0; row < in.num_rows; ++row) {
      for (size_t k = 0; k < node_.key_indices.size(); ++k) {
        key[k] = in.GetValue(node_.key_indices[k], row);
      }
      uint64_t h = HashValueSpan(key.data(), key.size());
      uint32_t found = HashRowIndex::kNoRow;
      group_index.ForEach(h, [&](uint32_t g) {
        uint32_t rep = groups[g][0];
        for (size_t k = 0; k < node_.key_indices.size(); ++k) {
          if (!in.GetValue(node_.key_indices[k], rep).Equals(key[k])) return true;
        }
        found = g;
        return false;
      });
      if (found != HashRowIndex::kNoRow) {
        groups[found].push_back(static_cast<uint32_t>(row));
      } else {
        group_index.Insert(h, static_cast<uint32_t>(groups.size()));
        groups.push_back({static_cast<uint32_t>(row)});
      }
    }

    // Evaluate weights column-at-a-time (default weight 1: uniform).
    // Grouping and variable registration stay serial: NewVariable order is
    // engine-observable state.
    std::vector<ColumnVectorPtr> weight_cols;
    if (node_.weight != nullptr) {
      MAYBMS_ASSIGN_OR_RETURN(weight_cols,
                              EvalPerBatch(*node_.weight, in, ctx_->pool));
    }
    auto weight_of = [&](uint32_t row) -> Result<double> {
      if (node_.weight == nullptr) return 1.0;
      Value v = weight_cols[in.row_batch[row]]->GetValue(in.row_idx[row]);
      if (v.is_null()) return 0.0;  // null weight: tuple cannot be chosen
      return v.ToDouble();
    };

    Batch out = AllocateOutput(node_.output_schema);
    WorldTable& wt = ctx_->worlds();
    for (const std::vector<uint32_t>& members : groups) {
      std::vector<double> weights;
      std::vector<uint32_t> alive;
      double total = 0;
      for (uint32_t row : members) {
        MAYBMS_ASSIGN_OR_RETURN(double w, weight_of(row));
        if (std::isnan(w) || w < 0) {
          return Status::ExecutionError(StringFormat(
              "repair-key weight %g is negative or NaN (weights must be "
              "non-negative)", w));
        }
        if (w == 0) continue;  // zero-weight alternatives are dropped (Fig. 1)
        alive.push_back(row);
        weights.push_back(w);
        total += w;
      }
      if (alive.empty()) continue;  // whole group zero weight: no repair tuple
      if (alive.size() == 1) {
        // A single alternative is chosen with probability 1: no variable is
        // needed — the tuple is certain (semantically identical encoding).
        EmitRow(in, alive[0], in.conds.Span(alive[0]), &out);
        continue;
      }
      std::vector<double> probs;
      probs.reserve(weights.size());
      for (double w : weights) probs.push_back(w / total);
      MAYBMS_ASSIGN_OR_RETURN(VarId var, wt.NewVariable(std::move(probs), node_.label));
      for (size_t j = 0; j < alive.size(); ++j) {
        Atom atom{var, static_cast<AsgId>(j)};
        EmitRow(in, alive[j], AtomSpan{&atom, 1}, &out);
      }
    }
    ready_.push_back(std::move(out));
    return Status::OK();
  }

 private:
  void EmitRow(const Drained& in, uint32_t row, AtomSpan cond, Batch* out) {
    const Batch& b = in.batches[in.row_batch[row]];
    uint32_t i = in.row_idx[row];
    for (size_t c = 0; c < b.columns.size(); ++c) {
      out->columns[c]->Append(b.columns[c]->GetValue(i));
    }
    out->conditions.AppendAtoms(cond);
    ++out->num_rows;
  }

  BatchOperatorPtr child_;
  const RepairKeyNode& node_;
  ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// pick-tuples: a fresh Boolean variable per row (probability < 1).
// ---------------------------------------------------------------------------

class PickTuplesOp : public BatchOperator {
 public:
  PickTuplesOp(BatchOperatorPtr child, const PickTuplesNode& node, ExecContext* ctx)
      : child_(std::move(child)), node_(node), ctx_(ctx) {}

  Result<bool> Next(Batch* out) override {
    Batch in;
    MAYBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    ColumnVectorPtr prob_col;
    if (node_.probability != nullptr) {
      MAYBMS_ASSIGN_OR_RETURN(prob_col, EvalVector(*node_.probability, in));
    }
    WorldTable& wt = ctx_->worlds();
    ConditionColumn conds;
    for (size_t k = 0; k < in.num_rows; ++k) {
      double p = 0.5;  // default: all subsets, uniformly
      if (prob_col != nullptr) {
        Value v = prob_col->GetValue(k);
        if (v.is_null()) {
          p = 0;
        } else {
          MAYBMS_ASSIGN_OR_RETURN(p, v.ToDouble());
        }
      }
      if (std::isnan(p) || p < 0 || p > 1) {
        return Status::ExecutionError(
            StringFormat("pick-tuples probability %g outside [0,1]", p));
      }
      if (p == 1.0) {
        conds.AppendFrom(in.conditions, k);  // certain tuple, no variable
        continue;
      }
      MAYBMS_ASSIGN_OR_RETURN(VarId var, wt.NewBooleanVariable(p, node_.label));
      Atom atom{var, 1};
      conds.AppendAtoms(AtomSpan{&atom, 1});
    }
    out->columns = std::move(in.columns);
    out->conditions = std::move(conds);
    out->num_rows = in.num_rows;
    return true;
  }

 private:
  BatchOperatorPtr child_;
  const PickTuplesNode& node_;
  ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// Aggregate: group-by over materialized input; conf()/aconf() lineage is
// compiled per group straight from the concatenated condition column.
// ---------------------------------------------------------------------------

class AggregateOp : public MaterializedOperator {
 public:
  AggregateOp(BatchOperatorPtr child, const AggregateNode& node, ExecContext* ctx)
      : child_(std::move(child)), node_(node), ctx_(ctx) {}

 protected:
  Status Compute() override {
    MAYBMS_ASSIGN_OR_RETURN(Drained in, DrainAll(child_.get()));
    ThreadPool* pool = ctx_->pool;

    // Group rows, first-seen order.
    std::vector<std::vector<ColumnVectorPtr>> group_cols;  // [expr][batch]
    group_cols.reserve(node_.group_exprs.size());
    for (const BoundExprPtr& e : node_.group_exprs) {
      MAYBMS_ASSIGN_OR_RETURN(std::vector<ColumnVectorPtr> cols,
                              EvalPerBatch(*e, in, pool));
      group_cols.push_back(std::move(cols));
    }
    HashRowIndex group_index;
    std::vector<std::vector<uint32_t>> groups;
    std::vector<Value> group_keys;  // flattened, arity = #group_exprs
    size_t arity = node_.group_exprs.size();
    auto load_key = [&](size_t row, std::vector<Value>* key) {
      for (size_t k = 0; k < arity; ++k) {
        (*key)[k] = group_cols[k][in.row_batch[row]]->GetValue(in.row_idx[row]);
      }
    };
    // Appends rows to the group of `key` (creating it), serially. Returns
    // the group id.
    auto find_or_create = [&](const std::vector<Value>& key, uint64_t h) {
      uint32_t found = HashRowIndex::kNoRow;
      group_index.ForEach(h, [&](uint32_t g) {
        const Value* stored = group_keys.data() + static_cast<size_t>(g) * arity;
        for (size_t k = 0; k < arity; ++k) {
          if (!stored[k].Equals(key[k])) return true;
        }
        found = g;
        return false;
      });
      if (found == HashRowIndex::kNoRow) {
        found = static_cast<uint32_t>(groups.size());
        group_index.Insert(h, found);
        groups.emplace_back();
        group_keys.insert(group_keys.end(), key.begin(), key.end());
      }
      return found;
    };
    if (pool == nullptr) {
      std::vector<Value> key(arity);
      for (size_t row = 0; row < in.num_rows; ++row) {
        load_key(row, &key);
        uint32_t g = find_or_create(key, HashValueSpan(key.data(), arity));
        groups[g].push_back(static_cast<uint32_t>(row));
      }
    } else if (in.num_rows > 0) {
      // Per-thread partial grouping: each morsel groups its rows locally
      // (first-seen inside the morsel, members in row order); the partials
      // then merge at the barrier in morsel order. First occurrences meet
      // the global table in ascending row order, so group ids, key values,
      // and member lists come out exactly as in the serial loop.
      size_t morsel = std::min(MorselRows(ctx_), in.num_rows);
      size_t num_morsels = (in.num_rows + morsel - 1) / morsel;
      struct LocalGroups {
        std::vector<std::vector<uint32_t>> groups;  // local first-seen order
        std::vector<uint64_t> hashes;               // per local group
      };
      std::vector<LocalGroups> partials(num_morsels);
      pool->ParallelFor(0, in.num_rows, morsel, [&](size_t begin, size_t end) {
        LocalGroups& local = partials[begin / morsel];
        HashRowIndex local_index;
        std::vector<Value> key(arity);
        std::vector<Value> other(arity);
        for (size_t row = begin; row < end; ++row) {
          load_key(row, &key);
          uint64_t h = HashValueSpan(key.data(), arity);
          uint32_t found = HashRowIndex::kNoRow;
          local_index.ForEach(h, [&](uint32_t g) {
            load_key(local.groups[g][0], &other);
            for (size_t k = 0; k < arity; ++k) {
              if (!other[k].Equals(key[k])) return true;
            }
            found = g;
            return false;
          });
          if (found == HashRowIndex::kNoRow) {
            found = static_cast<uint32_t>(local.groups.size());
            local_index.Insert(h, found);
            local.groups.emplace_back();
            local.hashes.push_back(h);
          }
          local.groups[found].push_back(static_cast<uint32_t>(row));
        }
      });
      std::vector<Value> key(arity);
      for (const LocalGroups& local : partials) {
        for (size_t lg = 0; lg < local.groups.size(); ++lg) {
          load_key(local.groups[lg][0], &key);
          uint32_t g = find_or_create(key, local.hashes[lg]);
          groups[g].insert(groups[g].end(), local.groups[lg].begin(),
                           local.groups[lg].end());
        }
      }
    }
    // Global aggregate over an empty input still yields one (empty) group.
    if (groups.empty() && node_.group_exprs.empty()) groups.emplace_back();

    // Evaluate aggregate arguments column-at-a-time, once per batch.
    std::vector<std::vector<ColumnVectorPtr>> arg_cols(node_.aggregates.size());
    std::vector<std::vector<ColumnVectorPtr>> arg2_cols(node_.aggregates.size());
    for (size_t a = 0; a < node_.aggregates.size(); ++a) {
      if (node_.aggregates[a].arg != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(arg_cols[a],
                                EvalPerBatch(*node_.aggregates[a].arg, in, pool));
      }
      if (node_.aggregates[a].arg2 != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(arg2_cols[a],
                                EvalPerBatch(*node_.aggregates[a].arg2, in, pool));
      }
    }
    auto arg_value = [&](size_t a, uint32_t row) {
      return arg_cols[a][in.row_batch[row]]->GetValue(in.row_idx[row]);
    };
    auto arg2_value = [&](size_t a, uint32_t row) {
      return arg2_cols[a][in.row_batch[row]]->GetValue(in.row_idx[row]);
    };

    // esum/ecount consume the per-row marginal probability; compute the
    // whole column at most once, straight off the condition spans.
    std::vector<double> cond_probs;
    bool need_probs = false;
    for (const BoundAggregate& agg : node_.aggregates) {
      need_probs |= agg.kind == AggKind::kEsum || agg.kind == AggKind::kEcount;
    }
    const WorldTable& wt = ctx_->worlds();
    if (need_probs) {
      // Under asserted evidence the per-row marginal is the posterior
      // P(cond | C); PosteriorConditionProb is the prior product when the
      // store is inactive or the row's variables are untouched by it.
      const ConstraintStore& cs = ctx_->constraints();
      cond_probs.assign(in.num_rows, 0.0);
      auto fill = [&](size_t begin, size_t end) -> Status {
        for (size_t row = begin; row < end; ++row) {
          AtomSpan span = in.conds.Span(row);
          MAYBMS_ASSIGN_OR_RETURN(
              cond_probs[row],
              PosteriorConditionProb(span.data, span.size, cs, wt,
                                     ctx_->options->exact));
        }
        return Status::OK();
      };
      if (pool != nullptr && in.num_rows > 0) {
        size_t morsel = std::min(MorselRows(ctx_), in.num_rows);
        size_t num_morsels = (in.num_rows + morsel - 1) / morsel;
        MAYBMS_RETURN_NOT_OK(pool->ParallelForStatus(0, num_morsels, [&](size_t m) {
          return fill(m * morsel, std::min(in.num_rows, (m + 1) * morsel));
        }));
      } else {
        MAYBMS_RETURN_NOT_OK(fill(0, in.num_rows));
      }
    }

    // Per-group aggregate computation: the conf()/aconf() solvers dominate
    // here, and groups are independent — fan them out. Parallel aconf()
    // derives each group's base seed from its lineage content (no session
    // RNG involvement), so groups need no pre-drawn seed order.
    std::vector<std::vector<std::vector<Value>>> group_rows(groups.size());
    if (pool == nullptr) {
      for (size_t g = 0; g < groups.size(); ++g) {
        MAYBMS_ASSIGN_OR_RETURN(
            group_rows[g],
            GroupAggregates(in, groups[g], arg_value, arg2_value, cond_probs));
      }
    } else {
      MAYBMS_RETURN_NOT_OK(pool->ParallelForStatus(0, groups.size(), [&](size_t g) {
        MAYBMS_ASSIGN_OR_RETURN(
            group_rows[g],
            GroupAggregates(in, groups[g], arg_value, arg2_value, cond_probs));
        return Status::OK();
      }));
    }

    Batch out = AllocateOutput(node_.output_schema);
    for (size_t g = 0; g < groups.size(); ++g) {
      for (std::vector<Value>& agg_vals : group_rows[g]) {
        for (size_t k = 0; k < arity; ++k) {
          out.columns[k]->Append(group_keys[g * arity + k]);
        }
        for (size_t a = 0; a < agg_vals.size(); ++a) {
          out.columns[arity + a]->Append(agg_vals[a]);
        }
        out.conditions.AppendTrue();
        ++out.num_rows;
      }
    }
    ready_.push_back(std::move(out));
    return Status::OK();
  }

 private:
  // Accumulator for one standard SQL aggregate (mirrors the row engine).
  struct StandardAcc {
    int64_t count = 0;
    double dsum = 0;
    int64_t isum = 0;
    bool all_int = true;
    bool any = false;
    Value min_v;
    Value max_v;

    void Add(const Value& v) {
      if (v.is_null()) return;
      any = true;
      ++count;
      if (v.type() == TypeId::kInt) {
        isum += v.AsInt();
        dsum += static_cast<double>(v.AsInt());
      } else if (v.type() == TypeId::kDouble || v.type() == TypeId::kBool) {
        all_int = false;
        dsum += *v.ToDouble();
      } else {
        all_int = false;  // strings: sum/avg invalid, min/max fine
      }
      if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
      if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
    }
  };

  // aconf() sampling always derives the group's base seed from its lineage
  // content (LineageSeed) and samples on counter-based substreams: the
  // estimate is a pure function of the lineage, so it is identical at every
  // thread count (a null pool runs the substreams serially), across
  // engines, across optimizer join orders, and across repeated statements
  // over unchanged lineage (which makes it cacheable).
  template <typename ArgFn, typename Arg2Fn>
  Result<std::vector<std::vector<Value>>> GroupAggregates(
      const Drained& in, const std::vector<uint32_t>& members, ArgFn&& arg_value,
      Arg2Fn&& arg2_value, const std::vector<double>& cond_probs) {
    const std::vector<BoundAggregate>& aggs = node_.aggregates;
    const WorldTable& wt = ctx_->worlds();

    std::vector<Value> values(aggs.size(), Value::Null());
    int argmax_index = -1;
    std::vector<Value> argmax_ties;

    for (size_t a = 0; a < aggs.size(); ++a) {
      const BoundAggregate& agg = aggs[a];
      switch (agg.kind) {
        case AggKind::kCountStar: {
          values[a] = Value::Int(static_cast<int64_t>(members.size()));
          break;
        }
        case AggKind::kCount: {
          int64_t n = 0;
          for (uint32_t row : members) {
            if (!arg_value(a, row).is_null()) ++n;
          }
          values[a] = Value::Int(n);
          break;
        }
        case AggKind::kSum:
        case AggKind::kAvg:
        case AggKind::kMin:
        case AggKind::kMax: {
          StandardAcc acc;
          for (uint32_t row : members) {
            Value v = arg_value(a, row);
            if (!v.is_null() &&
                (agg.kind == AggKind::kSum || agg.kind == AggKind::kAvg) &&
                v.type() == TypeId::kString) {
              return Status::TypeError("sum/avg over non-numeric values");
            }
            acc.Add(v);
          }
          if (!acc.any) {
            values[a] = Value::Null();
          } else if (agg.kind == AggKind::kSum) {
            values[a] = acc.all_int ? Value::Int(acc.isum) : Value::Double(acc.dsum);
          } else if (agg.kind == AggKind::kAvg) {
            values[a] = Value::Double(acc.dsum / static_cast<double>(acc.count));
          } else if (agg.kind == AggKind::kMin) {
            values[a] = acc.min_v;
          } else {
            values[a] = acc.max_v;
          }
          break;
        }
        case AggKind::kConf:
        case AggKind::kAconf: {
          const ConstraintStore& cs = ctx_->constraints();
          // Canonical clause order: sort a COPY of the member list by
          // condition content (a joined row's condition content is
          // merge-order invariant; only the duplicates' arrival order can
          // differ between join orders). The lineage handed to every solver
          // below is then a pure function of the group's condition set, so
          // optimizer-on, optimizer-off, both engines, and every join order
          // produce bit-identical conf()/aconf() values.
          std::vector<uint32_t> ordered(members.begin(), members.end());
          std::stable_sort(ordered.begin(), ordered.end(),
                           [&in](uint32_t x, uint32_t y) {
                             AtomSpan sx = in.conds.Span(x);
                             AtomSpan sy = in.conds.Span(y);
                             return std::lexicographical_compare(
                                 sx.begin(), sx.end(), sy.begin(), sy.end());
                           });
          if (cs.active()) {
            // Conditioned path: posterior P(lineage | C). The clause list
            // materializes as heap Conditions so both engines feed the
            // posterior solver identical inputs (bit-identical answers);
            // the unconditioned span-compiled fast path below is untouched.
            Dnf dnf;
            for (uint32_t row : ordered) dnf.AddClause(in.conds.ToCondition(row));
            if (agg.kind == AggKind::kConf) {
              MAYBMS_ASSIGN_OR_RETURN(double p, GroupConfidence(dnf, ctx_));
              values[a] = Value::Double(p);
            } else {
              MAYBMS_ASSIGN_OR_RETURN(
                  MonteCarloResult mc,
                  PosteriorApproxConfidenceSeeded(
                      dnf, cs, wt, agg.epsilon, agg.delta,
                      LineageSeed(dnf), ctx_->options->montecarlo,
                      ctx_->options->exact, ctx_->pool));
              values[a] = Value::Double(mc.estimate);
            }
            break;
          }
          // The group's lineage — the disjunction of the duplicate tuples'
          // conjunctive conditions (paper §2.3) — compiles directly from
          // the packed condition-column spans: no Condition objects, no
          // per-row re-parsing.
          if (agg.kind == AggKind::kConf) {
            MAYBMS_ASSIGN_OR_RETURN(
                double p, GroupConfidence(in.conds, ordered.data(),
                                          ordered.size(), ctx_));
            values[a] = Value::Double(p);
            break;
          }
          CompiledDnf lineage(in.conds, ordered.data(), ordered.size(), wt);
          const uint64_t base_seed = LineageSeed(lineage);
          MAYBMS_ASSIGN_OR_RETURN(
              MonteCarloResult mc,
              ApproxConfidenceSeeded(std::move(lineage), agg.epsilon,
                                     agg.delta, base_seed,
                                     ctx_->options->montecarlo, ctx_->pool));
          values[a] = Value::Double(mc.estimate);
          break;
        }
        case AggKind::kEsum: {
          // Expected sum by linearity of expectation: Σ value·P(condition)
          // — linear time, no #P confidence computation (§2.2 item 4).
          double total = 0;
          for (uint32_t row : members) {
            Value v = arg_value(a, row);
            if (v.is_null()) continue;
            MAYBMS_ASSIGN_OR_RETURN(double d, v.ToDouble());
            total += d * cond_probs[row];
          }
          values[a] = Value::Double(total);
          break;
        }
        case AggKind::kEcount: {
          double total = 0;
          for (uint32_t row : members) {
            if (agg.arg != nullptr && arg_value(a, row).is_null()) continue;
            total += cond_probs[row];
          }
          values[a] = Value::Double(total);
          break;
        }
        case AggKind::kArgmax: {
          if (argmax_index >= 0) {
            return Status::ExecutionError(
                "at most one argmax aggregate is supported per select");
          }
          argmax_index = static_cast<int>(a);
          Value best;
          for (uint32_t row : members) {
            Value v = arg2_value(a, row);
            if (v.is_null()) continue;
            if (best.is_null() || v.Compare(best) > 0) best = v;
          }
          if (!best.is_null()) {
            for (uint32_t row : members) {
              Value v = arg2_value(a, row);
              if (v.is_null() || !v.Equals(best)) continue;
              Value arg_v = arg_value(a, row);
              bool seen = false;
              for (const Value& t : argmax_ties) {
                if (t.Equals(arg_v)) {
                  seen = true;
                  break;
                }
              }
              if (!seen) argmax_ties.push_back(std::move(arg_v));
            }
          }
          break;
        }
      }
    }

    std::vector<std::vector<Value>> out;
    if (argmax_index < 0) {
      out.push_back(std::move(values));
      return out;
    }
    if (argmax_ties.empty()) argmax_ties.push_back(Value::Null());
    for (Value& tie : argmax_ties) {
      std::vector<Value> row = values;
      row[static_cast<size_t>(argmax_index)] = std::move(tie);
      out.push_back(std::move(row));
    }
    return out;
  }

  BatchOperatorPtr child_;
  const AggregateNode& node_;
  ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// Plan -> operator tree
// ---------------------------------------------------------------------------

// The public builder below wraps every node for observability; the Impl's
// recursive child builds go through it so interior nodes are traced too.
Result<BatchOperatorPtr> BuildOperator(const PlanNode& plan, ExecContext* ctx);

Result<BatchOperatorPtr> BuildOperatorImpl(const PlanNode& plan, ExecContext* ctx) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return BatchOperatorPtr(new ScanOp(static_cast<const ScanNode&>(plan)));
    case PlanKind::kIndexScan:
      return BatchOperatorPtr(
          new IndexScanOp(static_cast<const IndexScanNode&>(plan), ctx));
    case PlanKind::kFilter: {
      const auto& node = static_cast<const FilterNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      if (ctx->pool != nullptr) {
        return BatchOperatorPtr(
            new ParallelFilterOp(std::move(child), node.predicate.get(), ctx));
      }
      return BatchOperatorPtr(new FilterOp(std::move(child), node.predicate.get()));
    }
    case PlanKind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      if (ctx->pool != nullptr) {
        return BatchOperatorPtr(
            new ParallelProjectOp(std::move(child), node, ctx));
      }
      return BatchOperatorPtr(new ProjectOp(std::move(child), node, ctx));
    }
    case PlanKind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr left,
                              BuildOperator(*node.children[0], ctx));
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr right,
                              BuildOperator(*node.children[1], ctx));
      return BatchOperatorPtr(
          new JoinOp(std::move(left), std::move(right), node, ctx));
    }
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      return BatchOperatorPtr(new AggregateOp(std::move(child), node, ctx));
    }
    case PlanKind::kRepairKey: {
      const auto& node = static_cast<const RepairKeyNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      return BatchOperatorPtr(new RepairKeyOp(std::move(child), node, ctx));
    }
    case PlanKind::kPickTuples: {
      const auto& node = static_cast<const PickTuplesNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      return BatchOperatorPtr(new PickTuplesOp(std::move(child), node, ctx));
    }
    case PlanKind::kPossible: {
      const auto& node = static_cast<const PossibleNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      return BatchOperatorPtr(new PossibleOp(std::move(child), node, ctx));
    }
    case PlanKind::kSemiJoinIn: {
      const auto& node = static_cast<const SemiJoinInNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr left,
                              BuildOperator(*node.children[0], ctx));
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr right,
                              BuildOperator(*node.children[1], ctx));
      return BatchOperatorPtr(
          new SemiJoinInOp(std::move(left), std::move(right), node));
    }
    case PlanKind::kUnion: {
      const auto& node = static_cast<const UnionNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr left,
                              BuildOperator(*node.children[0], ctx));
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr right,
                              BuildOperator(*node.children[1], ctx));
      return BatchOperatorPtr(new UnionOp(std::move(left), std::move(right), node));
    }
    case PlanKind::kDistinct: {
      const auto& node = static_cast<const DistinctNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      return BatchOperatorPtr(new DistinctOp(std::move(child), node));
    }
    case PlanKind::kSort: {
      const auto& node = static_cast<const SortNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      return BatchOperatorPtr(new SortOp(std::move(child), node, ctx));
    }
    case PlanKind::kLimit: {
      const auto& node = static_cast<const LimitNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildOperator(*node.children[0], ctx));
      return BatchOperatorPtr(new LimitOp(std::move(child), node));
    }
    case PlanKind::kSemiJoinReduce: {
      const auto& node = static_cast<const SemiJoinReduceNode&>(plan);
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr source,
                              BuildOperator(*node.children[0], ctx));
      MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr key_source,
                              BuildOperator(*node.children[1], ctx));
      return BatchOperatorPtr(
          new SemiJoinReduceOp(std::move(source), std::move(key_source), node));
    }
  }
  return Status::Internal("unhandled plan kind");
}

// EXPLAIN ANALYZE decorator: times every Next() pull into the node's
// inclusive span and folds the statement-wide confidence-counter deltas
// observed during the pull into the node (so conf work done by an
// aggregate — including its parallel morsels, which report through the
// same atomics — lands on the operator that triggered it). Pulls are
// single-threaded (one root drain; pipeline breakers drain children from
// the pulling thread), so the plain TraceNode fields need no locking.
class TraceOp final : public BatchOperator {
 public:
  TraceOp(BatchOperatorPtr inner, TraceNode* node, const ConfPhaseCounters* conf)
      : inner_(std::move(inner)), node_(node), conf_(conf) {}

  Result<bool> Next(Batch* out) override {
    const ConfPhaseSample before =
        conf_ != nullptr ? conf_->Sample() : ConfPhaseSample{};
    const uint64_t t0 = MonotonicNs();
    Result<bool> more = inner_->Next(out);
    node_->inclusive_ns += MonotonicNs() - t0;
    ++node_->calls;
    if (conf_ != nullptr) node_->conf.Accumulate(conf_->Sample() - before);
    if (more.ok() && *more) {
      ++node_->batches_out;
      node_->rows_out += out->num_rows;
    }
    return more;
  }

 private:
  BatchOperatorPtr inner_;
  TraceNode* node_;
  const ConfPhaseCounters* conf_;
};

Result<BatchOperatorPtr> BuildOperator(const PlanNode& plan, ExecContext* ctx) {
  if (ctx->metrics != nullptr) ctx->metrics->Add(Counter::kBatchOperators);
  if (ctx->trace == nullptr) return BuildOperatorImpl(plan, ctx);
  // Create the node BEFORE building so morsel-driven operators can capture
  // it from trace_parent at construction time; rewind afterwards.
  TraceNode* node = ctx->trace->NewNode(ctx->trace_parent, plan.Describe());
  node->est_rows = plan.est_rows;
  TraceNode* saved = ctx->trace_parent;
  ctx->trace_parent = node;
  Result<BatchOperatorPtr> built = BuildOperatorImpl(plan, ctx);
  ctx->trace_parent = saved;
  MAYBMS_RETURN_NOT_OK(built.status());
  return BatchOperatorPtr(
      new TraceOp(std::move(*built), node, ctx->options->exact.counters));
}

// The uncertain flag of the materialized result, mirroring the row
// engine's per-operator propagation.
bool RuntimeUncertain(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return static_cast<const ScanNode&>(plan).table->uncertain();
    case PlanKind::kIndexScan:
      return static_cast<const IndexScanNode&>(plan).table->uncertain();
    case PlanKind::kFilter:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kSemiJoinReduce:
      return RuntimeUncertain(*plan.children[0]);
    case PlanKind::kAggregate:
    case PlanKind::kPossible:
      return false;
    case PlanKind::kRepairKey:
    case PlanKind::kPickTuples:
      return true;
    default:
      return plan.uncertain;
  }
}

}  // namespace

Result<TableData> ExecutePlanBatch(const PlanNode& plan, ExecContext* ctx) {
  // Callers may hand over a context without options; the conf()/aconf()
  // aggregates read them, so substitute defaults (outlives the operator
  // tree — it is executed before this function returns).
  static const ExecOptions kDefaultOptions;
  ExecContext local = *ctx;
  if (local.options == nullptr) local.options = &kDefaultOptions;
  ctx = &local;
  MAYBMS_ASSIGN_OR_RETURN(BatchOperatorPtr root, BuildOperator(plan, ctx));
  TableData out;
  out.schema = plan.output_schema;
  out.uncertain = RuntimeUncertain(plan);
  Batch batch;
  uint64_t batches = 0;
  while (true) {
    MAYBMS_ASSIGN_OR_RETURN(bool more, root->Next(&batch));
    if (!more) break;
    ++batches;
    batch.AppendTo(&out.rows);
    batch = Batch();
  }
  if (ctx->metrics != nullptr) {
    ctx->metrics->Add(Counter::kBatchBatches, batches);
    ctx->metrics->Add(Counter::kBatchRows, out.rows.size());
  }
  return out;
}

}  // namespace maybms
