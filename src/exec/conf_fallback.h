// conf() with the hybrid exact→approximate fallback.
//
// Exact confidence is #P-hard: the d-tree compiler can blow past any node
// budget (ExactOptions::max_steps) on adversarial lineage. With
// ExecOptions::conf_fallback enabled, a conf() group whose compilation
// exceeds the budget falls back to a SEEDED aconf(fallback_epsilon,
// fallback_delta) estimate instead of failing the query; the fallback is
// counted on ExecContext::conf_fallbacks so the engine can attach a
// warning to the result.
//
// Determinism: the fallback seed is a pure function of the group's lineage
// content (a hash over its global-variable atoms), NOT a session-RNG draw
// — so enabling the fallback never shifts the session stream consumed by
// explicit aconf() calls, and the fallback estimate is identical across
// engines, thread counts, and sessions.
#pragma once

#include "src/common/result.h"
#include "src/exec/exec_context.h"
#include "src/lineage/dnf.h"
#include "src/types/condition_column.h"

namespace maybms {

class CompiledDnf;

/// Content-derived seed for seeded aconf/fallback estimation: an FNV hash
/// over the lineage's clauses (global-variable atoms, clause-end
/// separators), Mix64-finalized. Both engines feed identical clause lists
/// for the same group (pinned by the parity suites), so the seed — and
/// with it the estimate — is engine-, thread-count-, and
/// session-independent, and repeated statements over unchanged lineage
/// reuse their cached estimates (MonteCarloOptions::cache).
uint64_t LineageSeed(const Dnf& dnf);
/// Same hash over compiled lineage: the original clause list in input
/// order with local atoms mapped back to their GLOBAL ids — exactly the
/// byte sequence the Dnf overload hashes.
uint64_t LineageSeed(const CompiledDnf& dnf);

/// Exact (posterior-aware) group confidence with the optional fallback —
/// the row engine's and the batch engine's conditioned conf() kernel.
Result<double> GroupConfidence(const Dnf& dnf, ExecContext* ctx);

/// Same over packed condition-column spans (the batch engine's
/// unconditioned conf() kernel; compiles straight from the spans).
Result<double> GroupConfidence(const ConditionColumn& conds,
                               const uint32_t* rows, size_t n,
                               ExecContext* ctx);

}  // namespace maybms
