#include "src/exec/vector_expression.h"

#include <cmath>

#include "src/common/str_util.h"

namespace maybms {

namespace {

ColumnVectorPtr MakeColumn(TypeId t, size_t n) {
  auto c = std::make_shared<ColumnVector>(t);
  c->Reserve(n);
  return c;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

// Unified read access to a non-boxed numeric column.
struct NumView {
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const uint8_t* valid = nullptr;  // nullptr = all valid

  bool IsNull(size_t k) const { return valid != nullptr && valid[k] == 0; }
  bool is_int() const { return ints != nullptr; }
  int64_t I(size_t k) const { return ints[k]; }
  double D(size_t k) const {
    return ints != nullptr ? static_cast<double>(ints[k]) : doubles[k];
  }
};

bool GetNumView(const ColumnVector& c, NumView* v) {
  if (c.boxed()) return false;
  if (c.type() == TypeId::kInt) {
    v->ints = c.IntData();
  } else if (c.type() == TypeId::kDouble) {
    v->doubles = c.DoubleData();
  } else {
    return false;
  }
  v->valid = c.valid().empty() ? nullptr : c.valid().data();
  return true;
}

template <typename T>
bool CompareOp(BinaryOp op, T a, T b) {
  switch (op) {
    case BinaryOp::kEq:
      return a == b;
    case BinaryOp::kNe:
      return a != b;
    case BinaryOp::kLt:
      return a < b;
    case BinaryOp::kLe:
      return a <= b;
    case BinaryOp::kGt:
      return a > b;
    case BinaryOp::kGe:
      return a >= b;
    default:
      return false;
  }
}

// Typed fast path for comparisons and arithmetic over numeric columns.
// Matches the scalar kernel bit-for-bit: int⋄int stays in int64 (except
// division), mixed operands promote to double, division/modulo by zero on
// a non-null row is an execution error.
Result<ColumnVectorPtr> FastNumericBinary(BinaryOp op, const ColumnVector& l,
                                          const ColumnVector& r, size_t n) {
  NumView lv, rv;
  if (!GetNumView(l, &lv) || !GetNumView(r, &rv)) return ColumnVectorPtr{};
  bool both_int = lv.is_int() && rv.is_int();

  if (IsComparison(op)) {
    auto out = MakeColumn(TypeId::kBool, n);
    for (size_t k = 0; k < n; ++k) {
      if (lv.IsNull(k) || rv.IsNull(k)) {
        out->AppendNull();
      } else if (both_int) {
        out->AppendBool(CompareOp<int64_t>(op, lv.I(k), rv.I(k)));
      } else {
        out->AppendBool(CompareOp<double>(op, lv.D(k), rv.D(k)));
      }
    }
    return out;
  }

  if (both_int && op != BinaryOp::kDiv) {
    auto out = MakeColumn(TypeId::kInt, n);
    for (size_t k = 0; k < n; ++k) {
      if (lv.IsNull(k) || rv.IsNull(k)) {
        out->AppendNull();
        continue;
      }
      int64_t a = lv.I(k), b = rv.I(k);
      switch (op) {
        case BinaryOp::kAdd:
          out->AppendInt(a + b);
          break;
        case BinaryOp::kSub:
          out->AppendInt(a - b);
          break;
        case BinaryOp::kMul:
          out->AppendInt(a * b);
          break;
        case BinaryOp::kMod:
          if (b == 0) return Status::ExecutionError("modulo by zero");
          out->AppendInt(a % b);
          break;
        default:
          return Status::Internal("unexpected integer arithmetic operator");
      }
    }
    return out;
  }

  auto out = MakeColumn(TypeId::kDouble, n);
  for (size_t k = 0; k < n; ++k) {
    if (lv.IsNull(k) || rv.IsNull(k)) {
      out->AppendNull();
      continue;
    }
    double a = lv.D(k), b = rv.D(k);
    switch (op) {
      case BinaryOp::kAdd:
        out->AppendDouble(a + b);
        break;
      case BinaryOp::kSub:
        out->AppendDouble(a - b);
        break;
      case BinaryOp::kMul:
        out->AppendDouble(a * b);
        break;
      case BinaryOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        out->AppendDouble(a / b);
        break;
      case BinaryOp::kMod:
        if (b == 0) return Status::ExecutionError("modulo by zero");
        out->AppendDouble(std::fmod(a, b));
        break;
      default:
        return Status::Internal("unexpected arithmetic operator");
    }
  }
  return out;
}

// String comparisons (both sides string columns, no boxing).
Result<ColumnVectorPtr> FastStringCompare(BinaryOp op, const ColumnVector& l,
                                          const ColumnVector& r, size_t n) {
  if (l.boxed() || r.boxed() || l.type() != TypeId::kString ||
      r.type() != TypeId::kString || !IsComparison(op)) {
    return ColumnVectorPtr{};
  }
  const std::string* ls = l.StringData();
  const std::string* rs = r.StringData();
  const uint8_t* lm = l.valid().empty() ? nullptr : l.valid().data();
  const uint8_t* rm = r.valid().empty() ? nullptr : r.valid().data();
  auto out = MakeColumn(TypeId::kBool, n);
  for (size_t k = 0; k < n; ++k) {
    if ((lm != nullptr && lm[k] == 0) || (rm != nullptr && rm[k] == 0)) {
      out->AppendNull();
      continue;
    }
    int c = ls[k].compare(rs[k]);
    out->AppendBool(CompareOp<int>(op, c, 0));
  }
  return out;
}

Result<ColumnVectorPtr> EvalBinaryVector(const BoundBinary& expr, const Batch& in);

Result<ColumnVectorPtr> EvalUnaryVector(const BoundUnary& expr, const Batch& in) {
  MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr operand, EvalVector(*expr.operand, in));
  size_t n = in.num_rows;
  // Fast negate over numeric columns.
  if (expr.op == UnaryOp::kNegate) {
    NumView v;
    if (GetNumView(*operand, &v)) {
      if (v.is_int()) {
        auto out = MakeColumn(TypeId::kInt, n);
        for (size_t k = 0; k < n; ++k) {
          if (v.IsNull(k)) {
            out->AppendNull();
          } else {
            out->AppendInt(-v.I(k));
          }
        }
        return out;
      }
      auto out = MakeColumn(TypeId::kDouble, n);
      for (size_t k = 0; k < n; ++k) {
        if (v.IsNull(k)) {
          out->AppendNull();
        } else {
          out->AppendDouble(-v.D(k));
        }
      }
      return out;
    }
  }
  auto out = std::make_shared<ColumnVector>(expr.type);
  out->Reserve(n);
  for (size_t k = 0; k < n; ++k) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalUnaryValue(expr.op, operand->GetValue(k)));
    out->Append(v);
  }
  return out;
}

// Re-evaluates an AND/OR row-at-a-time with short-circuiting — the error
// recovery path when eager vector evaluation of one side failed on a row
// the row engine might never evaluate.
Result<ColumnVectorPtr> ShortCircuitRowFallback(const BoundBinary& expr,
                                                const Batch& in) {
  size_t n = in.num_rows;
  auto out = MakeColumn(TypeId::kBool, n);
  std::vector<Value> row(in.NumColumns());
  for (size_t k = 0; k < n; ++k) {
    for (size_t c = 0; c < in.NumColumns(); ++c) row[c] = in.columns[c]->GetValue(k);
    MAYBMS_ASSIGN_OR_RETURN(Value v, expr.Eval(row));
    out->Append(v);
  }
  return out;
}

Result<ColumnVectorPtr> EvalBinaryVector(const BoundBinary& expr, const Batch& in) {
  size_t n = in.num_rows;

  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    // Evaluate both sides eagerly: the Kleene combination is identical to
    // the short-circuited result whenever both sides evaluate cleanly.
    Result<ColumnVectorPtr> left = EvalVector(*expr.left, in);
    Result<ColumnVectorPtr> right =
        left.ok() ? EvalVector(*expr.right, in) : Result<ColumnVectorPtr>(ColumnVectorPtr{});
    if (!left.ok() || !right.ok()) return ShortCircuitRowFallback(expr, in);
    const ColumnVector& l = **left;
    const ColumnVector& r = **right;
    auto out = MakeColumn(TypeId::kBool, n);
    for (size_t k = 0; k < n; ++k) {
      MAYBMS_ASSIGN_OR_RETURN(
          Value v, EvalBinaryValue(expr.op, l.GetValue(k), r.GetValue(k)));
      out->Append(v);
    }
    return out;
  }

  MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr left, EvalVector(*expr.left, in));
  MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr right, EvalVector(*expr.right, in));

  if (IsComparison(expr.op) || IsArithmetic(expr.op)) {
    MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr fast,
                            FastNumericBinary(expr.op, *left, *right, n));
    if (fast != nullptr) return fast;
    MAYBMS_ASSIGN_OR_RETURN(fast, FastStringCompare(expr.op, *left, *right, n));
    if (fast != nullptr) return fast;
  }

  auto out = std::make_shared<ColumnVector>(expr.type);
  out->Reserve(n);
  for (size_t k = 0; k < n; ++k) {
    MAYBMS_ASSIGN_OR_RETURN(
        Value v, EvalBinaryValue(expr.op, left->GetValue(k), right->GetValue(k)));
    out->Append(v);
  }
  return out;
}

Result<ColumnVectorPtr> EvalScalarFunctionVector(const BoundScalarFunction& expr,
                                                 const Batch& in) {
  size_t n = in.num_rows;
  std::vector<ColumnVectorPtr> arg_cols;
  arg_cols.reserve(expr.args.size());
  for (const BoundExprPtr& a : expr.args) {
    MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvalVector(*a, in));
    arg_cols.push_back(std::move(col));
  }
  auto out = std::make_shared<ColumnVector>(expr.type);
  out->Reserve(n);
  std::vector<Value> vals(arg_cols.size());
  for (size_t k = 0; k < n; ++k) {
    bool any_null = false;
    for (size_t a = 0; a < arg_cols.size(); ++a) {
      vals[a] = arg_cols[a]->GetValue(k);
      any_null |= vals[a].is_null();
    }
    if (any_null) {
      out->AppendNull();
      continue;
    }
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalScalarFunctionValue(expr.name, vals));
    out->Append(v);
  }
  return out;
}

}  // namespace

Result<ColumnVectorPtr> EvalVector(const BoundExpr& expr, const Batch& in) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral: {
      const auto& lit = static_cast<const BoundLiteral&>(expr);
      return std::make_shared<ColumnVector>(
          ColumnVector::Constant(lit.value, in.num_rows));
    }
    case BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(expr);
      if (ref.index >= in.columns.size()) {
        return Status::Internal("column index out of range during evaluation");
      }
      return in.columns[ref.index];
    }
    case BoundExprKind::kUnary:
      return EvalUnaryVector(static_cast<const BoundUnary&>(expr), in);
    case BoundExprKind::kBinary:
      return EvalBinaryVector(static_cast<const BoundBinary&>(expr), in);
    case BoundExprKind::kScalarFunction:
      return EvalScalarFunctionVector(static_cast<const BoundScalarFunction&>(expr),
                                      in);
    case BoundExprKind::kIsNull: {
      const auto& isnull = static_cast<const BoundIsNull&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(ColumnVectorPtr operand,
                              EvalVector(*isnull.operand, in));
      auto out = MakeColumn(TypeId::kBool, in.num_rows);
      for (size_t k = 0; k < in.num_rows; ++k) {
        out->AppendBool(operand->IsNull(k) != isnull.negated);
      }
      return out;
    }
    case BoundExprKind::kTconf:
      return Status::Internal("tconf() evaluated outside a projection");
  }
  return Status::Internal("unhandled bound expression kind");
}

}  // namespace maybms
