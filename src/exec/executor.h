// Statement execution: queries, DDL, and DML on top of the plan executor.
#pragma once

#include <string>

#include "src/exec/operators.h"
#include "src/plan/planner.h"

namespace maybms {

/// Result of executing one statement.
struct StatementResult {
  bool has_data = false;   ///< true for selects (data is meaningful)
  TableData data;
  size_t affected_rows = 0;  ///< DML row counts
  std::string message;       ///< e.g. "CREATE TABLE"
};

/// Executes a bound statement against the context's catalog.
Result<StatementResult> ExecuteStatement(const BoundStatement& stmt, ExecContext* ctx);

}  // namespace maybms
