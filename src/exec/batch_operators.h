// The vectorized executor: a bound logical plan compiled into a pull-based
// tree of batch operators. Each operator's Next() produces a Batch —
// columnar data plus a packed condition column — so scans share column
// vectors instead of copying rows, filters and projections evaluate
// expressions column-at-a-time, and conf()/aconf() aggregates compile their
// lineage straight from condition-column spans.
//
// Semantics (values, probabilities, and output order) match the row engine
// in src/exec/operators.cc exactly; the parity test suite holds both
// engines to that.
#pragma once

#include "src/exec/exec_context.h"
#include "src/plan/logical_plan.h"

namespace maybms {

/// Executes a bound plan with the batch engine, materializing the result.
Result<TableData> ExecutePlanBatch(const PlanNode& plan, ExecContext* ctx);

}  // namespace maybms
