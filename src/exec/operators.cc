#include "src/exec/operators.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/common/str_util.h"
#include "src/cond/posterior.h"
#include "src/exec/aggregates.h"
#include "src/exec/batch_operators.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace maybms {

namespace {

// Hash-map key over evaluated value vectors.
struct ValueKey {
  std::vector<Value> values;
  size_t hash;

  bool operator==(const ValueKey& other) const {
    return hash == other.hash && ValuesEqual(values, other.values);
  }
};

struct ValueKeyHash {
  size_t operator()(const ValueKey& k) const { return k.hash; }
};

Result<ValueKey> EvalKey(const std::vector<BoundExprPtr>& exprs,
                         const std::vector<Value>& row) {
  ValueKey key;
  key.values.reserve(exprs.size());
  for (const BoundExprPtr& e : exprs) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, e->Eval(row));
    key.values.push_back(std::move(v));
  }
  key.hash = HashValues(key.values);
  return key;
}

// ---------------------------------------------------------------------------
// Operator implementations
// ---------------------------------------------------------------------------

Result<TableData> ExecuteScan(const ScanNode& node) {
  TableData out;
  out.schema = node.table->schema();
  out.uncertain = node.table->uncertain();
  out.rows = node.table->rows();
  return out;
}

Result<TableData> ExecuteIndexScan(const IndexScanNode& node, ExecContext* ctx) {
  SecondaryIndexPtr index =
      ctx->catalog->index_manager().Find(node.index_name);
  if (index == nullptr) {
    // The index vanished between planning and execution (DROP INDEX from
    // another session): fall back to the scan the optimizer replaced.
    TableData out;
    out.schema = node.table->schema();
    out.uncertain = node.table->uncertain();
    out.rows = node.table->rows();
    return out;
  }
  std::vector<uint64_t> ids;
  MAYBMS_RETURN_NOT_OK(
      index->Lookup(*node.table, node.lo, node.hi, &ids, ctx->metrics));
  TableData out;
  out.schema = node.table->schema();
  out.uncertain = node.table->uncertain();
  out.rows.reserve(ids.size());
  const std::vector<Row>& rows = node.table->rows();
  // ids are ascending (Lookup sorts), so output order == scan order.
  for (uint64_t id : ids) {
    if (id < rows.size()) out.rows.push_back(rows[static_cast<size_t>(id)]);
  }
  return out;
}

Result<TableData> ExecuteFilter(const FilterNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  TableData out;
  out.schema = std::move(in.schema);
  out.uncertain = in.uncertain;
  for (Row& row : in.rows) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, node.predicate->Eval(row.values));
    if (IsTruthy(v)) out.rows.push_back(std::move(row));
  }
  return out;
}

Result<TableData> ExecuteProject(const ProjectNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = node.uncertain;
  out.rows.reserve(in.rows.size());
  const WorldTable& wt = ctx->worlds();
  const ConstraintStore& cs = ctx->constraints();
  for (Row& row : in.rows) {
    Row result;
    result.values.reserve(node.exprs.size());
    for (const BoundExprPtr& e : node.exprs) {
      if (e->kind == BoundExprKind::kTconf) {
        // tconf(): the marginal probability of this tuple in isolation —
        // the product of its condition's atom probabilities (§2.2), or the
        // posterior marginal P(cond | C) under asserted evidence.
        MAYBMS_ASSIGN_OR_RETURN(
            double p, PosteriorConditionProb(row.condition, cs, wt,
                                             ctx->options->exact));
        result.values.push_back(Value::Double(p));
      } else {
        MAYBMS_ASSIGN_OR_RETURN(Value v, e->Eval(row.values));
        result.values.push_back(std::move(v));
      }
    }
    // tconf() maps uncertain to t-certain: conditions are consumed.
    if (!node.has_tconf) result.condition = std::move(row.condition);
    out.rows.push_back(std::move(result));
  }
  return out;
}

Result<TableData> ExecuteJoin(const JoinNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData left, ExecutePlan(*node.children[0], ctx));
  MAYBMS_ASSIGN_OR_RETURN(TableData right, ExecutePlan(*node.children[1], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = node.uncertain;

  auto emit = [&](const Row& l, const Row& r) -> Result<bool> {
    // Parsimonious translation of join: concatenate the data columns and
    // merge the condition columns; pairs with inconsistent conditions
    // (same variable, different assignment) drop out [ICDE'08].
    std::optional<Condition> merged = Condition::Merge(l.condition, r.condition);
    if (!merged) return false;
    Row joined;
    joined.values.reserve(l.values.size() + r.values.size());
    joined.values = l.values;
    joined.values.insert(joined.values.end(), r.values.begin(), r.values.end());
    if (node.residual) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, node.residual->Eval(joined.values));
      if (!IsTruthy(v)) return false;
    }
    joined.condition = std::move(*merged);
    out.rows.push_back(std::move(joined));
    return true;
  };

  if (node.left_keys.empty()) {
    // Cross product with optional residual predicate.
    for (const Row& l : left.rows) {
      for (const Row& r : right.rows) {
        MAYBMS_RETURN_NOT_OK(emit(l, r).status());
      }
    }
    return out;
  }

  // Hash join: build on the right input.
  std::unordered_map<ValueKey, std::vector<size_t>, ValueKeyHash> table;
  table.reserve(right.rows.size());
  for (size_t i = 0; i < right.rows.size(); ++i) {
    MAYBMS_ASSIGN_OR_RETURN(ValueKey key, EvalKey(node.right_keys, right.rows[i].values));
    bool has_null = false;
    for (const Value& v : key.values) has_null |= v.is_null();
    if (has_null) continue;  // SQL equality: null joins nothing
    table[std::move(key)].push_back(i);
  }
  for (const Row& l : left.rows) {
    MAYBMS_ASSIGN_OR_RETURN(ValueKey key, EvalKey(node.left_keys, l.values));
    bool has_null = false;
    for (const Value& v : key.values) has_null |= v.is_null();
    if (has_null) continue;
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (size_t i : it->second) {
      MAYBMS_RETURN_NOT_OK(emit(l, right.rows[i]).status());
    }
  }
  return out;
}

Result<TableData> ExecuteAggregate(const AggregateNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = false;

  // Group rows; groups remember first-seen order for stable output.
  std::unordered_map<ValueKey, size_t, ValueKeyHash> group_index;
  std::vector<std::vector<const Row*>> groups;
  std::vector<std::vector<Value>> group_values;
  for (const Row& row : in.rows) {
    MAYBMS_ASSIGN_OR_RETURN(ValueKey key, EvalKey(node.group_exprs, row.values));
    auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      groups.emplace_back();
      group_values.push_back(key.values);
    }
    groups[it->second].push_back(&row);
  }
  // Global aggregate over an empty input still yields one (empty) group.
  if (groups.empty() && node.group_exprs.empty()) {
    groups.emplace_back();
    group_values.emplace_back();
  }

  for (size_t g = 0; g < groups.size(); ++g) {
    MAYBMS_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> agg_rows,
                            ComputeGroupAggregates(groups[g], node.aggregates, ctx));
    for (std::vector<Value>& agg_vals : agg_rows) {
      Row result;
      result.values = group_values[g];
      for (Value& v : agg_vals) result.values.push_back(std::move(v));
      out.rows.push_back(std::move(result));
    }
  }
  return out;
}

Result<TableData> ExecuteRepairKey(const RepairKeyNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = true;

  // Group rows by the key attributes.
  std::unordered_map<ValueKey, std::vector<size_t>, ValueKeyHash> groups;
  std::vector<ValueKey> order;  // deterministic group order
  for (size_t i = 0; i < in.rows.size(); ++i) {
    ValueKey key;
    key.values.reserve(node.key_indices.size());
    for (size_t idx : node.key_indices) key.values.push_back(in.rows[i].values[idx]);
    key.hash = HashValues(key.values);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(i);
  }

  WorldTable& wt = ctx->worlds();
  for (const ValueKey& key : order) {
    const std::vector<size_t>& members = groups[key];
    // Evaluate weights; default weight 1 (uniform repairs).
    std::vector<double> weights;
    std::vector<size_t> alive;
    double total = 0;
    for (size_t i : members) {
      double w = 1.0;
      if (node.weight) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, node.weight->Eval(in.rows[i].values));
        if (v.is_null()) {
          w = 0;  // null weight: tuple cannot be chosen
        } else {
          MAYBMS_ASSIGN_OR_RETURN(w, v.ToDouble());
        }
      }
      if (std::isnan(w) || w < 0) {
        return Status::ExecutionError(StringFormat(
            "repair-key weight %g is negative or NaN (weights must be "
            "non-negative)", w));
      }
      if (w == 0) continue;  // zero-weight alternatives are dropped (Fig. 1)
      alive.push_back(i);
      weights.push_back(w);
      total += w;
    }
    if (alive.empty()) continue;  // whole group has zero weight: no repair tuple
    if (alive.size() == 1) {
      // A single alternative is chosen with probability 1: no variable is
      // needed — the tuple is certain (semantically identical encoding).
      out.rows.push_back(in.rows[alive[0]]);
      continue;
    }
    std::vector<double> probs;
    probs.reserve(weights.size());
    for (double w : weights) probs.push_back(w / total);
    MAYBMS_ASSIGN_OR_RETURN(VarId var, wt.NewVariable(std::move(probs), node.label));
    for (size_t j = 0; j < alive.size(); ++j) {
      Row row = in.rows[alive[j]];
      row.condition = Condition();
      row.condition.AddAtom(Atom{var, static_cast<AsgId>(j)});
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Result<TableData> ExecutePickTuples(const PickTuplesNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = true;
  WorldTable& wt = ctx->worlds();

  for (Row& row : in.rows) {
    double p = 0.5;  // default: all subsets, uniformly
    if (node.probability) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, node.probability->Eval(row.values));
      if (v.is_null()) {
        p = 0;
      } else {
        MAYBMS_ASSIGN_OR_RETURN(p, v.ToDouble());
      }
    }
    if (std::isnan(p) || p < 0 || p > 1) {
      return Status::ExecutionError(
          StringFormat("pick-tuples probability %g outside [0,1]", p));
    }
    if (p == 1.0) {
      out.rows.push_back(std::move(row));  // certain tuple, no variable
      continue;
    }
    MAYBMS_ASSIGN_OR_RETURN(VarId var, wt.NewBooleanVariable(p, node.label));
    row.condition = Condition();
    row.condition.AddAtom(Atom{var, 1});
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<TableData> ExecutePossible(const PossibleNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = false;
  const WorldTable& wt = ctx->worlds();

  const ConstraintStore& cs = ctx->constraints();
  std::unordered_map<size_t, std::vector<size_t>> buckets;  // hash -> out rows
  for (Row& row : in.rows) {
    // Filter tuples with probability zero, eliminate duplicates (§2.2).
    // Under evidence a tuple is possible iff P(cond ∧ C) > 0.
    if (!cs.CompatiblePositive(row.condition, wt)) continue;
    size_t h = HashValues(row.values);
    std::vector<size_t>& bucket = buckets[h];
    bool duplicate = false;
    for (size_t idx : bucket) {
      if (ValuesEqual(out.rows[idx].values, row.values)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(out.rows.size());
    out.rows.push_back(Row(std::move(row.values)));
  }
  return out;
}

Result<TableData> ExecuteSemiJoinIn(const SemiJoinInNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData left, ExecutePlan(*node.children[0], ctx));
  MAYBMS_ASSIGN_OR_RETURN(TableData right, ExecutePlan(*node.children[1], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = node.uncertain;

  // Key value → the conditions under which it appears on the right.
  std::unordered_map<ValueKey, std::vector<Condition>, ValueKeyHash> matches;
  for (Row& row : right.rows) {
    if (row.values[0].is_null()) continue;
    ValueKey key;
    key.values.push_back(row.values[0]);
    key.hash = HashValues(key.values);
    std::vector<Condition>& conds = matches[key];
    // Deduplicate identical conditions; a true condition subsumes all.
    if (!conds.empty() && conds.front().IsTrue()) continue;
    if (row.condition.IsTrue()) {
      conds.clear();
      conds.push_back(Condition());
      continue;
    }
    if (std::find(conds.begin(), conds.end(), row.condition) == conds.end()) {
      conds.push_back(std::move(row.condition));
    }
  }

  for (Row& row : left.rows) {
    MAYBMS_ASSIGN_OR_RETURN(Value key_val, node.left_key->Eval(row.values));
    if (key_val.is_null()) continue;  // null never matches IN / NOT IN
    ValueKey key;
    key.values.push_back(std::move(key_val));
    key.hash = HashValues(key.values);
    auto it = matches.find(key);
    if (node.anti) {
      // NOT IN: binder guarantees the right side is t-certain.
      if (it == matches.end()) out.rows.push_back(std::move(row));
      continue;
    }
    if (it == matches.end()) continue;
    for (const Condition& cond : it->second) {
      std::optional<Condition> merged = Condition::Merge(row.condition, cond);
      if (!merged) continue;
      Row result = row;
      result.condition = std::move(*merged);
      out.rows.push_back(std::move(result));
    }
  }
  return out;
}

Result<TableData> ExecuteUnion(const UnionNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData left, ExecutePlan(*node.children[0], ctx));
  MAYBMS_ASSIGN_OR_RETURN(TableData right, ExecutePlan(*node.children[1], ctx));
  TableData out;
  out.schema = node.output_schema;
  out.uncertain = node.uncertain;
  out.rows = std::move(left.rows);
  for (Row& row : right.rows) out.rows.push_back(std::move(row));

  if (node.deduplicate) {
    std::unordered_set<size_t> hashes;
    std::vector<Row> deduped;
    for (Row& row : out.rows) {
      size_t h = HashValues(row.values);
      bool dup = false;
      if (hashes.count(h)) {
        for (const Row& prev : deduped) {
          if (ValuesEqual(prev.values, row.values)) {
            dup = true;
            break;
          }
        }
      }
      if (!dup) {
        hashes.insert(h);
        deduped.push_back(std::move(row));
      }
    }
    out.rows = std::move(deduped);
  }
  return out;
}

Result<TableData> ExecuteDistinct(const DistinctNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  TableData out;
  out.schema = std::move(in.schema);
  out.uncertain = in.uncertain;
  std::unordered_set<size_t> hashes;
  for (Row& row : in.rows) {
    size_t h = HashValues(row.values);
    bool dup = false;
    if (hashes.count(h)) {
      for (const Row& prev : out.rows) {
        if (ValuesEqual(prev.values, row.values)) {
          dup = true;
          break;
        }
      }
    }
    if (!dup) {
      hashes.insert(h);
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Result<TableData> ExecuteSort(const SortNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  // Precompute sort keys.
  std::vector<std::pair<std::vector<Value>, size_t>> keyed;
  keyed.reserve(in.rows.size());
  for (size_t i = 0; i < in.rows.size(); ++i) {
    std::vector<Value> keys;
    keys.reserve(node.keys.size());
    for (const SortNode::Key& k : node.keys) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, k.expr->Eval(in.rows[i].values));
      keys.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(keys), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(), [&](const auto& a, const auto& b) {
    for (size_t k = 0; k < node.keys.size(); ++k) {
      int c = a.first[k].Compare(b.first[k]);
      if (c != 0) return node.keys[k].descending ? c > 0 : c < 0;
    }
    return false;
  });
  TableData out;
  out.schema = std::move(in.schema);
  out.uncertain = in.uncertain;
  out.rows.reserve(in.rows.size());
  for (const auto& [keys, idx] : keyed) out.rows.push_back(std::move(in.rows[idx]));
  return out;
}

Result<TableData> ExecuteSemiJoinReduce(const SemiJoinReduceNode& node,
                                        ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData source, ExecutePlan(*node.children[0], ctx));
  MAYBMS_ASSIGN_OR_RETURN(TableData keys, ExecutePlan(*node.children[1], ctx));
  TableData out;
  out.schema = std::move(source.schema);
  out.uncertain = source.uncertain;

  // Key value → the conditions under which it appears in the key source
  // (deduplicated; a true condition subsumes all) — the SemiJoinIn idiom.
  std::unordered_map<ValueKey, std::vector<Condition>, ValueKeyHash> matches;
  const size_t nk = node.keys.size();
  for (Row& row : keys.rows) {
    ValueKey key;
    key.values.reserve(nk);
    bool has_null = false;
    for (size_t k = 0; k < nk; ++k) {
      has_null |= row.values[k].is_null();
      key.values.push_back(row.values[k]);
    }
    if (has_null) continue;  // SQL equality: null joins nothing
    key.hash = HashValues(key.values);
    std::vector<Condition>& conds = matches[key];
    if (!conds.empty() && conds.front().IsTrue()) continue;
    if (row.condition.IsTrue()) {
      conds.clear();
      conds.push_back(Condition());
      continue;
    }
    if (std::find(conds.begin(), conds.end(), row.condition) == conds.end()) {
      conds.push_back(std::move(row.condition));
    }
  }

  // A source row survives iff some key-source row matches its keys under a
  // consistent condition merge — a necessary condition for the later full
  // join to emit anything for it. Survivors keep their ORIGINAL values and
  // conditions, in their original order, so the join's output is unchanged.
  for (Row& row : source.rows) {
    MAYBMS_ASSIGN_OR_RETURN(ValueKey key, EvalKey(node.keys, row.values));
    bool has_null = false;
    for (const Value& v : key.values) has_null |= v.is_null();
    if (has_null) continue;
    auto it = matches.find(key);
    if (it == matches.end()) continue;
    bool consistent = false;
    for (const Condition& cond : it->second) {
      if (Condition::Merge(row.condition, cond).has_value()) {
        consistent = true;
        break;
      }
    }
    if (consistent) out.rows.push_back(std::move(row));
  }
  return out;
}

Result<TableData> ExecuteLimit(const LimitNode& node, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData in, ExecutePlan(*node.children[0], ctx));
  if (node.limit >= 0 && static_cast<size_t>(node.limit) < in.rows.size()) {
    in.rows.resize(static_cast<size_t>(node.limit));
  }
  return in;
}

// The original row-at-a-time materializing interpreter, kept as the
// reference engine behind ExecOptions::engine (parity tests run every
// query through both paths).
Result<TableData> ExecutePlanRow(const PlanNode& plan, ExecContext* ctx) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return ExecuteScan(static_cast<const ScanNode&>(plan));
    case PlanKind::kIndexScan:
      return ExecuteIndexScan(static_cast<const IndexScanNode&>(plan), ctx);
    case PlanKind::kFilter:
      return ExecuteFilter(static_cast<const FilterNode&>(plan), ctx);
    case PlanKind::kProject:
      return ExecuteProject(static_cast<const ProjectNode&>(plan), ctx);
    case PlanKind::kJoin:
      return ExecuteJoin(static_cast<const JoinNode&>(plan), ctx);
    case PlanKind::kAggregate:
      return ExecuteAggregate(static_cast<const AggregateNode&>(plan), ctx);
    case PlanKind::kRepairKey:
      return ExecuteRepairKey(static_cast<const RepairKeyNode&>(plan), ctx);
    case PlanKind::kPickTuples:
      return ExecutePickTuples(static_cast<const PickTuplesNode&>(plan), ctx);
    case PlanKind::kPossible:
      return ExecutePossible(static_cast<const PossibleNode&>(plan), ctx);
    case PlanKind::kSemiJoinIn:
      return ExecuteSemiJoinIn(static_cast<const SemiJoinInNode&>(plan), ctx);
    case PlanKind::kUnion:
      return ExecuteUnion(static_cast<const UnionNode&>(plan), ctx);
    case PlanKind::kDistinct:
      return ExecuteDistinct(static_cast<const DistinctNode&>(plan), ctx);
    case PlanKind::kSort:
      return ExecuteSort(static_cast<const SortNode&>(plan), ctx);
    case PlanKind::kLimit:
      return ExecuteLimit(static_cast<const LimitNode&>(plan), ctx);
    case PlanKind::kSemiJoinReduce:
      return ExecuteSemiJoinReduce(static_cast<const SemiJoinReduceNode&>(plan), ctx);
  }
  return Status::Internal("unhandled plan kind");
}

}  // namespace

Result<TableData> ExecutePlan(const PlanNode& plan, ExecContext* ctx) {
  if (ctx->options == nullptr || ctx->options->engine == ExecEngine::kBatch) {
    return ExecutePlanBatch(plan, ctx);
  }
  if (ctx->trace != nullptr) {
    // EXPLAIN ANALYZE over the row engine: every node's recursion passes
    // through this dispatch, so shadow the plan with a TraceNode per
    // node. The recursion is single-threaded, so swapping trace_parent
    // in place is safe; the timing wraps the child recursion too, giving
    // inclusive spans (self time = inclusive − Σ children at render).
    TraceNode* node = ctx->trace->NewNode(ctx->trace_parent, plan.Describe());
    node->est_rows = plan.est_rows;
    TraceNode* saved = ctx->trace_parent;
    ctx->trace_parent = node;
    const ConfPhaseCounters* conf = ctx->options->exact.counters;
    const ConfPhaseSample before =
        conf != nullptr ? conf->Sample() : ConfPhaseSample{};
    const uint64_t t0 = MonotonicNs();
    Result<TableData> result = ExecutePlanRow(plan, ctx);
    node->inclusive_ns = MonotonicNs() - t0;
    node->calls = 1;
    if (conf != nullptr) node->conf.Accumulate(conf->Sample() - before);
    if (result.ok()) node->rows_out = result->rows.size();
    ctx->trace_parent = saved;
    if (ctx->metrics != nullptr) {
      ctx->metrics->Add(Counter::kRowOperators);
      ctx->metrics->Add(Counter::kRowRows, node->rows_out);
    }
    return result;
  }
  if (ctx->metrics != nullptr) {
    Result<TableData> result = ExecutePlanRow(plan, ctx);
    ctx->metrics->Add(Counter::kRowOperators);
    if (result.ok()) {
      ctx->metrics->Add(Counter::kRowRows, result->rows.size());
    }
    return result;
  }
  return ExecutePlanRow(plan, ctx);
}

}  // namespace maybms
