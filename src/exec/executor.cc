#include "src/exec/executor.h"

#include "src/common/str_util.h"
#include "src/cond/posterior.h"
#include "src/cond/prune.h"
#include "src/obs/metrics.h"

namespace maybms {

namespace {

Result<StatementResult> ExecuteSelect(const BoundStatement& stmt, ExecContext* ctx) {
  StatementResult result;
  MAYBMS_ASSIGN_OR_RETURN(result.data, ExecutePlan(*stmt.plan, ctx));
  result.has_data = true;
  result.message = StringFormat("SELECT %zu", result.data.rows.size());
  return result;
}

Result<StatementResult> ExecuteCreateTable(const BoundStatement& stmt,
                                           ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(
      TablePtr table,
      ctx->catalog->CreateTable(stmt.table_name, stmt.create_schema,
                                /*uncertain=*/false));
  (void)table;
  StatementResult result;
  result.message = "CREATE TABLE";
  return result;
}

Result<StatementResult> ExecuteCreateTableAs(const BoundStatement& stmt,
                                             ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData data, ExecutePlan(*stmt.plan, ctx));
  // The system catalog records whether the new table is a U-relation or a
  // standard relation (paper §2.4).
  MAYBMS_ASSIGN_OR_RETURN(
      TablePtr table,
      ctx->catalog->CreateTable(stmt.table_name, data.schema, data.uncertain));
  table->mutable_rows() = std::move(data.rows);
  StatementResult result;
  result.affected_rows = table->NumRows();
  result.message = StringFormat("SELECT %zu", table->NumRows());
  return result;
}

Result<StatementResult> ExecuteInsert(const BoundStatement& stmt, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TablePtr table, ctx->catalog->GetTable(stmt.table_name));
  StatementResult result;
  // Capture the pre-statement state for eager index maintenance: an index
  // that was current at pre_version absorbs exactly the appended suffix
  // [first_row, NumRows) instead of rebuilding (src/index/index_manager.h).
  const uint64_t pre_version = table->version();
  const size_t first_row = table->NumRows();
  if (stmt.plan) {
    MAYBMS_ASSIGN_OR_RETURN(TableData data, ExecutePlan(*stmt.plan, ctx));
    if (data.uncertain && !table->uncertain()) {
      return Status::ExecutionError(StringFormat(
          "cannot insert uncertain rows into t-certain table '%s'",
          stmt.table_name.c_str()));
    }
    for (Row& row : data.rows) {
      MAYBMS_RETURN_NOT_OK(table->Append(std::move(row)));
      ++result.affected_rows;
    }
  } else {
    for (const std::vector<Value>& values : stmt.insert_rows) {
      MAYBMS_RETURN_NOT_OK(table->Append(Row(values)));
      ++result.affected_rows;
    }
  }
  if (result.affected_rows > 0) {
    for (const SecondaryIndexPtr& index :
         ctx->catalog->index_manager().IndexesOn(table->name())) {
      MAYBMS_RETURN_NOT_OK(
          index->NotifyAppend(*table, first_row, pre_version, ctx->metrics));
    }
  }
  result.message = StringFormat("INSERT %zu", result.affected_rows);
  return result;
}

Result<StatementResult> ExecuteUpdate(const BoundStatement& stmt, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TablePtr table, ctx->catalog->GetTable(stmt.table_name));
  StatementResult result;
  // "Updates are just modifications of these tables that can be expressed
  // using the standard SQL update operations" (paper §2.3): data columns
  // change, conditions are untouched. Matching goes through the const row
  // view and only matched rows are acquired mutably, so an UPDATE touching
  // zero rows leaves the table version — and every cache keyed on it —
  // intact, and a real UPDATE dirties only the chunks it lands in.
  const std::vector<Row>& rows = table->rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (stmt.dml_where) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, stmt.dml_where->Eval(rows[i].values));
      if (!IsTruthy(v)) continue;
    }
    // Evaluate all assignments against the pre-update row.
    std::vector<std::pair<size_t, Value>> new_values;
    for (const auto& [idx, expr] : stmt.update_sets) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, expr->Eval(rows[i].values));
      new_values.emplace_back(idx, std::move(v));
    }
    Row& row = table->MutableRow(i);
    for (auto& [idx, v] : new_values) row.values[idx] = std::move(v);
    ++result.affected_rows;
  }
  result.message = StringFormat("UPDATE %zu", result.affected_rows);
  return result;
}

Result<StatementResult> ExecuteDelete(const BoundStatement& stmt, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TablePtr table, ctx->catalog->GetTable(stmt.table_name));
  StatementResult result;
  // Two-phase: evaluate the predicate over the const row view, then let
  // the table compact in place. A DELETE matching nothing never acquires
  // mutable access, so the table version (and the caches keyed on it)
  // survive; a real DELETE dirties only the chunks from the first erased
  // row onward.
  const std::vector<Row>& rows = table->rows();
  std::vector<uint8_t> remove(rows.size(), stmt.dml_where ? 0 : 1);
  if (stmt.dml_where) {
    for (size_t i = 0; i < rows.size(); ++i) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, stmt.dml_where->Eval(rows[i].values));
      remove[i] = IsTruthy(v) ? 1 : 0;
    }
  }
  result.affected_rows = table->EraseMarked(remove);
  result.message = StringFormat("DELETE %zu", result.affected_rows);
  return result;
}

// ASSERT <query> / CONDITION ON <query>: conditions the database on the
// event "the query has at least one answer". ASSERT CONFIDENCE >= p only
// checks the event's posterior confidence.
Result<StatementResult> ExecuteAssert(const BoundStatement& stmt, ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TableData data, ExecutePlan(*stmt.plan, ctx));
  // The event's lineage: the disjunction of the result tuples' conditions.
  // A t-certain tuple (or any tuple of a t-certain result) makes the event
  // certainly true.
  Dnf evidence;
  bool certain = false;
  for (Row& row : data.rows) {
    if (!data.uncertain || row.condition.IsTrue()) {
      certain = true;
      break;
    }
    evidence.AddClause(std::move(row.condition));
  }

  ConstraintStore& store = *ctx->session_constraints;
  const ExactOptions& exact = ctx->options->exact;
  StatementResult result;

  if (stmt.assert_min_confidence) {
    double p = 1.0;
    if (!certain) {
      MAYBMS_ASSIGN_OR_RETURN(
          p, PosteriorExactConfidence(evidence, store, ctx->worlds(), exact,
                                      ctx->pool));
    }
    if (p + 1e-12 < *stmt.assert_min_confidence) {
      return Status::ExecutionError(StringFormat(
          "ASSERT CONFIDENCE failed: posterior confidence %.12g < %.12g",
          p, *stmt.assert_min_confidence));
    }
    result.message = StringFormat("ASSERT CONFIDENCE %.6g >= %.6g", p,
                                  *stmt.assert_min_confidence);
    return result;
  }

  if (certain) {
    // Conditioning on a certain event is a no-op: C ∧ true = C.
    result.message = "ASSERT (evidence already certain)";
    return result;
  }
  // An empty evidence DNF (the query has no possible answers) is rejected
  // by Conjoin with a clean InvalidArgument, store untouched.
  MAYBMS_RETURN_NOT_OK(store.Conjoin(evidence, ctx->worlds(), exact, ctx->pool));
  double joint = store.probability();
  size_t clauses = store.NumClauses();
  if (!ctx->allow_prune) {
    // Multi-session: the evidence is this session's private posterior, so
    // the shared tables and world table stay untouched — restricted rows
    // report posterior 0 through the algebra instead of being deleted.
    result.message = StringFormat(
        "ASSERT P(evidence)=%.6g, %zu clause(s); evidence is session-local "
        "(no physical pruning)",
        joint, clauses);
    return result;
  }
  // Prune: worlds violating the evidence leave the stored representation;
  // fully-determined variables substitute away and renormalize.
  MAYBMS_ASSIGN_OR_RETURN(
      PruneStats pruned,
      PruneConditionedWorlds(ctx->catalog, &store, exact, ctx->pool));
  if (ctx->metrics != nullptr) {
    ctx->metrics->Add(Counter::kConstraintPrunes);
    ctx->metrics->Add(Counter::kConstraintPrunedRows, pruned.rows_dropped);
    ctx->metrics->Add(Counter::kConstraintPrunedVars, pruned.vars_collapsed);
  }
  result.affected_rows = pruned.rows_dropped;
  result.message = StringFormat(
      "ASSERT P(evidence)=%.6g, %zu clause(s); pruned %zu row(s), "
      "%zu atom(s), collapsed %zu variable(s)",
      joint, clauses, pruned.rows_dropped, pruned.atoms_removed,
      pruned.vars_collapsed);
  return result;
}

// SHOW EVIDENCE: one row per constraint clause with its prior marginal
// probability; the message summarizes P(C).
Result<StatementResult> ExecuteShowEvidence(ExecContext* ctx) {
  const ConstraintStore& store = *ctx->session_constraints;
  StatementResult result;
  result.has_data = true;
  result.data.schema.AddColumn(Column{"clause", TypeId::kString});
  result.data.schema.AddColumn(Column{"prob", TypeId::kDouble});
  const WorldTable& wt = ctx->worlds();
  for (const Condition& c : store.clauses()) {
    Row row;
    row.values.push_back(Value::String(c.ToString()));
    row.values.push_back(Value::Double(wt.ConditionProb(c)));
    result.data.rows.push_back(std::move(row));
  }
  if (store.active()) {
    result.message = StringFormat(
        "EVIDENCE %zu clause(s) over %zu variable(s), P(C)=%.12g",
        store.NumClauses(), store.variables().size(), store.probability());
  } else {
    result.message = "EVIDENCE none";
  }
  return result;
}

Result<StatementResult> ExecuteClearEvidence(ExecContext* ctx) {
  ctx->session_constraints->Clear();
  StatementResult result;
  result.message = "CLEAR EVIDENCE";
  return result;
}

Result<StatementResult> ExecuteDrop(const BoundStatement& stmt, ExecContext* ctx) {
  Status st = ctx->catalog->DropTable(stmt.table_name);
  if (!st.ok() && !(stmt.drop_if_exists && st.code() == StatusCode::kNotFound)) {
    return st;
  }
  StatementResult result;
  result.message = "DROP TABLE";
  return result;
}

Result<StatementResult> ExecuteCreateIndex(const BoundStatement& stmt,
                                           ExecContext* ctx) {
  MAYBMS_ASSIGN_OR_RETURN(TablePtr table, ctx->catalog->GetTable(stmt.table_name));
  MAYBMS_ASSIGN_OR_RETURN(
      SecondaryIndexPtr index,
      ctx->catalog->index_manager().CreateIndex(stmt.index_name, table,
                                                stmt.index_column,
                                                /*build_now=*/true, ctx->metrics));
  StatementResult result;
  result.affected_rows = index->stats().entries;
  result.message = StringFormat("CREATE INDEX (%zu entries)",
                                static_cast<size_t>(index->stats().entries));
  return result;
}

Result<StatementResult> ExecuteDropIndex(const BoundStatement& stmt,
                                         ExecContext* ctx) {
  MAYBMS_RETURN_NOT_OK(ctx->catalog->index_manager().DropIndex(
      stmt.index_name, stmt.drop_if_exists));
  StatementResult result;
  result.message = "DROP INDEX";
  return result;
}

Result<StatementResult> ExecuteShowIndexes(ExecContext* ctx) {
  StatementResult result;
  result.has_data = true;
  result.data.schema.AddColumn(Column{"index_name", TypeId::kString});
  result.data.schema.AddColumn(Column{"table_name", TypeId::kString});
  result.data.schema.AddColumn(Column{"column_name", TypeId::kString});
  result.data.schema.AddColumn(Column{"entries", TypeId::kInt});
  result.data.schema.AddColumn(Column{"height", TypeId::kInt});
  for (const IndexDef& def : ctx->catalog->index_manager().ListDefs()) {
    SecondaryIndexPtr index = ctx->catalog->index_manager().Find(def.name);
    if (index == nullptr) continue;  // racing DROP INDEX
    const SecondaryIndex::Stats stats = index->stats();
    Row row;
    row.values.push_back(Value::String(def.name));
    row.values.push_back(Value::String(def.table));
    row.values.push_back(Value::String(def.column));
    row.values.push_back(Value::Int(static_cast<int64_t>(stats.entries)));
    row.values.push_back(Value::Int(static_cast<int64_t>(stats.height)));
    result.data.rows.push_back(std::move(row));
  }
  result.message = StringFormat("INDEXES %zu", result.data.rows.size());
  return result;
}

}  // namespace

Result<StatementResult> ExecuteStatement(const BoundStatement& stmt, ExecContext* ctx) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(stmt, ctx);
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(stmt, ctx);
    case StatementKind::kCreateTableAs:
      return ExecuteCreateTableAs(stmt, ctx);
    case StatementKind::kInsert:
      return ExecuteInsert(stmt, ctx);
    case StatementKind::kUpdate:
      return ExecuteUpdate(stmt, ctx);
    case StatementKind::kDelete:
      return ExecuteDelete(stmt, ctx);
    case StatementKind::kDropTable:
      return ExecuteDrop(stmt, ctx);
    case StatementKind::kAssert:
      return ExecuteAssert(stmt, ctx);
    case StatementKind::kShowEvidence:
      return ExecuteShowEvidence(ctx);
    case StatementKind::kClearEvidence:
      return ExecuteClearEvidence(ctx);
    case StatementKind::kCreateIndex:
      return ExecuteCreateIndex(stmt, ctx);
    case StatementKind::kDropIndex:
      return ExecuteDropIndex(stmt, ctx);
    case StatementKind::kShowIndexes:
      return ExecuteShowIndexes(ctx);
    case StatementKind::kSet:
    case StatementKind::kExplain:
    case StatementKind::kShowStats:
      break;  // handled by the engine facade; never reaches execution
  }
  return Status::Internal("unhandled bound statement kind");
}

}  // namespace maybms
