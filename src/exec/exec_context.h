// Shared execution context and materialized intermediate results.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/cond/constraint_store.h"
#include "src/conf/exact.h"
#include "src/conf/montecarlo.h"
#include "src/storage/catalog.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {

/// Which plan interpreter executes queries.
enum class ExecEngine : uint8_t {
  kRow,    ///< row-at-a-time materializing interpreter (legacy/reference)
  kBatch,  ///< vectorized pull-based operator tree over columnar batches
};

class ThreadPool;
class MetricsRegistry;   // src/obs/metrics.h
struct StatementTrace;   // src/obs/trace.h
struct TraceNode;        // src/obs/trace.h

/// Engine-level execution options (confidence computation knobs).
struct ExecOptions {
  ExactOptions exact;            ///< conf() exact-algorithm tuning
  MonteCarloOptions montecarlo;  ///< aconf() sample caps
  ExecEngine engine = ExecEngine::kBatch;
  /// Worker threads for morsel-driven batch execution and parallel
  /// confidence computation. 0 = hardware_concurrency. 1 = fully serial
  /// (no pool). Results are identical at EVERY thread count: deterministic
  /// morsel order, and aconf always samples content-seeded counter-based
  /// substreams (run serially when no pool exists), so 1-thread and
  /// N-thread estimates agree bit for bit.
  unsigned num_threads = 0;
  /// Max rows per parallel work unit (morsel). Small values force many
  /// task boundaries (the stress tests use this); 0 = one morsel per
  /// batch. Only read when num_threads != 1.
  size_t morsel_size = 1024;
  /// Hybrid conf() fallback: when d-tree compilation exceeds the
  /// exact.max_steps node budget, answer with a seeded
  /// aconf(fallback_epsilon, fallback_delta) estimate (plus a result
  /// warning) instead of failing the query. The fallback seed is a pure
  /// function of the group's lineage, so enabling this never perturbs the
  /// session RNG stream and the estimates are identical across engines and
  /// thread counts. Off by default: the library surface keeps the hard
  /// budget error; the shell turns it on (`SET conf_fallback = on`).
  bool conf_fallback = false;
  double fallback_epsilon = 0.05;
  double fallback_delta = 0.01;
  /// Cross-statement d-tree compilation cache (src/lineage/dtree_cache.h):
  /// repeated conf()/tconf()/posterior queries over unchanged tables skip
  /// compilation entirely. The cached values are bit-identical to fresh
  /// compilation at every thread count on both engines (the key pins the
  /// canonical lineage content, the world-table version, and the solver
  /// options including the node budget), so this is on by default; `SET
  /// dtree_cache = off` disables it per session. Only honored by
  /// embedders that own a Catalog (the Database wires the catalog's cache
  /// into exact.cache per statement); a hand-built ExecContext with
  /// exact.cache == nullptr always compiles fresh.
  bool dtree_cache = true;
  /// Resident-byte budget for that cache (LRU eviction past it;
  /// 0 = unlimited). `SET dtree_cache_budget = <bytes>`. DATABASE-level
  /// knob: the cache is shared by every session over one catalog, so this
  /// field is only the session's view — a change is routed through the
  /// serialized write path and affects all sessions (see
  /// src/engine/session.h for the session/database knob split).
  size_t dtree_cache_budget = 64ull << 20;
  /// Rows per columnar-snapshot chunk (src/storage/table.h): INSERT
  /// rebuilds only the tail chunk, UPDATE/DELETE only touched chunks.
  /// `SET snapshot_chunk_rows = <rows>` (min 1). Changing it forces a
  /// one-time full relayout of each table's next snapshot. DATABASE-level
  /// knob like dtree_cache_budget: it relays out every table's snapshots,
  /// so a change goes through the serialized write path rather than being
  /// re-applied from per-session options each statement (which would let
  /// one session's SET silently rewrite every other session's snapshots).
  size_t snapshot_chunk_rows = 1024;
  /// Cost-based optimizer (`SET optimizer = on|off`, src/opt/): join-order
  /// enumeration with snapshot-derived statistics, predicate pushdown, and
  /// cardinality annotations between bind and execute. The optimized plan
  /// produces the same answer multiset with bit-identical confidence
  /// values as the translated plan (the conf/aconf funnels canonicalize
  /// per-group clause order, so join order cannot leak into lineage
  /// results); off restores the binder's syntactic plans exactly.
  bool optimizer = true;
  /// Annotated semijoin reduction (`SET optimizer_semijoin = on|off`):
  /// lets the optimizer insert SemiJoinReduce operators that shrink join
  /// inputs — and with them the condition columns every confidence solver
  /// downstream sees — when estimated selectivity justifies it. Only read
  /// when `optimizer` is on.
  bool optimizer_semijoin = true;
  /// Index-aware access-path selection (`SET use_indexes = on|off`): lets
  /// the optimizer replace a Filter's base-table Scan with an IndexScan
  /// over a matching B+ tree secondary index (src/index/) when the cost
  /// model favors it. The parent Filter keeps its full predicate and
  /// re-checks every candidate row, and IndexScan emits candidates in
  /// table order, so answers are bit-identical with indexes on or off.
  /// Only read when `optimizer` is on (access paths are an optimizer pass).
  bool use_indexes = true;
  /// Trace sampling (`SET trace_sample = <n>`): when n > 0 the session
  /// records a full EXPLAIN ANALYZE execution trace for every n-th
  /// statement it runs (1 = every statement) into the trace ring, without
  /// the client asking for EXPLAIN ANALYZE. 0 (default) = off. Sampled
  /// traces are observation-only: results are byte-identical to untraced
  /// runs.
  uint64_t trace_sample = 0;
  /// Observability (`SET metrics = on|off`, src/obs/): when on (the
  /// default) the Session wires the manager's MetricsRegistry and a
  /// per-statement ConfPhaseCounters into the context/solver options and
  /// records statement phase timings + a trace-ring entry per statement.
  /// When off, every obs pointer stays null and the engines skip ALL
  /// instrumentation (no clock reads, no atomic adds) — answers are
  /// identical either way; only visibility changes.
  bool metrics = true;
};

/// Everything operators need: the catalog (DML / create-table-as), the
/// world table (repair-key/pick-tuples create variables; confidence reads
/// probabilities), and the session RNG (aconf).
struct ExecContext {
  Catalog* catalog = nullptr;
  Rng* rng = nullptr;
  const ExecOptions* options = nullptr;
  /// Non-null iff the effective num_threads > 1; owned by the Database (or
  /// whichever embedder built the context).
  ThreadPool* pool = nullptr;
  /// Counts conf() groups answered by the aconf fallback this statement
  /// (see src/exec/conf_fallback.h); the engine attaches a warning when
  /// non-zero. Atomic: groups aggregate in parallel.
  std::atomic<uint64_t>* conf_fallbacks = nullptr;
  /// The session's evidence store (ASSERT / CONDITION ON state). Owned by
  /// the Session, NOT the shared catalog: each session's evidence is its
  /// own posterior (Koch & Olteanu's conditioning model), so concurrent
  /// sessions condition independently over one database. Set by whichever
  /// facade built the context; never null while statements execute.
  ConstraintStore* session_constraints = nullptr;
  /// True only while the executing session is the catalog's SOLE session
  /// (the embedded Database facade): ASSERT then physically prunes worlds
  /// the evidence determines (src/cond/prune.h). Multi-session execution
  /// keeps evidence purely algebraic — pruning would rewrite shared tables
  /// and the world table from one session's private posterior.
  bool allow_prune = false;
  /// Shared metrics registry (src/obs/metrics.h), or null when metrics
  /// are off (or the embedder has none). Counters only: execution never
  /// reads it. Members (not out-of-band state) because ExecutePlanBatch
  /// copies the context locally — the pointers must travel with the copy.
  MetricsRegistry* metrics = nullptr;
  /// EXPLAIN ANALYZE trace collector for the current statement, or null
  /// for untraced execution (the overwhelmingly common case).
  StatementTrace* trace = nullptr;
  /// Current parent while the trace's operator tree is being built /
  /// recursed (batch plan build and row recursion are single-threaded).
  TraceNode* trace_parent = nullptr;

  WorldTable& worlds() { return catalog->world_table(); }
  const WorldTable& worlds() const { return catalog->world_table(); }
  /// The active evidence: posterior confidence and `possible` consult it.
  const ConstraintStore& constraints() const { return *session_constraints; }
};

/// A materialized operator result.
struct TableData {
  Schema schema;
  std::vector<Row> rows;
  bool uncertain = false;
};

}  // namespace maybms
