// Shared execution context and materialized intermediate results.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/conf/exact.h"
#include "src/conf/montecarlo.h"
#include "src/storage/catalog.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {

/// Which plan interpreter executes queries.
enum class ExecEngine : uint8_t {
  kRow,    ///< row-at-a-time materializing interpreter (legacy/reference)
  kBatch,  ///< vectorized pull-based operator tree over columnar batches
};

/// Engine-level execution options (confidence computation knobs).
struct ExecOptions {
  ExactOptions exact;            ///< conf() exact-algorithm tuning
  MonteCarloOptions montecarlo;  ///< aconf() sample caps
  ExecEngine engine = ExecEngine::kBatch;
};

/// Everything operators need: the catalog (DML / create-table-as), the
/// world table (repair-key/pick-tuples create variables; confidence reads
/// probabilities), and the session RNG (aconf).
struct ExecContext {
  Catalog* catalog = nullptr;
  Rng* rng = nullptr;
  const ExecOptions* options = nullptr;

  WorldTable& worlds() { return catalog->world_table(); }
  const WorldTable& worlds() const { return catalog->world_table(); }
};

/// A materialized operator result.
struct TableData {
  Schema schema;
  std::vector<Row> rows;
  bool uncertain = false;
};

}  // namespace maybms
