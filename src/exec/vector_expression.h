// Vectorized expression evaluation: a BoundExpr evaluated over a whole
// Batch at once, producing a ColumnVector.
//
// Hot shapes (column/literal comparisons and arithmetic over int64/double
// columns) run as tight typed loops over the raw column arrays. Everything
// else falls back to a per-row loop over the *same scalar kernels the row
// engine uses* (EvalUnaryValue/EvalBinaryValue/EvalScalarFunctionValue), so
// the two engines cannot disagree on SQL semantics.
//
// Error parity: AND/OR are not short-circuited when vector-evaluating (the
// Kleene result is identical); if the eagerly-evaluated side fails — e.g. a
// division by zero on a row the row engine would have skipped — evaluation
// re-runs row-at-a-time with proper short-circuiting.
#pragma once

#include "src/common/result.h"
#include "src/exec/expression.h"
#include "src/types/batch.h"

namespace maybms {

/// Evaluates `expr` over every row of `in`. kTconf placeholders are the
/// projection operator's job and yield an internal error here, mirroring
/// BoundTconf::Eval.
Result<ColumnVectorPtr> EvalVector(const BoundExpr& expr, const Batch& in);

}  // namespace maybms
