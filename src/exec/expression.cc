#include "src/exec/expression.h"

#include <cmath>

#include "src/common/str_util.h"

namespace maybms {

namespace {

bool IsNumericType(TypeId t) { return t == TypeId::kInt || t == TypeId::kDouble; }

}  // namespace

bool IsTruthy(const Value& v) {
  if (v.is_null()) return false;
  switch (v.type()) {
    case TypeId::kBool:
      return v.AsBool();
    case TypeId::kInt:
      return v.AsInt() != 0;
    case TypeId::kDouble:
      return v.AsDouble() != 0;
    default:
      return false;
  }
}

Result<Value> EvalUnaryValue(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kNot: {
      if (v.is_null()) return Value::Null();
      return Value::Bool(!IsTruthy(v));
    }
    case UnaryOp::kNegate: {
      if (v.is_null()) return Value::Null();
      if (v.type() == TypeId::kInt) return Value::Int(-v.AsInt());
      MAYBMS_ASSIGN_OR_RETURN(double d, v.ToDouble());
      return Value::Double(-d);
    }
  }
  return Status::Internal("unknown unary operator");
}

Result<Value> BoundUnary::Eval(const std::vector<Value>& row) const {
  MAYBMS_ASSIGN_OR_RETURN(Value v, operand->Eval(row));
  return EvalUnaryValue(op, v);
}

std::string BoundUnary::ToString() const {
  return (op == UnaryOp::kNot ? "not " : "-") + operand->ToString();
}

Result<Value> EvalBinaryValue(BinaryOp op, const Value& l, const Value& r) {
  // Logical connectives: Kleene three-valued logic over the two values
  // (short-circuiting, when wanted, happens in the callers that control
  // operand evaluation).
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    bool l_null = l.is_null();
    bool l_true = !l_null && IsTruthy(l);
    bool r_null = r.is_null();
    bool r_true = !r_null && IsTruthy(r);
    if (op == BinaryOp::kAnd) {
      if ((!l_null && !l_true) || (!r_null && !r_true)) return Value::Bool(false);
      if (l_null || r_null) return Value::Null();
      return Value::Bool(true);
    }
    if (l_true || r_true) return Value::Bool(true);
    if (l_null || r_null) return Value::Null();
    return Value::Bool(false);
  }

  if (l.is_null() || r.is_null()) return Value::Null();

  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(l.Equals(r));
    case BinaryOp::kNe:
      return Value::Bool(!l.Equals(r));
    case BinaryOp::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (op == BinaryOp::kAdd && l.type() == TypeId::kString &&
          r.type() == TypeId::kString) {
        return Value::String(l.AsString() + r.AsString());
      }
      if (!IsNumericType(l.type()) && l.type() != TypeId::kBool) {
        return Status::TypeError(
            StringFormat("arithmetic on non-numeric value '%s'", l.ToString().c_str()));
      }
      if (!IsNumericType(r.type()) && r.type() != TypeId::kBool) {
        return Status::TypeError(
            StringFormat("arithmetic on non-numeric value '%s'", r.ToString().c_str()));
      }
      bool both_int = l.type() == TypeId::kInt && r.type() == TypeId::kInt;
      if (both_int && op != BinaryOp::kDiv) {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int(a + b);
          case BinaryOp::kSub:
            return Value::Int(a - b);
          case BinaryOp::kMul:
            return Value::Int(a * b);
          case BinaryOp::kMod:
            if (b == 0) return Status::ExecutionError("modulo by zero");
            return Value::Int(a % b);
          default:
            break;
        }
      }
      MAYBMS_ASSIGN_OR_RETURN(double a, l.ToDouble());
      MAYBMS_ASSIGN_OR_RETURN(double b, r.ToDouble());
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        case BinaryOp::kMul:
          return Value::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0) return Status::ExecutionError("division by zero");
          return Value::Double(a / b);
        case BinaryOp::kMod:
          if (b == 0) return Status::ExecutionError("modulo by zero");
          return Value::Double(std::fmod(a, b));
        default:
          break;
      }
      break;
    }
    default:
      break;
  }
  return Status::Internal("unknown binary operator");
}

Result<Value> BoundBinary::Eval(const std::vector<Value>& row) const {
  // Short-circuit the logical connectives: the right operand is only
  // evaluated when the left value does not already decide the result.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    MAYBMS_ASSIGN_OR_RETURN(Value l, left->Eval(row));
    bool l_null = l.is_null();
    bool l_true = !l_null && IsTruthy(l);
    if (op == BinaryOp::kAnd && !l_null && !l_true) return Value::Bool(false);
    if (op == BinaryOp::kOr && l_true) return Value::Bool(true);
    MAYBMS_ASSIGN_OR_RETURN(Value r, right->Eval(row));
    return EvalBinaryValue(op, l, r);
  }
  MAYBMS_ASSIGN_OR_RETURN(Value l, left->Eval(row));
  MAYBMS_ASSIGN_OR_RETURN(Value r, right->Eval(row));
  return EvalBinaryValue(op, l, r);
}

std::string BoundBinary::ToString() const {
  return "(" + left->ToString() + " " + std::string(BinaryOpToString(op)) + " " +
         right->ToString() + ")";
}

namespace {

struct ScalarFnSpec {
  const char* name;
  size_t min_args;
  size_t max_args;
  // kNull in the table means "same numeric type rules apply" (resolved in
  // ScalarFunctionResultType).
  TypeId result;
};

constexpr ScalarFnSpec kScalarFns[] = {
    {"abs", 1, 1, TypeId::kNull},      {"sqrt", 1, 1, TypeId::kDouble},
    {"exp", 1, 1, TypeId::kDouble},    {"ln", 1, 1, TypeId::kDouble},
    {"pow", 2, 2, TypeId::kDouble},    {"round", 1, 1, TypeId::kDouble},
    {"floor", 1, 1, TypeId::kDouble},  {"ceil", 1, 1, TypeId::kDouble},
    {"least", 2, 16, TypeId::kNull},   {"greatest", 2, 16, TypeId::kNull},
    {"length", 1, 1, TypeId::kInt},    {"lower", 1, 1, TypeId::kString},
    {"upper", 1, 1, TypeId::kString},
};

const ScalarFnSpec* FindScalarFn(const std::string& name) {
  for (const ScalarFnSpec& spec : kScalarFns) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

}  // namespace

bool IsScalarFunction(const std::string& name) {
  return FindScalarFn(name) != nullptr;
}

Result<TypeId> ScalarFunctionResultType(const std::string& name,
                                        const std::vector<TypeId>& arg_types) {
  const ScalarFnSpec* spec = FindScalarFn(name);
  if (spec == nullptr) {
    return Status::BindError(StringFormat("unknown function '%s'", name.c_str()));
  }
  if (arg_types.size() < spec->min_args || arg_types.size() > spec->max_args) {
    return Status::BindError(
        StringFormat("function '%s' called with %zu arguments", name.c_str(),
                     arg_types.size()));
  }
  if (spec->result != TypeId::kNull) return spec->result;
  // abs/least/greatest: numeric pass-through (double if any arg double).
  TypeId out = TypeId::kInt;
  for (TypeId t : arg_types) {
    if (t == TypeId::kDouble || t == TypeId::kNull) out = TypeId::kDouble;
    if (t == TypeId::kString) return TypeId::kString;  // least/greatest on text
  }
  return out;
}

Result<Value> EvalScalarFunctionValue(const std::string& name,
                                      const std::vector<Value>& vals) {
  auto as_double = [&](size_t i) { return vals[i].ToDouble(); };
  if (name == "abs") {
    if (vals[0].type() == TypeId::kInt) return Value::Int(std::abs(vals[0].AsInt()));
    MAYBMS_ASSIGN_OR_RETURN(double d, as_double(0));
    return Value::Double(std::fabs(d));
  }
  if (name == "sqrt") {
    MAYBMS_ASSIGN_OR_RETURN(double d, as_double(0));
    if (d < 0) return Status::ExecutionError("sqrt of negative value");
    return Value::Double(std::sqrt(d));
  }
  if (name == "exp") {
    MAYBMS_ASSIGN_OR_RETURN(double d, as_double(0));
    return Value::Double(std::exp(d));
  }
  if (name == "ln") {
    MAYBMS_ASSIGN_OR_RETURN(double d, as_double(0));
    if (d <= 0) return Status::ExecutionError("ln of non-positive value");
    return Value::Double(std::log(d));
  }
  if (name == "pow") {
    MAYBMS_ASSIGN_OR_RETURN(double a, as_double(0));
    MAYBMS_ASSIGN_OR_RETURN(double b, as_double(1));
    return Value::Double(std::pow(a, b));
  }
  if (name == "round") {
    MAYBMS_ASSIGN_OR_RETURN(double d, as_double(0));
    return Value::Double(std::round(d));
  }
  if (name == "floor") {
    MAYBMS_ASSIGN_OR_RETURN(double d, as_double(0));
    return Value::Double(std::floor(d));
  }
  if (name == "ceil") {
    MAYBMS_ASSIGN_OR_RETURN(double d, as_double(0));
    return Value::Double(std::ceil(d));
  }
  if (name == "least" || name == "greatest") {
    Value best = vals[0];
    for (size_t i = 1; i < vals.size(); ++i) {
      int c = vals[i].Compare(best);
      if ((name == "least" && c < 0) || (name == "greatest" && c > 0)) best = vals[i];
    }
    return best;
  }
  if (name == "length") {
    if (vals[0].type() != TypeId::kString) {
      return Status::TypeError("length() requires a string");
    }
    return Value::Int(static_cast<int64_t>(vals[0].AsString().size()));
  }
  if (name == "lower" || name == "upper") {
    if (vals[0].type() != TypeId::kString) {
      return Status::TypeError(name + "() requires a string");
    }
    std::string s = vals[0].AsString();
    for (char& c : s) {
      c = name == "lower" ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                          : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return Value::String(std::move(s));
  }
  return Status::Internal(StringFormat("unhandled scalar function '%s'", name.c_str()));
}

Result<Value> BoundScalarFunction::Eval(const std::vector<Value>& row) const {
  std::vector<Value> vals;
  vals.reserve(args.size());
  for (const BoundExprPtr& a : args) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, a->Eval(row));
    if (v.is_null()) return Value::Null();
    vals.push_back(std::move(v));
  }
  return EvalScalarFunctionValue(name, vals);
}

std::string BoundScalarFunction::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToString();
  }
  return out + ")";
}

BoundExprPtr BoundScalarFunction::Clone() const {
  std::vector<BoundExprPtr> cloned;
  cloned.reserve(args.size());
  for (const BoundExprPtr& a : args) cloned.push_back(a->Clone());
  return std::make_unique<BoundScalarFunction>(name, std::move(cloned), type);
}

}  // namespace maybms
