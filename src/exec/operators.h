// Plan execution: materializing interpreter for bound logical plans,
// implementing the parsimonious U-relational translation of positive
// relational algebra [Antova et al., ICDE'08] and the probabilistic
// operators of the MayBMS language.
#pragma once

#include "src/exec/exec_context.h"
#include "src/plan/logical_plan.h"

namespace maybms {

/// Executes a bound plan, producing a materialized result.
Result<TableData> ExecutePlan(const PlanNode& plan, ExecContext* ctx);

}  // namespace maybms
