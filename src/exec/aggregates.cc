#include "src/exec/aggregates.h"

#include <algorithm>
#include <cmath>

#include "src/common/str_util.h"
#include "src/cond/posterior.h"
#include "src/exec/conf_fallback.h"
#include "src/lineage/dnf.h"

namespace maybms {

namespace {

// Accumulator for one standard SQL aggregate.
struct StandardAcc {
  int64_t count = 0;
  double dsum = 0;
  int64_t isum = 0;
  bool all_int = true;
  bool any = false;
  Value min_v;
  Value max_v;

  void Add(const Value& v) {
    if (v.is_null()) return;
    any = true;
    ++count;
    if (v.type() == TypeId::kInt) {
      isum += v.AsInt();
      dsum += static_cast<double>(v.AsInt());
    } else if (v.type() == TypeId::kDouble || v.type() == TypeId::kBool) {
      all_int = false;
      dsum += *v.ToDouble();
    } else {
      all_int = false;  // strings: sum/avg invalid, min/max fine
    }
    if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
    if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
  }
};

}  // namespace

Result<std::vector<std::vector<Value>>> ComputeGroupAggregates(
    const std::vector<const Row*>& group_rows,
    const std::vector<BoundAggregate>& aggs, ExecContext* ctx) {
  const WorldTable& wt = ctx->worlds();

  // Value of each non-argmax aggregate; argmax handled separately.
  std::vector<Value> values(aggs.size(), Value::Null());
  int argmax_index = -1;
  std::vector<Value> argmax_ties;

  for (size_t a = 0; a < aggs.size(); ++a) {
    const BoundAggregate& agg = aggs[a];
    switch (agg.kind) {
      case AggKind::kCountStar: {
        values[a] = Value::Int(static_cast<int64_t>(group_rows.size()));
        break;
      }
      case AggKind::kCount: {
        int64_t n = 0;
        for (const Row* row : group_rows) {
          MAYBMS_ASSIGN_OR_RETURN(Value v, agg.arg->Eval(row->values));
          if (!v.is_null()) ++n;
        }
        values[a] = Value::Int(n);
        break;
      }
      case AggKind::kSum:
      case AggKind::kAvg:
      case AggKind::kMin:
      case AggKind::kMax: {
        StandardAcc acc;
        for (const Row* row : group_rows) {
          MAYBMS_ASSIGN_OR_RETURN(Value v, agg.arg->Eval(row->values));
          if (!v.is_null() && (agg.kind == AggKind::kSum || agg.kind == AggKind::kAvg) &&
              v.type() == TypeId::kString) {
            return Status::TypeError("sum/avg over non-numeric values");
          }
          acc.Add(v);
        }
        if (!acc.any) {
          values[a] = Value::Null();
        } else if (agg.kind == AggKind::kSum) {
          values[a] = acc.all_int ? Value::Int(acc.isum) : Value::Double(acc.dsum);
        } else if (agg.kind == AggKind::kAvg) {
          values[a] = Value::Double(acc.dsum / static_cast<double>(acc.count));
        } else if (agg.kind == AggKind::kMin) {
          values[a] = acc.min_v;
        } else {
          values[a] = acc.max_v;
        }
        break;
      }
      case AggKind::kConf:
      case AggKind::kAconf: {
        // The group's lineage: disjunction of the duplicate tuples'
        // conjunctive conditions (paper §2.3). Under asserted evidence the
        // answer is the posterior P(lineage | C) (src/cond/posterior.h).
        //
        // Clause order is canonicalized (conditions compare lexicographically
        // over their sorted atom lists) so the lineage handed to the solvers
        // is a pure function of the group's condition CONTENT: the optimizer
        // may reorder joins, which permutes duplicate arrival order but can
        // never change what the merged conditions contain.
        const ConstraintStore& cs = ctx->constraints();
        std::vector<const Row*> ordered(group_rows);
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const Row* x, const Row* y) {
                           return x->condition < y->condition;
                         });
        Dnf dnf;
        for (const Row* row : ordered) dnf.AddClause(row->condition);
        if (agg.kind == AggKind::kConf) {
          MAYBMS_ASSIGN_OR_RETURN(double p, GroupConfidence(dnf, ctx));
          values[a] = Value::Double(p);
        } else {
          // Sampling seeds derive from the group's lineage content (same
          // scheme as the conf() fallback and the batch engine), sampling
          // on counter-based substreams — identical estimates at every
          // thread count (a null pool runs the substreams serially), across
          // engines, across join orders, and across repeated statements
          // over unchanged lineage (which makes the estimate cacheable).
          uint64_t base_seed = LineageSeed(dnf);
          MonteCarloResult mc;
          if (cs.active()) {
            MAYBMS_ASSIGN_OR_RETURN(
                mc, PosteriorApproxConfidenceSeeded(dnf, cs, wt, agg.epsilon,
                                                    agg.delta, base_seed,
                                                    ctx->options->montecarlo,
                                                    ctx->options->exact,
                                                    ctx->pool));
          } else {
            MAYBMS_ASSIGN_OR_RETURN(
                mc, ApproxConfidenceSeeded(CompiledDnf(dnf, wt), agg.epsilon,
                                           agg.delta, base_seed,
                                           ctx->options->montecarlo, ctx->pool));
          }
          values[a] = Value::Double(mc.estimate);
        }
        break;
      }
      case AggKind::kEsum: {
        // Expected sum by linearity of expectation: Σ value·P(condition) —
        // linear time, no #P confidence computation (paper §2.2 item 4).
        // Under evidence the per-row marginal is the posterior.
        const ConstraintStore& cs = ctx->constraints();
        double total = 0;
        for (const Row* row : group_rows) {
          MAYBMS_ASSIGN_OR_RETURN(Value v, agg.arg->Eval(row->values));
          if (v.is_null()) continue;
          MAYBMS_ASSIGN_OR_RETURN(double d, v.ToDouble());
          MAYBMS_ASSIGN_OR_RETURN(
              double p, PosteriorConditionProb(row->condition, cs, wt,
                                               ctx->options->exact));
          total += d * p;
        }
        values[a] = Value::Double(total);
        break;
      }
      case AggKind::kEcount: {
        const ConstraintStore& cs = ctx->constraints();
        double total = 0;
        for (const Row* row : group_rows) {
          if (agg.arg) {
            MAYBMS_ASSIGN_OR_RETURN(Value v, agg.arg->Eval(row->values));
            if (v.is_null()) continue;
          }
          MAYBMS_ASSIGN_OR_RETURN(
              double p, PosteriorConditionProb(row->condition, cs, wt,
                                               ctx->options->exact));
          total += p;
        }
        values[a] = Value::Double(total);
        break;
      }
      case AggKind::kArgmax: {
        if (argmax_index >= 0) {
          return Status::ExecutionError(
              "at most one argmax aggregate is supported per select");
        }
        argmax_index = static_cast<int>(a);
        Value best;
        for (const Row* row : group_rows) {
          MAYBMS_ASSIGN_OR_RETURN(Value v, agg.arg2->Eval(row->values));
          if (v.is_null()) continue;
          if (best.is_null() || v.Compare(best) > 0) best = v;
        }
        if (!best.is_null()) {
          for (const Row* row : group_rows) {
            MAYBMS_ASSIGN_OR_RETURN(Value v, agg.arg2->Eval(row->values));
            if (v.is_null() || !v.Equals(best)) continue;
            MAYBMS_ASSIGN_OR_RETURN(Value arg_v, agg.arg->Eval(row->values));
            // Deduplicate tie values.
            bool seen = false;
            for (const Value& t : argmax_ties) {
              if (t.Equals(arg_v)) {
                seen = true;
                break;
              }
            }
            if (!seen) argmax_ties.push_back(std::move(arg_v));
          }
        }
        break;
      }
    }
  }

  std::vector<std::vector<Value>> out;
  if (argmax_index < 0) {
    out.push_back(std::move(values));
    return out;
  }
  if (argmax_ties.empty()) argmax_ties.push_back(Value::Null());
  for (Value& tie : argmax_ties) {
    std::vector<Value> row = values;
    row[static_cast<size_t>(argmax_index)] = std::move(tie);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace maybms
