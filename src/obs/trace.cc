#include "src/obs/trace.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace maybms {

namespace {

std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) * 1e-6);
  return buf;
}

double EpsilonOf(const ConfPhaseSample& c) {
  if (c.epsilon_bits == 0) return 0.0;
  double eps;
  static_assert(sizeof(eps) == sizeof(c.epsilon_bits), "bit width");
  std::memcpy(&eps, &c.epsilon_bits, sizeof(eps));
  return eps;
}

void AppendConfSummary(const ConfPhaseSample& c, std::string* out) {
  char buf[256];
  if (c.exact_calls != 0) {
    std::snprintf(buf, sizeof(buf),
                  " conf[exact=%llu %s cache_hits=%llu comp_hits=%llu "
                  "compiles=%llu compile=%s nodes=%llu]",
                  static_cast<unsigned long long>(c.exact_calls),
                  Ms(c.exact_ns).c_str(),
                  static_cast<unsigned long long>(c.cache_hits),
                  static_cast<unsigned long long>(c.component_hits),
                  static_cast<unsigned long long>(c.compiles),
                  Ms(c.compile_ns).c_str(),
                  static_cast<unsigned long long>(c.compile_nodes));
    out->append(buf);
  }
  if (c.aconf_calls != 0 || c.kl_trials != 0 || c.estimate_hits != 0) {
    std::snprintf(buf, sizeof(buf),
                  " aconf[calls=%llu %s trials=%llu rejections=%llu "
                  "est_hits=%llu eps=%g]",
                  static_cast<unsigned long long>(c.aconf_calls),
                  Ms(c.aconf_ns).c_str(),
                  static_cast<unsigned long long>(c.kl_trials),
                  static_cast<unsigned long long>(c.kl_rejections),
                  static_cast<unsigned long long>(c.estimate_hits),
                  EpsilonOf(c));
    out->append(buf);
  }
}

void RenderNode(const TraceNode& node, int depth, std::string* out) {
  uint64_t child_ns = 0;
  for (const auto& c : node.children) child_ns += c->inclusive_ns;
  const uint64_t self_ns =
      node.inclusive_ns > child_ns ? node.inclusive_ns - child_ns : 0;
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.label);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  (time=%s self=%s rows=%llu batches=%llu",
                Ms(node.inclusive_ns).c_str(), Ms(self_ns).c_str(),
                static_cast<unsigned long long>(node.rows_out),
                static_cast<unsigned long long>(node.batches_out));
  out->append(buf);
  if (node.est_rows >= 0) {
    std::snprintf(buf, sizeof(buf), " est=%.6g", node.est_rows);
    out->append(buf);
  }
  if (node.morsels != 0) {
    std::snprintf(buf, sizeof(buf), " morsels=%llu",
                  static_cast<unsigned long long>(node.morsels));
    out->append(buf);
  }
  out->push_back(')');
  AppendConfSummary(node.conf, out);
  out->push_back('\n');
  for (const auto& c : node.children) RenderNode(*c, depth + 1, out);
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out->append(buf);
        } else {
          out->push_back(ch);
        }
    }
  }
}

struct EventWriter {
  std::string* out;
  bool first = true;

  void Emit(const std::string& name, uint64_t session, uint64_t tid,
            uint64_t ts_ns, uint64_t dur_ns, const std::string& args_json) {
    if (!first) out->append(",\n");
    first = false;
    char buf[160];
    out->append("{\"name\":\"");
    JsonEscape(name, out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":%llu,\"tid\":%llu,"
                  "\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<unsigned long long>(session),
                  static_cast<unsigned long long>(tid),
                  static_cast<double>(ts_ns) * 1e-3,
                  static_cast<double>(dur_ns) * 1e-3);
    out->append(buf);
    if (!args_json.empty()) {
      out->append(",\"args\":{");
      out->append(args_json);
      out->push_back('}');
    }
    out->append("}");
  }
};

std::string NodeArgs(const TraceNode& node) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"rows\":%llu,\"batches\":%llu,\"morsels\":%llu,"
                "\"calls\":%llu,\"kl_trials\":%llu,\"compile_nodes\":%llu",
                static_cast<unsigned long long>(node.rows_out),
                static_cast<unsigned long long>(node.batches_out),
                static_cast<unsigned long long>(node.morsels),
                static_cast<unsigned long long>(node.calls),
                static_cast<unsigned long long>(node.conf.kl_trials),
                static_cast<unsigned long long>(node.conf.compile_nodes));
  return buf;
}

// Aggregate operator spans: children laid out back-to-back from the
// parent's start (per-call offsets are not retained).
void EmitNode(const TraceNode& node, uint64_t session, uint64_t tid,
              uint64_t start_ns, EventWriter* w) {
  w->Emit(node.label, session, tid, start_ns, node.inclusive_ns,
          NodeArgs(node));
  uint64_t child_start = start_ns;
  for (const auto& c : node.children) {
    EmitNode(*c, session, tid, child_start, w);
    child_start += c->inclusive_ns;
  }
}

}  // namespace

TraceNode* StatementTrace::NewNode(TraceNode* parent, std::string label) {
  auto node = std::make_unique<TraceNode>();
  node->label = std::move(label);
  TraceNode* raw = node.get();
  if (parent == nullptr) {
    root = std::move(node);
  } else {
    parent->children.push_back(std::move(node));
  }
  return raw;
}

std::string StatementTrace::Render() const {
  std::string out;
  if (root != nullptr) {
    RenderNode(*root, 0, &out);
  }
  const uint64_t conf_ns = conf.exact_ns + conf.aconf_ns;
  out.append("phases: total=" + Ms(total_ns) + " parse=" + Ms(parse_ns) +
             " bind=" + Ms(bind_ns) + " lock_wait=" + Ms(lock_wait_ns) +
             " execute=" + Ms(execute_ns) + " conf=" + Ms(conf_ns) + "\n");
  if (lock_wait_ns != 0) {
    out.append("locks: catalog=" + Ms(lock_catalog_ns) +
               " world=" + Ms(lock_world_ns) +
               " table=" + Ms(lock_table_ns) + "\n");
  }
  if (!conf.Empty()) {
    std::string line = "conf:";
    AppendConfSummary(conf, &line);
    out.append(line);
    out.push_back('\n');
  }
  return out;
}

void TraceBuffer::Record(std::shared_ptr<const StatementTrace> trace) {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(trace));
  while (traces_.size() > capacity_) traces_.pop_front();
}

std::vector<std::shared_ptr<const StatementTrace>> TraceBuffer::Recent()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {traces_.begin(), traces_.end()};
}

std::string ExportChromeTrace(
    const std::vector<std::shared_ptr<const StatementTrace>>& traces) {
  // Normalize timestamps to the earliest statement start so the viewer
  // opens at t=0 regardless of process uptime.
  uint64_t epoch = 0;
  bool have_epoch = false;
  for (const auto& t : traces) {
    if (!have_epoch || t->start_ns < epoch) {
      epoch = t->start_ns;
      have_epoch = true;
    }
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventWriter w{&out};
  for (const auto& t : traces) {
    const uint64_t ts = t->start_ns - epoch;
    char args[256];
    std::snprintf(args, sizeof(args),
                  "\"failed\":%s,\"kl_trials\":%llu,\"compile_nodes\":%llu",
                  t->failed ? "true" : "false",
                  static_cast<unsigned long long>(t->conf.kl_trials),
                  static_cast<unsigned long long>(t->conf.compile_nodes));
    std::string label = t->statement.empty() ? "<statement>" : t->statement;
    w.Emit(label, t->session_id, t->thread_hash, ts, t->total_ns, args);
    uint64_t cursor = ts;
    // Statement lifecycle order: locks are acquired before binding (the
    // binder reads table schemas under them), so lock_wait precedes bind.
    const std::pair<const char*, uint64_t> phases[] = {
        {"parse", t->parse_ns},
        {"lock_wait", t->lock_wait_ns},
        {"bind", t->bind_ns},
        {"execute", t->execute_ns},
    };
    uint64_t execute_start = ts;
    for (const auto& ph : phases) {
      if (ph.second != 0) {
        w.Emit(ph.first, t->session_id, t->thread_hash, cursor, ph.second,
               "");
      }
      if (std::strcmp(ph.first, "execute") == 0) execute_start = cursor;
      cursor += ph.second;
    }
    if (t->root != nullptr) {
      EmitNode(*t->root, t->session_id, t->thread_hash, execute_start, &w);
    }
  }
  out.append("\n]}\n");
  return out;
}

}  // namespace maybms
