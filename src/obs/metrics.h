// Engine-wide metrics registry (ISSUE 8).
//
// One MetricsRegistry is owned by each SessionManager (NOT a process-wide
// singleton: tests create many managers and their counters must not bleed
// into each other). Every layer that wants to count something gets a raw
// pointer wired through ExecContext / ExactOptions / MonteCarloOptions; a
// null pointer means "metrics off" and the instrumented code skips all
// work, so `SET metrics = off` leaves both answers and counters untouched.
//
// Design constraints, in order:
//   1. Near-zero cost while enabled: counters are relaxed atomic adds on a
//      fixed enum-indexed array (no map lookups, no strings, no locks on
//      the hot path). Latency histograms are log2-bucketed nanoseconds —
//      one clz + one relaxed add.
//   2. Thread-safe by construction: morsel workers, server threads and
//      concurrent sessions all hit the same registry.
//   3. Snapshots are names + doubles so SHOW STATS / \stats / bench JSON
//      all render from the same call.
//
// This header is a LEAF: it may be included from any layer (conf/,
// lineage/, exec/, engine/, server/) and depends only on the standard
// library.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace maybms {

// Statement kinds mirrored from StatementKind (src/sql/ast.h). The
// registry cannot include ast.h (ast.h sits above obs/ in the layering),
// so Session maps StatementKind -> this dense index via
// StatementKindIndex() in session.cc; kNumStatementKinds must stay >= the
// number of StatementKind enumerators (static_assert'd at the mapping
// site).
inline constexpr size_t kNumStatementKinds = 16;

// Scalar counters. Names live in kCounterNames (metrics.cc) in the SAME
// order; keep the two in sync.
enum class Counter : uint16_t {
  // Per-statement-kind executed/failed blocks, indexed by
  // kStmtExecutedFirst + kind and kStmtFailedFirst + kind.
  kStmtExecutedFirst = 0,
  kStmtFailedFirst = kStmtExecutedFirst + kNumStatementKinds,
  kFirstScalar = kStmtFailedFirst + kNumStatementKinds,

  // Execution engines.
  kRowOperators = kFirstScalar,  // row-engine plan nodes executed
  kRowRows,                      // rows materialized by row-engine nodes
  kBatchOperators,               // batch operators constructed
  kBatchBatches,                 // batches pulled from plan roots
  kBatchRows,                    // rows pulled from plan roots
  kBatchMorsels,                 // morsels dispatched to the pool

  // Exact confidence (d-tree) phases.
  kConfExactCalls,
  kConfExactCacheHits,      // whole-statement (kind-0) cache answers
  kConfExactComponentHits,  // per-component (kind-1) cache answers
  kConfExactCompiles,       // fresh DTreeCompiler runs
  kConfExactCompileNodes,   // compiler steps across fresh runs
  kConfFallbacks,           // exact -> aconf hybrid fallbacks taken

  // Approximate confidence (Karp-Luby).
  kAconfCalls,
  kAconfEstimateCacheHits,  // seeded-estimate (kind-2) cache answers
  kKlTrials,                // Bernoulli trials drawn
  kKlRejections,            // trials rejected (Z = 0)

  // Conditioning.
  kConstraintPrunes,      // physical world-pruning passes
  kConstraintPrunedRows,  // rows dropped by pruning
  kConstraintPrunedVars,  // variables collapsed by pruning

  // Server front end.
  kServerConnections,
  kServerRequests,
  kServerBytesIn,
  kServerBytesOut,

  kTracesRecorded,  // statement traces pushed into the ring buffer

  // Cost-based optimizer (src/opt/).
  kOptPlansConsidered,    // join orders costed by the enumerator
  kOptReorders,           // join regions where a non-syntactic order won
  kOptSemijoinsInserted,  // semijoin reducers placed in plans
  kOptSemijoinsSkipped,   // reducer sites rejected by the benefit gate
  kOptIndexScans,         // Filter(Scan) sites rewritten to an index path

  // Paged storage / buffer pool (src/storage/page.h).
  kBufferPoolHits,
  kBufferPoolMisses,
  kBufferPoolEvictions,
  kBufferPoolWritebacks,

  // Secondary indexes (src/index/).
  kIndexLookups,       // B+ tree range/point lookups served
  kIndexScanRows,      // candidate row ids returned by lookups
  kIndexRebuilds,      // full lazy rebuilds (initial build or staleness)
  kIndexAppendedRows,  // rows absorbed incrementally on INSERT

  kNumCounters,
};

// Latency histograms (log2 ns buckets). Names in kHistNames (metrics.cc).
enum class Hist : uint16_t {
  kStmtTotal = 0,  // whole statement incl. parse
  kStmtParse,
  kStmtBind,      // bind + plan (the binder plans)
  kStmtLockWait,  // total statement-lock wait
  kStmtExecute,
  kConfExact,  // per ExactConfidence call
  kConfAconf,  // per sampled aconf call
  kLockCatalog,
  kLockWorld,
  kLockTable,
  kNumHists,
};

// Plain (non-atomic) snapshot of one ConfPhaseCounters — used for
// before/after deltas around an operator's Next() call when tracing.
struct ConfPhaseSample {
  uint64_t exact_calls = 0;
  uint64_t exact_ns = 0;
  uint64_t cache_hits = 0;
  uint64_t component_hits = 0;
  uint64_t compiles = 0;
  uint64_t compile_ns = 0;
  uint64_t compile_nodes = 0;
  uint64_t aconf_calls = 0;
  uint64_t aconf_ns = 0;
  uint64_t estimate_hits = 0;
  uint64_t kl_trials = 0;
  uint64_t kl_rejections = 0;
  uint64_t epsilon_bits = 0;  // bit pattern of the last aconf epsilon

  ConfPhaseSample operator-(const ConfPhaseSample& b) const;
  void Accumulate(const ConfPhaseSample& d);
  bool Empty() const;
};

// Per-statement confidence-phase counters. One instance lives on the
// Session stack for the duration of a statement and is wired to the
// solvers through ExactOptions::counters / MonteCarloOptions::counters —
// both pointers are OUTSIDE the cache key fingerprints (verified against
// OptionsFingerprint / BuildEstimateKey in dtree_cache.cc), so attaching
// them can never perturb cached results. All fields are relaxed atomics:
// morsel workers running component-parallel conf() update them
// concurrently.
struct ConfPhaseCounters {
  std::atomic<uint64_t> exact_calls{0};
  std::atomic<uint64_t> exact_ns{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> component_hits{0};
  std::atomic<uint64_t> compiles{0};
  std::atomic<uint64_t> compile_ns{0};
  std::atomic<uint64_t> compile_nodes{0};
  std::atomic<uint64_t> aconf_calls{0};
  std::atomic<uint64_t> aconf_ns{0};
  std::atomic<uint64_t> estimate_hits{0};
  std::atomic<uint64_t> kl_trials{0};
  std::atomic<uint64_t> kl_rejections{0};
  // Bit pattern of the epsilon GUARANTEED by the most recent completed
  // aconf estimation (the DKLR stopping rule's parameter; "achieved" in
  // the (eps, delta)-approximation sense). Last-writer-wins is fine: the
  // trace renders it per statement, not per trial.
  std::atomic<uint64_t> epsilon_bits{0};

  ConfPhaseSample Sample() const;
};

// Monotonic nanoseconds (steady_clock). All obs timing uses this single
// clock so trace spans and histograms are mutually comparable. Inline:
// hot paths read it up to ~20 times per statement.
inline uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// SQL-LIKE wildcard match for metric names: '%' = any sequence, '_' = any
// single char, everything else literal. Case-sensitive (metric names are
// lowercase by construction).
bool MetricNameLike(const std::string& pattern, const std::string& name);

class MetricsRegistry {
 public:
  static constexpr size_t kHistBuckets = 40;  // 2^40 ns ~ 18 min cap

  MetricsRegistry();

  void Add(Counter c, uint64_t v = 1) {
    counters_[static_cast<size_t>(c)].fetch_add(v, std::memory_order_relaxed);
  }
  // Per-kind statement accounting; `kind_index` is StatementKindIndex().
  void AddStatement(size_t kind_index, bool failed);

  void RecordNs(Hist h, uint64_t ns);

  uint64_t Get(Counter c) const {
    return counters_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }

  // All counters plus histogram aggregates (<name>.count / .total_ms /
  // .p50_ms / .p99_ms / .max_ms) as sorted (name, value) pairs.
  // Percentiles are log2-bucket approximations (geometric bucket
  // midpoint); exact enough for operator dashboards, documented as such.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  // Prometheus text exposition format (version 0.0.4): every scalar
  // counter as a `counter` series, and every latency instrument as a real
  // `histogram` — cumulative maybms_<name>_seconds_bucket{le="..."} over
  // the log2-ns buckets (bounds converted to seconds) plus _sum/_count —
  // rather than the p50/p99 gauge approximations SHOW STATS renders.
  // Names are prefixed "maybms_" with non-[a-zA-Z0-9_] characters mapped
  // to '_'. Served by `\stats --prom` on both the shell and the server.
  std::string PrometheusText() const;

  // Folds a statement's confidence-phase counters into the scalar
  // counters (called once per statement by the Session).
  void FoldConfPhases(const ConfPhaseSample& s);

 private:
  struct Histogram {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> max_ns{0};
    std::array<std::atomic<uint64_t>, kHistBuckets> buckets{};
  };

  std::array<std::atomic<uint64_t>, static_cast<size_t>(Counter::kNumCounters)>
      counters_{};
  std::array<Histogram, static_cast<size_t>(Hist::kNumHists)> hists_{};
};

// Small RAII stopwatch: records elapsed ns into *sink on destruction when
// sink != nullptr (no clock calls at all when metrics are off).
class ScopedNsTimer {
 public:
  explicit ScopedNsTimer(std::atomic<uint64_t>* sink)
      : sink_(sink), start_(sink ? MonotonicNs() : 0) {}
  ~ScopedNsTimer() {
    if (sink_ != nullptr) {
      sink_->fetch_add(MonotonicNs() - start_, std::memory_order_relaxed);
    }
  }
  ScopedNsTimer(const ScopedNsTimer&) = delete;
  ScopedNsTimer& operator=(const ScopedNsTimer&) = delete;

 private:
  std::atomic<uint64_t>* sink_;
  uint64_t start_;
};

}  // namespace maybms
