// Per-statement execution traces (ISSUE 8).
//
// Every statement executed with metrics on records a StatementTrace with
// the statement-level phase breakdown (parse / bind+plan / lock-wait /
// execute / conf). Under EXPLAIN ANALYZE the trace additionally carries a
// TraceNode tree mirroring the bound plan, with per-operator inclusive
// wall time, rows/batches/morsels, and confidence-phase deltas.
//
// Completed traces land in a fixed-capacity ring buffer (TraceBuffer,
// owned by the SessionManager) and can be exported as chrome://tracing
// "trace event" JSON: one X (complete) event per phase and per operator,
// pid = session id, tid = a stable hash of the executing thread,
// timestamps from the shared monotonic clock (MonotonicNs).
//
// Threading model: a TraceNode is written only by the thread pulling the
// operator it shadows — the batch engine's Next() chain and the row
// engine's recursion are both single-pull — so its fields are plain
// integers. Concurrent work INSIDE an operator (morsel tasks) reports
// through the atomic ConfPhaseCounters instead, and the pulling thread
// folds before/after samples into the node. The ring buffer itself is
// mutex-guarded.
//
// Like metrics.h this header is a LEAF: operator labels are captured as
// strings by the exec layer (PlanNode::Describe()), so obs/ never depends
// on plan/.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace maybms {

struct TraceNode {
  std::string label;  // PlanNode::Describe() at build time
  uint64_t inclusive_ns = 0;
  uint64_t calls = 0;  // Next() calls (batch) / 1 (row)
  /// Optimizer cardinality estimate copied from PlanNode::est_rows at
  /// build time (-1 = not estimated). Rendered next to actual rows so
  /// EXPLAIN ANALYZE exposes estimation error per operator.
  double est_rows = -1;
  uint64_t rows_out = 0;
  uint64_t batches_out = 0;
  uint64_t morsels = 0;
  ConfPhaseSample conf;  // inclusive confidence-phase deltas
  std::vector<std::unique_ptr<TraceNode>> children;
};

struct StatementTrace {
  uint64_t session_id = 0;
  uint64_t thread_hash = 0;  // stable hash of the executing thread's id
  std::string statement;     // statement text (truncated for display)
  uint64_t start_ns = 0;     // MonotonicNs() at statement start

  // Statement-level phases, nanoseconds.
  uint64_t parse_ns = 0;
  uint64_t bind_ns = 0;  // bind + plan
  uint64_t lock_wait_ns = 0;
  uint64_t lock_catalog_ns = 0;
  uint64_t lock_world_ns = 0;
  uint64_t lock_table_ns = 0;
  uint64_t execute_ns = 0;
  uint64_t total_ns = 0;
  bool failed = false;

  ConfPhaseSample conf;  // statement-level confidence totals

  // Operator tree; non-null only for EXPLAIN ANALYZE.
  std::unique_ptr<TraceNode> root;

  // Creates a child TraceNode under `parent` (or as the root when parent
  // is null) and returns it. Single-threaded (plan build / row
  // recursion).
  TraceNode* NewNode(TraceNode* parent, std::string label);

  // Annotated-plan + phase-summary text (the EXPLAIN ANALYZE message).
  std::string Render() const;
};

// Fixed-capacity ring of completed statement traces, newest last.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 64) : capacity_(capacity) {}

  void Record(std::shared_ptr<const StatementTrace> trace);
  std::vector<std::shared_ptr<const StatementTrace>> Recent() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const StatementTrace>> traces_;
};

// chrome://tracing JSON ({"traceEvents":[...]}) over a set of traces.
// Span layout per statement: one enclosing statement span, sequential
// phase child spans at their true offsets, and the operator tree (if
// present) nested inside the execute span — children laid out
// back-to-back from their parent's start, since per-call start offsets
// are not retained (aggregate spans; documented in DESIGN.md).
std::string ExportChromeTrace(
    const std::vector<std::shared_ptr<const StatementTrace>>& traces);

}  // namespace maybms
