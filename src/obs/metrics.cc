#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace maybms {

namespace {

// Statement-kind names in the dense obs order (session.cc's
// StatementKindIndex() maps StatementKind enumerators onto these
// positions explicitly, with a static_assert tying the counts together).
constexpr const char* kStatementKindNames[kNumStatementKinds] = {
    "select",        "create_table",  "create_table_as", "insert",
    "update",        "delete",        "drop_table",      "assert",
    "show_evidence", "clear_evidence", "set",            "explain",
    "show_stats",    "create_index",  "drop_index",      "show_indexes",
};

// Scalar counter names for everything past the per-kind blocks, in
// Counter enumerator order starting at kFirstScalar.
constexpr const char* kScalarNames[] = {
    "exec.row.operators",
    "exec.row.rows",
    "exec.batch.operators",
    "exec.batch.batches",
    "exec.batch.rows",
    "exec.batch.morsels",
    "conf.exact.calls",
    "conf.exact.cache_hits",
    "conf.exact.component_hits",
    "conf.exact.compiles",
    "conf.exact.compile_nodes",
    "conf.fallbacks",
    "conf.aconf.calls",
    "conf.aconf.estimate_cache_hits",
    "conf.kl.trials",
    "conf.kl.rejections",
    "constraints.prunes",
    "constraints.pruned_rows",
    "constraints.pruned_vars",
    "server.connections",
    "server.requests",
    "server.bytes_in",
    "server.bytes_out",
    "trace.statements",
    "opt.plans_considered",
    "opt.reorders",
    "opt.semijoin.inserted",
    "opt.semijoin.skipped",
    "opt.index_scans",
    "bufpool.hits",
    "bufpool.misses",
    "bufpool.evictions",
    "bufpool.writebacks",
    "index.lookups",
    "index.scan_rows",
    "index.rebuilds",
    "index.appended_rows",
};
static_assert(sizeof(kScalarNames) / sizeof(kScalarNames[0]) ==
                  static_cast<size_t>(Counter::kNumCounters) -
                      static_cast<size_t>(Counter::kFirstScalar),
              "kScalarNames out of sync with Counter");

constexpr const char* kHistNames[] = {
    "stmt.total",   "stmt.parse",   "stmt.bind",  "stmt.lock_wait",
    "stmt.execute", "conf.exact",   "conf.aconf", "lock.catalog",
    "lock.world",   "lock.table",
};
static_assert(sizeof(kHistNames) / sizeof(kHistNames[0]) ==
                  static_cast<size_t>(Hist::kNumHists),
              "kHistNames out of sync with Hist");

std::string CounterName(size_t i) {
  const size_t exec_first = static_cast<size_t>(Counter::kStmtExecutedFirst);
  const size_t fail_first = static_cast<size_t>(Counter::kStmtFailedFirst);
  const size_t scalar_first = static_cast<size_t>(Counter::kFirstScalar);
  if (i < fail_first) {
    return std::string("stmt.") + kStatementKindNames[i - exec_first] +
           ".executed";
  }
  if (i < scalar_first) {
    return std::string("stmt.") + kStatementKindNames[i - fail_first] +
           ".failed";
  }
  return kScalarNames[i - scalar_first];
}

size_t BucketFor(uint64_t ns) {
  size_t b = 0;
  while (ns > 1 && b + 1 < MetricsRegistry::kHistBuckets) {
    ns >>= 1;
    ++b;
  }
  return b;
}

// Geometric midpoint of bucket b ([2^b, 2^{b+1}) ns): 1.5 * 2^b. The
// percentile error is bounded by one bucket (a factor of 2), which is the
// resolution SHOW STATS documents.
double BucketMidNs(size_t b) { return 1.5 * static_cast<double>(1ULL << b); }

}  // namespace

ConfPhaseSample ConfPhaseSample::operator-(const ConfPhaseSample& b) const {
  ConfPhaseSample d;
  d.exact_calls = exact_calls - b.exact_calls;
  d.exact_ns = exact_ns - b.exact_ns;
  d.cache_hits = cache_hits - b.cache_hits;
  d.component_hits = component_hits - b.component_hits;
  d.compiles = compiles - b.compiles;
  d.compile_ns = compile_ns - b.compile_ns;
  d.compile_nodes = compile_nodes - b.compile_nodes;
  d.aconf_calls = aconf_calls - b.aconf_calls;
  d.aconf_ns = aconf_ns - b.aconf_ns;
  d.estimate_hits = estimate_hits - b.estimate_hits;
  d.kl_trials = kl_trials - b.kl_trials;
  d.kl_rejections = kl_rejections - b.kl_rejections;
  d.epsilon_bits = epsilon_bits;  // not a delta: last-writer value
  return d;
}

void ConfPhaseSample::Accumulate(const ConfPhaseSample& d) {
  exact_calls += d.exact_calls;
  exact_ns += d.exact_ns;
  cache_hits += d.cache_hits;
  component_hits += d.component_hits;
  compiles += d.compiles;
  compile_ns += d.compile_ns;
  compile_nodes += d.compile_nodes;
  aconf_calls += d.aconf_calls;
  aconf_ns += d.aconf_ns;
  estimate_hits += d.estimate_hits;
  kl_trials += d.kl_trials;
  kl_rejections += d.kl_rejections;
  if (d.epsilon_bits != 0) epsilon_bits = d.epsilon_bits;
}

bool ConfPhaseSample::Empty() const {
  return exact_calls == 0 && aconf_calls == 0 && kl_trials == 0 &&
         compile_nodes == 0 && cache_hits == 0 && component_hits == 0 &&
         estimate_hits == 0;
}

ConfPhaseSample ConfPhaseCounters::Sample() const {
  ConfPhaseSample s;
  const auto ld = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.exact_calls = ld(exact_calls);
  s.exact_ns = ld(exact_ns);
  s.cache_hits = ld(cache_hits);
  s.component_hits = ld(component_hits);
  s.compiles = ld(compiles);
  s.compile_ns = ld(compile_ns);
  s.compile_nodes = ld(compile_nodes);
  s.aconf_calls = ld(aconf_calls);
  s.aconf_ns = ld(aconf_ns);
  s.estimate_hits = ld(estimate_hits);
  s.kl_trials = ld(kl_trials);
  s.kl_rejections = ld(kl_rejections);
  s.epsilon_bits = ld(epsilon_bits);
  return s;
}

bool MetricNameLike(const std::string& pattern, const std::string& name) {
  // Iterative two-pointer matcher with one backtrack point per '%'.
  size_t p = 0, n = 0, star = std::string::npos, mark = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star = p++;
      mark = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

MetricsRegistry::MetricsRegistry() = default;

void MetricsRegistry::AddStatement(size_t kind_index, bool failed) {
  if (kind_index >= kNumStatementKinds) return;
  const size_t base = static_cast<size_t>(
      failed ? Counter::kStmtFailedFirst : Counter::kStmtExecutedFirst);
  counters_[base + kind_index].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordNs(Hist h, uint64_t ns) {
  Histogram& hist = hists_[static_cast<size_t>(h)];
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  hist.buckets[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = hist.max_ns.load(std::memory_order_relaxed);
  while (ns > prev &&
         !hist.max_ns.compare_exchange_weak(prev, ns,
                                            std::memory_order_relaxed)) {
  }
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(static_cast<size_t>(Counter::kNumCounters) +
              5 * static_cast<size_t>(Hist::kNumHists));
  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    out.emplace_back(CounterName(i),
                     static_cast<double>(
                         counters_[i].load(std::memory_order_relaxed)));
  }
  const double kNsToMs = 1e-6;
  for (size_t i = 0; i < static_cast<size_t>(Hist::kNumHists); ++i) {
    const Histogram& h = hists_[i];
    const uint64_t count = h.count.load(std::memory_order_relaxed);
    const std::string base = kHistNames[i];
    out.emplace_back(base + ".count", static_cast<double>(count));
    out.emplace_back(base + ".total_ms",
                     static_cast<double>(
                         h.sum_ns.load(std::memory_order_relaxed)) *
                         kNsToMs);
    out.emplace_back(base + ".max_ms",
                     static_cast<double>(
                         h.max_ns.load(std::memory_order_relaxed)) *
                         kNsToMs);
    // Approximate percentiles by walking the cumulative bucket counts.
    double p50 = 0.0, p99 = 0.0;
    if (count > 0) {
      const uint64_t need50 = (count + 1) / 2;
      const uint64_t need99 = count - count / 100;
      uint64_t cum = 0;
      for (size_t b = 0; b < kHistBuckets; ++b) {
        cum += h.buckets[b].load(std::memory_order_relaxed);
        if (p50 == 0.0 && cum >= need50) p50 = BucketMidNs(b) * kNsToMs;
        if (cum >= need99) {
          p99 = BucketMidNs(b) * kNsToMs;
          break;
        }
      }
    }
    out.emplace_back(base + ".p50_ms", p50);
    out.emplace_back(base + ".p99_ms", p99);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

std::string PromName(const std::string& name) {
  std::string prom = "maybms_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    prom.push_back(ok ? ch : '_');
  }
  return prom;
}

void AppendPromValue(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  // Scalar counters: monotonically increasing by construction.
  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    const std::string prom = PromName(CounterName(i));
    out.append("# TYPE ").append(prom).append(" counter\n");
    out.append(prom).append(" ");
    AppendPromValue(
        static_cast<double>(counters_[i].load(std::memory_order_relaxed)),
        &out);
    out.push_back('\n');
  }
  // Latency instruments as real Prometheus histograms in seconds (not the
  // p50/p99 gauge approximations of SHOW STATS). Internal bucket b counts
  // latencies in [2^b, 2^{b+1}) ns, so the cumulative `le` bound of bucket
  // b is 2^{b+1} ns; `le` is nominally inclusive and our bound exclusive —
  // a half-open/closed mismatch of one nanosecond point mass, below the
  // log2 bucket resolution already documented for SHOW STATS.
  const double kNsToSeconds = 1e-9;
  for (size_t i = 0; i < static_cast<size_t>(Hist::kNumHists); ++i) {
    const Histogram& h = hists_[i];
    const std::string prom = PromName(std::string(kHistNames[i])) + "_seconds";
    out.append("# TYPE ").append(prom).append(" histogram\n");
    uint64_t cum = 0;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      cum += h.buckets[b].load(std::memory_order_relaxed);
      out.append(prom).append("_bucket{le=\"");
      AppendPromValue(static_cast<double>(1ULL << (b + 1)) * kNsToSeconds,
                      &out);
      out.append("\"} ");
      AppendPromValue(static_cast<double>(cum), &out);
      out.push_back('\n');
    }
    const uint64_t count = h.count.load(std::memory_order_relaxed);
    out.append(prom).append("_bucket{le=\"+Inf\"} ");
    AppendPromValue(static_cast<double>(count), &out);
    out.push_back('\n');
    out.append(prom).append("_sum ");
    AppendPromValue(
        static_cast<double>(h.sum_ns.load(std::memory_order_relaxed)) *
            kNsToSeconds,
        &out);
    out.push_back('\n');
    out.append(prom).append("_count ");
    AppendPromValue(static_cast<double>(count), &out);
    out.push_back('\n');
  }
  return out;
}

void MetricsRegistry::FoldConfPhases(const ConfPhaseSample& s) {
  if (s.Empty()) return;
  // Zero fields are skipped: a typical statement touches only a couple of
  // conf phases, and a relaxed RMW of zero is still an RMW.
  auto add = [this](Counter c, uint64_t v) {
    if (v != 0) Add(c, v);
  };
  add(Counter::kConfExactCalls, s.exact_calls);
  add(Counter::kConfExactCacheHits, s.cache_hits);
  add(Counter::kConfExactComponentHits, s.component_hits);
  add(Counter::kConfExactCompiles, s.compiles);
  add(Counter::kConfExactCompileNodes, s.compile_nodes);
  add(Counter::kAconfCalls, s.aconf_calls);
  add(Counter::kAconfEstimateCacheHits, s.estimate_hits);
  add(Counter::kKlTrials, s.kl_trials);
  add(Counter::kKlRejections, s.kl_rejections);
}

}  // namespace maybms
