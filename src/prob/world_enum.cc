#include "src/prob/world_enum.h"

#include <algorithm>

#include "src/common/str_util.h"

namespace maybms {

bool World::Satisfies(const Condition& cond) const {
  for (const Atom& a : cond.atoms()) {
    auto it = std::lower_bound(vars->begin(), vars->end(), a.var);
    if (it == vars->end() || *it != a.var) return false;
    size_t idx = static_cast<size_t>(it - vars->begin());
    if (assignment[idx] != a.asg) return false;
  }
  return true;
}

Status EnumerateWorlds(const WorldTable& wt, std::vector<VarId> vars,
                       uint64_t max_worlds,
                       const std::function<void(const World&)>& fn) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

  double total = 1;
  for (VarId v : vars) total *= static_cast<double>(wt.DomainSize(v));
  if (total > static_cast<double>(max_worlds)) {
    return Status::OutOfRange(StringFormat(
        "world enumeration over %zu variables would produce %.0f worlds (cap %llu)",
        vars.size(), total, static_cast<unsigned long long>(max_worlds)));
  }

  World world;
  world.vars = &vars;
  world.assignment.assign(vars.size(), 0);

  // Odometer enumeration.
  while (true) {
    double p = 1.0;
    for (size_t i = 0; i < vars.size(); ++i) {
      p *= wt.AtomProb(Atom{vars[i], world.assignment[i]});
    }
    world.probability = p;
    fn(world);

    size_t i = 0;
    for (; i < vars.size(); ++i) {
      if (++world.assignment[i] < wt.DomainSize(vars[i])) break;
      world.assignment[i] = 0;
    }
    if (i == vars.size()) break;
    if (vars.empty()) break;
  }
  return Status::OK();
}

World SampleWorld(const WorldTable& wt, const std::vector<VarId>& vars, Rng* rng) {
  World world;
  world.vars = &vars;
  world.assignment.reserve(vars.size());
  double p = 1.0;
  for (VarId v : vars) {
    AsgId a = wt.SampleAssignment(v, rng);
    world.assignment.push_back(a);
    p *= wt.AtomProb(Atom{v, a});
  }
  world.probability = p;
  return world;
}

}  // namespace maybms
