// The world table: the registry of independent finite random variables and
// their assignment probabilities. In MayBMS this is the relation W(var,
// asg, prob) maintained by the system; here it is the single source of
// truth for probabilities (see DESIGN.md, substitution table).
#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/prob/condition.h"

namespace maybms {

/// Registry of independent random variables. Each variable has a finite
/// domain {0, ..., k-1} with probabilities summing to 1.
class WorldTable {
 public:
  /// Registers a fresh variable with the given assignment distribution.
  /// `probs` must be non-empty, non-negative, and sum to 1 within 1e-9
  /// (repair-key normalizes weights before calling this).
  Result<VarId> NewVariable(std::vector<double> probs, std::string label = "");

  /// Convenience: a Boolean variable with P(asg 1) = p (pick-tuples).
  /// Assignment 0 = "absent", 1 = "present".
  Result<VarId> NewBooleanVariable(double p, std::string label = "");

  /// Conditioning support: replaces the distribution of `var` with the
  /// one-hot posterior on `asg` — the variable has been fully determined
  /// by asserted evidence and its surviving assignment now has probability
  /// 1 (world pruning, see src/cond/prune.h). Bumps version().
  Status CollapseVariable(VarId var, AsgId asg);

  /// Version counter over the registered DISTRIBUTIONS — the same scheme
  /// as the columnar-snapshot counter in src/storage/table.h, and the
  /// probability axis of the d-tree compilation-cache key
  /// (src/lineage/dtree_cache.h): any mutation of an existing variable's
  /// distribution bumps it. Registering a NEW variable does not — fresh
  /// ids cannot appear in previously-compiled lineage, so existing cache
  /// entries stay precise. Monotonic for the table's lifetime.
  uint64_t version() const { return version_; }

  size_t NumVariables() const { return variables_.size(); }
  size_t DomainSize(VarId var) const { return Var(var).probs.size(); }
  const std::string& Label(VarId var) const { return Var(var).label; }

  /// P(var = asg). Aborts with a diagnostic on an unregistered variable or
  /// out-of-domain assignment (a corrupt condition column; silently
  /// indexing past the registry was UB).
  double AtomProb(const Atom& atom) const {
    const std::vector<double>& probs = Var(atom.var).probs;
    if (atom.asg >= probs.size()) {
      DieOutOfRange("assignment", atom.asg, probs.size(), atom.var);
    }
    return probs[atom.asg];
  }

  /// Probability of a conjunction of atoms over *independent* variables:
  /// the product of the atom probabilities (conditions hold at most one
  /// atom per variable, so this is exact).
  double ConditionProb(const Condition& cond) const;

  /// Same over a packed atom span (batch condition columns).
  double ConditionProb(const Atom* atoms, size_t n) const;

  /// Samples an assignment of `var` from its distribution.
  AsgId SampleAssignment(VarId var, Rng* rng) const;

  /// Total number of possible worlds (product of domain sizes, capped at
  /// `cap` to avoid overflow). Useful for testing oracles.
  double NumWorldsApprox() const;

 private:
  struct Variable {
    std::vector<double> probs;
    std::string label;
  };

  /// Checked registry lookup; aborts with a clear message on an id that was
  /// never registered.
  const Variable& Var(VarId var) const {
    if (var >= variables_.size()) {
      DieOutOfRange("variable", var, variables_.size(), var);
    }
    return variables_[var];
  }

  [[noreturn]] static void DieOutOfRange(const char* what, uint64_t index,
                                         uint64_t bound, VarId var);

  std::vector<Variable> variables_;
  uint64_t version_ = 0;  // bumped on every distribution mutation
};

}  // namespace maybms
