#include "src/prob/world_table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/str_util.h"

namespace maybms {

Result<VarId> WorldTable::NewVariable(std::vector<double> probs, std::string label) {
  if (probs.empty()) {
    return Status::InvalidArgument("variable must have at least one assignment");
  }
  double sum = 0;
  for (double p : probs) {
    if (p < 0 || p > 1 + 1e-9 || std::isnan(p)) {
      return Status::InvalidArgument(
          StringFormat("assignment probability %g outside [0,1]", p));
    }
    sum += p;
  }
  if (std::fabs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StringFormat("assignment probabilities sum to %g, expected 1", sum));
  }
  VarId id = static_cast<VarId>(variables_.size());
  variables_.push_back(Variable{std::move(probs), std::move(label)});
  return id;
}

Result<VarId> WorldTable::NewBooleanVariable(double p, std::string label) {
  if (p < 0 || p > 1 || std::isnan(p)) {
    return Status::InvalidArgument(StringFormat("probability %g outside [0,1]", p));
  }
  return NewVariable({1.0 - p, p}, std::move(label));
}

Status WorldTable::CollapseVariable(VarId var, AsgId asg) {
  if (var >= variables_.size()) {
    return Status::InvalidArgument(
        StringFormat("cannot collapse unregistered variable x%u", var));
  }
  std::vector<double>& probs = variables_[var].probs;
  if (asg >= probs.size()) {
    return Status::InvalidArgument(StringFormat(
        "cannot collapse x%u to out-of-domain assignment %u", var, asg));
  }
  std::fill(probs.begin(), probs.end(), 0.0);
  probs[asg] = 1.0;
  // Invalidation seam for the d-tree compilation cache: entries bake the
  // pre-collapse probabilities, so the version must advance even though
  // the atoms of any cached lineage are unchanged.
  ++version_;
  return Status::OK();
}

double WorldTable::ConditionProb(const Condition& cond) const {
  double p = 1.0;
  for (const Atom& a : cond.atoms()) p *= AtomProb(a);
  return p;
}

double WorldTable::ConditionProb(const Atom* atoms, size_t n) const {
  double p = 1.0;
  for (size_t i = 0; i < n; ++i) p *= AtomProb(atoms[i]);
  return p;
}

void WorldTable::DieOutOfRange(const char* what, uint64_t index, uint64_t bound,
                               VarId var) {
  std::fprintf(stderr,
               "world table: %s id %llu out of range (bound %llu, variable "
               "x%u) — condition references an unregistered variable or "
               "assignment\n",
               what, static_cast<unsigned long long>(index),
               static_cast<unsigned long long>(bound), var);
  std::abort();
}

AsgId WorldTable::SampleAssignment(VarId var, Rng* rng) const {
  const std::vector<double>& probs = Var(var).probs;
  double u = rng->NextDouble();
  double acc = 0;
  for (size_t i = 0; i + 1 < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return static_cast<AsgId>(i);
  }
  return static_cast<AsgId>(probs.size() - 1);
}

double WorldTable::NumWorldsApprox() const {
  double n = 1;
  for (const Variable& v : variables_) {
    n *= static_cast<double>(v.probs.size());
    if (n > 1e300) return n;
  }
  return n;
}

}  // namespace maybms
