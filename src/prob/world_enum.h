// Possible-world enumeration and sampling over a set of variables.
// Exponential; used as the ground-truth oracle in tests and by the naive
// confidence computation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/prob/world_table.h"

namespace maybms {

/// A total valuation of the variables in `vars` (parallel vectors).
struct World {
  const std::vector<VarId>* vars = nullptr;
  std::vector<AsgId> assignment;  // assignment[i] valuates (*vars)[i]
  double probability = 0;

  /// True iff the world satisfies every atom of `cond` (atoms over
  /// variables not in `vars` make it unsatisfied).
  bool Satisfies(const Condition& cond) const;
};

/// Calls `fn` once per possible world over exactly the variables in `vars`
/// (deduplicated). Errors if the world count would exceed `max_worlds`.
Status EnumerateWorlds(const WorldTable& wt, std::vector<VarId> vars,
                       uint64_t max_worlds, const std::function<void(const World&)>& fn);

/// Samples a world over `vars` from the product distribution.
World SampleWorld(const WorldTable& wt, const std::vector<VarId>& vars, Rng* rng);

}  // namespace maybms
