#include "src/prob/condition.h"

#include <algorithm>

#include "src/common/str_util.h"

namespace maybms {

std::optional<Condition> Condition::FromAtoms(std::vector<Atom> atoms) {
  std::sort(atoms.begin(), atoms.end());
  Condition cond;
  cond.atoms_.reserve(atoms.size());
  for (const Atom& a : atoms) {
    if (!cond.atoms_.empty() && cond.atoms_.back().var == a.var) {
      if (cond.atoms_.back().asg != a.asg) return std::nullopt;
      continue;  // duplicate atom
    }
    cond.atoms_.push_back(a);
  }
  return cond;
}

bool Condition::AddAtom(Atom atom) {
  auto it = std::lower_bound(atoms_.begin(), atoms_.end(), atom,
                             [](const Atom& a, const Atom& b) { return a.var < b.var; });
  if (it != atoms_.end() && it->var == atom.var) {
    return it->asg == atom.asg;
  }
  atoms_.insert(it, atom);
  return true;
}

std::optional<AsgId> Condition::Lookup(VarId var) const {
  auto it = std::lower_bound(atoms_.begin(), atoms_.end(), Atom{var, 0},
                             [](const Atom& a, const Atom& b) { return a.var < b.var; });
  if (it != atoms_.end() && it->var == var) return it->asg;
  return std::nullopt;
}

std::optional<Condition> Condition::Merge(const Condition& a, const Condition& b) {
  Condition out;
  out.atoms_.reserve(a.atoms_.size() + b.atoms_.size());
  size_t i = 0, j = 0;
  while (i < a.atoms_.size() && j < b.atoms_.size()) {
    const Atom& x = a.atoms_[i];
    const Atom& y = b.atoms_[j];
    if (x.var < y.var) {
      out.atoms_.push_back(x);
      ++i;
    } else if (y.var < x.var) {
      out.atoms_.push_back(y);
      ++j;
    } else {
      if (x.asg != y.asg) return std::nullopt;  // inconsistent: row drops out
      out.atoms_.push_back(x);
      ++i;
      ++j;
    }
  }
  out.atoms_.insert(out.atoms_.end(), a.atoms_.begin() + i, a.atoms_.end());
  out.atoms_.insert(out.atoms_.end(), b.atoms_.begin() + j, b.atoms_.end());
  return out;
}

bool Condition::SubsetOf(const Condition& other) const {
  if (atoms_.size() > other.atoms_.size()) return false;
  size_t j = 0;
  for (const Atom& a : atoms_) {
    while (j < other.atoms_.size() && other.atoms_[j].var < a.var) ++j;
    if (j >= other.atoms_.size() || other.atoms_[j].var != a.var ||
        other.atoms_[j].asg != a.asg) {
      return false;
    }
    ++j;
  }
  return true;
}

std::optional<Condition> Condition::Assign(VarId var, AsgId asg) const {
  auto bound = Lookup(var);
  if (!bound) return *this;
  if (*bound != asg) return std::nullopt;
  Condition out;
  out.atoms_.reserve(atoms_.size() - 1);
  for (const Atom& a : atoms_) {
    if (a.var != var) out.atoms_.push_back(a);
  }
  return out;
}

size_t Condition::Hash() const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Atom& a : atoms_) {
    h ^= (static_cast<size_t>(a.var) << 32) | a.asg;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Condition::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StringFormat("x%u->%u", atoms_[i].var, atoms_[i].asg);
  }
  out += "}";
  return out;
}

}  // namespace maybms
