// Conditions: the condition columns of U-relations.
//
// A U-relation row carries a conjunction of atoms "x ↦ a" over independent
// finite random variables (paper §2.1: "The condition columns store
// variables from a finite set of independent random variables and their
// assignments"). The row exists exactly in the worlds whose total valuation
// satisfies every atom.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace maybms {

/// Identifier of a random variable in the world table.
using VarId = uint32_t;
/// Identifier of one possible assignment (domain value) of a variable.
using AsgId = uint32_t;

/// One atom "variable ↦ assignment". MayBMS stores these as pairs of
/// integers (paper §2.4).
struct Atom {
  VarId var = 0;
  AsgId asg = 0;

  friend bool operator==(const Atom&, const Atom&) = default;
  friend auto operator<=>(const Atom&, const Atom&) = default;
};

/// A consistent conjunction of atoms, kept sorted by variable id with at
/// most one atom per variable. The empty condition is "true" (t-certain
/// rows).
class Condition {
 public:
  /// The always-true condition (no atoms).
  Condition() = default;

  /// Builds from an atom list; returns nullopt if two atoms bind the same
  /// variable to different assignments (inconsistent conjunction).
  static std::optional<Condition> FromAtoms(std::vector<Atom> atoms);

  /// True iff there are no atoms (row exists in every world).
  bool IsTrue() const { return atoms_.empty(); }
  size_t NumAtoms() const { return atoms_.size(); }
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Conjoins another atom. Returns false (leaving *this unchanged) if the
  /// variable is already bound to a different assignment.
  bool AddAtom(Atom atom);

  /// Assignment of `var` in this condition, if bound.
  std::optional<AsgId> Lookup(VarId var) const;

  /// Conjunction of two conditions; nullopt when inconsistent. This is the
  /// core of the parsimonious join translation: joined rows merge their
  /// condition columns and inconsistent combinations drop out.
  static std::optional<Condition> Merge(const Condition& a, const Condition& b);

  /// True iff every atom of this condition appears in `other` (i.e. `other`
  /// implies `this`). Used for clause subsumption in lineage simplification.
  bool SubsetOf(const Condition& other) const;

  /// Conditions on var := asg: atoms on `var` with a different assignment
  /// make the condition false (nullopt); a matching atom is removed.
  std::optional<Condition> Assign(VarId var, AsgId asg) const;

  /// Hash/equality for canonicalization and duplicate elimination; the
  /// total order (lexicographic over atoms) canonicalizes clause sets for
  /// the exact solver's memo table.
  size_t Hash() const;
  friend bool operator==(const Condition&, const Condition&) = default;
  friend auto operator<=>(const Condition&, const Condition&) = default;

  /// "{x3->1, x7->0}" (or "{}" when true).
  std::string ToString() const;

 private:
  std::vector<Atom> atoms_;  // sorted by var, unique vars
};

}  // namespace maybms
