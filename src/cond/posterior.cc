#include "src/cond/posterior.h"

#include <algorithm>

namespace maybms {

namespace {

/// Flattened-product budget: beyond |Q|·|C| merges of this many surviving
/// clauses, exact posterior switches to the inclusion-exclusion identity.
constexpr size_t kMaxProductClauses = 1u << 16;

double Clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

/// Appends the merge of two sorted atom lists to `atoms` as one clause of
/// the CSR under construction. Returns false (rolling the emit back) on a
/// conflict — the clause pair is inconsistent and drops out.
bool EmitMerge(const Atom* a, size_t na, const Atom* b, size_t nb,
               std::vector<Atom>* atoms, std::vector<uint32_t>* offsets) {
  size_t start = atoms->size();
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i].var < b[j].var) {
      atoms->push_back(a[i++]);
    } else if (b[j].var < a[i].var) {
      atoms->push_back(b[j++]);
    } else {
      if (a[i].asg != b[j].asg) {
        atoms->resize(start);
        return false;
      }
      atoms->push_back(a[i++]);
      ++j;
    }
  }
  atoms->insert(atoms->end(), a + i, a + na);
  atoms->insert(atoms->end(), b + j, b + nb);
  offsets->push_back(static_cast<uint32_t>(atoms->size()));
  return true;
}

/// Q ∧ C distributed into a CSR clause list of pairwise merges against the
/// store's cached compiled evidence (no intermediate Condition/Dnf heaps —
/// the same clause multiset ProductDnf used to build, so the compiled
/// product is bit-identical). Returns false when the product would exceed
/// `budget` clauses.
bool ProductCsr(const Dnf& query, const CompiledEvidence& ev, size_t budget,
                std::vector<Atom>* atoms, std::vector<uint32_t>* offsets) {
  offsets->push_back(0);
  for (const Condition& q : query.clauses()) {
    for (size_t c = 0; c < ev.NumClauses(); ++c) {
      if (EmitMerge(q.atoms().data(), q.atoms().size(), ev.ClauseAtoms(c),
                    ev.ClauseSize(c), atoms, offsets)) {
        if (offsets->size() - 1 > budget) return false;
      }
    }
  }
  return true;
}

/// Q's clauses followed by C's as one CSR list — the combined lineage whose
/// compiled form the conditioned Karp-Luby sampler runs on. Identical
/// clause order to the old CombinedLineage Dnf, so the compiled form (and
/// with it the sampling stream) is unchanged.
CompiledDnf CombinedCompiled(const Dnf& query, const CompiledEvidence& ev,
                             const WorldTable& wt) {
  std::vector<Atom> atoms;
  std::vector<uint32_t> offsets;
  offsets.push_back(0);
  for (const Condition& q : query.clauses()) {
    atoms.insert(atoms.end(), q.atoms().begin(), q.atoms().end());
    offsets.push_back(static_cast<uint32_t>(atoms.size()));
  }
  atoms.insert(atoms.end(), ev.atoms.begin(), ev.atoms.end());
  for (size_t c = 1; c <= ev.NumClauses(); ++c) {
    offsets.push_back(static_cast<uint32_t>(atoms.size()) -
                      static_cast<uint32_t>(ev.atoms.size()) + ev.offsets[c]);
  }
  return CompiledDnf(atoms.data(), offsets.data(), offsets.size() - 1, wt);
}

/// True iff P(query ∧ C) > 0: some (query clause, constraint clause) pair
/// merges consistently with all-positive atom probabilities. Guards the
/// samplers against a zero-mean trial stream that would never terminate.
bool ConjunctionPositive(const Dnf& query, const ConstraintStore& store,
                         const WorldTable& wt) {
  for (const Condition& q : query.clauses()) {
    if (store.CompatiblePositive(q, wt)) return true;
  }
  return false;
}

bool SharesVariables(const Dnf& query, const ConstraintStore& store) {
  for (const Condition& q : query.clauses()) {
    for (const Atom& a : q.atoms()) {
      if (store.MentionsVar(a.var)) return true;
    }
  }
  return false;
}

}  // namespace

Result<double> PosteriorExactConfidence(const Dnf& query,
                                        const ConstraintStore& store,
                                        const WorldTable& wt,
                                        const ExactOptions& options,
                                        ThreadPool* pool) {
  if (!store.active()) return ExactConfidence(query, wt, options, nullptr, pool);
  if (query.IsEmpty()) return 0.0;
  if (query.HasEmptyClause()) return 1.0;  // P(C|C) = 1
  // Independent lineage: P(Q ∧ C) = P(Q)·P(C), posterior is the prior.
  if (!SharesVariables(query, store)) {
    return ExactConfidence(query, wt, options, nullptr, pool);
  }
  const CompiledEvidence& ev = *store.compiled();
  double p_and;
  std::vector<Atom> atoms;
  std::vector<uint32_t> offsets;
  if (ProductCsr(query, ev, kMaxProductClauses, &atoms, &offsets)) {
    if (offsets.size() == 1) return 0.0;  // every pairwise merge conflicted
    MAYBMS_ASSIGN_OR_RETURN(
        p_and,
        ExactConfidence(CompiledDnf(atoms.data(), offsets.data(),
                                    offsets.size() - 1, wt),
                        wt, options, nullptr, pool));
  } else {
    // Product too large: P(Q ∧ C) = P(Q) + P(C) − P(Q ∨ C). The choice
    // depends only on clause counts, so it is identical across engines and
    // thread counts. Caveat: the subtraction carries an absolute error
    // floor of ~1e-16, so when the true conjunction probability is many
    // orders below P(Q)/P(C) this path loses relative precision (down to
    // reporting 0 for a tiny positive posterior) — the cancellation-free
    // product path is primary for exactly this reason, and only lineages
    // past the 2^16-merged-clause budget ever land here.
    MAYBMS_ASSIGN_OR_RETURN(double p_q,
                            ExactConfidence(query, wt, options, nullptr, pool));
    Dnf either = query;
    for (const Condition& c : store.clauses()) either.AddClause(c);
    MAYBMS_ASSIGN_OR_RETURN(double p_or,
                            ExactConfidence(either, wt, options, nullptr, pool));
    p_and = p_q + store.probability() - p_or;
  }
  return Clamp01(p_and / store.probability());
}

Result<double> PosteriorConditionProb(const Atom* atoms, size_t n,
                                      const ConstraintStore& store,
                                      const WorldTable& wt,
                                      const ExactOptions& options) {
  if (!store.active()) return wt.ConditionProb(atoms, n);
  bool overlap = false;
  for (size_t i = 0; i < n && !overlap; ++i) overlap = store.MentionsVar(atoms[i].var);
  // Independent of the evidence: posterior equals the prior product,
  // bit-for-bit the unconditioned computation.
  if (!overlap) return wt.ConditionProb(atoms, n);
  // cond ∧ C merged straight against the cached evidence spans.
  const CompiledEvidence& ev = *store.compiled();
  std::vector<Atom> product_atoms;
  std::vector<uint32_t> product_offsets;
  product_offsets.push_back(0);
  for (size_t c = 0; c < ev.NumClauses(); ++c) {
    EmitMerge(atoms, n, ev.ClauseAtoms(c), ev.ClauseSize(c), &product_atoms,
              &product_offsets);
  }
  if (product_offsets.size() == 1) return 0.0;
  // Per-row marginals stay serial (pool = nullptr): callers already run
  // them inside morsel- or group-parallel regions, and ExactConfidence is
  // bit-identical with or without a pool.
  MAYBMS_ASSIGN_OR_RETURN(
      double p_and,
      ExactConfidence(CompiledDnf(product_atoms.data(), product_offsets.data(),
                                  product_offsets.size() - 1, wt),
                      wt, options, nullptr, nullptr));
  return Clamp01(p_and / store.probability());
}

Result<double> PosteriorConditionProb(const Condition& cond,
                                      const ConstraintStore& store,
                                      const WorldTable& wt,
                                      const ExactOptions& options) {
  return PosteriorConditionProb(cond.atoms().data(), cond.atoms().size(), store,
                                wt, options);
}

namespace {

/// Shared special-case front end of the two aconf posterior paths. Returns
/// true (with *out filled) when no sampling is needed; `exact` carries the
/// solver options for the deterministic fallbacks.
Result<bool> PosteriorApproxShortcut(const Dnf& query,
                                     const ConstraintStore& store,
                                     const WorldTable& wt,
                                     const ExactOptions& exact,
                                     MonteCarloResult* out) {
  out->samples = 0;
  if (query.IsEmpty()) {
    out->estimate = 0;
    return true;
  }
  if (query.HasEmptyClause()) {
    out->estimate = 1;
    return true;
  }
  if (!ConjunctionPositive(query, store, wt)) {
    out->estimate = 0;  // Q ∧ C unsatisfiable: a zero-mean trial stream
    return true;
  }
  // Single-clause queries are solved exactly (mirrors the unconditioned
  // single-clause product fast path, which a posterior cannot reuse since
  // P(q | C) is no longer a plain product).
  if (query.NumClauses() == 1) {
    MAYBMS_ASSIGN_OR_RETURN(
        double p,
        PosteriorConditionProb(query.clauses().front(), store, wt, exact));
    out->estimate = p;
    return true;
  }
  return false;
}

}  // namespace

Result<MonteCarloResult> PosteriorApproxConfidence(
    const Dnf& query, const ConstraintStore& store, const WorldTable& wt,
    double epsilon, double delta, Rng* rng, const MonteCarloOptions& options,
    const ExactOptions& exact) {
  if (!store.active() || !SharesVariables(query, store)) {
    return ApproxConfidence(query, wt, epsilon, delta, rng, options);
  }
  MonteCarloResult result;
  MAYBMS_ASSIGN_OR_RETURN(
      bool done, PosteriorApproxShortcut(query, store, wt, exact, &result));
  if (done) return result;
  MAYBMS_ASSIGN_OR_RETURN(
      MonteCarloResult mc,
      ApproxConjunctionConfidence(CombinedCompiled(query, *store.compiled(), wt),
                                  query.NumClauses(), epsilon, delta, rng,
                                  options));
  mc.estimate = Clamp01(mc.estimate / store.probability());
  return mc;
}

Result<MonteCarloResult> PosteriorApproxConfidenceSeeded(
    const Dnf& query, const ConstraintStore& store, const WorldTable& wt,
    double epsilon, double delta, uint64_t base_seed,
    const MonteCarloOptions& options, const ExactOptions& exact,
    ThreadPool* pool) {
  if (!store.active() || !SharesVariables(query, store)) {
    return ApproxConfidenceSeeded(CompiledDnf(query, wt), epsilon, delta,
                                  base_seed, options, pool);
  }
  MonteCarloResult result;
  MAYBMS_ASSIGN_OR_RETURN(
      bool done, PosteriorApproxShortcut(query, store, wt, exact, &result));
  if (done) return result;
  MAYBMS_ASSIGN_OR_RETURN(
      MonteCarloResult mc,
      ApproxConjunctionConfidenceSeeded(
          CombinedCompiled(query, *store.compiled(), wt), query.NumClauses(),
          epsilon, delta, base_seed, options, pool));
  mc.estimate = Clamp01(mc.estimate / store.probability());
  return mc;
}

}  // namespace maybms
