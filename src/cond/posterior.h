// Posterior confidence under evidence: every probability the engine
// reports after an ASSERT is P(Q | C) = P(Q ∧ C) / P(C), where Q is the
// query lineage (a DNF) and C the constraint store's flattened evidence.
//
//   - Exact (conf()): P(Q ∧ C) is solved as the distributed product DNF
//     Q ∧ C (pairwise clause merges — small, since evidence is small), run
//     through the same decomposition/variable-elimination solver as
//     unconditioned conf(), including its component-parallel root step.
//     When the product would blow past a clause budget, the identity
//     P(Q ∧ C) = P(Q) + P(C) − P(Q ∨ C) computes it from three plain DNF
//     probabilities instead.
//   - Approximate (aconf()): Karp-Luby trials draw coverage from Q's
//     clauses as usual, but a trial only counts when the sampled world
//     also satisfies C (a conditioned/rejecting sampler); the estimate of
//     P(Q ∧ C) then divides by the store's exactly-known P(C), preserving
//     the (ε,δ) relative-error guarantee.
//   - Marginals (tconf(), esum(), ecount()): the per-tuple posterior
//     P(cond ∧ C)/P(C), with a fast path returning the plain prior product
//     when the tuple's condition shares no variables with the evidence.
//
// Every function here is a pure function of (lineage, store, world table,
// options[, seed]) — bit-identical across engines and thread counts.
#pragma once

#include "src/cond/constraint_store.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/conf/exact.h"
#include "src/conf/montecarlo.h"
#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"

namespace maybms {

/// Exact posterior P(query | C). With an inactive store this is exactly
/// ExactConfidence(query).
Result<double> PosteriorExactConfidence(const Dnf& query,
                                        const ConstraintStore& store,
                                        const WorldTable& wt,
                                        const ExactOptions& options,
                                        ThreadPool* pool);

/// (ε,δ)-approximate posterior on the legacy sequential RNG stream
/// (num_threads == 1 sessions). `exact` bounds the deterministic fallbacks
/// (single-clause queries are solved exactly rather than sampled).
Result<MonteCarloResult> PosteriorApproxConfidence(
    const Dnf& query, const ConstraintStore& store, const WorldTable& wt,
    double epsilon, double delta, Rng* rng, const MonteCarloOptions& options,
    const ExactOptions& exact);

/// Deterministic batched-substream variant (num_threads >= 2): the result
/// is a pure function of (query, store, base_seed) — identical at any
/// thread count and across engines.
Result<MonteCarloResult> PosteriorApproxConfidenceSeeded(
    const Dnf& query, const ConstraintStore& store, const WorldTable& wt,
    double epsilon, double delta, uint64_t base_seed,
    const MonteCarloOptions& options, const ExactOptions& exact,
    ThreadPool* pool);

/// Posterior marginal of a single conjunctive condition — the conditioned
/// tconf()/esum()/ecount() kernel. With an inactive store this is exactly
/// the prior product wt.ConditionProb(...).
Result<double> PosteriorConditionProb(const Atom* atoms, size_t n,
                                      const ConstraintStore& store,
                                      const WorldTable& wt,
                                      const ExactOptions& options);
Result<double> PosteriorConditionProb(const Condition& cond,
                                      const ConstraintStore& store,
                                      const WorldTable& wt,
                                      const ExactOptions& options);

}  // namespace maybms
