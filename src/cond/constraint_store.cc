#include "src/cond/constraint_store.h"

#include <algorithm>

#include "src/common/str_util.h"
#include "src/conf/exact.h"

namespace maybms {

namespace {

/// Walks two sorted atom lists as a conjunction: returns false on a
/// conflict (same variable, different assignment); otherwise feeds every
/// atom of the merge to `emit`.
template <typename Emit>
bool MergeAtoms(const Atom* a, size_t na, const Atom* b, size_t nb, Emit&& emit) {
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i].var < b[j].var) {
      emit(a[i++]);
    } else if (b[j].var < a[i].var) {
      emit(b[j++]);
    } else {
      if (a[i].asg != b[j].asg) return false;
      emit(a[i++]);
      ++j;
    }
  }
  while (i < na) emit(a[i++]);
  while (j < nb) emit(b[j++]);
  return true;
}

}  // namespace

bool ConstraintStore::MentionsVar(VarId var) const {
  return std::binary_search(vars_.begin(), vars_.end(), var);
}

std::vector<VarRestriction> ConstraintStore::Restrictions() const {
  if (compiled_ != nullptr) return compiled_->restrictions;
  return ComputeRestrictions();
}

std::vector<VarRestriction> ConstraintStore::ComputeRestrictions() const {
  std::vector<VarRestriction> out;
  if (clauses_.empty()) return out;
  // Candidates: the first clause's variables; survivors must be bound in
  // every later clause too.
  for (const Atom& a : clauses_.front().atoms()) {
    out.push_back(VarRestriction{a.var, {a.asg}});
  }
  for (size_t c = 1; c < clauses_.size() && !out.empty(); ++c) {
    std::vector<VarRestriction> kept;
    kept.reserve(out.size());
    for (VarRestriction& r : out) {
      std::optional<AsgId> asg = clauses_[c].Lookup(r.var);
      if (!asg) continue;  // clause leaves the variable free: unrestricted
      if (!std::binary_search(r.allowed.begin(), r.allowed.end(), *asg)) {
        r.allowed.insert(
            std::upper_bound(r.allowed.begin(), r.allowed.end(), *asg), *asg);
      }
      kept.push_back(std::move(r));
    }
    out = std::move(kept);
  }
  return out;
}

std::vector<Atom> ConstraintStore::DeterminedAtoms() const {
  if (compiled_ != nullptr) return compiled_->determined;
  std::vector<Atom> out;
  for (const VarRestriction& r : Restrictions()) {
    if (r.allowed.size() == 1) out.push_back(Atom{r.var, r.allowed.front()});
  }
  return out;
}

// Compiles the candidate clause list into the evidence cache WITHOUT
// touching the store: the d-tree doubles as the P(C) computation (its
// root value, by the bit-identity contract, is exactly what the solver
// returns), so CommitClauses builds the cache first, validates the
// probability, and only then installs both. The caller's ExactOptions
// govern the compile — the node budget still bounds pathological
// evidence (legacy-solver mode solves separately; parity/ablation only).
Result<std::shared_ptr<CompiledEvidence>> BuildCompiledEvidence(
    const std::vector<Condition>& clauses, const WorldTable& wt,
    const ExactOptions& exact) {
  auto compiled = std::make_shared<CompiledEvidence>();
  compiled->offsets.reserve(clauses.size() + 1);
  compiled->offsets.push_back(0);
  for (const Condition& c : clauses) {
    compiled->atoms.insert(compiled->atoms.end(), c.atoms().begin(),
                           c.atoms().end());
    compiled->offsets.push_back(static_cast<uint32_t>(compiled->atoms.size()));
  }
  ExactOptions tree_options = exact;
  tree_options.use_legacy_solver = false;
  DTreeCompiler compiler(CompiledDnf(compiled->atoms.data(),
                                     compiled->offsets.data(), clauses.size(),
                                     wt),
                         tree_options);
  MAYBMS_ASSIGN_OR_RETURN(compiled->tree, compiler.Compile());
  return compiled;
}

void ConstraintStore::Simplify(std::vector<Condition>* clauses) {
  // Absorption elimination: clause B is redundant when some clause A's
  // atoms are a subset of B's (A covers every world B covers). Quadratic —
  // callers dedup and enforce the clause budget first so this is bounded.
  // Mark first, move after: moving a survivor out early would leave an
  // empty (always-true) Condition behind that spuriously subsumes the rest.
  std::vector<uint8_t> subsumed(clauses->size(), 0);
  for (size_t i = 0; i < clauses->size(); ++i) {
    for (size_t j = 0; j < clauses->size(); ++j) {
      if (i == j) continue;
      // Strictly-smaller subsets absorb; equal clauses were deduped above,
      // so equal-sized subsets cannot occur (atoms are var-unique).
      if ((*clauses)[j].NumAtoms() < (*clauses)[i].NumAtoms() &&
          (*clauses)[j].SubsetOf((*clauses)[i])) {
        subsumed[i] = 1;
        break;
      }
    }
  }
  std::vector<Condition> kept;
  kept.reserve(clauses->size());
  for (size_t i = 0; i < clauses->size(); ++i) {
    if (!subsumed[i]) kept.push_back(std::move((*clauses)[i]));
  }
  *clauses = std::move(kept);
}

void ConstraintStore::RebuildVariables() {
  vars_.clear();
  for (const Condition& c : clauses_) {
    for (const Atom& a : c.atoms()) vars_.push_back(a.var);
  }
  std::sort(vars_.begin(), vars_.end());
  vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());
}

Status ConstraintStore::CommitClauses(std::vector<Condition> clauses,
                                      const WorldTable& wt,
                                      const ExactOptions& exact, ThreadPool* pool,
                                      const char* what) {
  // Canonical order + dedup (O(n log n)) and the budget check come BEFORE
  // the quadratic absorption pass, so oversized evidence is rejected
  // cheaply instead of after minutes of subset tests.
  std::sort(clauses.begin(), clauses.end());
  clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());
  if (clauses.empty()) {
    return Status::InvalidArgument(StringFormat(
        "inconsistent evidence: %s has probability 0 (no possible world "
        "satisfies it); evidence unchanged", what));
  }
  if (clauses.size() > max_clauses_) {
    return Status::InvalidArgument(StringFormat(
        "evidence too complex: flattened constraint has %zu clauses "
        "(budget %zu); evidence unchanged", clauses.size(), max_clauses_));
  }
  Simplify(&clauses);
  // Quick syntactic satisfiability: over independent variables a consistent
  // clause has positive probability iff every atom does.
  bool positive = false;
  for (const Condition& c : clauses) {
    if (wt.ConditionProb(c) > 0) {
      positive = true;
      break;
    }
  }
  if (!positive) {
    return Status::InvalidArgument(StringFormat(
        "inconsistent evidence: %s has probability 0 (every clause contains "
        "a zero-probability atom); evidence unchanged", what));
  }
  // Compile the evidence d-tree; its root value IS the exact P(C) (clamped
  // like ExactConfidence clamps), so the cache build and the probability
  // computation are one pass. Legacy-solver mode keeps the recursive solve
  // as the P(C) of record (bit-identical by contract) for parity tests.
  MAYBMS_ASSIGN_OR_RETURN(std::shared_ptr<CompiledEvidence> compiled,
                          BuildCompiledEvidence(clauses, wt, exact));
  double p = std::min(1.0, std::max(0.0, compiled->tree.root_value()));
  if (exact.use_legacy_solver) {
    MAYBMS_ASSIGN_OR_RETURN(
        p, ExactConfidence(Dnf(clauses), wt, exact, nullptr, pool));
  }
  if (p <= 0) {
    return Status::InvalidArgument(StringFormat(
        "inconsistent evidence: %s has probability 0; evidence unchanged", what));
  }
  clauses_ = std::move(clauses);
  prob_ = p;
  RebuildVariables();
  compiled->restrictions = ComputeRestrictions();
  for (const VarRestriction& r : compiled->restrictions) {
    if (r.allowed.size() == 1) {
      compiled->determined.push_back(Atom{r.var, r.allowed.front()});
    }
  }
  compiled_ = std::move(compiled);
  return Status::OK();
}

Status ConstraintStore::Conjoin(const Dnf& evidence, const WorldTable& wt,
                                const ExactOptions& exact, ThreadPool* pool) {
  if (evidence.HasEmptyClause()) return Status::OK();  // C ∧ true = C
  if (evidence.IsEmpty()) {
    return Status::InvalidArgument(
        "inconsistent evidence: asserted query has no possible answers "
        "(probability 0); evidence unchanged");
  }
  std::vector<Condition> flattened;
  if (!active()) {
    flattened = evidence.clauses();
  } else {
    // C ∧ (e1 ∨ ... ∨ ek) distributes into pairwise merges; inconsistent
    // pairs drop out — exactly the parsimonious join translation applied
    // to lineage.
    if (clauses_.size() * evidence.NumClauses() > max_clauses_ * 4) {
      return Status::InvalidArgument(StringFormat(
          "evidence too complex: conjunction would flatten to up to %zu "
          "clauses (budget %zu); evidence unchanged",
          clauses_.size() * evidence.NumClauses(), max_clauses_ * 4));
    }
    flattened.reserve(clauses_.size());
    for (const Condition& have : clauses_) {
      for (const Condition& add : evidence.clauses()) {
        std::optional<Condition> merged = Condition::Merge(have, add);
        if (merged) flattened.push_back(std::move(*merged));
      }
    }
  }
  return CommitClauses(std::move(flattened), wt, exact, pool,
                       "the asserted constraint");
}

Status ConstraintStore::Substitute(const std::vector<Atom>& determined,
                                   const WorldTable& wt,
                                   const ExactOptions& exact, ThreadPool* pool) {
  if (determined.empty() || !active()) return Status::OK();
  std::vector<Condition> next;
  next.reserve(clauses_.size());
  for (const Condition& c : clauses_) {
    std::optional<Condition> reduced = c;
    for (const Atom& a : determined) {
      reduced = reduced->Assign(a.var, a.asg);
      if (!reduced) break;  // conflicting clause: covered by the others
    }
    if (!reduced) continue;
    if (reduced->IsTrue()) {
      // A clause shrank to the empty conjunction: the residual constraint
      // is valid — all evidence is now materialized in the database.
      Clear();
      return Status::OK();
    }
    next.push_back(std::move(*reduced));
  }
  return CommitClauses(std::move(next), wt, exact, pool,
                       "the residual constraint");
}

void ConstraintStore::Clear() {
  clauses_.clear();
  vars_.clear();
  compiled_.reset();
  prob_ = 1.0;
}

Status ConstraintStore::Load(std::vector<Condition> clauses, const WorldTable& wt,
                             const ExactOptions& exact, ThreadPool* pool) {
  if (clauses.empty()) {
    Clear();
    return Status::OK();
  }
  return CommitClauses(std::move(clauses), wt, exact, pool,
                       "the restored constraint");
}

bool ConstraintStore::CompatiblePositive(const Condition& cond,
                                         const WorldTable& wt) const {
  return CompatiblePositive(cond.atoms().data(), cond.atoms().size(), wt);
}

bool ConstraintStore::CompatiblePositive(const Atom* atoms, size_t n,
                                         const WorldTable& wt) const {
  if (!active()) return wt.ConditionProb(atoms, n) > 0;
  for (const Condition& c : clauses_) {
    double p = 1.0;
    bool consistent = MergeAtoms(
        atoms, n, c.atoms().data(), c.atoms().size(),
        [&](const Atom& a) { p *= wt.AtomProb(a); });
    if (consistent && p > 0) return true;
  }
  return false;
}

std::string ConstraintStore::ToString() const {
  if (!active()) return "true";
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " ∨ ";
    out += clauses_[i].ToString();
  }
  return out;
}

}  // namespace maybms
