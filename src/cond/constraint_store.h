// The constraint store: the evidence half of the conditioning subsystem
// (Koch & Olteanu, "Conditioning Probabilistic Databases", VLDB 2008 — the
// companion work the paper's §2.3 confidence algorithms come from).
//
// `ASSERT <query>` accumulates evidence: the event "the query has at least
// one answer", whose lineage is a DNF over the world table's independent
// random variables. The store keeps the CONJUNCTION of all asserted events
// flattened into a single canonical DNF (pairwise clause merge, duplicate
// and subsumed-clause elimination — the same parsimonious machinery as the
// join translation), together with its exactly-computed probability P(C).
// Every subsequent conf()/aconf()/tconf() answer is the posterior
// P(Q ∧ C)/P(C) (see src/cond/posterior.h); world pruning substitutes
// fully-determined variables back into the stored U-relations
// (src/cond/prune.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/lineage/dnf.h"
#include "src/lineage/dtree.h"
#include "src/prob/world_table.h"

namespace maybms {

class ThreadPool;

/// The restriction the evidence places on one random variable: `var` takes
/// a value in `allowed` in every world satisfying the constraint. Only
/// variables mentioned in *every* clause are restricted (a clause that does
/// not mention the variable imposes nothing).
struct VarRestriction {
  VarId var = 0;
  std::vector<AsgId> allowed;  ///< sorted, distinct; singleton = determined
};

/// The compiled form of the evidence, cached on the store and rebuilt only
/// when the evidence itself changes (ASSERT / CONDITION ON / CLEAR
/// EVIDENCE / pruning substitution). Posterior conf()/aconf()/tconf()
/// calls read these instead of re-flattening and re-compiling C per call:
///   - `atoms`/`offsets`: the flattened clauses as one CSR atom array over
///     GLOBAL variable ids — the Q ∧ C product and Q+C combined lineage
///     merge directly against these spans, skipping the per-call
///     Condition/Dnf heap churn;
///   - `tree`: the evidence d-tree — compiling it IS how the store
///     computes P(C) (the cached root value), so the cache costs no extra
///     solve;
///   - `restrictions`/`determined`: the per-variable restriction map and
///     its singleton (fully-determined) atoms, precomputed once for the
///     pruning pass and the marginal fast paths.
struct CompiledEvidence {
  std::vector<Atom> atoms;
  std::vector<uint32_t> offsets;  ///< size NumClauses()+1
  DTree tree;
  std::vector<VarRestriction> restrictions;
  std::vector<Atom> determined;

  size_t NumClauses() const { return offsets.size() - 1; }
  const Atom* ClauseAtoms(size_t c) const { return atoms.data() + offsets[c]; }
  size_t ClauseSize(size_t c) const { return offsets[c + 1] - offsets[c]; }
};

/// Accumulated evidence C as interned, flattened DNF lineage. Inactive
/// (C ≡ true, P(C) = 1) until the first successful Conjoin.
class ConstraintStore {
 public:
  /// False while no evidence is asserted (C ≡ true).
  bool active() const { return !clauses_.empty(); }

  /// The flattened evidence clauses (disjunction), canonical order:
  /// deduplicated, absorption-reduced, stable across engines and sessions.
  const std::vector<Condition>& clauses() const { return clauses_; }
  size_t NumClauses() const { return clauses_.size(); }

  /// Exact P(C) under the current world table; 1 when inactive.
  double probability() const { return prob_; }

  /// Distinct variables mentioned by the constraint, sorted.
  const std::vector<VarId>& variables() const { return vars_; }
  bool MentionsVar(VarId var) const;

  /// Per-variable restriction map: variables bound in every clause, with
  /// the assignments the evidence still allows. Served from the compiled
  /// cache when available.
  std::vector<VarRestriction> Restrictions() const;

  /// Atoms fixed by the evidence: restrictions whose allowed set is a
  /// singleton. These are the substitution candidates for world pruning.
  std::vector<Atom> DeterminedAtoms() const;

  /// The compiled evidence (CSR clause atoms, d-tree, restriction maps);
  /// null iff the store is inactive. Invalidated and rebuilt on every
  /// successful mutation (Conjoin / Substitute / Load / Clear).
  const CompiledEvidence* compiled() const { return compiled_.get(); }

  /// Conjoins one more evidence event (a DNF — the lineage of an ASSERT
  /// query's result) into the store: C := C ∧ evidence, flattened by
  /// pairwise clause merge with inconsistent pairs dropped, then
  /// simplified. Recomputes P(C) exactly. If the combined evidence is
  /// inconsistent (P(C) = 0) or the flattened form exceeds the clause
  /// budget, the store is left UNCHANGED and a non-OK Status is returned.
  Status Conjoin(const Dnf& evidence, const WorldTable& wt,
                 const ExactOptions& exact, ThreadPool* pool);

  /// Substitutes determined atoms var := asg into the constraint (the
  /// pruning pass has folded them into the database): matching atoms are
  /// removed from every clause; a clause shrinking to empty makes C true
  /// and deactivates the store. P(C) is recomputed once at the end.
  Status Substitute(const std::vector<Atom>& determined, const WorldTable& wt,
                    const ExactOptions& exact, ThreadPool* pool);

  /// Drops all evidence (C ≡ true). Pruned rows are not resurrected:
  /// evidence already substituted into the database stays materialized.
  void Clear();

  /// Replaces the store's contents wholesale (persistence restore).
  /// Clauses are simplified and P(C) recomputed; rejects P(C) = 0.
  Status Load(std::vector<Condition> clauses, const WorldTable& wt,
              const ExactOptions& exact, ThreadPool* pool);

  /// True iff `cond ∧ C` is satisfiable with positive probability — i.e.
  /// some clause of C merges consistently with `cond` and every atom of
  /// the merge has positive prior probability. With no evidence this is
  /// exactly P(cond) > 0. The `possible` operator's filter under evidence.
  bool CompatiblePositive(const Condition& cond, const WorldTable& wt) const;
  bool CompatiblePositive(const Atom* atoms, size_t n, const WorldTable& wt) const;

  /// "{x0->1} ∨ {x2->0, x3->1}" (or "true" when inactive) — introspection.
  std::string ToString() const;

 private:
  /// Absorption pass over deduped, sorted clauses (quadratic; callers
  /// enforce the clause budget first).
  static void Simplify(std::vector<Condition>* clauses);
  Status CommitClauses(std::vector<Condition> clauses, const WorldTable& wt,
                       const ExactOptions& exact, ThreadPool* pool,
                       const char* what);
  void RebuildVariables();
  std::vector<VarRestriction> ComputeRestrictions() const;

  std::vector<Condition> clauses_;
  std::vector<VarId> vars_;  // sorted distinct
  std::shared_ptr<const CompiledEvidence> compiled_;  // null iff inactive
  double prob_ = 1.0;
  /// Flattened-DNF growth budget: Conjoin refuses (leaving the store
  /// unchanged) rather than let pathological evidence blow up the product.
  size_t max_clauses_ = 4096;
};

}  // namespace maybms
