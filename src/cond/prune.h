// World pruning / renormalization: after evidence is asserted, worlds that
// violate it are removed from the *stored* representation wherever the
// constraint pins variables down (Koch & Olteanu VLDB'08: conditioning
// yields a database whose possible worlds are exactly the surviving ones,
// renormalized).
//
// Pruning substitutes the constraint store's fully-DETERMINED variables
// (per-variable restriction is a singleton) into every U-relation in the
// catalog:
//   - a row whose condition contradicts a determined fact (same variable,
//     different assignment) has probability 0 in every surviving world and
//     is deleted physically;
//   - matching determined atoms are substituted away: the atom is removed
//     from surviving conditions, the world table collapses the variable to
//     the one-hot posterior distribution, and the constraint store divides
//     the variable out of its clauses.
// Condition columns therefore shrink physically in both storages: heap
// rows are rewritten in place and the tables' cached columnar snapshots
// (batch engine) rebuild from them on next access.
//
// Only determined variables are pruned physically, on purpose: their
// collapse makes the stored representation self-consistent with or
// without the residual constraint, so CLEAR EVIDENCE stays sound.
// Rows that are merely *restricted* (a disallowed assignment of a
// multi-valued restriction) are left in place — their posterior is 0
// through the posterior algebra (tconf/possible/conf all consult the
// store) and legitimately reverts to the prior if evidence is cleared.
//
// The conditional distribution is preserved exactly: P(C) factors as
// P(det atoms)·P(C'), so posteriors computed against the pruned database
// and residual constraint equal the unpruned ones (up to one floating
// division; the equality tests pin it to 1e-12).
#pragma once

#include <cstddef>

#include "src/common/result.h"

namespace maybms {

class Catalog;
class ConstraintStore;
struct ExactOptions;
class ThreadPool;

/// Counters describing one pruning pass.
struct PruneStats {
  size_t rows_dropped = 0;    ///< rows contradicting a determined fact
  size_t atoms_removed = 0;   ///< determined atoms erased from conditions
  size_t vars_collapsed = 0;  ///< variables renormalized to one-hot
  size_t tables_touched = 0;  ///< uncertain tables rewritten
};

/// Prunes every U-relation in `catalog` against `store` (the asserting
/// session's evidence) and substitutes determined variables (world table +
/// residual constraint). No-op when the store is inactive or nothing is
/// restricted. Callers must hold the database exclusively: pruning
/// rewrites shared tables and the world table, which is only sound while
/// the asserting session is the catalog's sole session (ExecContext::
/// allow_prune).
Result<PruneStats> PruneConditionedWorlds(Catalog* catalog,
                                          ConstraintStore* store,
                                          const ExactOptions& exact,
                                          ThreadPool* pool);

}  // namespace maybms
