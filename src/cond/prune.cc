#include "src/cond/prune.h"

#include <algorithm>

#include "src/cond/constraint_store.h"
#include "src/storage/catalog.h"

namespace maybms {

namespace {

/// Binary-searched lookup into the determined-atom list (sorted by var):
/// the assignment `var` is pinned to, or nullptr if not determined.
const Atom* FindDetermined(const std::vector<Atom>& determined, VarId var) {
  auto it = std::lower_bound(
      determined.begin(), determined.end(), var,
      [](const Atom& a, VarId v) { return a.var < v; });
  return it != determined.end() && it->var == var ? &*it : nullptr;
}

}  // namespace

Result<PruneStats> PruneConditionedWorlds(Catalog* catalog,
                                          ConstraintStore* store_ptr,
                                          const ExactOptions& exact,
                                          ThreadPool* pool) {
  PruneStats stats;
  ConstraintStore& store = *store_ptr;
  if (!store.active()) return stats;
  // Only DETERMINED variables may be pruned physically: their world-table
  // collapse keeps the stored representation self-consistent even after a
  // later CLEAR EVIDENCE. Rows merely *restricted* by the constraint (a
  // disallowed assignment of a multi-valued restriction) keep living in
  // the table — their posterior is 0 through the posterior algebra while
  // the evidence is active, and reverts to the prior if it is cleared.
  std::vector<Atom> determined = store.DeterminedAtoms();
  if (determined.empty()) return stats;
  std::sort(determined.begin(), determined.end(),
            [](const Atom& a, const Atom& b) { return a.var < b.var; });

  for (const std::string& name : catalog->TableNames()) {
    TablePtr table = *catalog->GetTable(name);
    if (!table->uncertain() || table->NumRows() == 0) continue;
    // First a read-only scan: most tables are untouched by a given piece of
    // evidence, and skipping them keeps their columnar snapshots cached.
    bool affected = false;
    for (const Row& row : table->rows()) {
      for (const Atom& a : row.condition.atoms()) {
        if (FindDetermined(determined, a.var) != nullptr) {
          affected = true;
          break;
        }
      }
      if (affected) break;
    }
    if (!affected) continue;

    ++stats.tables_touched;
    // mutable_rows() bumps the table's snapshot version: the rewritten
    // rows rebuild the columnar condition columns, so post-prune lineage
    // reaches the d-tree compilation cache as new content (and the
    // world-version bump in CollapseVariable below invalidates entries
    // whose atoms survived the rewrite unchanged).
    std::vector<Row>& rows = table->mutable_rows();
    std::vector<Row> kept;
    kept.reserve(rows.size());
    for (Row& row : rows) {
      bool drop = false;
      bool rewrite = false;
      for (const Atom& a : row.condition.atoms()) {
        const Atom* det = FindDetermined(determined, a.var);
        if (det == nullptr) continue;
        if (a.asg != det->asg) {
          drop = true;  // contradicts a determined fact: probability 0
          break;
        }
        rewrite = true;  // matching determined atom: substitute away
      }
      if (drop) {
        ++stats.rows_dropped;
        continue;
      }
      if (rewrite) {
        Condition next = row.condition;
        for (const Atom& a : determined) {
          std::optional<Condition> assigned = next.Assign(a.var, a.asg);
          if (assigned && assigned->NumAtoms() < next.NumAtoms()) {
            ++stats.atoms_removed;
            next = std::move(*assigned);
          }
        }
        row.condition = std::move(next);
      }
      kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  // Renormalize: determined variables become one-hot in the world table
  // (the posterior marginal given the evidence), and the constraint store
  // divides them out of its clauses.
  for (const Atom& a : determined) {
    MAYBMS_RETURN_NOT_OK(catalog->world_table().CollapseVariable(a.var, a.asg));
    ++stats.vars_collapsed;
  }
  MAYBMS_RETURN_NOT_OK(
      store.Substitute(determined, catalog->world_table(), exact, pool));
  return stats;
}

}  // namespace maybms
