#include "src/types/row.h"

namespace maybms {

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  if (!condition.IsTrue()) {
    out += " | ";
    out += condition.ToString();
  }
  out += ")";
  return out;
}

size_t HashValues(const std::vector<Value>& values) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : values) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

size_t HashValuesAt(const std::vector<Value>& values, const std::vector<size_t>& idxs) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i : idxs) {
    h ^= values[i].Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

bool ValuesEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

}  // namespace maybms
