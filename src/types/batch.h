// A batch: ~1024 rows of a U-relation in columnar form — one ColumnVector
// per data attribute plus one ConditionColumn for the rows' conditions.
// Batches are the unit of work of the vectorized executor; columns are
// shared_ptrs so operators that pass a column through unchanged (scans,
// projections of plain column references) share it instead of copying.
//
// Convention: a ColumnVector is immutable once it is reachable from more
// than one batch — operators only mutate columns they created themselves.
#pragma once

#include <memory>
#include <vector>

#include "src/types/column_vector.h"
#include "src/types/condition_column.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {

struct Batch {
  /// Target row count per batch: big enough to amortize per-batch work,
  /// small enough that a batch's working set stays cache-resident.
  static constexpr size_t kDefaultCapacity = 1024;

  std::vector<ColumnVectorPtr> columns;
  ConditionColumn conditions;
  size_t num_rows = 0;

  size_t NumColumns() const { return columns.size(); }

  /// Empty batch with one column per schema attribute (declared types).
  static Batch Allocate(const Schema& schema, size_t capacity = kDefaultCapacity);

  /// Columnarizes `n` rows (row-engine interop / table loading).
  static Batch FromRows(const Schema& schema, const Row* rows, size_t n);

  /// Appends one row across all columns and the condition column.
  void AppendRow(const Row& row);

  /// Materializes row `i` (values + condition).
  Row RowAt(size_t i) const;

  /// Appends all rows to `out` (drain into a row-engine TableData).
  void AppendTo(std::vector<Row>* out) const;
};

}  // namespace maybms
