// Typed columnar value storage: one vector per batch column. Cells of one
// SQL type live in a contiguous typed array with a separate validity mask,
// so hot operator loops (filters, arithmetic, hashing) run over plain
// int64/double arrays instead of dispatching on variant Values per cell.
//
// Columns whose declared type is kNull (untyped), or that receive a value
// of a type other than the declared one (legal through untyped columns),
// fall back to boxed row-at-a-time Value storage — the slow but fully
// general representation. All appends preserve exactly the Value that a
// row-at-a-time engine would have seen: GetValue(Append(v)) == v.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/types/value.h"

namespace maybms {

class ColumnVector {
 public:
  explicit ColumnVector(TypeId type = TypeId::kNull) : type_(type) {}

  /// Declared cell type. Boxed columns keep their declared type; individual
  /// cells may disagree (check boxed()).
  TypeId type() const { return type_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when the column stores variant Values instead of a typed array.
  bool boxed() const { return boxed_; }

  void Reserve(size_t n);

  /// Appends a value, demoting to boxed storage when the value's type does
  /// not match the declared type (ints are widened into double columns).
  void Append(const Value& v);
  void AppendNull();

  /// Typed fast-path appends (caller guarantees the matching non-boxed
  /// type; used by vectorized kernels).
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);

  /// Cell accessors.
  Value GetValue(size_t i) const;
  bool IsNull(size_t i) const {
    return boxed_ ? boxed_values_[i].is_null() : (!valid_.empty() && valid_[i] == 0);
  }

  /// True when no cell is null (fast path guard for kernels).
  bool no_nulls() const { return null_count_ == 0; }
  size_t null_count() const { return null_count_; }

  /// Raw typed data (valid only when !boxed() and type matches; null cells
  /// hold unspecified data — consult valid()).
  const int64_t* IntData() const { return ints_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  const uint8_t* BoolData() const { return bools_.data(); }
  const std::string* StringData() const { return strings_.data(); }
  int64_t* MutableIntData() { return ints_.data(); }
  double* MutableDoubleData() { return doubles_.data(); }
  uint8_t* MutableBoolData() { return bools_.data(); }

  /// Validity mask: empty means "all valid"; otherwise 1 = non-null.
  const std::vector<uint8_t>& valid() const { return valid_; }

  /// New column with the rows at `idxs`, in order (filter/gather).
  ColumnVector Gather(const std::vector<uint32_t>& idxs) const;

  /// A column of `n` copies of `v`.
  static ColumnVector Constant(const Value& v, size_t n);

 private:
  void DemoteToBoxed();
  void MarkValid();
  void MarkNull();

  TypeId type_;
  size_t size_ = 0;
  size_t null_count_ = 0;
  bool boxed_ = false;

  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<Value> boxed_values_;
  std::vector<uint8_t> valid_;  // lazily materialized: empty = all valid
};

using ColumnVectorPtr = std::shared_ptr<ColumnVector>;

}  // namespace maybms
