#include "src/types/condition_column.h"

namespace maybms {

void ConditionColumn::Clear() {
  atoms_.clear();
  offsets_.clear();
  num_rows_ = 0;
}

void ConditionColumn::MaterializeOffsets() {
  if (offsets_.empty()) offsets_.assign(num_rows_ + 1, 0);
}

void ConditionColumn::AppendTrue() {
  ++num_rows_;
  if (!offsets_.empty()) offsets_.push_back(static_cast<uint32_t>(atoms_.size()));
}

void ConditionColumn::AppendAtoms(AtomSpan atoms) {
  if (atoms.empty()) {
    AppendTrue();
    return;
  }
  MaterializeOffsets();
  atoms_.insert(atoms_.end(), atoms.begin(), atoms.end());
  ++num_rows_;
  offsets_.push_back(static_cast<uint32_t>(atoms_.size()));
}

void ConditionColumn::AppendCondition(const Condition& c) {
  AppendAtoms(AtomSpan{c.atoms().data(), c.atoms().size()});
}

bool ConditionColumn::AppendMerged(AtomSpan a, AtomSpan b) {
  if (a.empty()) {
    AppendAtoms(b);
    return true;
  }
  if (b.empty()) {
    AppendAtoms(a);
    return true;
  }
  MaterializeOffsets();
  size_t checkpoint = atoms_.size();
  size_t i = 0, j = 0;
  while (i < a.size && j < b.size) {
    const Atom& x = a[i];
    const Atom& y = b[j];
    if (x.var < y.var) {
      atoms_.push_back(x);
      ++i;
    } else if (y.var < x.var) {
      atoms_.push_back(y);
      ++j;
    } else {
      if (x.asg != y.asg) {
        atoms_.resize(checkpoint);  // inconsistent: undo partial merge
        return false;
      }
      atoms_.push_back(x);
      ++i;
      ++j;
    }
  }
  atoms_.insert(atoms_.end(), a.begin() + i, a.end());
  atoms_.insert(atoms_.end(), b.begin() + j, b.end());
  ++num_rows_;
  offsets_.push_back(static_cast<uint32_t>(atoms_.size()));
  return true;
}

Condition ConditionColumn::ToCondition(size_t i) const {
  AtomSpan span = Span(i);
  Condition out;
  // The span already satisfies the Condition invariant, so FromAtoms
  // cannot fail.
  if (!span.empty()) {
    out = *Condition::FromAtoms(std::vector<Atom>(span.begin(), span.end()));
  }
  return out;
}

}  // namespace maybms
