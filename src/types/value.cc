#include "src/types/value.h"

#include <cmath>
#include <functional>

#include "src/common/str_util.h"

namespace maybms {

std::string_view TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt:
      return "int";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
  }
  return "?";
}

TypeId Value::type() const {
  switch (data_.index()) {
    case 0:
      return TypeId::kNull;
    case 1:
      return TypeId::kBool;
    case 2:
      return TypeId::kInt;
    case 3:
      return TypeId::kDouble;
    case 4:
      return TypeId::kString;
  }
  return TypeId::kNull;
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case TypeId::kBool:
      return AsBool() ? 1.0 : 0.0;
    case TypeId::kInt:
      return static_cast<double>(AsInt());
    case TypeId::kDouble:
      return AsDouble();
    default:
      return Status::TypeError(StringFormat(
          "cannot convert %s value to double", std::string(TypeIdToString(type())).c_str()));
  }
}

Result<int64_t> Value::ToInt() const {
  switch (type()) {
    case TypeId::kBool:
      return static_cast<int64_t>(AsBool());
    case TypeId::kInt:
      return AsInt();
    case TypeId::kDouble:
      return static_cast<int64_t>(AsDouble());
    default:
      return Status::TypeError(StringFormat(
          "cannot convert %s value to int", std::string(TypeIdToString(type())).c_str()));
  }
}

namespace {

// Numeric class spanning int and double for cross-type comparison.
bool IsNumeric(TypeId t) { return t == TypeId::kInt || t == TypeId::kDouble; }

}  // namespace

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  TypeId a = type(), b = other.type();
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a == TypeId::kInt && b == TypeId::kInt) return AsInt() == other.AsInt();
    return *ToDouble() == *other.ToDouble();
  }
  if (a != b) return false;
  return data_ == other.data_;
}

int Value::Compare(const Value& other) const {
  auto rank = [](TypeId t) -> int {
    switch (t) {
      case TypeId::kNull:
        return 0;
      case TypeId::kBool:
        return 1;
      case TypeId::kInt:
      case TypeId::kDouble:
        return 2;
      case TypeId::kString:
        return 3;
    }
    return 4;
  };
  int ra = rank(type()), rb = rank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool: {
      int a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeId::kInt:
      if (other.type() == TypeId::kInt) {
        int64_t a = AsInt(), b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      [[fallthrough]];
    case TypeId::kDouble: {
      double a = *ToDouble(), b = *other.ToDouble();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    case TypeId::kString: {
      int c = AsString().compare(other.AsString());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeId::kBool:
      return AsBool() ? 0x1234567 : 0x89abcde;
    case TypeId::kInt:
      // Hash ints through double so 5 and 5.0 collide (Equals-consistent).
      return std::hash<double>{}(static_cast<double>(AsInt()));
    case TypeId::kDouble:
      return std::hash<double>{}(AsDouble());
    case TypeId::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return AsBool() ? "true" : "false";
    case TypeId::kInt:
      return std::to_string(AsInt());
    case TypeId::kDouble: {
      double d = AsDouble();
      if (std::floor(d) == d && std::fabs(d) < 1e15) {
        return StringFormat("%.1f", d);
      }
      std::string s = StringFormat("%.6g", d);
      return s;
    }
    case TypeId::kString:
      return AsString();
  }
  return "?";
}

}  // namespace maybms
