// Dynamic SQL values. MayBMS (like its PostgreSQL substrate) is dynamically
// typed at the executor level: every cell is a Value tagged with a TypeId.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "src/common/result.h"

namespace maybms {

/// SQL data types supported by the engine.
enum class TypeId : uint8_t {
  kNull = 0,  ///< the SQL NULL "type" (untyped null literal)
  kBool,
  kInt,     ///< 64-bit signed integer
  kDouble,  ///< 64-bit IEEE float (the paper stores probabilities this way)
  kString,
};

/// Human-readable type name ("int", "double", ...).
std::string_view TypeIdToString(TypeId t);

/// A single dynamically-typed SQL value.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(v); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  TypeId type() const;

  /// Typed accessors; undefined behaviour if the type does not match
  /// (checked in debug builds via std::get).
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion: int/double/bool to double. Error for other types.
  Result<double> ToDouble() const;
  /// Numeric coercion to int64 (double truncates). Error for other types.
  Result<int64_t> ToInt() const;

  /// SQL equality: null equals nothing (returns false, callers handle
  /// three-valued logic); int and double compare numerically.
  bool Equals(const Value& other) const;

  /// Total order for sorting and group-by keys: NULL < bool < numeric <
  /// string; numerics compare by value across int/double.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Hash consistent with Equals (int 5 and double 5.0 hash alike).
  size_t Hash() const;

  /// Display form ("NULL", "42", "3.5", "abc", "true").
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace maybms
