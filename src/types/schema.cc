#include "src/types/schema.h"

#include "src/common/str_util.h"

namespace maybms {

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::GetColumnIndex(std::string_view name) const {
  auto idx = FindColumn(name);
  if (!idx) {
    return Status::BindError(StringFormat("column '%.*s' does not exist",
                                          static_cast<int>(name.size()), name.data()));
  }
  return *idx;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeIdToString(columns_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::UnionCompatible(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    TypeId a = columns_[i].type, b = other.columns_[i].type;
    bool num_a = a == TypeId::kInt || a == TypeId::kDouble;
    bool num_b = b == TypeId::kInt || b == TypeId::kDouble;
    if (a != b && !(num_a && num_b) && a != TypeId::kNull && b != TypeId::kNull) {
      return false;
    }
  }
  return true;
}

}  // namespace maybms
