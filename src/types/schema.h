// Relation schemas: ordered, named, typed columns.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/types/value.h"

namespace maybms {

/// A single column: name (case-insensitive for lookup, original case kept
/// for display) and declared type.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Case-insensitive lookup; nullopt when missing or ambiguous lookup is
  /// not detected here (first match wins).
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Like FindColumn but errors with the relation context when missing.
  Result<size_t> GetColumnIndex(std::string_view name) const;

  /// Concatenation (for joins / condition-preserving translation).
  static Schema Concat(const Schema& a, const Schema& b);

  /// "(<name> <type>, ...)".
  std::string ToString() const;

  /// True if both schemas have the same column count and types (names may
  /// differ) — the SQL notion of union compatibility.
  bool UnionCompatible(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace maybms
