#include "src/types/batch.h"

namespace maybms {

Batch Batch::Allocate(const Schema& schema, size_t capacity) {
  Batch batch;
  batch.columns.reserve(schema.NumColumns());
  for (const Column& col : schema.columns()) {
    auto cv = std::make_shared<ColumnVector>(col.type);
    cv->Reserve(capacity);
    batch.columns.push_back(std::move(cv));
  }
  return batch;
}

Batch Batch::FromRows(const Schema& schema, const Row* rows, size_t n) {
  Batch batch = Allocate(schema, n);
  for (size_t i = 0; i < n; ++i) batch.AppendRow(rows[i]);
  return batch;
}

void Batch::AppendRow(const Row& row) {
  for (size_t c = 0; c < columns.size(); ++c) columns[c]->Append(row.values[c]);
  conditions.AppendCondition(row.condition);
  ++num_rows;
}

Row Batch::RowAt(size_t i) const {
  Row row;
  row.values.reserve(columns.size());
  for (const ColumnVectorPtr& col : columns) row.values.push_back(col->GetValue(i));
  row.condition = conditions.ToCondition(i);
  return row;
}

void Batch::AppendTo(std::vector<Row>* out) const {
  out->reserve(out->size() + num_rows);
  for (size_t i = 0; i < num_rows; ++i) out->push_back(RowAt(i));
}

}  // namespace maybms
