// The condition column of a U-relation batch, stored columnar: all rows'
// (variable, assignment) atom pairs packed into one contiguous array with
// per-row offsets (CSR layout). This is the batch-engine analogue of the
// paper's V_i D_i condition column pairs (§2.1/§2.4): instead of one
// heap-allocated Condition per row, a batch carries two flat arrays that
// scan, merge, and feed into lineage without per-row allocation.
//
// Rows with the empty (true) condition cost nothing: a column that has
// only true conditions stores no atoms and no offsets at all.
#pragma once

#include <cstdint>
#include <vector>

#include "src/prob/condition.h"

namespace maybms {

/// A view of one row's atoms: sorted by variable id, at most one atom per
/// variable (the Condition invariant).
struct AtomSpan {
  const Atom* data = nullptr;
  size_t size = 0;

  const Atom* begin() const { return data; }
  const Atom* end() const { return data + size; }
  bool empty() const { return size == 0; }
  const Atom& operator[](size_t i) const { return data[i]; }
};

class ConditionColumn {
 public:
  size_t size() const { return num_rows_; }

  /// True when every row so far is t-certain (no atoms stored).
  bool AllTrue() const { return atoms_.empty(); }

  size_t NumAtoms() const { return atoms_.size(); }
  const Atom* AtomData() const { return atoms_.data(); }

  void Clear();

  /// Appends the empty (true) condition.
  void AppendTrue();

  /// Appends a row's atoms. The span must satisfy the Condition invariant
  /// (sorted by var, unique vars); spans taken from Condition or another
  /// ConditionColumn already do.
  void AppendAtoms(AtomSpan atoms);
  void AppendCondition(const Condition& c);

  /// Appends the conjunction of two atom spans — the parsimonious join
  /// merge. Returns false (appending nothing) when the conjunction is
  /// inconsistent (same variable, different assignment): the joined row
  /// drops out.
  bool AppendMerged(AtomSpan a, AtomSpan b);

  /// Copies row `i` of `other` (gather).
  void AppendFrom(const ConditionColumn& other, size_t i) {
    AppendAtoms(other.Span(i));
  }

  AtomSpan Span(size_t i) const {
    if (atoms_.empty()) return AtomSpan{};
    uint32_t begin = offsets_[i];
    return AtomSpan{atoms_.data() + begin, offsets_[i + 1] - begin};
  }

  bool IsTrue(size_t i) const { return Span(i).empty(); }

  /// Materializes row `i` as a heap Condition (row-engine interop).
  Condition ToCondition(size_t i) const;

 private:
  void MaterializeOffsets();

  std::vector<Atom> atoms_;
  std::vector<uint32_t> offsets_;  // size num_rows_+1; empty while AllTrue
  size_t num_rows_ = 0;
};

}  // namespace maybms
