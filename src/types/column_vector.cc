#include "src/types/column_vector.h"

namespace maybms {

void ColumnVector::Reserve(size_t n) {
  if (boxed_) {
    boxed_values_.reserve(n);
    return;
  }
  switch (type_) {
    case TypeId::kInt:
      ints_.reserve(n);
      break;
    case TypeId::kDouble:
      doubles_.reserve(n);
      break;
    case TypeId::kBool:
      bools_.reserve(n);
      break;
    case TypeId::kString:
      strings_.reserve(n);
      break;
    case TypeId::kNull:
      break;
  }
}

void ColumnVector::MarkValid() {
  if (!valid_.empty()) valid_.push_back(1);
}

void ColumnVector::MarkNull() {
  if (valid_.empty()) valid_.assign(size_, 1);
  valid_.push_back(0);
  ++null_count_;
}

void ColumnVector::DemoteToBoxed() {
  boxed_values_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) boxed_values_.push_back(GetValue(i));
  boxed_ = true;
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  strings_.clear();
  valid_.clear();
}

void ColumnVector::Append(const Value& v) {
  if (boxed_) {
    if (v.is_null()) ++null_count_;
    boxed_values_.push_back(v);
    ++size_;
    return;
  }
  if (v.is_null()) {
    AppendNull();
    return;
  }
  TypeId vt = v.type();
  if (vt != type_) {
    // Ints widen losslessly into double columns; anything else boxes.
    if (type_ == TypeId::kDouble && vt == TypeId::kInt) {
      AppendDouble(static_cast<double>(v.AsInt()));
      return;
    }
    DemoteToBoxed();
    boxed_values_.push_back(v);
    ++size_;
    return;
  }
  switch (type_) {
    case TypeId::kInt:
      AppendInt(v.AsInt());
      return;
    case TypeId::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case TypeId::kBool:
      AppendBool(v.AsBool());
      return;
    case TypeId::kString:
      AppendString(v.AsString());
      return;
    case TypeId::kNull:
      AppendNull();
      return;
  }
}

void ColumnVector::AppendNull() {
  if (boxed_) {
    boxed_values_.push_back(Value::Null());
    ++null_count_;
    ++size_;
    return;
  }
  switch (type_) {
    case TypeId::kInt:
      ints_.push_back(0);
      break;
    case TypeId::kDouble:
      doubles_.push_back(0);
      break;
    case TypeId::kBool:
      bools_.push_back(0);
      break;
    case TypeId::kString:
      strings_.emplace_back();
      break;
    case TypeId::kNull:
      break;
  }
  MarkNull();
  ++size_;
}

void ColumnVector::AppendInt(int64_t v) {
  ints_.push_back(v);
  MarkValid();
  ++size_;
}

void ColumnVector::AppendDouble(double v) {
  doubles_.push_back(v);
  MarkValid();
  ++size_;
}

void ColumnVector::AppendBool(bool v) {
  bools_.push_back(v ? 1 : 0);
  MarkValid();
  ++size_;
}

void ColumnVector::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  MarkValid();
  ++size_;
}

Value ColumnVector::GetValue(size_t i) const {
  if (boxed_) return boxed_values_[i];
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case TypeId::kInt:
      return Value::Int(ints_[i]);
    case TypeId::kDouble:
      return Value::Double(doubles_[i]);
    case TypeId::kBool:
      return Value::Bool(bools_[i] != 0);
    case TypeId::kString:
      return Value::String(strings_[i]);
    case TypeId::kNull:
      return Value::Null();
  }
  return Value::Null();
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& idxs) const {
  ColumnVector out(type_);
  if (boxed_) {
    out.boxed_ = true;
    out.boxed_values_.reserve(idxs.size());
    for (uint32_t i : idxs) {
      out.boxed_values_.push_back(boxed_values_[i]);
      if (boxed_values_[i].is_null()) ++out.null_count_;
    }
    out.size_ = idxs.size();
    return out;
  }
  out.Reserve(idxs.size());
  switch (type_) {
    case TypeId::kInt:
      for (uint32_t i : idxs) out.ints_.push_back(ints_[i]);
      break;
    case TypeId::kDouble:
      for (uint32_t i : idxs) out.doubles_.push_back(doubles_[i]);
      break;
    case TypeId::kBool:
      for (uint32_t i : idxs) out.bools_.push_back(bools_[i]);
      break;
    case TypeId::kString:
      for (uint32_t i : idxs) out.strings_.push_back(strings_[i]);
      break;
    case TypeId::kNull:
      break;
  }
  out.size_ = idxs.size();
  if (null_count_ > 0 && !valid_.empty()) {
    out.valid_.reserve(idxs.size());
    for (uint32_t i : idxs) {
      out.valid_.push_back(valid_[i]);
      if (valid_[i] == 0) ++out.null_count_;
    }
    if (out.null_count_ == 0) out.valid_.clear();
  } else if (type_ == TypeId::kNull) {
    out.null_count_ = idxs.size();
    out.valid_.assign(idxs.size(), 0);
  }
  return out;
}

ColumnVector ColumnVector::Constant(const Value& v, size_t n) {
  ColumnVector out(v.type());
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.Append(v);
  return out;
}

}  // namespace maybms
