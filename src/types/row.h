// Rows of U-relations: data values plus the condition columns.
#pragma once

#include <string>
#include <vector>

#include "src/common/row_index.h"
#include "src/prob/condition.h"
#include "src/types/value.h"

namespace maybms {

/// One row: the data attribute values plus the (possibly empty) condition.
/// A t-certain row has the empty (true) condition.
struct Row {
  std::vector<Value> values;
  Condition condition;

  Row() = default;
  explicit Row(std::vector<Value> v) : values(std::move(v)) {}
  Row(std::vector<Value> v, Condition c)
      : values(std::move(v)), condition(std::move(c)) {}

  /// "(v1, v2 | {x1->0})"
  std::string ToString() const;
};

/// Equality/hash over a key prefix or projection of the data values (used
/// by group-by and hash joins).
size_t HashValues(const std::vector<Value>& values);
size_t HashValuesAt(const std::vector<Value>& values, const std::vector<size_t>& idxs);
bool ValuesEqual(const std::vector<Value>& a, const std::vector<Value>& b);

/// Finalized (fmix64) hashes over flat value spans and projections: the
/// single implementation backing every power-of-two-masked HashRowIndex
/// (src/common/row_index.h) — build and probe sides must share it. Inline
/// because they sit in join/group-by inner loops.
inline uint64_t HashValueSpan(const Value* vals, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= vals[i].Hash();
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashValueProjection(const Value* row, const uint32_t* idxs,
                                    size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= row[idxs[i]].Hash();
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace maybms
