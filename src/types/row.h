// Rows of U-relations: data values plus the condition columns.
#pragma once

#include <string>
#include <vector>

#include "src/prob/condition.h"
#include "src/types/value.h"

namespace maybms {

/// One row: the data attribute values plus the (possibly empty) condition.
/// A t-certain row has the empty (true) condition.
struct Row {
  std::vector<Value> values;
  Condition condition;

  Row() = default;
  explicit Row(std::vector<Value> v) : values(std::move(v)) {}
  Row(std::vector<Value> v, Condition c)
      : values(std::move(v)), condition(std::move(c)) {}

  /// "(v1, v2 | {x1->0})"
  std::string ToString() const;
};

/// Equality/hash over a key prefix or projection of the data values (used
/// by group-by and hash joins).
size_t HashValues(const std::vector<Value>& values);
size_t HashValuesAt(const std::vector<Value>& values, const std::vector<size_t>& idxs);
bool ValuesEqual(const std::vector<Value>& a, const std::vector<Value>& b);

}  // namespace maybms
