// The binder/analyzer: resolves names, checks types, performs the
// uncertainty typing of the MayBMS query language (uncertain vs t-certain
// relations), enforces the paper's §2.2 restrictions, and emits bound
// logical plans.
#pragma once

#include <memory>

#include "src/plan/logical_plan.h"
#include "src/sql/ast.h"
#include "src/storage/catalog.h"

namespace maybms {

class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Binds a full select (including UNION chains) to a logical plan.
  Result<PlanNodePtr> BindSelect(const SelectStmt& stmt);

  /// Binds a scalar expression against a single table's schema (used by
  /// DML: UPDATE SET / WHERE, DELETE WHERE).
  Result<BoundExprPtr> BindTableExpr(const Expr& expr, const Schema& schema,
                                     const std::string& table_name);

  /// Evaluates a constant expression (no column references) at bind time.
  static Result<Value> EvalConstExpr(const Expr& expr);

 private:
  struct Scope {
    std::string name;  ///< lower-cased alias or table name ("" if anonymous)
    size_t offset = 0;
    const Schema* schema = nullptr;
  };

  struct FromItem {
    PlanNodePtr plan;
    std::string name;
  };

  struct BindContext {
    std::vector<Scope> scopes;
    Schema combined;  ///< concatenation of scope schemas
  };

  Result<PlanNodePtr> BindSelectCore(const SelectStmt& stmt, bool skip_order_limit);

  /// Builds AggregateNode + final projection for a select list containing
  /// aggregate calls. `all_items` are the star-expanded select items.
  Result<PlanNodePtr> BindAggregateSelect(const SelectStmt& stmt,
                                          const std::vector<const SelectItem*>& all_items,
                                          PlanNodePtr input, const BindContext& ctx);

  /// Rewrites one select-item expression into an expression over the
  /// aggregate output schema [group values..., aggregate results...],
  /// appending newly-encountered aggregate calls to `aggs`.
  Result<BoundExprPtr> BindAggItem(const Expr& expr, const BindContext& input_ctx,
                                   const std::vector<std::string>& group_keys,
                                   const std::vector<BoundExprPtr>& bound_groups,
                                   std::vector<BoundAggregate>* aggs,
                                   bool input_uncertain);

  /// Builds a BoundAggregate from an aggregate function call.
  Result<BoundAggregate> MakeAggregate(const FunctionCallExpr& call,
                                       const BindContext& input_ctx,
                                       bool input_uncertain);

  Result<FromItem> BindTableRef(const TableRef& ref);
  Result<PlanNodePtr> BindRepairKey(const RepairKeyRef& ref);
  Result<PlanNodePtr> BindPickTuples(const PickTuplesRef& ref);

  Result<BoundExprPtr> BindExpr(const Expr& expr, const BindContext& ctx);
  Result<BoundExprPtr> BindColumnRef(const ColumnRefExpr& col, const BindContext& ctx);

  /// Applies ORDER BY / LIMIT of `stmt` on top of `plan`. Sort keys bind
  /// against the plan's output schema (select aliases); keys that are not
  /// projected fall back to the pre-projection input (`input_ctx`, when
  /// provided) with the sort placed below the projection.
  Result<PlanNodePtr> ApplyOrderLimit(PlanNodePtr plan, const SelectStmt& stmt,
                                      const BindContext* input_ctx = nullptr);

  /// Context of the last aggregate select bound within the current
  /// BindSelectCore call, used by ApplyOrderLimit to resolve ORDER BY keys
  /// that reference group-by expressions or aggregates (which live in the
  /// aggregate output, not the final projection's output schema).
  struct AggOrderState {
    std::vector<std::string> group_keys;  ///< normalized group-by source text
    AggregateNode* agg_node = nullptr;
    const BindContext* input_ctx = nullptr;
    bool input_uncertain = false;
  };
  std::optional<AggOrderState> agg_state_;

  const Catalog* catalog_;
  int anon_counter_ = 0;
};

}  // namespace maybms
