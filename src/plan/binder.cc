#include "src/plan/binder.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/str_util.h"

namespace maybms {

namespace {

// ---------------------------------------------------------------------------
// Aggregate-function tables
// ---------------------------------------------------------------------------

bool IsAggregateName(const std::string& lower_name) {
  static const std::unordered_set<std::string> kAggs = {
      "sum", "count", "avg", "min", "max", "conf", "aconf",
      "esum", "ecount", "argmax"};
  return kAggs.count(lower_name) > 0;
}

// " at line:col" when the parser stamped a source position on the node
// (empty otherwise) — appended to name-resolution errors so shells and
// tests can point at the offending token.
std::string AtPos(const Expr& expr) {
  if (expr.line == 0) return "";
  return StringFormat(" at %u:%u", expr.line, expr.col);
}
std::string AtPos(const TableRef& ref) {
  if (ref.line == 0) return "";
  return StringFormat(" at %u:%u", ref.line, ref.col);
}

// Recursively checks whether an AST expression contains an aggregate (or
// tconf) call.
void ScanForCalls(const Expr& expr, bool* has_agg, bool* has_tconf) {
  switch (expr.kind) {
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (call.name == "tconf") *has_tconf = true;
      if (IsAggregateName(call.name)) *has_agg = true;
      for (const ExprPtr& a : call.args) {
        if (a) ScanForCalls(*a, has_agg, has_tconf);
      }
      return;
    }
    case ExprKind::kUnary:
      ScanForCalls(*static_cast<const UnaryExpr&>(expr).operand, has_agg, has_tconf);
      return;
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      ScanForCalls(*bin.left, has_agg, has_tconf);
      ScanForCalls(*bin.right, has_agg, has_tconf);
      return;
    }
    case ExprKind::kIsNull:
      ScanForCalls(*static_cast<const IsNullExpr&>(expr).operand, has_agg, has_tconf);
      return;
    default:
      return;
  }
}

// Splits a WHERE tree into AND-conjuncts.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary) {
    const auto* bin = static_cast<const BinaryExpr*>(e);
    if (bin->op == BinaryOp::kAnd) {
      FlattenConjuncts(bin->left.get(), out);
      FlattenConjuncts(bin->right.get(), out);
      return;
    }
  }
  out->push_back(e);
}

std::string NormalizeExprKey(const Expr& e) { return ToLower(e.ToString()); }

// Default output-column name for a select item.
std::string DeriveItemName(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return static_cast<const ColumnRefExpr&>(e).column;
    case ExprKind::kFunctionCall:
      return static_cast<const FunctionCallExpr&>(e).name;
    default:
      return e.ToString();
  }
}

TypeId NumericResultType(TypeId a, TypeId b) {
  if (a == TypeId::kInt && b == TypeId::kInt) return TypeId::kInt;
  return TypeId::kDouble;
}

}  // namespace

// ---------------------------------------------------------------------------
// Expression binding
// ---------------------------------------------------------------------------

Result<BoundExprPtr> Binder::BindColumnRef(const ColumnRefExpr& col,
                                           const BindContext& ctx) {
  if (!col.table.empty()) {
    std::string want = ToLower(col.table);
    for (const Scope& scope : ctx.scopes) {
      if (scope.name == want) {
        auto idx = scope.schema->FindColumn(col.column);
        if (!idx) {
          return Status::BindError(StringFormat(
              "column '%s' does not exist in '%s'%s", col.column.c_str(),
              col.table.c_str(), AtPos(col).c_str()));
        }
        size_t abs = scope.offset + *idx;
        return BoundExprPtr(std::make_unique<BoundColumnRef>(
            abs, scope.schema->column(*idx).type, col.ToString()));
      }
    }
    return Status::BindError(StringFormat("unknown table or alias '%s'%s",
                                          col.table.c_str(), AtPos(col).c_str()));
  }
  // Unqualified: search all scopes; ambiguity is an error.
  std::optional<size_t> found;
  TypeId found_type = TypeId::kNull;
  for (const Scope& scope : ctx.scopes) {
    auto idx = scope.schema->FindColumn(col.column);
    if (idx) {
      if (found) {
        return Status::BindError(StringFormat("column reference '%s' is ambiguous%s",
                                              col.column.c_str(), AtPos(col).c_str()));
      }
      found = scope.offset + *idx;
      found_type = scope.schema->column(*idx).type;
    }
  }
  if (!found) {
    return Status::BindError(StringFormat("column '%s' does not exist%s",
                                          col.column.c_str(), AtPos(col).c_str()));
  }
  return BoundExprPtr(std::make_unique<BoundColumnRef>(*found, found_type, col.column));
}

Result<BoundExprPtr> Binder::BindExpr(const Expr& expr, const BindContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return BoundExprPtr(std::make_unique<BoundLiteral>(
          static_cast<const LiteralExpr&>(expr).value));
    case ExprKind::kColumnRef:
      return BindColumnRef(static_cast<const ColumnRefExpr&>(expr), ctx);
    case ExprKind::kStar:
      return Status::BindError("'*' is not allowed in this context");
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*un.operand, ctx));
      TypeId t = un.op == UnaryOp::kNot ? TypeId::kBool : operand->type;
      return BoundExprPtr(std::make_unique<BoundUnary>(un.op, std::move(operand), t));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr left, BindExpr(*bin.left, ctx));
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr right, BindExpr(*bin.right, ctx));
      TypeId t;
      switch (bin.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          t = TypeId::kBool;
          break;
        case BinaryOp::kDiv:
          t = TypeId::kDouble;
          break;
        case BinaryOp::kAdd:
          if (left->type == TypeId::kString && right->type == TypeId::kString) {
            t = TypeId::kString;
            break;
          }
          [[fallthrough]];
        default:
          t = NumericResultType(left->type, right->type);
          break;
      }
      return BoundExprPtr(
          std::make_unique<BoundBinary>(bin.op, std::move(left), std::move(right), t));
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (call.name == "tconf") {
        return Status::BindError(
            "tconf() may only appear in the select list of a query over an "
            "uncertain relation");
      }
      if (IsAggregateName(call.name)) {
        return Status::BindError(
            StringFormat("aggregate '%s' is not allowed in this context%s",
                         call.name.c_str(), AtPos(call).c_str()));
      }
      if (!IsScalarFunction(call.name)) {
        return Status::BindError(StringFormat("unknown function '%s'%s",
                                              call.name.c_str(),
                                              AtPos(call).c_str()));
      }
      std::vector<BoundExprPtr> args;
      std::vector<TypeId> arg_types;
      for (const ExprPtr& a : call.args) {
        MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*a, ctx));
        arg_types.push_back(bound->type);
        args.push_back(std::move(bound));
      }
      MAYBMS_ASSIGN_OR_RETURN(TypeId t, ScalarFunctionResultType(call.name, arg_types));
      return BoundExprPtr(
          std::make_unique<BoundScalarFunction>(call.name, std::move(args), t));
    }
    case ExprKind::kInSubquery:
      return Status::BindError(
          "IN (subquery) is only supported as a top-level WHERE conjunct");
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*isn.operand, ctx));
      return BoundExprPtr(std::make_unique<BoundIsNull>(std::move(operand), isn.negated));
    }
  }
  return Status::Internal("unhandled expression kind in binder");
}

Result<Value> Binder::EvalConstExpr(const Expr& expr) {
  Binder dummy(nullptr);
  BindContext empty_ctx;
  MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr bound, dummy.BindExpr(expr, empty_ctx));
  std::vector<Value> no_row;
  return bound->Eval(no_row);
}

Result<BoundExprPtr> Binder::BindTableExpr(const Expr& expr, const Schema& schema,
                                           const std::string& table_name) {
  BindContext ctx;
  Scope scope;
  scope.name = ToLower(table_name);
  scope.offset = 0;
  scope.schema = &schema;
  ctx.scopes.push_back(scope);
  ctx.combined = schema;
  return BindExpr(expr, ctx);
}

// ---------------------------------------------------------------------------
// FROM-item binding
// ---------------------------------------------------------------------------

namespace {

// Shared one-row zero-column input for FROM-less selects.
TablePtr DualTable() {
  static TablePtr dual = [] {
    auto t = std::make_shared<Table>("dual", Schema{}, false);
    t->AppendUnchecked(Row{});
    return t;
  }();
  return dual;
}

}  // namespace

Result<Binder::FromItem> Binder::BindTableRef(const TableRef& ref) {
  FromItem item;
  switch (ref.kind) {
    case TableRefKind::kBaseTable: {
      const auto& base = static_cast<const BaseTableRef&>(ref);
      if (catalog_ == nullptr) {
        return Status::BindError("no catalog available for table lookup");
      }
      Result<TablePtr> lookup = catalog_->GetTable(base.name);
      if (!lookup.ok()) {
        // Preserve the NotFound category, adding the source position.
        return Status::NotFound(StringFormat("table '%s' does not exist%s",
                                             base.name.c_str(),
                                             AtPos(ref).c_str()));
      }
      TablePtr table = std::move(*lookup);
      item.plan = std::make_unique<ScanNode>(std::move(table));
      item.name = ToLower(ref.alias.empty() ? base.name : ref.alias);
      return item;
    }
    case TableRefKind::kSubquery: {
      const auto& sub = static_cast<const SubqueryRef&>(ref);
      MAYBMS_ASSIGN_OR_RETURN(item.plan, BindSelect(*sub.select));
      item.name = ToLower(ref.alias);
      return item;
    }
    case TableRefKind::kRepairKey: {
      MAYBMS_ASSIGN_OR_RETURN(item.plan,
                              BindRepairKey(static_cast<const RepairKeyRef&>(ref)));
      item.name = ToLower(ref.alias);
      return item;
    }
    case TableRefKind::kPickTuples: {
      MAYBMS_ASSIGN_OR_RETURN(item.plan,
                              BindPickTuples(static_cast<const PickTuplesRef&>(ref)));
      item.name = ToLower(ref.alias);
      return item;
    }
  }
  return Status::Internal("unhandled table-ref kind");
}

Result<PlanNodePtr> Binder::BindRepairKey(const RepairKeyRef& ref) {
  MAYBMS_ASSIGN_OR_RETURN(FromItem input, BindTableRef(*ref.input));
  if (input.plan->uncertain) {
    return Status::BindError(
        "repair key requires a t-certain input (paper §2.2: repair-key maps "
        "t-certain tables to uncertain tables)");
  }
  const Schema& schema = input.plan->output_schema;
  BindContext ctx;
  Scope scope{input.name, 0, &schema};
  ctx.scopes.push_back(scope);
  ctx.combined = schema;

  auto node = std::make_unique<RepairKeyNode>(std::move(input.plan), schema);
  for (const ColumnRefExpr& col : ref.key_columns) {
    MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr bound, BindColumnRef(col, ctx));
    node->key_indices.push_back(static_cast<BoundColumnRef*>(bound.get())->index);
  }
  if (ref.weight) {
    MAYBMS_ASSIGN_OR_RETURN(node->weight, BindExpr(*ref.weight, ctx));
    if (node->weight->type == TypeId::kString || node->weight->type == TypeId::kBool) {
      return Status::BindError("repair-key weight expression must be numeric");
    }
  }
  node->label = StringFormat("rk%d", anon_counter_++);
  return PlanNodePtr(std::move(node));
}

Result<PlanNodePtr> Binder::BindPickTuples(const PickTuplesRef& ref) {
  MAYBMS_ASSIGN_OR_RETURN(FromItem input, BindTableRef(*ref.input));
  if (input.plan->uncertain) {
    return Status::BindError("pick tuples requires a t-certain input");
  }
  const Schema& schema = input.plan->output_schema;
  BindContext ctx;
  Scope scope{input.name, 0, &schema};
  ctx.scopes.push_back(scope);
  ctx.combined = schema;

  auto node = std::make_unique<PickTuplesNode>(std::move(input.plan), schema);
  node->independently = ref.independently;
  if (ref.probability) {
    MAYBMS_ASSIGN_OR_RETURN(node->probability, BindExpr(*ref.probability, ctx));
    if (node->probability->type == TypeId::kString ||
        node->probability->type == TypeId::kBool) {
      return Status::BindError("pick-tuples probability expression must be numeric");
    }
  }
  node->label = StringFormat("pt%d", anon_counter_++);
  return PlanNodePtr(std::move(node));
}

// ---------------------------------------------------------------------------
// Select binding
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Aggregate binding
// ---------------------------------------------------------------------------

namespace {

TypeId AggregateResultType(AggKind kind, const BoundExpr* arg) {
  switch (kind) {
    case AggKind::kSum:
      return (arg != nullptr && arg->type == TypeId::kInt) ? TypeId::kInt
                                                           : TypeId::kDouble;
    case AggKind::kCount:
    case AggKind::kCountStar:
      return TypeId::kInt;
    case AggKind::kAvg:
    case AggKind::kConf:
    case AggKind::kAconf:
    case AggKind::kEsum:
    case AggKind::kEcount:
      return TypeId::kDouble;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kArgmax:
      return arg != nullptr ? arg->type : TypeId::kNull;
  }
  return TypeId::kNull;
}

}  // namespace

Result<BoundAggregate> Binder::MakeAggregate(const FunctionCallExpr& call,
                                             const BindContext& input_ctx,
                                             bool input_uncertain) {
  BoundAggregate agg;
  agg.output_name = call.name;
  const std::string& name = call.name;
  auto require_args = [&](size_t n) -> Status {
    if (call.args.size() != n) {
      return Status::BindError(StringFormat("%s() expects %zu argument(s), got %zu",
                                            name.c_str(), n, call.args.size()));
    }
    return Status::OK();
  };
  auto forbid_on_uncertain = [&]() -> Status {
    if (input_uncertain) {
      return Status::BindError(StringFormat(
          "aggregate '%s' is not supported on uncertain relations (paper "
          "§2.2): it would produce exponentially many results across the "
          "possible worlds; use esum/ecount or conf instead",
          name.c_str()));
    }
    return Status::OK();
  };

  if (name == "count") {
    if (call.args.size() == 1 && call.args[0]->kind == ExprKind::kStar) {
      MAYBMS_RETURN_NOT_OK(forbid_on_uncertain());
      agg.kind = AggKind::kCountStar;
      return agg;
    }
    MAYBMS_RETURN_NOT_OK(require_args(1));
    MAYBMS_RETURN_NOT_OK(forbid_on_uncertain());
    agg.kind = AggKind::kCount;
    MAYBMS_ASSIGN_OR_RETURN(agg.arg, BindExpr(*call.args[0], input_ctx));
    return agg;
  }
  if (name == "sum" || name == "avg" || name == "min" || name == "max") {
    MAYBMS_RETURN_NOT_OK(require_args(1));
    MAYBMS_RETURN_NOT_OK(forbid_on_uncertain());
    agg.kind = name == "sum"   ? AggKind::kSum
               : name == "avg" ? AggKind::kAvg
               : name == "min" ? AggKind::kMin
                               : AggKind::kMax;
    MAYBMS_ASSIGN_OR_RETURN(agg.arg, BindExpr(*call.args[0], input_ctx));
    return agg;
  }
  if (name == "conf") {
    MAYBMS_RETURN_NOT_OK(require_args(0));
    agg.kind = AggKind::kConf;
    return agg;
  }
  if (name == "aconf") {
    agg.kind = AggKind::kAconf;
    if (call.args.empty()) {
      agg.epsilon = 0.05;
      agg.delta = 0.05;
      return agg;
    }
    MAYBMS_RETURN_NOT_OK(require_args(2));
    MAYBMS_ASSIGN_OR_RETURN(Value eps, EvalConstExpr(*call.args[0]));
    MAYBMS_ASSIGN_OR_RETURN(Value del, EvalConstExpr(*call.args[1]));
    MAYBMS_ASSIGN_OR_RETURN(agg.epsilon, eps.ToDouble());
    MAYBMS_ASSIGN_OR_RETURN(agg.delta, del.ToDouble());
    return agg;
  }
  if (name == "esum") {
    MAYBMS_RETURN_NOT_OK(require_args(1));
    agg.kind = AggKind::kEsum;
    MAYBMS_ASSIGN_OR_RETURN(agg.arg, BindExpr(*call.args[0], input_ctx));
    return agg;
  }
  if (name == "ecount") {
    agg.kind = AggKind::kEcount;
    if (call.args.empty()) return agg;
    MAYBMS_RETURN_NOT_OK(require_args(1));
    MAYBMS_ASSIGN_OR_RETURN(agg.arg, BindExpr(*call.args[0], input_ctx));
    return agg;
  }
  if (name == "argmax") {
    MAYBMS_RETURN_NOT_OK(require_args(2));
    MAYBMS_RETURN_NOT_OK(forbid_on_uncertain());
    agg.kind = AggKind::kArgmax;
    MAYBMS_ASSIGN_OR_RETURN(agg.arg, BindExpr(*call.args[0], input_ctx));
    MAYBMS_ASSIGN_OR_RETURN(agg.arg2, BindExpr(*call.args[1], input_ctx));
    return agg;
  }
  return Status::BindError(StringFormat("unknown aggregate '%s'", name.c_str()));
}

Result<BoundExprPtr> Binder::BindAggItem(const Expr& expr, const BindContext& input_ctx,
                                         const std::vector<std::string>& group_keys,
                                         const std::vector<BoundExprPtr>& bound_groups,
                                         std::vector<BoundAggregate>* aggs,
                                         bool input_uncertain) {
  // Group-key match by normalized source text.
  std::string normalized = NormalizeExprKey(expr);
  for (size_t i = 0; i < group_keys.size(); ++i) {
    if (group_keys[i] == normalized) {
      return BoundExprPtr(std::make_unique<BoundColumnRef>(
          i, bound_groups[i]->type, DeriveItemName(expr)));
    }
  }
  // Group-key match by bound column index (catches qualified vs
  // unqualified spellings of the same column).
  if (expr.kind == ExprKind::kColumnRef) {
    Result<BoundExprPtr> bound = BindColumnRef(
        static_cast<const ColumnRefExpr&>(expr), input_ctx);
    if (bound.ok() && (*bound)->kind == BoundExprKind::kColumnRef) {
      size_t idx = static_cast<BoundColumnRef*>(bound->get())->index;
      for (size_t i = 0; i < bound_groups.size(); ++i) {
        if (bound_groups[i]->kind == BoundExprKind::kColumnRef &&
            static_cast<BoundColumnRef*>(bound_groups[i].get())->index == idx) {
          return BoundExprPtr(std::make_unique<BoundColumnRef>(
              i, bound_groups[i]->type, DeriveItemName(expr)));
        }
      }
    }
    return Status::BindError(StringFormat(
        "column '%s' must appear in the GROUP BY clause or be used in an "
        "aggregate function",
        expr.ToString().c_str()));
  }

  switch (expr.kind) {
    case ExprKind::kLiteral:
      return BoundExprPtr(std::make_unique<BoundLiteral>(
          static_cast<const LiteralExpr&>(expr).value));
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (IsAggregateName(call.name)) {
        MAYBMS_ASSIGN_OR_RETURN(BoundAggregate agg,
                                MakeAggregate(call, input_ctx, input_uncertain));
        TypeId type = AggregateResultType(agg.kind, agg.arg.get());
        size_t index = group_keys.size() + aggs->size();
        std::string name = agg.output_name;
        aggs->push_back(std::move(agg));
        return BoundExprPtr(std::make_unique<BoundColumnRef>(index, type, name));
      }
      // Scalar function over aggregate-mode subexpressions.
      std::vector<BoundExprPtr> args;
      std::vector<TypeId> arg_types;
      for (const ExprPtr& a : call.args) {
        MAYBMS_ASSIGN_OR_RETURN(
            BoundExprPtr bound,
            BindAggItem(*a, input_ctx, group_keys, bound_groups, aggs, input_uncertain));
        arg_types.push_back(bound->type);
        args.push_back(std::move(bound));
      }
      MAYBMS_ASSIGN_OR_RETURN(TypeId t, ScalarFunctionResultType(call.name, arg_types));
      return BoundExprPtr(
          std::make_unique<BoundScalarFunction>(call.name, std::move(args), t));
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr operand,
                              BindAggItem(*un.operand, input_ctx, group_keys,
                                          bound_groups, aggs, input_uncertain));
      TypeId t = un.op == UnaryOp::kNot ? TypeId::kBool : operand->type;
      return BoundExprPtr(std::make_unique<BoundUnary>(un.op, std::move(operand), t));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr left,
                              BindAggItem(*bin.left, input_ctx, group_keys, bound_groups,
                                          aggs, input_uncertain));
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr right,
                              BindAggItem(*bin.right, input_ctx, group_keys,
                                          bound_groups, aggs, input_uncertain));
      TypeId t;
      switch (bin.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          t = TypeId::kBool;
          break;
        case BinaryOp::kDiv:
          t = TypeId::kDouble;
          break;
        default:
          t = NumericResultType(left->type, right->type);
          break;
      }
      return BoundExprPtr(
          std::make_unique<BoundBinary>(bin.op, std::move(left), std::move(right), t));
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr operand,
                              BindAggItem(*isn.operand, input_ctx, group_keys,
                                          bound_groups, aggs, input_uncertain));
      return BoundExprPtr(
          std::make_unique<BoundIsNull>(std::move(operand), isn.negated));
    }
    default:
      return Status::BindError(StringFormat(
          "expression '%s' is not allowed in an aggregate select list",
          expr.ToString().c_str()));
  }
}

Result<PlanNodePtr> Binder::BindAggregateSelect(
    const SelectStmt& stmt, const std::vector<const SelectItem*>& all_items,
    PlanNodePtr input, const BindContext& ctx) {
  const bool input_uncertain = input->uncertain;

  // Bind the group-by expressions against the join input.
  std::vector<BoundExprPtr> bound_groups;
  std::vector<std::string> group_keys;
  for (const ExprPtr& g : stmt.group_by) {
    MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*g, ctx));
    group_keys.push_back(NormalizeExprKey(*g));
    bound_groups.push_back(std::move(bound));
  }

  // Rewrite select items over the aggregate output.
  std::vector<BoundAggregate> aggs;
  std::vector<BoundExprPtr> final_exprs;
  Schema final_schema;
  for (const SelectItem* item : all_items) {
    MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr rewritten,
                            BindAggItem(*item->expr, ctx, group_keys, bound_groups,
                                        &aggs, input_uncertain));
    std::string name = item->alias.empty() ? DeriveItemName(*item->expr) : item->alias;
    final_schema.AddColumn(Column{std::move(name), rewritten->type});
    final_exprs.push_back(std::move(rewritten));
  }

  // Aggregate node schema: [group columns..., aggregate columns...].
  Schema agg_schema;
  for (size_t i = 0; i < bound_groups.size(); ++i) {
    std::string name = stmt.group_by[i]->kind == ExprKind::kColumnRef
                           ? static_cast<const ColumnRefExpr&>(*stmt.group_by[i]).column
                           : stmt.group_by[i]->ToString();
    agg_schema.AddColumn(Column{std::move(name), bound_groups[i]->type});
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    TypeId t = AggregateResultType(aggs[i].kind, aggs[i].arg.get());
    agg_schema.AddColumn(Column{aggs[i].output_name + std::to_string(i), t});
  }

  // Aggregation always produces a t-certain table: standard aggregates
  // require certain input, and conf/aconf/esum/ecount map uncertain input
  // to t-certain output (paper §2.2 item (i)).
  auto agg_node = std::make_unique<AggregateNode>(std::move(input),
                                                  std::move(agg_schema),
                                                  /*out_uncertain=*/false);
  agg_node->group_exprs = std::move(bound_groups);
  agg_node->aggregates = std::move(aggs);

  // Remember the aggregate context so ORDER BY can resolve group-by
  // expressions and aggregate calls (see ApplyOrderLimit).
  agg_state_ = AggOrderState{std::move(group_keys), agg_node.get(), &ctx,
                             input_uncertain};

  return PlanNodePtr(std::make_unique<ProjectNode>(
      std::move(agg_node), std::move(final_exprs), std::move(final_schema),
      /*out_uncertain=*/false));
}

Result<PlanNodePtr> Binder::ApplyOrderLimit(PlanNodePtr plan, const SelectStmt& stmt,
                                            const BindContext* input_ctx) {
  if (!stmt.order_by.empty()) {
    // Each ORDER BY key resolves against the select-list output first
    // (aliases, computed columns); keys that are not projected fall back
    // to the pre-projection input and are carried as hidden sort columns
    // on an extended projection, stripped again after the sort. This is
    // the standard SQL resolution order and supports mixing both kinds in
    // one ORDER BY ("order by R1.Player, p desc").
    BindContext out_ctx;
    out_ctx.scopes.push_back(Scope{"", 0, &plan->output_schema});
    out_ctx.combined = plan->output_schema;

    ProjectNode* project =
        plan->kind == PlanKind::kProject ? static_cast<ProjectNode*>(plan.get())
                                         : nullptr;
    bool can_extend = project != nullptr && !project->has_tconf;
    AggregateNode* agg =
        (can_extend && project->children[0]->kind == PlanKind::kAggregate &&
         agg_state_ && agg_state_->agg_node == project->children[0].get())
            ? agg_state_->agg_node
            : nullptr;

    const size_t original_columns = plan->output_schema.NumColumns();
    std::vector<SortNode::Key> keys;
    for (const OrderItem& item : stmt.order_by) {
      SortNode::Key key;
      key.descending = item.descending;
      Result<BoundExprPtr> bound = BindExpr(*item.expr, out_ctx);
      if (bound.ok()) {
        key.expr = std::move(*bound);
        keys.push_back(std::move(key));
        continue;
      }
      if (!can_extend) return bound.status();
      // Hidden column: bind against the projection's input.
      Result<BoundExprPtr> hidden = Status::BindError("");
      if (agg != nullptr) {
        // Aggregate select: group-by expressions and aggregate calls are
        // both legal ORDER BY keys; new aggregates extend the node.
        hidden = BindAggItem(*item.expr, *agg_state_->input_ctx,
                             agg_state_->group_keys, agg->group_exprs,
                             &agg->aggregates, agg_state_->input_uncertain);
        while (agg->output_schema.NumColumns() <
               agg->group_exprs.size() + agg->aggregates.size()) {
          size_t i = agg->output_schema.NumColumns() - agg->group_exprs.size();
          agg->output_schema.AddColumn(
              Column{agg->aggregates[i].output_name + std::to_string(i),
                     TypeId::kDouble});
        }
      } else if (input_ctx != nullptr) {
        hidden = BindExpr(*item.expr, *input_ctx);
      }
      if (!hidden.ok()) return bound.status();  // report the original error
      size_t hidden_index = project->output_schema.NumColumns();
      project->output_schema.AddColumn(Column{
          StringFormat("__sort%zu", hidden_index), (*hidden)->type});
      TypeId hidden_type = (*hidden)->type;
      project->exprs.push_back(std::move(*hidden));
      key.expr = std::make_unique<BoundColumnRef>(hidden_index, hidden_type,
                                                  "__sort");
      keys.push_back(std::move(key));
    }

    plan = std::make_unique<SortNode>(std::move(plan), std::move(keys));
    if (plan->output_schema.NumColumns() != original_columns) {
      // Strip the hidden sort columns.
      std::vector<BoundExprPtr> strip;
      Schema stripped;
      for (size_t i = 0; i < original_columns; ++i) {
        const Column& col = plan->output_schema.column(i);
        strip.push_back(std::make_unique<BoundColumnRef>(i, col.type, col.name));
        stripped.AddColumn(col);
      }
      bool out_uncertain = plan->uncertain;
      plan = std::make_unique<ProjectNode>(std::move(plan), std::move(strip),
                                           std::move(stripped), out_uncertain);
    }
  }
  if (stmt.limit) {
    plan = std::make_unique<LimitNode>(std::move(plan), *stmt.limit);
  }
  return plan;
}

Result<PlanNodePtr> Binder::BindSelect(const SelectStmt& stmt) {
  if (!stmt.union_next) return BindSelectCore(stmt, /*skip_order_limit=*/false);

  // UNION chain: bind every core without its ORDER BY/LIMIT, then apply the
  // final core's ORDER BY/LIMIT to the union result (SQL semantics where a
  // trailing ORDER BY orders the whole union).
  std::vector<const SelectStmt*> cores;
  for (const SelectStmt* s = &stmt; s != nullptr; s = s->union_next.get()) {
    cores.push_back(s);
  }
  MAYBMS_ASSIGN_OR_RETURN(PlanNodePtr plan, BindSelectCore(*cores[0], true));
  for (size_t i = 1; i < cores.size(); ++i) {
    MAYBMS_ASSIGN_OR_RETURN(PlanNodePtr right, BindSelectCore(*cores[i], true));
    if (!plan->output_schema.UnionCompatible(right->output_schema)) {
      return Status::BindError(StringFormat(
          "UNION inputs are not union-compatible: %s vs %s",
          plan->output_schema.ToString().c_str(),
          right->output_schema.ToString().c_str()));
    }
    bool dedup =
        !cores[i]->union_all && !plan->uncertain && !right->uncertain;
    plan = std::make_unique<UnionNode>(std::move(plan), std::move(right), dedup);
  }
  return ApplyOrderLimit(std::move(plan), *cores.back());
}

Result<PlanNodePtr> Binder::BindSelectCore(const SelectStmt& stmt,
                                           bool skip_order_limit) {
  // ---- FROM ----------------------------------------------------------------
  std::vector<FromItem> items;
  if (stmt.from.empty()) {
    FromItem dual;
    dual.plan = std::make_unique<ScanNode>(DualTable());
    dual.name = "";
    items.push_back(std::move(dual));
  } else {
    for (const TableRefPtr& ref : stmt.from) {
      MAYBMS_ASSIGN_OR_RETURN(FromItem item, BindTableRef(*ref));
      items.push_back(std::move(item));
    }
  }

  // ---- WHERE decomposition ---------------------------------------------------
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt.where.get(), &conjuncts);
  std::vector<bool> used(conjuncts.size(), false);

  // Soft bind: BindErrors mean "not bindable at this level".
  auto try_bind = [&](const Expr& e, const BindContext& ctx) -> std::optional<BoundExprPtr> {
    Result<BoundExprPtr> r = BindExpr(e, ctx);
    if (r.ok()) return std::move(r).value();
    return std::nullopt;
  };

  // Stage 1: push single-table conjuncts below the joins.
  for (size_t t = 0; t < items.size(); ++t) {
    BindContext single;
    Scope scope{items[t].name, 0, &items[t].plan->output_schema};
    single.scopes.push_back(scope);
    single.combined = items[t].plan->output_schema;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c] || conjuncts[c]->kind == ExprKind::kInSubquery) continue;
      if (auto bound = try_bind(*conjuncts[c], single)) {
        items[t].plan =
            std::make_unique<FilterNode>(std::move(items[t].plan), std::move(*bound));
        used[c] = true;
      }
    }
  }

  // Stage 2: left-deep join tree with equi-key extraction.
  BindContext ctx;  // grows as joins are added
  PlanNodePtr plan = std::move(items[0].plan);
  {
    Scope scope{items[0].name, 0, &plan->output_schema};
    ctx.scopes.push_back(scope);
    ctx.combined = plan->output_schema;
  }
  for (size_t t = 1; t < items.size(); ++t) {
    PlanNodePtr right = std::move(items[t].plan);
    BindContext right_ctx;
    Scope right_scope{items[t].name, 0, &right->output_schema};
    right_ctx.scopes.push_back(right_scope);
    right_ctx.combined = right->output_schema;

    std::vector<BoundExprPtr> left_keys, right_keys;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c] || conjuncts[c]->kind != ExprKind::kBinary) continue;
      const auto* bin = static_cast<const BinaryExpr*>(conjuncts[c]);
      if (bin->op != BinaryOp::kEq) continue;
      // lhs from the accumulated left side, rhs from the new right side?
      auto l = try_bind(*bin->left, ctx);
      auto r = try_bind(*bin->right, right_ctx);
      if (l && r) {
        left_keys.push_back(std::move(*l));
        right_keys.push_back(std::move(*r));
        used[c] = true;
        continue;
      }
      // Swapped orientation.
      auto l2 = try_bind(*bin->right, ctx);
      auto r2 = try_bind(*bin->left, right_ctx);
      if (l2 && r2) {
        left_keys.push_back(std::move(*l2));
        right_keys.push_back(std::move(*r2));
        used[c] = true;
      }
    }

    Schema combined = Schema::Concat(ctx.combined, right->output_schema);
    bool out_uncertain = plan->uncertain || right->uncertain;
    auto join = std::make_unique<JoinNode>(std::move(plan), std::move(right), combined,
                                           out_uncertain);
    join->left_keys = std::move(left_keys);
    join->right_keys = std::move(right_keys);

    // Scopes/ctx now include the right side.
    Scope appended{items[t].name, ctx.combined.NumColumns(), nullptr};
    ctx.combined = std::move(combined);
    ctx.scopes.push_back(appended);
    // Re-point scope schemas: store schema pointers into stable child plans.
    // (The right child schema lives in the join's child node.)
    ctx.scopes.back().schema = &join->children[1]->output_schema;

    // Residual conjuncts that became bindable at this level.
    BoundExprPtr residual;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c] || conjuncts[c]->kind == ExprKind::kInSubquery) continue;
      if (auto bound = try_bind(*conjuncts[c], ctx)) {
        if (residual) {
          residual = std::make_unique<BoundBinary>(
              BinaryOp::kAnd, std::move(residual), std::move(*bound), TypeId::kBool);
        } else {
          residual = std::move(*bound);
        }
        used[c] = true;
      }
    }
    join->residual = std::move(residual);
    plan = std::move(join);
  }

  // Stage 3: IN-subquery conjuncts become (anti-)semijoins.
  for (size_t c = 0; c < conjuncts.size(); ++c) {
    if (used[c] || conjuncts[c]->kind != ExprKind::kInSubquery) continue;
    const auto* in = static_cast<const InSubqueryExpr*>(conjuncts[c]);
    MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr key, BindExpr(*in->operand, ctx));
    Binder sub_binder(catalog_);
    MAYBMS_ASSIGN_OR_RETURN(PlanNodePtr sub_plan, sub_binder.BindSelect(*in->subquery));
    if (sub_plan->output_schema.NumColumns() != 1) {
      return Status::BindError("IN subquery must return exactly one column");
    }
    if (in->negated && sub_plan->uncertain) {
      return Status::BindError(
          "NOT IN with an uncertain subquery is not supported: uncertain "
          "subqueries may only occur positively (paper §2.2)");
    }
    plan = std::make_unique<SemiJoinInNode>(std::move(plan), std::move(sub_plan),
                                            std::move(key), in->negated);
    // Schema unchanged; scopes remain valid.
    used[c] = true;
  }

  // Stage 4: anything left must bind now — this surfaces real bind errors.
  for (size_t c = 0; c < conjuncts.size(); ++c) {
    if (used[c]) continue;
    MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*conjuncts[c], ctx));
    plan = std::make_unique<FilterNode>(std::move(plan), std::move(bound));
    used[c] = true;
  }

  const bool input_uncertain = plan->uncertain;

  // ---- Select list -----------------------------------------------------------
  // Expand stars.
  std::vector<const SelectItem*> raw_items;
  std::vector<SelectItem> expanded_storage;  // own expanded star items
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      const auto& star = static_cast<const StarExpr&>(*item.expr);
      bool matched = false;
      for (const Scope& scope : ctx.scopes) {
        if (!star.table.empty() && scope.name != ToLower(star.table)) continue;
        matched = true;
        for (size_t i = 0; i < scope.schema->NumColumns(); ++i) {
          SelectItem gen;
          std::string qualifier = scope.name;
          gen.expr = std::make_unique<ColumnRefExpr>(
              qualifier, scope.schema->column(i).name);
          expanded_storage.push_back(std::move(gen));
        }
      }
      if (!matched) {
        return Status::BindError(
            StringFormat("unknown table or alias '%s' in '%s.*'", star.table.c_str(),
                         star.table.c_str()));
      }
      continue;
    }
    raw_items.push_back(&item);
  }
  // Rebuild the ordered item list (stars expanded in place).
  std::vector<const SelectItem*> all_items;
  {
    size_t star_pos = 0;
    for (const SelectItem& item : stmt.items) {
      if (item.expr->kind == ExprKind::kStar) {
        const auto& star = static_cast<const StarExpr&>(*item.expr);
        for (const Scope& scope : ctx.scopes) {
          if (!star.table.empty() && scope.name != ToLower(star.table)) continue;
          for (size_t i = 0; i < scope.schema->NumColumns(); ++i) {
            all_items.push_back(&expanded_storage[star_pos++]);
          }
        }
      } else {
        all_items.push_back(&item);
      }
    }
  }
  if (all_items.empty()) {
    return Status::BindError("select list is empty");
  }

  bool has_agg = false, has_tconf = false;
  for (const SelectItem* item : all_items) {
    ScanForCalls(*item->expr, &has_agg, &has_tconf);
  }
  if (has_tconf && (has_agg || !stmt.group_by.empty())) {
    return Status::BindError(
        "tconf() cannot be combined with aggregates or GROUP BY (it is "
        "computed per tuple in isolation)");
  }
  if (!stmt.group_by.empty() && !has_agg) {
    return Status::BindError(
        input_uncertain
            ? "GROUP BY without aggregates on an uncertain relation amounts to "
              "select distinct, which is not supported; use 'select possible' "
              "or conf()"
            : "GROUP BY requires at least one aggregate in the select list");
  }

  if (has_agg) {
    MAYBMS_ASSIGN_OR_RETURN(
        plan, BindAggregateSelect(stmt, all_items, std::move(plan), ctx));
  } else {
    // Plain projection (with optional tconf()).
    std::vector<BoundExprPtr> exprs;
    Schema out_schema;
    bool tconf_present = false;
    for (const SelectItem* item : all_items) {
      BoundExprPtr bound;
      if (item->expr->kind == ExprKind::kFunctionCall &&
          static_cast<const FunctionCallExpr&>(*item->expr).name == "tconf") {
        const auto& call = static_cast<const FunctionCallExpr&>(*item->expr);
        if (!call.args.empty()) {
          return Status::BindError("tconf() takes no arguments");
        }
        bound = std::make_unique<BoundTconf>();
        tconf_present = true;
      } else {
        MAYBMS_ASSIGN_OR_RETURN(bound, BindExpr(*item->expr, ctx));
      }
      std::string name =
          item->alias.empty() ? DeriveItemName(*item->expr) : item->alias;
      out_schema.AddColumn(Column{std::move(name), bound->type});
      exprs.push_back(std::move(bound));
    }
    bool out_uncertain = input_uncertain && !tconf_present;
    auto project = std::make_unique<ProjectNode>(std::move(plan), std::move(exprs),
                                                 std::move(out_schema), out_uncertain);
    project->has_tconf = tconf_present;
    plan = std::move(project);
  }

  // ---- DISTINCT / POSSIBLE ---------------------------------------------------
  if (stmt.distinct) {
    if (plan->uncertain) {
      return Status::BindError(
          "select distinct is not supported on uncertain relations (paper "
          "§2.2); use 'select possible'");
    }
    plan = std::make_unique<DistinctNode>(std::move(plan));
  }
  if (stmt.possible) {
    plan = std::make_unique<PossibleNode>(std::move(plan));
  }

  if (skip_order_limit) return plan;
  return ApplyOrderLimit(std::move(plan), stmt, &ctx);
}

}  // namespace maybms
