#include "src/plan/planner.h"

#include "src/common/str_util.h"

namespace maybms {

namespace {

Result<BoundStatement> BindSelectStatement(const Catalog& catalog,
                                           const SelectStmt& stmt) {
  Binder binder(&catalog);
  BoundStatement out;
  out.kind = StatementKind::kSelect;
  MAYBMS_ASSIGN_OR_RETURN(out.plan, binder.BindSelect(stmt));
  return out;
}

Result<BoundStatement> BindCreateTable(const CreateTableStmt& stmt) {
  BoundStatement out;
  out.kind = StatementKind::kCreateTable;
  out.table_name = stmt.name;
  for (const ColumnDef& col : stmt.columns) {
    if (out.create_schema.FindColumn(col.name)) {
      return Status::BindError(
          StringFormat("duplicate column name '%s'", col.name.c_str()));
    }
    out.create_schema.AddColumn(Column{col.name, col.type});
  }
  if (out.create_schema.NumColumns() == 0) {
    return Status::BindError("CREATE TABLE requires at least one column");
  }
  return out;
}

Result<BoundStatement> BindCreateTableAs(const Catalog& catalog,
                                         const CreateTableAsStmt& stmt) {
  Binder binder(&catalog);
  BoundStatement out;
  out.kind = StatementKind::kCreateTableAs;
  out.table_name = stmt.name;
  MAYBMS_ASSIGN_OR_RETURN(out.plan, binder.BindSelect(*stmt.select));
  return out;
}

Result<BoundStatement> BindInsert(const Catalog& catalog, const InsertStmt& stmt) {
  MAYBMS_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(stmt.table));
  const Schema& schema = table->schema();

  // Resolve the column list to schema positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.NumColumns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      MAYBMS_ASSIGN_OR_RETURN(size_t idx, schema.GetColumnIndex(name));
      positions.push_back(idx);
    }
  }

  BoundStatement out;
  out.kind = StatementKind::kInsert;
  out.table_name = stmt.table;

  if (stmt.select) {
    Binder binder(&catalog);
    MAYBMS_ASSIGN_OR_RETURN(out.plan, binder.BindSelect(*stmt.select));
    if (out.plan->output_schema.NumColumns() != positions.size()) {
      return Status::BindError(StringFormat(
          "INSERT SELECT provides %zu columns, target expects %zu",
          out.plan->output_schema.NumColumns(), positions.size()));
    }
    if (!stmt.columns.empty()) {
      return Status::NotImplemented(
          "INSERT ... SELECT with an explicit column list is not supported");
    }
    return out;
  }

  for (const std::vector<ExprPtr>& row : stmt.rows) {
    if (row.size() != positions.size()) {
      return Status::BindError(StringFormat(
          "INSERT row has %zu values, expected %zu", row.size(), positions.size()));
    }
    std::vector<Value> values(schema.NumColumns(), Value::Null());
    for (size_t i = 0; i < row.size(); ++i) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, Binder::EvalConstExpr(*row[i]));
      values[positions[i]] = std::move(v);
    }
    out.insert_rows.push_back(std::move(values));
  }
  return out;
}

Result<BoundStatement> BindUpdate(const Catalog& catalog, const UpdateStmt& stmt) {
  MAYBMS_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(stmt.table));
  const Schema& schema = table->schema();
  Binder binder(&catalog);

  BoundStatement out;
  out.kind = StatementKind::kUpdate;
  out.table_name = stmt.table;
  for (const auto& [col, expr] : stmt.assignments) {
    MAYBMS_ASSIGN_OR_RETURN(size_t idx, schema.GetColumnIndex(col));
    MAYBMS_ASSIGN_OR_RETURN(BoundExprPtr bound,
                            binder.BindTableExpr(*expr, schema, stmt.table));
    out.update_sets.emplace_back(idx, std::move(bound));
  }
  if (stmt.where) {
    MAYBMS_ASSIGN_OR_RETURN(out.dml_where,
                            binder.BindTableExpr(*stmt.where, schema, stmt.table));
  }
  return out;
}

Result<BoundStatement> BindDelete(const Catalog& catalog, const DeleteStmt& stmt) {
  MAYBMS_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(stmt.table));
  Binder binder(&catalog);

  BoundStatement out;
  out.kind = StatementKind::kDelete;
  out.table_name = stmt.table;
  if (stmt.where) {
    MAYBMS_ASSIGN_OR_RETURN(
        out.dml_where, binder.BindTableExpr(*stmt.where, table->schema(), stmt.table));
  }
  return out;
}

}  // namespace

Result<BoundStatement> BindStatement(const Catalog& catalog, const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return BindSelectStatement(catalog, static_cast<const SelectStmt&>(stmt));
    case StatementKind::kCreateTable:
      return BindCreateTable(static_cast<const CreateTableStmt&>(stmt));
    case StatementKind::kCreateTableAs:
      return BindCreateTableAs(catalog, static_cast<const CreateTableAsStmt&>(stmt));
    case StatementKind::kInsert:
      return BindInsert(catalog, static_cast<const InsertStmt&>(stmt));
    case StatementKind::kUpdate:
      return BindUpdate(catalog, static_cast<const UpdateStmt&>(stmt));
    case StatementKind::kDelete:
      return BindDelete(catalog, static_cast<const DeleteStmt&>(stmt));
    case StatementKind::kDropTable: {
      const auto& drop = static_cast<const DropTableStmt&>(stmt);
      BoundStatement out;
      out.kind = StatementKind::kDropTable;
      out.table_name = drop.name;
      out.drop_if_exists = drop.if_exists;
      return out;
    }
    case StatementKind::kAssert: {
      const auto& assert_stmt = static_cast<const AssertStmt&>(stmt);
      Binder binder(&catalog);
      BoundStatement out;
      out.kind = StatementKind::kAssert;
      out.assert_min_confidence = assert_stmt.min_confidence;
      MAYBMS_ASSIGN_OR_RETURN(out.plan, binder.BindSelect(*assert_stmt.select));
      return out;
    }
    case StatementKind::kShowEvidence:
    case StatementKind::kClearEvidence: {
      BoundStatement out;
      out.kind = stmt.kind;
      return out;
    }
    case StatementKind::kCreateIndex: {
      const auto& create = static_cast<const CreateIndexStmt&>(stmt);
      MAYBMS_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(create.table));
      // Validate the column now so the session can classify/lock on a
      // well-formed statement; the executor resolves it again at run time.
      MAYBMS_RETURN_NOT_OK(table->schema().GetColumnIndex(create.column).status());
      BoundStatement out;
      out.kind = StatementKind::kCreateIndex;
      out.table_name = create.table;
      out.index_name = create.name;
      out.index_column = create.column;
      return out;
    }
    case StatementKind::kDropIndex: {
      const auto& drop = static_cast<const DropIndexStmt&>(stmt);
      BoundStatement out;
      out.kind = StatementKind::kDropIndex;
      out.index_name = drop.name;
      out.drop_if_exists = drop.if_exists;
      return out;
    }
    case StatementKind::kShowIndexes: {
      BoundStatement out;
      out.kind = StatementKind::kShowIndexes;
      return out;
    }
    case StatementKind::kSet:
      // Session settings are applied by the Database facade before binding.
      return Status::Internal("SET statements are handled by the engine facade");
    case StatementKind::kExplain:
    case StatementKind::kShowStats:
      // Introspection statements never reach the binder: the Session
      // unwraps EXPLAIN and answers SHOW STATS from the metrics registry.
      return Status::Internal(
          "EXPLAIN/SHOW STATS statements are handled by the session");
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace maybms
