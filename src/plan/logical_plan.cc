#include "src/plan/logical_plan.h"

#include "src/common/str_util.h"

namespace maybms {

std::string_view AggKindToString(AggKind k) {
  switch (k) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kConf:
      return "conf";
    case AggKind::kAconf:
      return "aconf";
    case AggKind::kEsum:
      return "esum";
    case AggKind::kEcount:
      return "ecount";
    case AggKind::kArgmax:
      return "argmax";
  }
  return "?";
}

namespace {

void ExplainInto(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.Describe());
  if (node.est_rows >= 0) {
    out->append(StringFormat("  [est=%.6g rows]", node.est_rows));
  }
  if (node.uncertain) out->append("  [uncertain]");
  out->push_back('\n');
  for (const PlanNodePtr& child : node.children) {
    ExplainInto(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const PlanNode& root) {
  std::string out;
  ExplainInto(root, 0, &out);
  return out;
}

std::string ScanNode::Describe() const {
  return StringFormat("Scan %s (%zu rows)", table->name().c_str(), table->NumRows());
}

std::string IndexScanNode::Describe() const {
  std::string out = StringFormat("IndexScan %s using %s on %s",
                                 table->name().c_str(), index_name.c_str(),
                                 output_schema.column(column_idx).name.c_str());
  if (lo.has_value() && hi.has_value() && lo->Compare(*hi) == 0) {
    out += " = " + lo->ToString();
  } else {
    if (lo.has_value()) out += " >= " + lo->ToString();
    if (hi.has_value()) out += " <= " + hi->ToString();
  }
  return out;
}

std::string FilterNode::Describe() const {
  return "Filter " + predicate->ToString();
}

std::string ProjectNode::Describe() const {
  std::string out = "Project ";
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs[i]->ToString();
  }
  return out;
}

std::string JoinNode::Describe() const {
  std::string out = left_keys.empty() ? "CrossJoin" : "HashJoin";
  for (size_t i = 0; i < left_keys.size(); ++i) {
    out += i == 0 ? " on " : " and ";
    out += left_keys[i]->ToString() + " = " + right_keys[i]->ToString();
  }
  if (residual) out += " where " + residual->ToString();
  return out;
}

std::string AggregateNode::Describe() const {
  std::string out = "Aggregate";
  if (!group_exprs.empty()) {
    out += " group by ";
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_exprs[i]->ToString();
    }
  }
  out += " compute ";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindToString(aggregates[i].kind);
  }
  return out;
}

std::string RepairKeyNode::Describe() const {
  std::string out = "RepairKey on ";
  for (size_t i = 0; i < key_indices.size(); ++i) {
    if (i > 0) out += ", ";
    out += output_schema.column(key_indices[i]).name;
  }
  if (weight) out += " weight by " + weight->ToString();
  return out;
}

std::string PickTuplesNode::Describe() const {
  std::string out = "PickTuples";
  if (independently) out += " independently";
  if (probability) out += " with probability " + probability->ToString();
  return out;
}

std::string PossibleNode::Describe() const { return "Possible"; }

std::string SemiJoinInNode::Describe() const {
  return std::string(anti ? "AntiSemiJoin " : "SemiJoin ") + left_key->ToString() +
         " in (subquery)";
}

std::string UnionNode::Describe() const {
  return deduplicate ? "Union (distinct)" : "Union (all)";
}

std::string DistinctNode::Describe() const { return "Distinct"; }

std::string SortNode::Describe() const {
  std::string out = "Sort by ";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].expr->ToString();
    if (keys[i].descending) out += " desc";
  }
  return out;
}

std::string LimitNode::Describe() const {
  return StringFormat("Limit %lld", static_cast<long long>(limit));
}

std::string SemiJoinReduceNode::Describe() const {
  std::string out = "SemiJoinReduce on ";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i]->ToString();
  }
  return out;
}

}  // namespace maybms
