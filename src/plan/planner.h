// Statement-level planning: dispatches parsed statements to the binder and
// produces executable bound statements (queries, DDL, DML).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/plan/binder.h"
#include "src/plan/logical_plan.h"
#include "src/sql/ast.h"
#include "src/storage/catalog.h"

namespace maybms {

/// A fully bound, executable statement.
struct BoundStatement {
  StatementKind kind = StatementKind::kSelect;

  /// Query plan (kSelect, kCreateTableAs, and INSERT ... SELECT sources).
  PlanNodePtr plan;

  /// Target table (create / insert / update / delete / drop).
  std::string table_name;

  /// CREATE TABLE schema.
  Schema create_schema;

  /// INSERT ... VALUES rows (constant-folded) in *schema column order*.
  std::vector<std::vector<Value>> insert_rows;

  /// UPDATE assignments: (column index, bound value expression).
  std::vector<std::pair<size_t, BoundExprPtr>> update_sets;

  /// UPDATE / DELETE predicate over the target table schema (nullable).
  BoundExprPtr dml_where;

  bool drop_if_exists = false;

  /// ASSERT CONFIDENCE >= p threshold: set = check-only assertion (no
  /// conditioning); unset on a plain ASSERT / CONDITION ON.
  std::optional<double> assert_min_confidence;

  /// CREATE INDEX / DROP INDEX: index name; for CREATE the indexed column
  /// lives in index_column and the base table in table_name.
  std::string index_name;
  std::string index_column;
};

/// Binds any parsed statement against the catalog.
Result<BoundStatement> BindStatement(const Catalog& catalog, const Statement& stmt);

}  // namespace maybms
