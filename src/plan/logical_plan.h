// Bound logical query plans. The binder produces these from the AST; the
// executor interprets them. The plan language is the U-relational algebra
// of [Antova et al., ICDE'08]: positive relational algebra evaluated
// parsimoniously over U-relations, extended with the probabilistic
// operators of the MayBMS query language (paper §2.2-2.3).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/expression.h"
#include "src/storage/table.h"

namespace maybms {

enum class PlanKind : uint8_t {
  kScan,
  /// B+ tree access path (optimizer-inserted, src/opt/): emits the rows
  /// whose indexed column falls in [lo, hi] — a SUPERSET of the rows its
  /// parent Filter keeps — in table order, so Filter(IndexScan) is
  /// bit-identical to the Filter(Scan) it replaced.
  kIndexScan,
  kFilter,
  kProject,
  kJoin,        ///< inner join: hash on equi-keys plus residual predicate
  kAggregate,   ///< group-by with standard and/or probabilistic aggregates
  kRepairKey,
  kPickTuples,
  kPossible,    ///< filter prob-0 rows + duplicate elimination → t-certain
  kSemiJoinIn,  ///< IN (subquery), condition-merging for uncertain inputs
  kUnion,       ///< multiset union (paper §2.2)
  kDistinct,
  kSort,
  kLimit,
  /// Annotated semijoin reducer (optimizer-inserted, src/opt/): keeps the
  /// source rows whose join key matches child 1 under a CONSISTENT
  /// condition merge, carrying their original conditions through — the
  /// exact row set that survives the later full join.
  kSemiJoinReduce,
};

/// Aggregate functions (paper §2.2): the uncertainty-aware constructs plus
/// the standard SQL aggregates allowed on t-certain input.
enum class AggKind : uint8_t {
  kSum,
  kCount,      ///< count(expr): non-null count
  kCountStar,
  kAvg,
  kMin,
  kMax,
  kConf,    ///< exact confidence of each distinct tuple (group)
  kAconf,   ///< (ε,δ)-approximate confidence
  kEsum,    ///< expected sum (linearity of expectation)
  kEcount,  ///< expected count
  kArgmax,  ///< argmax(arg, value): all arg values attaining the group max
};

std::string_view AggKindToString(AggKind k);

struct BoundAggregate {
  AggKind kind;
  BoundExprPtr arg;   ///< nullable (conf, count(*), ecount())
  BoundExprPtr arg2;  ///< argmax's value expression
  double epsilon = 0; ///< aconf parameters (bound to literals)
  double delta = 0;
  std::string output_name;
};

struct PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

struct PlanNode {
  PlanNode(PlanKind k, Schema s, bool unc)
      : kind(k), output_schema(std::move(s)), uncertain(unc) {}
  virtual ~PlanNode() = default;

  /// Single-line operator description (EXPLAIN-style).
  virtual std::string Describe() const = 0;

  const PlanKind kind;
  Schema output_schema;
  /// Whether the operator's output is an uncertain relation (has condition
  /// columns) or a t-certain table — the binder's uncertainty typing.
  bool uncertain;
  /// Optimizer cardinality estimate (rows out), or -1 when not estimated.
  /// EXPLAIN renders it; EXPLAIN ANALYZE pairs it with actual rows.
  double est_rows = -1;
  std::vector<PlanNodePtr> children;
};

/// Renders the plan tree with indentation.
std::string ExplainPlan(const PlanNode& root);

struct ScanNode : PlanNode {
  ScanNode(TablePtr t)
      : PlanNode(PlanKind::kScan, t->schema(), t->uncertain()), table(std::move(t)) {}
  std::string Describe() const override;

  TablePtr table;
};

/// Index access path over a base table. The bounds form a CLOSED interval
/// over the indexed column; rows with a NULL key never match. Candidate
/// rows come back in ascending row order (= scan order), and the parent
/// Filter re-checks the full predicate, so answers never depend on index
/// key semantics (type coercion, key truncation). Built only by the
/// optimizer's access-path pass — the binder always emits ScanNode.
struct IndexScanNode : PlanNode {
  IndexScanNode(TablePtr t, std::string index, size_t col)
      : PlanNode(PlanKind::kIndexScan, t->schema(), t->uncertain()),
        table(std::move(t)), index_name(std::move(index)), column_idx(col) {}
  std::string Describe() const override;

  TablePtr table;
  std::string index_name;
  size_t column_idx;
  /// Key range; unset side = unbounded. Both unset never happens (the
  /// optimizer only rewrites when a usable conjunct bounds the column).
  std::optional<Value> lo;
  std::optional<Value> hi;
};

struct FilterNode : PlanNode {
  FilterNode(PlanNodePtr child, BoundExprPtr pred)
      : PlanNode(PlanKind::kFilter, child->output_schema, child->uncertain),
        predicate(std::move(pred)) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;

  BoundExprPtr predicate;
};

struct ProjectNode : PlanNode {
  ProjectNode(PlanNodePtr child, std::vector<BoundExprPtr> e, Schema out_schema,
              bool out_uncertain)
      : PlanNode(PlanKind::kProject, std::move(out_schema), out_uncertain),
        exprs(std::move(e)) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;

  std::vector<BoundExprPtr> exprs;
  /// True when some expr is tconf(): output conditions are cleared and the
  /// per-row marginal probability is emitted (t-certain output).
  bool has_tconf = false;
};

struct JoinNode : PlanNode {
  JoinNode(PlanNodePtr left, PlanNodePtr right, Schema out_schema, bool out_uncertain)
      : PlanNode(PlanKind::kJoin, std::move(out_schema), out_uncertain) {
    children.push_back(std::move(left));
    children.push_back(std::move(right));
  }
  std::string Describe() const override;

  /// Hash-join key pairs: expressions over the left/right child schemas.
  std::vector<BoundExprPtr> left_keys;
  std::vector<BoundExprPtr> right_keys;
  /// Residual predicate over the concatenated schema (nullable).
  BoundExprPtr residual;
};

struct AggregateNode : PlanNode {
  AggregateNode(PlanNodePtr child, Schema out_schema, bool out_uncertain)
      : PlanNode(PlanKind::kAggregate, std::move(out_schema), out_uncertain) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;

  std::vector<BoundExprPtr> group_exprs;
  std::vector<BoundAggregate> aggregates;
};

struct RepairKeyNode : PlanNode {
  RepairKeyNode(PlanNodePtr child, Schema out_schema)
      : PlanNode(PlanKind::kRepairKey, std::move(out_schema), /*uncertain=*/true) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;

  std::vector<size_t> key_indices;
  BoundExprPtr weight;  ///< nullable: uniform
  std::string label;    ///< debug label prefix for created variables
};

struct PickTuplesNode : PlanNode {
  PickTuplesNode(PlanNodePtr child, Schema out_schema)
      : PlanNode(PlanKind::kPickTuples, std::move(out_schema), /*uncertain=*/true) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;

  BoundExprPtr probability;  ///< nullable: defaults to 0.5
  bool independently = false;
  std::string label;
};

struct PossibleNode : PlanNode {
  explicit PossibleNode(PlanNodePtr child)
      : PlanNode(PlanKind::kPossible, child->output_schema, /*uncertain=*/false) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;
};

struct SemiJoinInNode : PlanNode {
  SemiJoinInNode(PlanNodePtr left, PlanNodePtr right, BoundExprPtr key, bool anti_join)
      : PlanNode(PlanKind::kSemiJoinIn, left->output_schema,
                 left->uncertain || right->uncertain),
        left_key(std::move(key)), anti(anti_join) {
    children.push_back(std::move(left));
    children.push_back(std::move(right));
  }
  std::string Describe() const override;

  BoundExprPtr left_key;  ///< over the left child schema
  bool anti;              ///< NOT IN (t-certain right side only)
};

struct UnionNode : PlanNode {
  UnionNode(PlanNodePtr left, PlanNodePtr right, bool dedup)
      : PlanNode(PlanKind::kUnion, left->output_schema,
                 left->uncertain || right->uncertain),
        deduplicate(dedup) {
    children.push_back(std::move(left));
    children.push_back(std::move(right));
  }
  std::string Describe() const override;

  /// Plain UNION over two t-certain inputs deduplicates; UNION over
  /// uncertain inputs is the multiset union of paper §2.2.
  bool deduplicate;
};

struct DistinctNode : PlanNode {
  explicit DistinctNode(PlanNodePtr child)
      : PlanNode(PlanKind::kDistinct, child->output_schema, child->uncertain) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;
};

struct SortNode : PlanNode {
  struct Key {
    BoundExprPtr expr;
    bool descending = false;
  };
  SortNode(PlanNodePtr child, std::vector<Key> k)
      : PlanNode(PlanKind::kSort, child->output_schema, child->uncertain),
        keys(std::move(k)) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;

  std::vector<Key> keys;
};

struct LimitNode : PlanNode {
  LimitNode(PlanNodePtr child, int64_t n)
      : PlanNode(PlanKind::kLimit, child->output_schema, child->uncertain), limit(n) {
    children.push_back(std::move(child));
  }
  std::string Describe() const override;

  int64_t limit;
};

/// Semijoin reducer for annotated relations (optimizer-inserted; Kolaitis,
/// "Semijoins of Annotated Relations"). Child 0 is the source; child 1
/// produces the opposing join-key columns (a side-effect-free clone of the
/// other join input, projected to its keys, conditions preserved). A source
/// row survives iff some child-1 row has equal keys AND a consistent
/// condition merge — a necessary condition for the later full hash join to
/// emit any pair for it, so only never-joining rows drop. Surviving rows
/// keep their ORIGINAL values, conditions, and relative order, so
/// inserting the reducer never changes the join's output.
struct SemiJoinReduceNode : PlanNode {
  SemiJoinReduceNode(PlanNodePtr source, PlanNodePtr key_source)
      : PlanNode(PlanKind::kSemiJoinReduce, source->output_schema,
                 source->uncertain) {
    children.push_back(std::move(source));
    children.push_back(std::move(key_source));
  }
  std::string Describe() const override;

  /// Key expressions over the source (child 0) schema; child 1's output
  /// columns 0..keys.size()-1 are the opposing key values, in order.
  std::vector<BoundExprPtr> keys;
};

}  // namespace maybms
