#include "src/storage/catalog.h"

#include "src/common/str_util.h"

namespace maybms {

Result<TablePtr> Catalog::CreateTable(const std::string& name, Schema schema,
                                      bool uncertain) {
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists(StringFormat("table '%s' already exists", name.c_str()));
  }
  auto table = std::make_shared<Table>(name, std::move(schema), uncertain);
  table->SetChunkRows(snapshot_chunk_rows_);
  tables_[key] = table;
  return table;
}

Status Catalog::RegisterTable(TablePtr table) {
  std::string key = ToLower(table->name());
  if (tables_.count(key)) {
    return Status::AlreadyExists(
        StringFormat("table '%s' already exists", table->name().c_str()));
  }
  table->SetChunkRows(snapshot_chunk_rows_);
  tables_[key] = std::move(table);
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(StringFormat("table '%s' does not exist", name.c_str()));
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(StringFormat("table '%s' does not exist", name.c_str()));
  }
  index_manager_->DropTableIndexes(it->second->name());
  tables_.erase(it);
  return Status::OK();
}

void Catalog::SetSnapshotChunkRows(size_t rows) {
  snapshot_chunk_rows_ = rows == 0 ? Batch::kDefaultCapacity : rows;
  for (const auto& [key, table] : tables_) {
    table->SetChunkRows(snapshot_chunk_rows_);
  }
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace maybms
