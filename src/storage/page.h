// Paged storage primitives: fixed-size slotted pages, page stores (file-
// backed and in-memory), and a pinning BufferPool with LRU eviction.
//
// The original MayBMS lives inside PostgreSQL, so U-relations sit in
// ordinary heap pages behind a buffer manager (paper §2.3-§2.4). This is
// that layer for the reproduction: binary database persistence
// (src/storage/persist.h) writes table rows as slotted records through a
// BufferPool over a FilePageStore, and the B+ tree secondary indexes
// (src/index/bplus_tree.h) keep their nodes in pages of either store —
// MemPageStore for live in-memory indexes, FilePageStore when a tree is
// built against a database file.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"

namespace maybms {

/// Page size in bytes. 8 KiB, PostgreSQL's default block size.
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// One fixed-size slotted page.
///
/// Layout:
///   [0..2)   uint16 slot count
///   [2..4)   uint16 free-space offset (end of the record heap)
///   [4..16)  12 user bytes (node metadata for B+ tree pages; unused by
///            plain record pages)
///   [16..free_off)                 record heap, grows forward
///   [kPageSize - 4*nslots .. end)  slot directory, grows backward; slot i
///            occupies the 4 bytes at kPageSize - 4*(i+1): uint16 offset,
///            uint16 length
///
/// The slot directory is the indirection that keeps records logically
/// ordered while the heap stays append-only: InsertRecordAt() shifts only
/// 4-byte slot entries, never record bytes. There is no per-record delete —
/// the callers here rebuild pages wholesale (B+ tree node splits copy into
/// fresh pages; persistence writes pages once).
class Page {
 public:
  /// Bytes available for records + slots on a freshly Init()ed page.
  static constexpr size_t kCapacity = kPageSize - 16;
  /// Largest record InsertRecordAt can ever accept (its 4-byte slot
  /// included). Callers with bigger payloads must chain overflow pages.
  static constexpr size_t kMaxRecord = kCapacity - 4;

  /// Formats the page as an empty slotted page (zeroes the user area).
  void Init();

  uint16_t NumSlots() const { return U16(0); }

  /// Contiguous bytes still available for one more record plus its slot.
  size_t FreeSpace() const;

  /// True iff a record of `n` bytes (plus its slot entry) fits.
  bool Fits(size_t n) const { return n + 4 <= FreeSpace(); }

  /// Inserts a record so it becomes slot `pos` (existing slots at >= pos
  /// shift up by one). Returns false — page unchanged — if it doesn't fit.
  bool InsertRecordAt(uint16_t pos, std::string_view bytes);

  /// Appends a record as the last slot.
  bool AppendRecord(std::string_view bytes) {
    return InsertRecordAt(NumSlots(), bytes);
  }

  std::string_view Record(uint16_t slot) const;

  /// The 12-byte caller-owned metadata area.
  uint8_t* user() { return data_.data() + 4; }
  const uint8_t* user() const { return data_.data() + 4; }

  uint8_t* raw() { return data_.data(); }
  const uint8_t* raw() const { return data_.data(); }

 private:
  uint16_t U16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data_.data() + off, 2);
    return v;
  }
  void PutU16(size_t off, uint16_t v) { std::memcpy(data_.data() + off, &v, 2); }

  std::array<uint8_t, kPageSize> data_;
};

static_assert(sizeof(Page) == kPageSize);

/// Abstract page storage: the durable (or backing) array of pages the
/// BufferPool caches. Implementations count physical reads/writes so
/// benchmarks and tests can observe real I/O.
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual Status Read(PageId id, Page* out) = 0;
  virtual Status Write(PageId id, const Page& page) = 0;
  /// Extends the store by one (zeroed) page and returns its id.
  virtual Result<PageId> Allocate() = 0;
  virtual PageId num_pages() const = 0;

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 protected:
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

/// File-backed page store: page i lives at byte offset i * kPageSize.
/// pread/pwrite, no caching of its own — that is the BufferPool's job.
class FilePageStore final : public PageStore {
 public:
  ~FilePageStore() override;

  /// Opens (creating if absent) a page file. `truncate` starts it empty.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path,
                                                     bool truncate);

  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Result<PageId> Allocate() override;
  PageId num_pages() const override { return num_pages_; }

  /// fsync — binary persistence calls it once after the final flush.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  FilePageStore(int fd, std::string path, PageId num_pages)
      : fd_(fd), path_(std::move(path)), num_pages_(num_pages) {}

  int fd_ = -1;
  std::string path_;
  PageId num_pages_ = 0;
};

/// In-memory page store: the backing array for live B+ tree indexes (and
/// for eviction tests that want store traffic without a filesystem).
class MemPageStore final : public PageStore {
 public:
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Result<PageId> Allocate() override;
  PageId num_pages() const override {
    return static_cast<PageId>(pages_.size());
  }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

/// Buffer-pool traffic counters. Snapshot via BufferPool::stats(); callers
/// that report to the MetricsRegistry fold before/after deltas
/// (src/obs/metrics.h bufpool.* counters).
struct BufferPoolStats {
  uint64_t hits = 0;        ///< fetches served from a resident frame
  uint64_t misses = 0;      ///< fetches that read from the store
  uint64_t evictions = 0;   ///< frames evicted to make room
  uint64_t writebacks = 0;  ///< dirty frames written back on eviction/flush
};

class BufferPool;

/// RAII pin on a buffer-pool frame. While alive the page is resident and
/// its address stable; destruction unpins. Mark dirty before releasing if
/// the page bytes were modified.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  Page* page() const { return page_; }
  PageId id() const { return id_; }
  /// Marks the frame dirty when this pin is released (so the pool writes
  /// it back before eviction). The pin itself stays live.
  void MarkDirty() { dirty_ = true; }
  /// Explicit early unpin (destructor does the same).
  void Release();

  explicit operator bool() const { return page_ != nullptr; }

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, PageId id, Page* page)
      : pool_(pool), id_(id), page_(page) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

/// A fixed-capacity cache of store pages with pin counts and LRU eviction.
///
/// Fetch() pins: pinned frames are never evicted and their Page address is
/// stable until the PageRef dies. When the pool is full an unpinned frame
/// with the oldest last-use tick is evicted (written back first when
/// dirty); fetching with every frame pinned is an error, not a deadlock.
///
/// Thread safety: the frame table and LRU bookkeeping are mutex-guarded,
/// so concurrent Fetch/unpin calls are safe. Page CONTENT is caller-
/// synchronized — the index layer serializes access per tree, persistence
/// is single-threaded.
class BufferPool {
 public:
  /// `store` is non-owning and must outlive the pool. `capacity` is the
  /// maximum number of resident frames (>= 1).
  BufferPool(PageStore* store, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the store on a miss.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a fresh store page and returns it pinned and dirty (the
  /// caller formats it; it reaches the store on eviction/flush).
  Result<PageRef> New();

  /// Writes every dirty resident frame back to the store.
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  PageStore* store() const { return store_; }
  BufferPoolStats stats() const;

 private:
  friend class PageRef;

  struct Frame {
    Page page;
    int pins = 0;
    bool dirty = false;
    uint64_t last_used = 0;
  };

  void Unpin(PageId id, bool dirty);
  /// Evicts the LRU unpinned frame; pool mutex held.
  Status EvictOneLocked();

  PageStore* store_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<PageId, Frame> frames_;
  uint64_t tick_ = 0;
  BufferPoolStats stats_;
};

}  // namespace maybms
