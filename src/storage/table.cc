#include "src/storage/table.h"

#include <algorithm>

#include "src/common/str_util.h"
#include "src/storage/columnar.h"

namespace maybms {

namespace {
/// Bound on the (version, row count) history: enough for any realistic
/// delta window while keeping per-append bookkeeping O(1) amortized.
constexpr size_t kSizeLogCap = 128;
}  // namespace

Status Table::Append(Row row) {
  if (row.values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(StringFormat(
        "row arity %zu does not match table '%s' arity %zu", row.values.size(),
        name_.c_str(), schema_.NumColumns()));
  }
  for (size_t i = 0; i < row.values.size(); ++i) {
    Value& v = row.values[i];
    TypeId declared = schema_.column(i).type;
    if (v.is_null() || declared == TypeId::kNull) continue;
    if (v.type() == declared) continue;
    if (declared == TypeId::kDouble && v.type() == TypeId::kInt) {
      v = Value::Double(static_cast<double>(v.AsInt()));
      continue;
    }
    if (declared == TypeId::kInt && v.type() == TypeId::kDouble &&
        static_cast<double>(static_cast<int64_t>(v.AsDouble())) == v.AsDouble()) {
      v = Value::Int(static_cast<int64_t>(v.AsDouble()));
      continue;
    }
    return Status::TypeError(StringFormat(
        "value of type %s cannot be stored in column '%s' of type %s",
        std::string(TypeIdToString(v.type())).c_str(), schema_.column(i).name.c_str(),
        std::string(TypeIdToString(declared)).c_str()));
  }
  if (!row.condition.IsTrue() && !uncertain_) {
    return Status::InvalidArgument(StringFormat(
        "conditioned row appended to t-certain table '%s'", name_.c_str()));
  }
  AppendUnchecked(std::move(row));
  return Status::OK();
}

Row& Table::MutableRow(size_t i) {
  Reconcile();
  ++version_;
  TouchChunk(i / chunk_rows_);
  return rows_[i];
}

size_t Table::EraseMarked(const std::vector<uint8_t>& remove) {
  Reconcile();
  size_t n = rows_.size();
  size_t first = n;
  size_t bound = std::min(n, remove.size());
  for (size_t i = 0; i < bound; ++i) {
    if (remove[i]) {
      first = i;
      break;
    }
  }
  if (first == n) return 0;  // no match: leave the table (and version) alone
  ++version_;
  size_t w = first;
  for (size_t r = first; r < n; ++r) {
    if (r < remove.size() && remove[r]) continue;
    rows_[w++] = std::move(rows_[r]);
  }
  rows_.resize(w);
  size_t new_chunks = NumChunks();
  chunk_versions_.resize(new_chunks, version_);
  for (size_t c = first / chunk_rows_; c < new_chunks; ++c) {
    chunk_versions_[c] = version_;
  }
  LogSize();
  return n - w;
}

void Table::SetChunkRows(size_t rows) {
  size_t cr = rows == 0 ? Batch::kDefaultCapacity : rows;
  if (cr == chunk_rows_) return;
  Reconcile();
  chunk_rows_ = cr;
  chunk_versions_.assign(NumChunks(), version_);
  columnar_version_ = ~0ull;  // force a full rebuild under the new layout
}

TableDelta Table::DeltaSince(uint64_t since) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  Reconcile();
  TableDelta d;
  d.since_version = since;
  d.version = version_;
  if (since >= version_) {
    d.precise = true;
    d.appended_begin = d.appended_end = rows_.size();
    return d;
  }
  size_t nchunks = NumChunks();
  for (size_t c = 0; c < nchunks && c < chunk_versions_.size(); ++c) {
    if (chunk_versions_[c] > since) d.dirty_chunks.push_back(static_cast<uint32_t>(c));
  }
  // Row count at `since`: the last size-log point at or before it. The
  // implicit base is (version 0, 0 rows) — valid only while the log has
  // never been trimmed.
  bool have = !size_log_trimmed_;
  size_t rows_at = 0;
  auto it = std::upper_bound(
      size_log_.begin(), size_log_.end(), since,
      [](uint64_t v, const std::pair<uint64_t, uint64_t>& e) { return v < e.first; });
  if (it != size_log_.begin()) {
    have = true;
    rows_at = std::prev(it)->second;
  }
  if (!have) {
    // Delta window aged out: degrade to "everything may have changed".
    d.precise = false;
    d.appended_begin = d.appended_end = rows_.size();
    d.dirty_chunks.clear();
    for (size_t c = 0; c < nchunks; ++c) {
      d.dirty_chunks.push_back(static_cast<uint32_t>(c));
    }
    return d;
  }
  d.precise = true;
  d.appended_begin = std::min(rows_at, rows_.size());
  d.appended_end = rows_.size();
  return d;
}

std::shared_ptr<const ColumnarTable> Table::Columnar() const {
  // Serializes the lazy rebuild between sessions that hold this table's
  // statement_lock() only SHARED; the chunks themselves are immutable
  // once built, so returning the shared_ptr out of the lock is safe.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  Reconcile();
  if (columnar_ != nullptr && columnar_version_ == version_) return columnar_;
  auto out = std::make_shared<ColumnarTable>();
  out->num_rows = rows_.size();
  out->chunk_rows = chunk_rows_;
  size_t nchunks = NumChunks();
  out->chunks.reserve(nchunks);
  // A chunk may be adopted from the previous snapshot iff it was built
  // under the same layout from the same per-chunk version: unchanged
  // version means no mutation touched its row range (appends land in the
  // tail chunk and bump it; shifts from erase dirty every chunk behind the
  // erase point), so both content and extent are identical.
  const bool reuse_ok = columnar_ != nullptr && columnar_chunk_rows_ == chunk_rows_;
  for (size_t c = 0; c < nchunks; ++c) {
    if (reuse_ok && c < columnar_->chunks.size() &&
        c < columnar_chunk_versions_.size() && c < chunk_versions_.size() &&
        columnar_chunk_versions_[c] == chunk_versions_[c]) {
      out->chunks.push_back(columnar_->chunks[c]);
      ++chunks_reused_;
    } else {
      out->chunks.push_back(ColumnarTable::BuildChunk(schema_, rows_, c, chunk_rows_));
      ++chunks_rebuilt_;
    }
  }
  ++snapshot_rebuilds_;
  columnar_chunk_rows_ = chunk_rows_;
  columnar_chunk_versions_ = chunk_versions_;
  columnar_version_ = version_;
  columnar_ = out;
  return columnar_;
}

Table::SnapshotStats Table::snapshot_stats() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  Reconcile();
  SnapshotStats s;
  s.chunks = NumChunks();
  s.rebuilds = snapshot_rebuilds_;
  s.chunks_rebuilt = chunks_rebuilt_;
  s.chunks_reused = chunks_reused_;
  if (columnar_ != nullptr && columnar_version_ == version_) return s;
  if (columnar_ != nullptr && columnar_chunk_rows_ == chunk_rows_) {
    for (size_t c = 0; c < s.chunks; ++c) {
      if (c >= columnar_chunk_versions_.size() || c >= chunk_versions_.size() ||
          columnar_chunk_versions_[c] != chunk_versions_[c]) {
        ++s.dirty_chunks;
      }
    }
  } else {
    s.dirty_chunks = s.chunks;
  }
  return s;
}

void Table::Reconcile() const {
  if (pending_full_) {
    // A mutable_rows() grant may have resized or rewritten anything; fold
    // it in now that the final row count is known.
    chunk_versions_.assign(NumChunks(), version_);
    pending_full_ = false;
    LogSize();
  } else if (chunk_versions_.size() != NumChunks()) {
    chunk_versions_.resize(NumChunks(), version_);
  }
}

void Table::TouchChunk(size_t chunk) {
  if (chunk >= chunk_versions_.size()) chunk_versions_.resize(chunk + 1, version_);
  chunk_versions_[chunk] = version_;
}

void Table::LogSize() const {
  size_t current = rows_.size();
  if (size_log_.empty() ? current == 0 : size_log_.back().second == current) return;
  size_log_.emplace_back(version_, current);
  if (size_log_.size() > kSizeLogCap) {
    size_log_.erase(size_log_.begin(),
                    size_log_.begin() + (size_log_.size() - kSizeLogCap));
    size_log_trimmed_ = true;
  }
}

}  // namespace maybms
