#include "src/storage/table.h"

#include "src/common/str_util.h"
#include "src/storage/columnar.h"

namespace maybms {

Status Table::Append(Row row) {
  if (row.values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(StringFormat(
        "row arity %zu does not match table '%s' arity %zu", row.values.size(),
        name_.c_str(), schema_.NumColumns()));
  }
  for (size_t i = 0; i < row.values.size(); ++i) {
    Value& v = row.values[i];
    TypeId declared = schema_.column(i).type;
    if (v.is_null() || declared == TypeId::kNull) continue;
    if (v.type() == declared) continue;
    if (declared == TypeId::kDouble && v.type() == TypeId::kInt) {
      v = Value::Double(static_cast<double>(v.AsInt()));
      continue;
    }
    if (declared == TypeId::kInt && v.type() == TypeId::kDouble &&
        static_cast<double>(static_cast<int64_t>(v.AsDouble())) == v.AsDouble()) {
      v = Value::Int(static_cast<int64_t>(v.AsDouble()));
      continue;
    }
    return Status::TypeError(StringFormat(
        "value of type %s cannot be stored in column '%s' of type %s",
        std::string(TypeIdToString(v.type())).c_str(), schema_.column(i).name.c_str(),
        std::string(TypeIdToString(declared)).c_str()));
  }
  if (!row.condition.IsTrue() && !uncertain_) {
    return Status::InvalidArgument(StringFormat(
        "conditioned row appended to t-certain table '%s'", name_.c_str()));
  }
  ++version_;
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::shared_ptr<const ColumnarTable> Table::Columnar() const {
  if (columnar_ == nullptr || columnar_version_ != version_) {
    columnar_ = ColumnarTable::Build(schema_, rows_);
    columnar_version_ = version_;
  }
  return columnar_;
}

}  // namespace maybms
