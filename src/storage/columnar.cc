#include "src/storage/columnar.h"

#include <algorithm>

namespace maybms {

std::shared_ptr<const ColumnarTable> ColumnarTable::Build(
    const Schema& schema, const std::vector<Row>& rows, size_t chunk_rows) {
  if (chunk_rows == 0) chunk_rows = Batch::kDefaultCapacity;
  auto out = std::make_shared<ColumnarTable>();
  out->num_rows = rows.size();
  out->chunk_rows = chunk_rows;
  size_t chunk_count = (rows.size() + chunk_rows - 1) / chunk_rows;
  out->chunks.reserve(chunk_count);
  for (size_t chunk = 0; chunk < chunk_count; ++chunk) {
    out->chunks.push_back(BuildChunk(schema, rows, chunk, chunk_rows));
  }
  return out;
}

std::shared_ptr<const Batch> ColumnarTable::BuildChunk(
    const Schema& schema, const std::vector<Row>& rows, size_t chunk,
    size_t chunk_rows) {
  size_t begin = chunk * chunk_rows;
  size_t n = std::min(chunk_rows, rows.size() - begin);
  return std::make_shared<const Batch>(
      Batch::FromRows(schema, rows.data() + begin, n));
}

}  // namespace maybms
