#include "src/storage/columnar.h"

#include <algorithm>

namespace maybms {

std::shared_ptr<const ColumnarTable> ColumnarTable::Build(
    const Schema& schema, const std::vector<Row>& rows) {
  auto out = std::make_shared<ColumnarTable>();
  out->num_rows = rows.size();
  size_t chunk_count =
      (rows.size() + Batch::kDefaultCapacity - 1) / Batch::kDefaultCapacity;
  out->chunks.reserve(chunk_count);
  for (size_t begin = 0; begin < rows.size(); begin += Batch::kDefaultCapacity) {
    size_t n = std::min(Batch::kDefaultCapacity, rows.size() - begin);
    out->chunks.push_back(Batch::FromRows(schema, rows.data() + begin, n));
  }
  return out;
}

}  // namespace maybms
