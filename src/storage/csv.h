// Minimal CSV import/export for example data sets. Values are parsed
// against a declared schema; quoting with '"' and embedded commas are
// supported.
#pragma once

#include <string>

#include "src/common/result.h"
#include "src/storage/table.h"

namespace maybms {

/// Parses CSV text (first line = header, must match the schema's column
/// names case-insensitively) into a new table.
Result<TablePtr> CsvToTable(const std::string& name, const Schema& schema,
                            const std::string& csv_text);

/// Reads a CSV file from disk into a new table.
Result<TablePtr> LoadCsvFile(const std::string& name, const Schema& schema,
                             const std::string& path);

/// Serializes a table's data columns as CSV (header + rows). Conditions
/// are not serialized; use for t-certain results.
std::string TableToCsv(const Table& table);

/// Writes a table to a CSV file.
Status SaveCsvFile(const Table& table, const std::string& path);

}  // namespace maybms
