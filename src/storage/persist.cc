#include "src/storage/persist.h"

#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/str_util.h"
#include "src/cond/constraint_store.h"
#include "src/conf/exact.h"

namespace maybms {

namespace {

constexpr const char* kMagic = "MAYBMS DUMP v1";

// Field-level escaping for tab-separated records.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

std::string SerializeValue(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return "\\N";
    case TypeId::kBool:
      return v.AsBool() ? "true" : "false";
    case TypeId::kInt:
      return std::to_string(v.AsInt());
    case TypeId::kDouble:
      return StringFormat("%.17g", v.AsDouble());
    case TypeId::kString:
      return Escape(v.AsString());
  }
  return "\\N";
}

Result<Value> DeserializeValue(const std::string& field, TypeId type) {
  if (field == "\\N") return Value::Null();
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(field == "true");
    case TypeId::kInt:
      return Value::Int(std::strtoll(field.c_str(), nullptr, 10));
    case TypeId::kDouble:
      return Value::Double(std::strtod(field.c_str(), nullptr));
    case TypeId::kString:
      return Value::String(Unescape(field));
    default:
      return Status::ParseError("dump contains a value for an untyped column");
  }
}

}  // namespace

std::string DumpDatabase(const Catalog& catalog, const ConstraintStore* evidence) {
  std::string out = kMagic;
  out += "\n";
  // Snapshot chunk layout: a tuning knob, but one that changes which
  // chunks the incremental columnar rebuild can reuse — restoring it keeps
  // a reloaded database's snapshot behavior identical to the dumped one.
  // Older dumps lack the line; restore keeps the catalog default then.
  out += StringFormat("LAYOUT snapshot_chunk_rows %zu\n",
                      catalog.snapshot_chunk_rows());

  // World table: one line per variable: label, then the distribution.
  const WorldTable& wt = catalog.world_table();
  out += StringFormat("WORLDTABLE %zu\n", wt.NumVariables());
  for (VarId v = 0; v < wt.NumVariables(); ++v) {
    out += StringFormat("V\t%s\t%zu", Escape(wt.Label(v)).c_str(), wt.DomainSize(v));
    for (AsgId a = 0; a < wt.DomainSize(v); ++a) {
      out += StringFormat("\t%.17g", wt.AtomProb(Atom{v, a}));
    }
    out += "\n";
  }

  for (const std::string& name : catalog.TableNames()) {
    TablePtr table = *catalog.GetTable(name);
    out += StringFormat("TABLE\t%s\t%d\t%zu\t%zu\n", Escape(table->name()).c_str(),
                        table->uncertain() ? 1 : 0, table->schema().NumColumns(),
                        table->NumRows());
    for (const Column& col : table->schema().columns()) {
      out += StringFormat("C\t%s\t%s\n", Escape(col.name).c_str(),
                          std::string(TypeIdToString(col.type)).c_str());
    }
    for (const Row& row : table->rows()) {
      out += "R";
      for (const Value& v : row.values) {
        out += "\t";
        out += SerializeValue(v);
      }
      // Condition column: "var:asg" pairs after a '|' marker.
      out += "\t|";
      for (const Atom& a : row.condition.atoms()) {
        out += StringFormat("\t%u:%u", a.var, a.asg);
      }
      out += "\n";
    }
  }
  // Asserted evidence (conditioning subsystem): one clause per line, same
  // atom encoding as row conditions. Absent when no evidence is active
  // (dumps from older versions restore fine either way).
  if (evidence != nullptr && evidence->active()) {
    const ConstraintStore& cs = *evidence;
    out += StringFormat("EVIDENCE %zu\n", cs.NumClauses());
    for (const Condition& clause : cs.clauses()) {
      out += "E";
      for (const Atom& a : clause.atoms()) {
        out += StringFormat("\t%u:%u", a.var, a.asg);
      }
      out += "\n";
    }
  }
  out += "END\n";
  return out;
}

Status SaveDatabaseToFile(const Catalog& catalog, const std::string& path,
                          const ConstraintStore* evidence) {
  std::ofstream out(path);
  if (!out) return Status::IoError(StringFormat("cannot open '%s'", path.c_str()));
  out << DumpDatabase(catalog, evidence);
  if (!out.good()) return Status::IoError(StringFormat("write to '%s' failed", path.c_str()));
  return Status::OK();
}

Status RestoreDatabase(const std::string& dump, Catalog* catalog,
                       ConstraintStore* evidence) {
  if (!catalog->TableNames().empty() || catalog->world_table().NumVariables() != 0) {
    return Status::InvalidArgument(
        "RestoreDatabase requires a fresh catalog (variable ids are dense)");
  }
  std::istringstream in(dump);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kMagic) {
    return Status::ParseError("not a MayBMS dump (bad magic)");
  }

  if (!std::getline(in, line)) return Status::ParseError("truncated dump");
  // Optional LAYOUT line (dumps before it carried none: those restore
  // under the catalog's current default layout).
  size_t chunk_rows = 0;
  if (std::sscanf(line.c_str(), "LAYOUT snapshot_chunk_rows %zu", &chunk_rows) == 1) {
    if (chunk_rows == 0) {
      return Status::ParseError("LAYOUT snapshot_chunk_rows must be positive");
    }
    catalog->SetSnapshotChunkRows(chunk_rows);
    if (!std::getline(in, line)) return Status::ParseError("truncated dump");
  }
  size_t num_vars = 0;
  if (std::sscanf(line.c_str(), "WORLDTABLE %zu", &num_vars) != 1) {
    return Status::ParseError("missing WORLDTABLE section");
  }
  for (size_t i = 0; i < num_vars; ++i) {
    if (!std::getline(in, line)) return Status::ParseError("truncated world table");
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() < 3 || fields[0] != "V") {
      return Status::ParseError("malformed world-table record");
    }
    size_t domain = std::strtoull(fields[2].c_str(), nullptr, 10);
    if (fields.size() != 3 + domain) {
      return Status::ParseError("world-table record has wrong arity");
    }
    std::vector<double> probs;
    probs.reserve(domain);
    for (size_t a = 0; a < domain; ++a) {
      probs.push_back(std::strtod(fields[3 + a].c_str(), nullptr));
    }
    MAYBMS_ASSIGN_OR_RETURN(
        VarId v, catalog->world_table().NewVariable(std::move(probs),
                                                    Unescape(fields[1])));
    (void)v;
  }

  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "END") return Status::OK();
    size_t num_clauses = 0;
    if (std::sscanf(line.c_str(), "EVIDENCE %zu", &num_clauses) == 1) {
      if (evidence == nullptr) {
        return Status::ParseError(
            "dump carries asserted evidence but no session store was given "
            "to restore it into");
      }
      std::vector<Condition> clauses;
      clauses.reserve(num_clauses);
      for (size_t c = 0; c < num_clauses; ++c) {
        if (!std::getline(in, line)) {
          return Status::ParseError("truncated evidence section");
        }
        std::vector<std::string> fields = Split(line, '\t');
        if (fields.empty() || fields[0] != "E") {
          return Status::ParseError("malformed evidence record");
        }
        Condition clause;
        for (size_t i = 1; i < fields.size(); ++i) {
          unsigned var = 0, asg = 0;
          if (std::sscanf(fields[i].c_str(), "%u:%u", &var, &asg) != 2) {
            return Status::ParseError("malformed evidence atom");
          }
          if (var >= catalog->world_table().NumVariables() ||
              asg >= catalog->world_table().DomainSize(var)) {
            return Status::ParseError("evidence atom references unknown variable");
          }
          if (!clause.AddAtom(Atom{var, asg})) {
            return Status::ParseError("inconsistent evidence clause in dump");
          }
        }
        if (clause.IsTrue()) {
          return Status::ParseError("empty evidence clause in dump");
        }
        clauses.push_back(std::move(clause));
      }
      // Recompute P(C) against the restored world table; a probability-0
      // constraint means the dump is corrupt.
      MAYBMS_RETURN_NOT_OK(evidence->Load(
          std::move(clauses), catalog->world_table(), ExactOptions{}, nullptr));
      continue;
    }
    std::vector<std::string> header = Split(line, '\t');
    if (header.size() != 5 || header[0] != "TABLE") {
      return Status::ParseError(
          StringFormat("expected TABLE record, got '%s'", line.c_str()));
    }
    std::string name = Unescape(header[1]);
    bool uncertain = header[2] == "1";
    size_t num_cols = std::strtoull(header[3].c_str(), nullptr, 10);
    size_t num_rows = std::strtoull(header[4].c_str(), nullptr, 10);

    Schema schema;
    for (size_t c = 0; c < num_cols; ++c) {
      if (!std::getline(in, line)) return Status::ParseError("truncated schema");
      std::vector<std::string> fields = Split(line, '\t');
      if (fields.size() != 3 || fields[0] != "C") {
        return Status::ParseError("malformed column record");
      }
      TypeId type;
      const std::string& t = fields[2];
      if (t == "int") {
        type = TypeId::kInt;
      } else if (t == "double") {
        type = TypeId::kDouble;
      } else if (t == "string") {
        type = TypeId::kString;
      } else if (t == "bool") {
        type = TypeId::kBool;
      } else if (t == "null") {
        type = TypeId::kNull;
      } else {
        return Status::ParseError(StringFormat("unknown column type '%s'", t.c_str()));
      }
      schema.AddColumn(Column{Unescape(fields[1]), type});
    }

    MAYBMS_ASSIGN_OR_RETURN(TablePtr table,
                            catalog->CreateTable(name, schema, uncertain));
    for (size_t r = 0; r < num_rows; ++r) {
      if (!std::getline(in, line)) return Status::ParseError("truncated rows");
      std::vector<std::string> fields = Split(line, '\t');
      if (fields.empty() || fields[0] != "R") {
        return Status::ParseError("malformed row record");
      }
      // Layout: R <v1> ... <vn> | <atom>*
      size_t bar = 0;
      for (size_t i = 1; i < fields.size(); ++i) {
        if (fields[i] == "|") {
          bar = i;
          break;
        }
      }
      if (bar != num_cols + 1) {
        return Status::ParseError("row record has wrong arity");
      }
      Row row;
      row.values.reserve(num_cols);
      for (size_t c = 0; c < num_cols; ++c) {
        MAYBMS_ASSIGN_OR_RETURN(Value v,
                                DeserializeValue(fields[1 + c], schema.column(c).type));
        row.values.push_back(std::move(v));
      }
      for (size_t i = bar + 1; i < fields.size(); ++i) {
        unsigned var = 0, asg = 0;
        if (std::sscanf(fields[i].c_str(), "%u:%u", &var, &asg) != 2) {
          return Status::ParseError("malformed condition atom");
        }
        if (var >= catalog->world_table().NumVariables() ||
            asg >= catalog->world_table().DomainSize(var)) {
          return Status::ParseError("condition atom references unknown variable");
        }
        if (!row.condition.AddAtom(Atom{var, asg})) {
          return Status::ParseError("inconsistent condition in dump");
        }
      }
      MAYBMS_RETURN_NOT_OK(table->Append(std::move(row)));
    }
  }
  return Status::ParseError("dump is missing the END marker");
}

Status LoadDatabaseFromFile(const std::string& path, Catalog* catalog,
                            ConstraintStore* evidence) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StringFormat("cannot open '%s'", path.c_str()));
  std::stringstream buf;
  buf << in.rdbuf();
  return RestoreDatabase(buf.str(), catalog, evidence);
}

}  // namespace maybms
