#include "src/storage/persist.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "src/common/str_util.h"
#include "src/cond/constraint_store.h"
#include "src/conf/exact.h"
#include "src/index/index_manager.h"
#include "src/storage/page.h"

namespace maybms {

namespace {

constexpr const char* kMagic = "MAYBMS DUMP v1";

/// Binary paged format magic — the first 8 bytes of page 0 (= of the
/// file), distinct from the text magic's "MAYBMS D" prefix so one sniff
/// of 8 bytes routes LoadDatabaseFromFile.
constexpr char kBinaryMagic[8] = {'M', 'A', 'Y', 'B', 'M', 'S', 'P', '1'};
constexpr uint32_t kBinaryVersion = 1;

/// Frames in the save/load BufferPool. Deliberately small so that saving
/// or loading any database beyond ~0.5 MiB exercises eviction and
/// writeback — the tests that assert bufpool traffic rely on this.
constexpr size_t kPersistPoolFrames = 64;

// Field-level escaping for tab-separated records.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

std::string SerializeValue(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return "\\N";
    case TypeId::kBool:
      return v.AsBool() ? "true" : "false";
    case TypeId::kInt:
      return std::to_string(v.AsInt());
    case TypeId::kDouble:
      return StringFormat("%.17g", v.AsDouble());
    case TypeId::kString:
      return Escape(v.AsString());
  }
  return "\\N";
}

Result<Value> DeserializeValue(const std::string& field, TypeId type) {
  if (field == "\\N") return Value::Null();
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(field == "true");
    case TypeId::kInt:
      return Value::Int(std::strtoll(field.c_str(), nullptr, 10));
    case TypeId::kDouble:
      return Value::Double(std::strtod(field.c_str(), nullptr));
    case TypeId::kString:
      return Value::String(Unescape(field));
    default:
      return Status::ParseError("dump contains a value for an untyped column");
  }
}

// --------------------------------------------------------------------------
// Binary paged format.
//
// File layout (all little-endian, 8 KiB pages via FilePageStore):
//   page 0       header: magic[8] "MAYBMSP1", u32 version, u32 first
//                metadata page, u64 metadata bytes — written LAST, after
//                the metadata location is known.
//   data pages   per table, slotted pages of row records in row order.
//                A record is u8 marker 0 + row payload inline, or marker 1
//                + (u32 first overflow page, u32 overflow pages, u64
//                payload bytes) for rows larger than Page::kMaxRecord;
//                overflow chains are raw consecutive pages.
//   meta pages   one raw byte stream spanning consecutive pages: chunk
//                layout, world table, per-table schema + nrows + explicit
//                data-page id list (overflow pages interleave, so the
//                slotted sequence is spelled out), evidence, index defs.
//
// Row payload: per column a tagged value (tag u8; bool u8 / int i64 /
// double f64 / string u32 len + bytes), then u32 atom count + (u32 var,
// u32 asg) pairs for the condition.
// --------------------------------------------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  const std::string& buf() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked reader over one record / the metadata stream.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  Result<uint8_t> U8() {
    uint8_t v;
    MAYBMS_RETURN_NOT_OK(Raw(&v, 1));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v;
    MAYBMS_RETURN_NOT_OK(Raw(&v, 4));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v;
    MAYBMS_RETURN_NOT_OK(Raw(&v, 8));
    return v;
  }
  Result<int64_t> I64() {
    int64_t v;
    MAYBMS_RETURN_NOT_OK(Raw(&v, 8));
    return v;
  }
  Result<double> F64() {
    double v;
    MAYBMS_RETURN_NOT_OK(Raw(&v, 8));
    return v;
  }
  Result<std::string> Str() {
    MAYBMS_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > size_ - pos_) {
      return Status::ParseError("binary database: truncated string");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  Status Raw(void* p, size_t n) {
    if (n > size_ - pos_) {
      return Status::ParseError("binary database: truncated stream");
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

uint8_t TypeTag(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return kTagNull;
    case TypeId::kBool:
      return kTagBool;
    case TypeId::kInt:
      return kTagInt;
    case TypeId::kDouble:
      return kTagDouble;
    case TypeId::kString:
      return kTagString;
  }
  return kTagNull;
}

Result<TypeId> TagType(uint8_t tag) {
  switch (tag) {
    case kTagNull:
      return TypeId::kNull;
    case kTagBool:
      return TypeId::kBool;
    case kTagInt:
      return TypeId::kInt;
    case kTagDouble:
      return TypeId::kDouble;
    case kTagString:
      return TypeId::kString;
  }
  return Status::ParseError("binary database: unknown type tag");
}

void EncodeValue(const Value& v, ByteWriter* w) {
  switch (v.type()) {
    case TypeId::kNull:
      w->U8(kTagNull);
      return;
    case TypeId::kBool:
      w->U8(kTagBool);
      w->U8(v.AsBool() ? 1 : 0);
      return;
    case TypeId::kInt:
      w->U8(kTagInt);
      w->I64(v.AsInt());
      return;
    case TypeId::kDouble:
      w->U8(kTagDouble);
      w->F64(v.AsDouble());
      return;
    case TypeId::kString:
      w->U8(kTagString);
      w->Str(v.AsString());
      return;
  }
  w->U8(kTagNull);
}

Result<Value> DecodeValue(ByteReader* r) {
  MAYBMS_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      MAYBMS_ASSIGN_OR_RETURN(uint8_t b, r->U8());
      return Value::Bool(b != 0);
    }
    case kTagInt: {
      MAYBMS_ASSIGN_OR_RETURN(int64_t v, r->I64());
      return Value::Int(v);
    }
    case kTagDouble: {
      MAYBMS_ASSIGN_OR_RETURN(double v, r->F64());
      return Value::Double(v);
    }
    case kTagString: {
      MAYBMS_ASSIGN_OR_RETURN(std::string s, r->Str());
      return Value::String(std::move(s));
    }
  }
  return Status::ParseError("binary database: unknown value tag");
}

std::string EncodeRow(const Row& row) {
  ByteWriter w;
  for (const Value& v : row.values) EncodeValue(v, &w);
  const auto& atoms = row.condition.atoms();
  w.U32(static_cast<uint32_t>(atoms.size()));
  for (const Atom& a : atoms) {
    w.U32(a.var);
    w.U32(a.asg);
  }
  return w.buf();
}

Result<Row> DecodeRow(ByteReader* r, const Schema& schema,
                      const WorldTable& world) {
  Row row;
  row.values.reserve(schema.NumColumns());
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    row.values.push_back(std::move(v));
  }
  MAYBMS_ASSIGN_OR_RETURN(uint32_t natoms, r->U32());
  for (uint32_t i = 0; i < natoms; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(uint32_t var, r->U32());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t asg, r->U32());
    if (var >= world.NumVariables() || asg >= world.DomainSize(var)) {
      return Status::ParseError(
          "binary database: condition atom references unknown variable");
    }
    if (!row.condition.AddAtom(Atom{var, asg})) {
      return Status::ParseError("binary database: inconsistent condition");
    }
  }
  return row;
}

/// Writes `bytes` raw across freshly allocated pages. Allocation here is
/// single-threaded and sequential, so the chain is consecutive page ids
/// starting at the returned first id (an empty stream still takes one
/// page, keeping "first id" meaningful).
Result<PageId> WriteRawChain(BufferPool* pool, const std::string& bytes,
                             uint32_t* num_pages) {
  PageId first = kInvalidPageId;
  size_t off = 0;
  uint32_t n = 0;
  do {
    MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool->New());
    if (first == kInvalidPageId) first = ref.id();
    const size_t chunk = std::min(kPageSize, bytes.size() - off);
    std::memcpy(ref.page()->raw(), bytes.data() + off, chunk);
    ref.MarkDirty();
    off += chunk;
    ++n;
  } while (off < bytes.size());
  *num_pages = n;
  return first;
}

Status ReadRawChain(BufferPool* pool, PageId first, uint64_t nbytes,
                    std::string* out) {
  out->clear();
  out->reserve(static_cast<size_t>(nbytes));
  PageId id = first;
  uint64_t remaining = nbytes;
  while (remaining > 0) {
    if (id >= pool->store()->num_pages()) {
      return Status::ParseError("binary database: truncated page chain");
    }
    MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool->Fetch(id));
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(kPageSize, remaining));
    out->append(reinterpret_cast<const char*>(ref.page()->raw()), chunk);
    remaining -= chunk;
    ++id;
  }
  return Status::OK();
}

}  // namespace

std::string DumpDatabase(const Catalog& catalog, const ConstraintStore* evidence) {
  std::string out = kMagic;
  out += "\n";
  // Snapshot chunk layout: a tuning knob, but one that changes which
  // chunks the incremental columnar rebuild can reuse — restoring it keeps
  // a reloaded database's snapshot behavior identical to the dumped one.
  // Older dumps lack the line; restore keeps the catalog default then.
  out += StringFormat("LAYOUT snapshot_chunk_rows %zu\n",
                      catalog.snapshot_chunk_rows());

  // World table: one line per variable: label, then the distribution.
  const WorldTable& wt = catalog.world_table();
  out += StringFormat("WORLDTABLE %zu\n", wt.NumVariables());
  for (VarId v = 0; v < wt.NumVariables(); ++v) {
    out += StringFormat("V\t%s\t%zu", Escape(wt.Label(v)).c_str(), wt.DomainSize(v));
    for (AsgId a = 0; a < wt.DomainSize(v); ++a) {
      out += StringFormat("\t%.17g", wt.AtomProb(Atom{v, a}));
    }
    out += "\n";
  }

  for (const std::string& name : catalog.TableNames()) {
    TablePtr table = *catalog.GetTable(name);
    out += StringFormat("TABLE\t%s\t%d\t%zu\t%zu\n", Escape(table->name()).c_str(),
                        table->uncertain() ? 1 : 0, table->schema().NumColumns(),
                        table->NumRows());
    for (const Column& col : table->schema().columns()) {
      out += StringFormat("C\t%s\t%s\n", Escape(col.name).c_str(),
                          std::string(TypeIdToString(col.type)).c_str());
    }
    for (const Row& row : table->rows()) {
      out += "R";
      for (const Value& v : row.values) {
        out += "\t";
        out += SerializeValue(v);
      }
      // Condition column: "var:asg" pairs after a '|' marker.
      out += "\t|";
      for (const Atom& a : row.condition.atoms()) {
        out += StringFormat("\t%u:%u", a.var, a.asg);
      }
      out += "\n";
    }
  }
  // Asserted evidence (conditioning subsystem): one clause per line, same
  // atom encoding as row conditions. Absent when no evidence is active
  // (dumps from older versions restore fine either way).
  if (evidence != nullptr && evidence->active()) {
    const ConstraintStore& cs = *evidence;
    out += StringFormat("EVIDENCE %zu\n", cs.NumClauses());
    for (const Condition& clause : cs.clauses()) {
      out += "E";
      for (const Atom& a : clause.atoms()) {
        out += StringFormat("\t%u:%u", a.var, a.asg);
      }
      out += "\n";
    }
  }
  out += "END\n";
  return out;
}

Status SaveDatabaseToFile(const Catalog& catalog, const std::string& path,
                          const ConstraintStore* evidence) {
  return SaveDatabaseBinary(catalog, path, evidence);
}

Status SaveDatabaseText(const Catalog& catalog, const std::string& path,
                        const ConstraintStore* evidence) {
  std::ofstream out(path);
  if (!out) return Status::IoError(StringFormat("cannot open '%s'", path.c_str()));
  out << DumpDatabase(catalog, evidence);
  if (!out.good()) return Status::IoError(StringFormat("write to '%s' failed", path.c_str()));
  return Status::OK();
}

Status SaveDatabaseBinary(const Catalog& catalog, const std::string& path,
                          const ConstraintStore* evidence) {
  MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<FilePageStore> store,
                          FilePageStore::Open(path, /*truncate=*/true));
  BufferPool pool(store.get(), kPersistPoolFrames);
  // Reserve page 0 for the header; its bytes are filled in LAST, once the
  // metadata location is known. Everything else starts at page 1.
  {
    MAYBMS_ASSIGN_OR_RETURN(PageRef header, pool.New());
    header.MarkDirty();
  }

  ByteWriter meta;
  meta.U64(catalog.snapshot_chunk_rows());
  const WorldTable& wt = catalog.world_table();
  meta.U64(wt.NumVariables());
  for (VarId v = 0; v < wt.NumVariables(); ++v) {
    meta.Str(wt.Label(v));
    meta.U32(static_cast<uint32_t>(wt.DomainSize(v)));
    for (AsgId a = 0; a < wt.DomainSize(v); ++a) {
      meta.F64(wt.AtomProb(Atom{v, a}));
    }
  }

  const std::vector<std::string> names = catalog.TableNames();
  meta.U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    TablePtr table = *catalog.GetTable(name);
    meta.Str(table->name());
    meta.U8(table->uncertain() ? 1 : 0);
    meta.U32(static_cast<uint32_t>(table->schema().NumColumns()));
    for (const Column& col : table->schema().columns()) {
      meta.Str(col.name);
      meta.U8(TypeTag(col.type));
    }
    meta.U64(table->NumRows());
    std::vector<PageId> data_pages;
    PageRef cur;
    for (const Row& row : table->rows()) {
      const std::string payload = EncodeRow(row);
      std::string record;
      if (payload.size() + 1 <= Page::kMaxRecord) {
        record.reserve(payload.size() + 1);
        record.push_back(static_cast<char>(0));
        record += payload;
      } else {
        uint32_t ovf_pages = 0;
        MAYBMS_ASSIGN_OR_RETURN(PageId ovf_first,
                                WriteRawChain(&pool, payload, &ovf_pages));
        ByteWriter w;
        w.U8(1);
        w.U32(ovf_first);
        w.U32(ovf_pages);
        w.U64(payload.size());
        record = w.buf();
      }
      if (!cur || !cur.page()->Fits(record.size())) {
        MAYBMS_ASSIGN_OR_RETURN(cur, pool.New());
        cur.page()->Init();
        cur.MarkDirty();
        data_pages.push_back(cur.id());
      }
      if (!cur.page()->AppendRecord(record)) {
        return Status::Internal(
            "binary database: record does not fit a fresh page");
      }
      cur.MarkDirty();
    }
    cur.Release();
    meta.U32(static_cast<uint32_t>(data_pages.size()));
    for (PageId id : data_pages) meta.U32(id);
  }

  if (evidence != nullptr && evidence->active()) {
    meta.U8(1);
    meta.U64(evidence->NumClauses());
    for (const Condition& clause : evidence->clauses()) {
      meta.U32(static_cast<uint32_t>(clause.atoms().size()));
      for (const Atom& a : clause.atoms()) {
        meta.U32(a.var);
        meta.U32(a.asg);
      }
    }
  } else {
    meta.U8(0);
  }

  const std::vector<IndexDef> defs = catalog.index_manager().ListDefs();
  meta.U32(static_cast<uint32_t>(defs.size()));
  for (const IndexDef& def : defs) {
    meta.Str(def.name);
    meta.Str(def.table);
    meta.Str(def.column);
  }

  uint32_t meta_pages = 0;
  MAYBMS_ASSIGN_OR_RETURN(PageId meta_first,
                          WriteRawChain(&pool, meta.buf(), &meta_pages));
  {
    MAYBMS_ASSIGN_OR_RETURN(PageRef header, pool.Fetch(0));
    uint8_t* p = header.page()->raw();
    std::memcpy(p, kBinaryMagic, sizeof(kBinaryMagic));
    const uint32_t version = kBinaryVersion;
    std::memcpy(p + 8, &version, 4);
    std::memcpy(p + 12, &meta_first, 4);
    const uint64_t meta_bytes = meta.buf().size();
    std::memcpy(p + 16, &meta_bytes, 8);
    header.MarkDirty();
  }
  MAYBMS_RETURN_NOT_OK(pool.FlushAll());
  return store->Sync();
}

Status LoadDatabaseBinary(const std::string& path, Catalog* catalog,
                          ConstraintStore* evidence) {
  if (!catalog->TableNames().empty() ||
      catalog->world_table().NumVariables() != 0) {
    return Status::InvalidArgument(
        "LoadDatabaseBinary requires a fresh catalog (variable ids are "
        "dense)");
  }
  MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<FilePageStore> store,
                          FilePageStore::Open(path, /*truncate=*/false));
  if (store->num_pages() == 0) {
    return Status::ParseError("binary database: empty file");
  }
  BufferPool pool(store.get(), kPersistPoolFrames);

  PageId meta_first = kInvalidPageId;
  uint64_t meta_bytes = 0;
  {
    MAYBMS_ASSIGN_OR_RETURN(PageRef header, pool.Fetch(0));
    const uint8_t* p = header.page()->raw();
    if (std::memcmp(p, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
      return Status::ParseError("not a binary MayBMS database (bad magic)");
    }
    uint32_t version = 0;
    std::memcpy(&version, p + 8, 4);
    if (version != kBinaryVersion) {
      return Status::ParseError(StringFormat(
          "binary database: unsupported format version %u", version));
    }
    std::memcpy(&meta_first, p + 12, 4);
    std::memcpy(&meta_bytes, p + 16, 8);
  }
  std::string meta_buf;
  MAYBMS_RETURN_NOT_OK(ReadRawChain(&pool, meta_first, meta_bytes, &meta_buf));
  ByteReader meta(meta_buf);

  MAYBMS_ASSIGN_OR_RETURN(uint64_t chunk_rows, meta.U64());
  if (chunk_rows == 0) {
    return Status::ParseError("binary database: snapshot_chunk_rows is 0");
  }
  catalog->SetSnapshotChunkRows(static_cast<size_t>(chunk_rows));

  MAYBMS_ASSIGN_OR_RETURN(uint64_t num_vars, meta.U64());
  for (uint64_t i = 0; i < num_vars; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(std::string label, meta.Str());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t domain, meta.U32());
    std::vector<double> probs;
    probs.reserve(domain);
    for (uint32_t a = 0; a < domain; ++a) {
      MAYBMS_ASSIGN_OR_RETURN(double prob, meta.F64());
      probs.push_back(prob);
    }
    MAYBMS_RETURN_NOT_OK(
        catalog->world_table().NewVariable(std::move(probs), label).status());
  }

  MAYBMS_ASSIGN_OR_RETURN(uint32_t num_tables, meta.U32());
  for (uint32_t t = 0; t < num_tables; ++t) {
    MAYBMS_ASSIGN_OR_RETURN(std::string name, meta.Str());
    MAYBMS_ASSIGN_OR_RETURN(uint8_t uncertain, meta.U8());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t num_cols, meta.U32());
    Schema schema;
    for (uint32_t c = 0; c < num_cols; ++c) {
      MAYBMS_ASSIGN_OR_RETURN(std::string col_name, meta.Str());
      MAYBMS_ASSIGN_OR_RETURN(uint8_t tag, meta.U8());
      MAYBMS_ASSIGN_OR_RETURN(TypeId type, TagType(tag));
      schema.AddColumn(Column{std::move(col_name), type});
    }
    MAYBMS_ASSIGN_OR_RETURN(uint64_t num_rows, meta.U64());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t num_pages, meta.U32());
    std::vector<PageId> data_pages;
    data_pages.reserve(num_pages);
    for (uint32_t i = 0; i < num_pages; ++i) {
      MAYBMS_ASSIGN_OR_RETURN(uint32_t id, meta.U32());
      data_pages.push_back(id);
    }
    MAYBMS_ASSIGN_OR_RETURN(TablePtr table,
                            catalog->CreateTable(name, schema, uncertain != 0));
    uint64_t restored = 0;
    for (PageId page_id : data_pages) {
      if (page_id >= store->num_pages()) {
        return Status::ParseError("binary database: data page out of range");
      }
      MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool.Fetch(page_id));
      const uint16_t nslots = ref.page()->NumSlots();
      for (uint16_t slot = 0; slot < nslots; ++slot) {
        const std::string_view record = ref.page()->Record(slot);
        ByteReader r(record);
        MAYBMS_ASSIGN_OR_RETURN(uint8_t marker, r.U8());
        Row row;
        if (marker == 0) {
          MAYBMS_ASSIGN_OR_RETURN(
              row, DecodeRow(&r, schema, catalog->world_table()));
        } else if (marker == 1) {
          MAYBMS_ASSIGN_OR_RETURN(uint32_t ovf_first, r.U32());
          MAYBMS_RETURN_NOT_OK(r.U32().status());  // page count (implied)
          MAYBMS_ASSIGN_OR_RETURN(uint64_t nbytes, r.U64());
          std::string payload;
          MAYBMS_RETURN_NOT_OK(
              ReadRawChain(&pool, ovf_first, nbytes, &payload));
          ByteReader pr(payload);
          MAYBMS_ASSIGN_OR_RETURN(
              row, DecodeRow(&pr, schema, catalog->world_table()));
        } else {
          return Status::ParseError("binary database: unknown record marker");
        }
        MAYBMS_RETURN_NOT_OK(table->Append(std::move(row)));
        ++restored;
      }
    }
    if (restored != num_rows) {
      return Status::ParseError(StringFormat(
          "binary database: table '%s' has %llu rows, expected %llu",
          name.c_str(), static_cast<unsigned long long>(restored),
          static_cast<unsigned long long>(num_rows)));
    }
  }

  MAYBMS_ASSIGN_OR_RETURN(uint8_t has_evidence, meta.U8());
  if (has_evidence != 0) {
    if (evidence == nullptr) {
      return Status::ParseError(
          "binary database carries asserted evidence but no session store "
          "was given to restore it into");
    }
    MAYBMS_ASSIGN_OR_RETURN(uint64_t num_clauses, meta.U64());
    std::vector<Condition> clauses;
    clauses.reserve(static_cast<size_t>(num_clauses));
    for (uint64_t c = 0; c < num_clauses; ++c) {
      MAYBMS_ASSIGN_OR_RETURN(uint32_t natoms, meta.U32());
      Condition clause;
      for (uint32_t i = 0; i < natoms; ++i) {
        MAYBMS_ASSIGN_OR_RETURN(uint32_t var, meta.U32());
        MAYBMS_ASSIGN_OR_RETURN(uint32_t asg, meta.U32());
        if (var >= catalog->world_table().NumVariables() ||
            asg >= catalog->world_table().DomainSize(var)) {
          return Status::ParseError(
              "binary database: evidence atom references unknown variable");
        }
        if (!clause.AddAtom(Atom{var, asg})) {
          return Status::ParseError(
              "binary database: inconsistent evidence clause");
        }
      }
      if (clause.IsTrue()) {
        return Status::ParseError("binary database: empty evidence clause");
      }
      clauses.push_back(std::move(clause));
    }
    MAYBMS_RETURN_NOT_OK(evidence->Load(
        std::move(clauses), catalog->world_table(), ExactOptions{}, nullptr));
  }

  // Index definitions re-register lazily: the first lookup (or INSERT)
  // against the restored table rebuilds the tree from the rows above.
  MAYBMS_ASSIGN_OR_RETURN(uint32_t num_indexes, meta.U32());
  for (uint32_t i = 0; i < num_indexes; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(std::string idx_name, meta.Str());
    MAYBMS_ASSIGN_OR_RETURN(std::string idx_table, meta.Str());
    MAYBMS_ASSIGN_OR_RETURN(std::string idx_column, meta.Str());
    MAYBMS_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(idx_table));
    MAYBMS_RETURN_NOT_OK(catalog->index_manager()
                             .CreateIndex(idx_name, table, idx_column,
                                          /*build_now=*/false)
                             .status());
  }
  return Status::OK();
}

Status RestoreDatabase(const std::string& dump, Catalog* catalog,
                       ConstraintStore* evidence) {
  if (!catalog->TableNames().empty() || catalog->world_table().NumVariables() != 0) {
    return Status::InvalidArgument(
        "RestoreDatabase requires a fresh catalog (variable ids are dense)");
  }
  std::istringstream in(dump);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kMagic) {
    return Status::ParseError("not a MayBMS dump (bad magic)");
  }

  if (!std::getline(in, line)) return Status::ParseError("truncated dump");
  // Optional LAYOUT line (dumps before it carried none: those restore
  // under the catalog's current default layout).
  size_t chunk_rows = 0;
  if (std::sscanf(line.c_str(), "LAYOUT snapshot_chunk_rows %zu", &chunk_rows) == 1) {
    if (chunk_rows == 0) {
      return Status::ParseError("LAYOUT snapshot_chunk_rows must be positive");
    }
    catalog->SetSnapshotChunkRows(chunk_rows);
    if (!std::getline(in, line)) return Status::ParseError("truncated dump");
  }
  size_t num_vars = 0;
  if (std::sscanf(line.c_str(), "WORLDTABLE %zu", &num_vars) != 1) {
    return Status::ParseError("missing WORLDTABLE section");
  }
  for (size_t i = 0; i < num_vars; ++i) {
    if (!std::getline(in, line)) return Status::ParseError("truncated world table");
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() < 3 || fields[0] != "V") {
      return Status::ParseError("malformed world-table record");
    }
    size_t domain = std::strtoull(fields[2].c_str(), nullptr, 10);
    if (fields.size() != 3 + domain) {
      return Status::ParseError("world-table record has wrong arity");
    }
    std::vector<double> probs;
    probs.reserve(domain);
    for (size_t a = 0; a < domain; ++a) {
      probs.push_back(std::strtod(fields[3 + a].c_str(), nullptr));
    }
    MAYBMS_ASSIGN_OR_RETURN(
        VarId v, catalog->world_table().NewVariable(std::move(probs),
                                                    Unescape(fields[1])));
    (void)v;
  }

  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "END") return Status::OK();
    size_t num_clauses = 0;
    if (std::sscanf(line.c_str(), "EVIDENCE %zu", &num_clauses) == 1) {
      if (evidence == nullptr) {
        return Status::ParseError(
            "dump carries asserted evidence but no session store was given "
            "to restore it into");
      }
      std::vector<Condition> clauses;
      clauses.reserve(num_clauses);
      for (size_t c = 0; c < num_clauses; ++c) {
        if (!std::getline(in, line)) {
          return Status::ParseError("truncated evidence section");
        }
        std::vector<std::string> fields = Split(line, '\t');
        if (fields.empty() || fields[0] != "E") {
          return Status::ParseError("malformed evidence record");
        }
        Condition clause;
        for (size_t i = 1; i < fields.size(); ++i) {
          unsigned var = 0, asg = 0;
          if (std::sscanf(fields[i].c_str(), "%u:%u", &var, &asg) != 2) {
            return Status::ParseError("malformed evidence atom");
          }
          if (var >= catalog->world_table().NumVariables() ||
              asg >= catalog->world_table().DomainSize(var)) {
            return Status::ParseError("evidence atom references unknown variable");
          }
          if (!clause.AddAtom(Atom{var, asg})) {
            return Status::ParseError("inconsistent evidence clause in dump");
          }
        }
        if (clause.IsTrue()) {
          return Status::ParseError("empty evidence clause in dump");
        }
        clauses.push_back(std::move(clause));
      }
      // Recompute P(C) against the restored world table; a probability-0
      // constraint means the dump is corrupt.
      MAYBMS_RETURN_NOT_OK(evidence->Load(
          std::move(clauses), catalog->world_table(), ExactOptions{}, nullptr));
      continue;
    }
    std::vector<std::string> header = Split(line, '\t');
    if (header.size() != 5 || header[0] != "TABLE") {
      return Status::ParseError(
          StringFormat("expected TABLE record, got '%s'", line.c_str()));
    }
    std::string name = Unescape(header[1]);
    bool uncertain = header[2] == "1";
    size_t num_cols = std::strtoull(header[3].c_str(), nullptr, 10);
    size_t num_rows = std::strtoull(header[4].c_str(), nullptr, 10);

    Schema schema;
    for (size_t c = 0; c < num_cols; ++c) {
      if (!std::getline(in, line)) return Status::ParseError("truncated schema");
      std::vector<std::string> fields = Split(line, '\t');
      if (fields.size() != 3 || fields[0] != "C") {
        return Status::ParseError("malformed column record");
      }
      TypeId type;
      const std::string& t = fields[2];
      if (t == "int") {
        type = TypeId::kInt;
      } else if (t == "double") {
        type = TypeId::kDouble;
      } else if (t == "string") {
        type = TypeId::kString;
      } else if (t == "bool") {
        type = TypeId::kBool;
      } else if (t == "null") {
        type = TypeId::kNull;
      } else {
        return Status::ParseError(StringFormat("unknown column type '%s'", t.c_str()));
      }
      schema.AddColumn(Column{Unescape(fields[1]), type});
    }

    MAYBMS_ASSIGN_OR_RETURN(TablePtr table,
                            catalog->CreateTable(name, schema, uncertain));
    for (size_t r = 0; r < num_rows; ++r) {
      if (!std::getline(in, line)) return Status::ParseError("truncated rows");
      std::vector<std::string> fields = Split(line, '\t');
      if (fields.empty() || fields[0] != "R") {
        return Status::ParseError("malformed row record");
      }
      // Layout: R <v1> ... <vn> | <atom>*
      size_t bar = 0;
      for (size_t i = 1; i < fields.size(); ++i) {
        if (fields[i] == "|") {
          bar = i;
          break;
        }
      }
      if (bar != num_cols + 1) {
        return Status::ParseError("row record has wrong arity");
      }
      Row row;
      row.values.reserve(num_cols);
      for (size_t c = 0; c < num_cols; ++c) {
        MAYBMS_ASSIGN_OR_RETURN(Value v,
                                DeserializeValue(fields[1 + c], schema.column(c).type));
        row.values.push_back(std::move(v));
      }
      for (size_t i = bar + 1; i < fields.size(); ++i) {
        unsigned var = 0, asg = 0;
        if (std::sscanf(fields[i].c_str(), "%u:%u", &var, &asg) != 2) {
          return Status::ParseError("malformed condition atom");
        }
        if (var >= catalog->world_table().NumVariables() ||
            asg >= catalog->world_table().DomainSize(var)) {
          return Status::ParseError("condition atom references unknown variable");
        }
        if (!row.condition.AddAtom(Atom{var, asg})) {
          return Status::ParseError("inconsistent condition in dump");
        }
      }
      MAYBMS_RETURN_NOT_OK(table->Append(std::move(row)));
    }
  }
  return Status::ParseError("dump is missing the END marker");
}

Status LoadDatabaseFromFile(const std::string& path, Catalog* catalog,
                            ConstraintStore* evidence) {
  // Sniff the leading magic: binary paged files start with "MAYBMSP1",
  // text dumps with "MAYBMS DUMP v1" — one 8-byte read routes the load,
  // so older text dumps keep importing unchanged.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(StringFormat("cannot open '%s'", path.c_str()));
  char head[8] = {};
  in.read(head, sizeof(head));
  if (in.gcount() == sizeof(head) &&
      std::memcmp(head, kBinaryMagic, sizeof(kBinaryMagic)) == 0) {
    in.close();
    return LoadDatabaseBinary(path, catalog, evidence);
  }
  in.clear();
  in.seekg(0);
  std::stringstream buf;
  buf << in.rdbuf();
  return RestoreDatabase(buf.str(), catalog, evidence);
}

}  // namespace maybms
