// Database persistence: dump and restore of the whole catalog — tables
// (data columns *and* condition columns) plus the world table.
//
// Paper §2.3 ("Updates, concurrency control, and recovery"): "As a
// consequence of our choice of a purely relational representation system,
// these issues cause surprisingly little difficulty. U-relations are
// represented relationally ..." — the dump below is exactly that
// relational representation serialized: each row's condition is a list of
// (variable, assignment) integer pairs and the world table is a ternary
// relation (variable, assignment, probability).
//
// Two on-disk formats share one API:
//   - The BINARY PAGED format (magic "MAYBMSP1", page 0 byte 0) writes
//     rows as slotted records in 8 KiB pages through a BufferPool over a
//     FilePageStore (src/storage/page.h) — the format SaveDatabaseToFile
//     produces. Index definitions persist with the data and are
//     re-registered (lazily rebuilt on first use) at load.
//   - The TEXT dump (magic line "MAYBMS DUMP v1") remains fully supported
//     for import: LoadDatabaseFromFile sniffs the magic and routes to the
//     right reader, so pre-paged-storage dumps keep loading.
#pragma once

#include <string>

#include "src/common/result.h"
#include "src/storage/catalog.h"

namespace maybms {

class ConstraintStore;

/// Serializes the catalog (all tables + the world table + the snapshot
/// chunk layout) into a single self-contained text dump. Evidence lives
/// per session, not in the catalog (src/engine/session.h), so the caller
/// passes the store to persist — typically the dumping session's own;
/// nullptr (or an inactive store) omits the EVIDENCE section.
std::string DumpDatabase(const Catalog& catalog,
                         const ConstraintStore* evidence = nullptr);

/// Writes the database to `path` in the binary paged format.
Status SaveDatabaseToFile(const Catalog& catalog, const std::string& path,
                          const ConstraintStore* evidence = nullptr);

/// Binary paged writer (what SaveDatabaseToFile calls): rows as slotted
/// records behind a small BufferPool, oversize rows in overflow page
/// chains, metadata (world table, schemas, index definitions, evidence)
/// in a trailing stream, the page-0 header written last.
Status SaveDatabaseBinary(const Catalog& catalog, const std::string& path,
                          const ConstraintStore* evidence = nullptr);

/// Binary paged reader. The catalog must be fresh (as RestoreDatabase).
Status LoadDatabaseBinary(const std::string& path, Catalog* catalog,
                          ConstraintStore* evidence = nullptr);

/// Writes DumpDatabase() — the TEXT format — to a file.
Status SaveDatabaseText(const Catalog& catalog, const std::string& path,
                        const ConstraintStore* evidence = nullptr);

/// Restores a dump into `catalog`. The catalog must be fresh: no tables
/// and an empty world table (variable ids in conditions are dense indexes
/// into the dumped world table). A dump with an EVIDENCE section loads it
/// into `evidence` (the restoring session's store); passing nullptr for a
/// dump that carries evidence is a ParseError rather than a silent drop.
Status RestoreDatabase(const std::string& dump, Catalog* catalog,
                       ConstraintStore* evidence = nullptr);

/// Reads a database file and restores it, sniffing the format from the
/// leading magic: binary paged files and text dumps both load.
Status LoadDatabaseFromFile(const std::string& path, Catalog* catalog,
                            ConstraintStore* evidence = nullptr);

}  // namespace maybms
