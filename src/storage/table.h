// In-memory heap tables. Plays the role of PostgreSQL's storage layer in
// the original system: U-relations are stored as ordinary relations whose
// rows additionally carry condition columns (paper §2.1, §2.4).
//
// Mutation tracking is chunk-granular: rows are snapshotted in fixed-size
// columnar chunks (src/storage/columnar.h) and every mutation records
// which chunks it touched, so Columnar() rebuilds only dirty chunks and
// DeltaSince() can describe a mutation window as "these rows were
// appended, these chunks were dirtied" for incremental consumers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/types/batch.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {
struct ColumnarTable;
}

namespace maybms {

/// What changed in a table since some earlier version: the appended row
/// range plus the set of chunks whose contents were touched by any
/// non-append mutation (or by appends extending a partial tail chunk).
/// Produced by Table::DeltaSince.
struct TableDelta {
  uint64_t since_version = 0;  ///< the version the delta is relative to
  uint64_t version = 0;        ///< the table version the delta leads to
  /// True when the appended row range is exact. The table keeps a bounded
  /// log of (version, row count) points; once the `since` version ages out
  /// of the log the delta degrades to "everything may have changed"
  /// (appended range empty, every chunk dirty).
  bool precise = false;
  size_t appended_begin = 0;  ///< first appended row index (if precise)
  size_t appended_end = 0;    ///< one past the last appended row index
  /// Chunks whose version advanced past `since` (ascending order).
  std::vector<uint32_t> dirty_chunks;
};

/// A named, schema-ful collection of rows. `uncertain()` mirrors the
/// MayBMS system-catalog flag distinguishing U-relations from standard
/// relational tables (paper §2.4).
class Table {
 public:
  Table(std::string name, Schema schema, bool uncertain = false)
      : name_(std::move(name)), schema_(std::move(schema)), uncertain_(uncertain) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  bool uncertain() const { return uncertain_; }
  void set_uncertain(bool u) { uncertain_ = u; }

  size_t NumRows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Whole-vector mutable access: invalidates the columnar snapshot at
  /// ACQUISITION time and marks every chunk dirty (the caller may resize
  /// or rewrite arbitrarily — bulk loads, world pruning's row rewrites).
  /// Contract: do not mutate through the returned reference after a later
  /// Columnar() call — re-acquire mutable_rows() instead — or the cached
  /// snapshot goes stale. Prefer MutableRow/EraseMarked for targeted DML:
  /// they dirty only the touched chunks.
  std::vector<Row>& mutable_rows() {
    ++version_;
    pending_full_ = true;
    return rows_;
  }

  /// Mutable access to one row: bumps the version and dirties only the
  /// chunk containing it (in-place UPDATE).
  Row& MutableRow(size_t i);

  /// Removes every row whose mask entry is non-zero (mask is parallel to
  /// rows()). Returns the number of rows erased; when it is 0 the table —
  /// including its version — is left completely untouched, so a DELETE
  /// matching nothing keeps snapshots and lineage caches warm. Dirties
  /// chunks from the first erased row onward (everything after it shifts).
  size_t EraseMarked(const std::vector<uint8_t>& remove);

  /// Appends a row after checking arity and value/declared-type agreement
  /// (nulls are allowed in any column; ints widen to double columns).
  Status Append(Row row);

  /// Appends without checks (bulk paths that validated already).
  void AppendUnchecked(Row row) {
    Reconcile();
    ++version_;
    TouchChunk(rows_.size() / chunk_rows_);
    rows_.push_back(std::move(row));
    LogSize();
  }

  void Clear() {
    Reconcile();
    if (rows_.empty()) return;  // nothing to clear: keep caches warm
    ++version_;
    rows_.clear();
    chunk_versions_.clear();
    LogSize();
  }

  /// Rows per snapshot chunk (SET snapshot_chunk_rows). Relayouting does
  /// not bump version() — contents are unchanged — but the next Columnar()
  /// call rebuilds every chunk under the new layout.
  size_t chunk_rows() const { return chunk_rows_; }
  void SetChunkRows(size_t rows);

  size_t NumChunks() const {
    return (rows_.size() + chunk_rows_ - 1) / chunk_rows_;
  }

  /// Describes the mutations between `since` (a value version() returned
  /// earlier) and the current version. See TableDelta.
  TableDelta DeltaSince(uint64_t since) const;

  /// Columnar snapshot of the current rows, cached per table version. The
  /// batch executor scans these chunks; a mutation after the call triggers
  /// an incremental rebuild next time — chunks whose per-chunk version is
  /// unchanged are adopted from the previous snapshot instead of being
  /// re-columnarized.
  std::shared_ptr<const ColumnarTable> Columnar() const;

  /// Observability for shell \d: chunk layout plus lifetime rebuild/reuse
  /// counters of the incremental snapshot path.
  struct SnapshotStats {
    size_t chunks = 0;        ///< chunk count at the current layout
    size_t dirty_chunks = 0;  ///< chunks stale w.r.t. the cached snapshot
    uint64_t rebuilds = 0;        ///< snapshot (re)builds performed
    uint64_t chunks_rebuilt = 0;  ///< chunks re-columnarized across rebuilds
    uint64_t chunks_reused = 0;   ///< chunks adopted from a prior snapshot
  };
  SnapshotStats snapshot_stats() const;

  /// The snapshot version counter: bumped on every mutation that may
  /// change rows — DML through mutable_rows()/MutableRow/EraseMarked/
  /// Append, world pruning's row rewrites — and deliberately NOT bumped
  /// when a statement turns out to change nothing (UPDATE/DELETE matching
  /// zero rows). Monotonic for the table's lifetime. Besides gating the
  /// columnar snapshot above, this is the storage half of the d-tree
  /// compilation cache's invalidation lattice (src/lineage/dtree_cache.h):
  /// a bump rebuilds the snapshot's condition columns, so changed lineage
  /// reaches the cache as changed content.
  uint64_t version() const { return version_; }

  /// The per-table statement lock (multi-session write serialization,
  /// src/engine/session.h): sessions reading this table's rows hold it
  /// shared for the whole statement, sessions mutating them hold it
  /// unique — so every read is a snapshot-consistent cut at one version()
  /// and concurrent writers to DIFFERENT tables still proceed in
  /// parallel. The Table itself does not take this lock (single-session
  /// embedders and unit tests stay lock-free); SessionManager acquires it
  /// in its fixed catalog → world → tables-by-name order.
  std::shared_mutex& statement_lock() const { return statement_mu_; }

 private:
  /// Folds a pending mutable_rows() grant into the chunk bookkeeping:
  /// the caller may have resized/rewritten anything, so every chunk gets
  /// the current version and the size log catches up. Called before any
  /// fine-grained marking and before reads of the chunk state.
  void Reconcile() const;
  /// Marks chunk `chunk` changed at the current version, growing the
  /// per-chunk version vector if the chunk is new.
  void TouchChunk(size_t chunk);
  /// Records (version, row count) after a size-changing mutation.
  void LogSize() const;

  std::string name_;
  Schema schema_;
  bool uncertain_;
  std::vector<Row> rows_;

  uint64_t version_ = 0;  // bumped on every actual mutation
  size_t chunk_rows_ = Batch::kDefaultCapacity;

  /// chunk_versions_[i] = version() of the last mutation that touched
  /// chunk i (content change, append into it, or row shift through it).
  mutable std::vector<uint64_t> chunk_versions_;
  /// Set by mutable_rows(); folded lazily by Reconcile() once the extent
  /// of the caller's edits (in particular the final row count) is known.
  mutable bool pending_full_ = false;
  /// Bounded history of (version, row count after that version)'s
  /// size-changing mutations; DeltaSince resolves "row count at version v"
  /// against it. Oldest entries fall off — deltas older than the log
  /// degrade to precise = false.
  mutable std::vector<std::pair<uint64_t, uint64_t>> size_log_;
  /// True once the size log dropped its oldest entries: the implicit
  /// "0 rows at version 0" base is then no longer trustworthy.
  mutable bool size_log_trimmed_ = false;

  mutable uint64_t columnar_version_ = ~0ull;
  mutable std::shared_ptr<const ColumnarTable> columnar_;
  /// Layout + per-chunk versions the cached snapshot was built from (the
  /// reuse test for the incremental rebuild).
  mutable size_t columnar_chunk_rows_ = 0;
  mutable std::vector<uint64_t> columnar_chunk_versions_;

  mutable uint64_t snapshot_rebuilds_ = 0;
  mutable uint64_t chunks_rebuilt_ = 0;
  mutable uint64_t chunks_reused_ = 0;

  /// Guards the mutable snapshot/bookkeeping state above against
  /// CONCURRENT CONST READERS: Columnar(), DeltaSince(), and
  /// snapshot_stats() all reconcile and rebuild lazily, so two sessions
  /// holding statement_lock() shared would otherwise race on the cache.
  /// Mutators don't take it — they run under an exclusive statement_lock()
  /// (or single-threaded), so no reader is concurrent with them.
  mutable std::mutex snapshot_mu_;
  mutable std::shared_mutex statement_mu_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace maybms
