// In-memory heap tables. Plays the role of PostgreSQL's storage layer in
// the original system: U-relations are stored as ordinary relations whose
// rows additionally carry condition columns (paper §2.1, §2.4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {
struct ColumnarTable;
}

namespace maybms {

/// A named, schema-ful collection of rows. `uncertain()` mirrors the
/// MayBMS system-catalog flag distinguishing U-relations from standard
/// relational tables (paper §2.4).
class Table {
 public:
  Table(std::string name, Schema schema, bool uncertain = false)
      : name_(std::move(name)), schema_(std::move(schema)), uncertain_(uncertain) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  bool uncertain() const { return uncertain_; }
  void set_uncertain(bool u) { uncertain_ = u; }

  size_t NumRows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  /// Mutable row access invalidates the columnar snapshot at ACQUISITION
  /// time. Contract: do not mutate through the returned reference after a
  /// later Columnar() call — re-acquire mutable_rows() instead — or the
  /// cached snapshot goes stale.
  std::vector<Row>& mutable_rows() {
    ++version_;
    return rows_;
  }

  /// Appends a row after checking arity and value/declared-type agreement
  /// (nulls are allowed in any column; ints widen to double columns).
  Status Append(Row row);

  /// Appends without checks (bulk paths that validated already).
  void AppendUnchecked(Row row) {
    ++version_;
    rows_.push_back(std::move(row));
  }

  void Clear() {
    ++version_;
    rows_.clear();
  }

  /// Columnar snapshot of the current rows, cached per table version. The
  /// batch executor scans these chunks; a mutation after the call simply
  /// triggers a rebuild next time.
  std::shared_ptr<const ColumnarTable> Columnar() const;

  /// The snapshot version counter: bumped on every (potential) row
  /// mutation — DML through mutable_rows()/Append, world pruning's row
  /// rewrites. Monotonic for the table's lifetime. Besides gating the
  /// columnar snapshot above, this is the storage half of the d-tree
  /// compilation cache's invalidation lattice (src/lineage/dtree_cache.h):
  /// a bump rebuilds the snapshot's condition columns, so changed lineage
  /// reaches the cache as changed content.
  uint64_t version() const { return version_; }

 private:
  std::string name_;
  Schema schema_;
  bool uncertain_;
  std::vector<Row> rows_;

  uint64_t version_ = 0;  // bumped on every (potential) mutation
  mutable uint64_t columnar_version_ = ~0ull;
  mutable std::shared_ptr<const ColumnarTable> columnar_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace maybms
