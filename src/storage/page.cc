#include "src/storage/page.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/str_util.h"

namespace maybms {

// ---------------------------------------------------------------------------
// Page
// ---------------------------------------------------------------------------

void Page::Init() {
  PutU16(0, 0);   // slot count
  PutU16(2, 16);  // free-space offset: heap starts after header + user area
  std::memset(data_.data() + 4, 0, 12);
}

size_t Page::FreeSpace() const {
  const size_t heap_end = U16(2);
  const size_t dir_start = kPageSize - 4 * static_cast<size_t>(NumSlots());
  return dir_start > heap_end ? dir_start - heap_end : 0;
}

bool Page::InsertRecordAt(uint16_t pos, std::string_view bytes) {
  const uint16_t nslots = NumSlots();
  if (pos > nslots) return false;
  if (bytes.size() + 4 > FreeSpace()) return false;
  const uint16_t off = U16(2);
  std::memcpy(data_.data() + off, bytes.data(), bytes.size());
  // Shift slots [pos, nslots) down by one directory entry. The directory
  // grows backward, so slot i lives at kPageSize - 4*(i+1): moving the
  // block 4 bytes toward the heap renumbers them i -> i+1.
  uint8_t* dir_low = data_.data() + kPageSize - 4 * (nslots + 1);
  if (nslots > pos) {
    std::memmove(dir_low, dir_low + 4, 4 * static_cast<size_t>(nslots - pos));
  }
  const size_t slot_at = kPageSize - 4 * (static_cast<size_t>(pos) + 1);
  PutU16(slot_at, off);
  PutU16(slot_at + 2, static_cast<uint16_t>(bytes.size()));
  PutU16(0, static_cast<uint16_t>(nslots + 1));
  PutU16(2, static_cast<uint16_t>(off + bytes.size()));
  return true;
}

std::string_view Page::Record(uint16_t slot) const {
  const size_t slot_at = kPageSize - 4 * (static_cast<size_t>(slot) + 1);
  const uint16_t off = U16(slot_at);
  const uint16_t len = U16(slot_at + 2);
  return std::string_view(reinterpret_cast<const char*>(data_.data()) + off, len);
}

// ---------------------------------------------------------------------------
// FilePageStore
// ---------------------------------------------------------------------------

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path, bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError(StringFormat("cannot open page file '%s': %s",
                                        path.c_str(), std::strerror(errno)));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IoError(StringFormat("fstat('%s'): %s", path.c_str(),
                                            std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (st.st_size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::IoError(StringFormat(
        "'%s' is not a page file (size %lld is not a multiple of %zu)",
        path.c_str(), static_cast<long long>(st.st_size), kPageSize));
  }
  const PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<FilePageStore>(new FilePageStore(fd, path, pages));
}

Status FilePageStore::Read(PageId id, Page* out) {
  if (id >= num_pages_) {
    return Status::IoError(StringFormat("page %u out of range (%u pages)",
                                        id, num_pages_));
  }
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, out->raw() + done, kPageSize - done,
                        static_cast<off_t>(id) * kPageSize + done);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IoError(StringFormat("pread page %u: %s", id,
                                          std::strerror(errno)));
    }
    if (n == 0) {
      // Allocated-but-never-written tail: reads as zeroes.
      std::memset(out->raw() + done, 0, kPageSize - done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  ++reads_;
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const Page& page) {
  if (id >= num_pages_) {
    return Status::IoError(StringFormat("page %u out of range (%u pages)",
                                        id, num_pages_));
  }
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pwrite(fd_, page.raw() + done, kPageSize - done,
                         static_cast<off_t>(id) * kPageSize + done);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IoError(StringFormat("pwrite page %u: %s", id,
                                          std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  ++writes_;
  return Status::OK();
}

Result<PageId> FilePageStore::Allocate() {
  // The file extends lazily: the new page materializes on first Write (a
  // Read before that returns zeroes via the short-read path above, but to
  // keep fstat-reopens consistent we extend eagerly).
  const PageId id = num_pages_;
  if (::ftruncate(fd_, static_cast<off_t>(id + 1) * kPageSize) != 0) {
    return Status::IoError(StringFormat("ftruncate to %u pages: %s", id + 1,
                                        std::strerror(errno)));
  }
  ++num_pages_;
  return id;
}

Status FilePageStore::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError(StringFormat("fsync('%s'): %s", path_.c_str(),
                                        std::strerror(errno)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MemPageStore
// ---------------------------------------------------------------------------

Status MemPageStore::Read(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::IoError(StringFormat("page %u out of range (%zu pages)",
                                        id, pages_.size()));
  }
  *out = *pages_[id];
  ++reads_;
  return Status::OK();
}

Status MemPageStore::Write(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::IoError(StringFormat("page %u out of range (%zu pages)",
                                        id, pages_.size()));
  }
  *pages_[id] = page;
  ++writes_;
  return Status::OK();
}

Result<PageId> MemPageStore::Allocate() {
  auto page = std::make_unique<Page>();
  std::memset(page->raw(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kInvalidPageId;
    other.dirty_ = false;
  }
  return *this;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_);
    pool_ = nullptr;
    page_ = nullptr;
    id_ = kInvalidPageId;
    dirty_ = false;
  }
}

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity == 0 ? 1 : capacity) {}

BufferPool::~BufferPool() = default;

Result<PageRef> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    Frame& f = it->second;
    ++f.pins;
    f.last_used = ++tick_;
    return PageRef(this, id, &f.page);
  }
  ++stats_.misses;
  while (frames_.size() >= capacity_) {
    MAYBMS_RETURN_NOT_OK(EvictOneLocked());
  }
  Frame& f = frames_[id];
  MAYBMS_RETURN_NOT_OK(store_->Read(id, &f.page));
  f.pins = 1;
  f.dirty = false;
  f.last_used = ++tick_;
  return PageRef(this, id, &f.page);
}

Result<PageRef> BufferPool::New() {
  std::lock_guard<std::mutex> lock(mu_);
  MAYBMS_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
  while (frames_.size() >= capacity_) {
    MAYBMS_RETURN_NOT_OK(EvictOneLocked());
  }
  Frame& f = frames_[id];
  std::memset(f.page.raw(), 0, kPageSize);
  f.pins = 1;
  f.dirty = true;  // a fresh page only exists in the pool until written back
  f.last_used = ++tick_;
  return PageRef(this, id, &f.page);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, frame] : frames_) {
    if (!frame.dirty) continue;
    MAYBMS_RETURN_NOT_OK(store_->Write(id, frame.page));
    frame.dirty = false;
    ++stats_.writebacks;
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return;  // defensive; pins keep frames resident
  Frame& f = it->second;
  if (f.pins > 0) --f.pins;
  if (dirty) f.dirty = true;
}

Status BufferPool::EvictOneLocked() {
  auto victim = frames_.end();
  for (auto it = frames_.begin(); it != frames_.end(); ++it) {
    if (it->second.pins > 0) continue;
    if (victim == frames_.end() ||
        it->second.last_used < victim->second.last_used) {
      victim = it;
    }
  }
  if (victim == frames_.end()) {
    return Status::Internal(StringFormat(
        "buffer pool exhausted: all %zu frames pinned", capacity_));
  }
  if (victim->second.dirty) {
    MAYBMS_RETURN_NOT_OK(store_->Write(victim->first, victim->second.page));
    ++stats_.writebacks;
  }
  ++stats_.evictions;
  frames_.erase(victim);
  return Status::OK();
}

}  // namespace maybms
