#include "src/storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/str_util.h"

namespace maybms {

namespace {

// Splits one CSV record respecting double-quote quoting.
std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseField(const std::string& field, TypeId type) {
  std::string_view trimmed = Trim(field);
  if (trimmed.empty() || EqualsIgnoreCase(trimmed, "null")) return Value::Null();
  std::string text(trimmed);
  switch (type) {
    case TypeId::kBool:
      if (EqualsIgnoreCase(text, "true") || text == "1") return Value::Bool(true);
      if (EqualsIgnoreCase(text, "false") || text == "0") return Value::Bool(false);
      return Status::ParseError(StringFormat("invalid bool '%s'", text.c_str()));
    case TypeId::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end != text.c_str() + text.size()) {
        return Status::ParseError(StringFormat("invalid int '%s'", text.c_str()));
      }
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return Status::ParseError(StringFormat("invalid double '%s'", text.c_str()));
      }
      return Value::Double(v);
    }
    case TypeId::kString:
      return Value::String(std::move(text));
    default:
      return Status::ParseError("column with unsupported CSV type");
  }
}

// Quotes a field if it contains commas, quotes, or newlines.
std::string QuoteCsv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Result<TablePtr> CsvToTable(const std::string& name, const Schema& schema,
                            const std::string& csv_text) {
  std::istringstream in(csv_text);
  std::string line;
  if (!std::getline(in, line)) return Status::ParseError("empty CSV input");
  std::vector<std::string> header = SplitCsvLine(Trim(line));
  if (header.size() != schema.NumColumns()) {
    return Status::ParseError(StringFormat(
        "CSV header has %zu fields, schema has %zu columns", header.size(),
        schema.NumColumns()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (!EqualsIgnoreCase(Trim(header[i]), schema.column(i).name)) {
      return Status::ParseError(StringFormat(
          "CSV header field '%s' does not match schema column '%s'",
          header[i].c_str(), schema.column(i).name.c_str()));
    }
  }
  auto table = std::make_shared<Table>(name, schema, /*uncertain=*/false);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(trimmed);
    if (fields.size() != schema.NumColumns()) {
      return Status::ParseError(StringFormat("CSV line %zu has %zu fields, expected %zu",
                                             line_no, fields.size(),
                                             schema.NumColumns()));
    }
    Row row;
    row.values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, ParseField(fields[i], schema.column(i).type));
      row.values.push_back(std::move(v));
    }
    MAYBMS_RETURN_NOT_OK(table->Append(std::move(row)));
  }
  return table;
}

Result<TablePtr> LoadCsvFile(const std::string& name, const Schema& schema,
                             const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StringFormat("cannot open '%s'", path.c_str()));
  std::stringstream buf;
  buf << in.rdbuf();
  return CsvToTable(name, schema, buf.str());
}

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (i > 0) out += ",";
    out += QuoteCsv(schema.column(i).name);
  }
  out += "\n";
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (i > 0) out += ",";
      if (!row.values[i].is_null()) out += QuoteCsv(row.values[i].ToString());
    }
    out += "\n";
  }
  return out;
}

Status SaveCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError(StringFormat("cannot open '%s'", path.c_str()));
  out << TableToCsv(table);
  return Status::OK();
}

}  // namespace maybms
