// Columnar snapshot of a heap table: the table's rows sliced into
// fixed-size Batches. The batch executor's Scan reads these chunks and
// shares their column vectors downstream instead of copying Row objects.
//
// The snapshot is immutable; Table caches one per version and rebuilds it
// lazily after mutations (see Table::Columnar). Chunks are held behind
// shared_ptr so an incremental rebuild can adopt every chunk the mutation
// did not touch from the previous snapshot in O(1) — only dirty chunks go
// through Batch::FromRows again.
#pragma once

#include <memory>
#include <vector>

#include "src/types/batch.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {

struct ColumnarTable {
  /// Chunk i covers rows [i*chunk_rows, min((i+1)*chunk_rows, num_rows)).
  std::vector<std::shared_ptr<const Batch>> chunks;
  size_t num_rows = 0;
  size_t chunk_rows = Batch::kDefaultCapacity;

  static std::shared_ptr<const ColumnarTable> Build(
      const Schema& schema, const std::vector<Row>& rows,
      size_t chunk_rows = Batch::kDefaultCapacity);

  /// Columnarizes one chunk's row slice (incremental rebuild helper).
  static std::shared_ptr<const Batch> BuildChunk(const Schema& schema,
                                                 const std::vector<Row>& rows,
                                                 size_t chunk,
                                                 size_t chunk_rows);
};

}  // namespace maybms
