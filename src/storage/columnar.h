// Columnar snapshot of a heap table: the table's rows sliced into
// fixed-size Batches. The batch executor's Scan reads these chunks and
// shares their column vectors downstream instead of copying Row objects.
//
// The snapshot is immutable; Table caches one per version and rebuilds it
// lazily after mutations (see Table::Columnar).
#pragma once

#include <memory>
#include <vector>

#include "src/types/batch.h"
#include "src/types/row.h"
#include "src/types/schema.h"

namespace maybms {

struct ColumnarTable {
  std::vector<Batch> chunks;  // each at most Batch::kDefaultCapacity rows
  size_t num_rows = 0;

  static std::shared_ptr<const ColumnarTable> Build(const Schema& schema,
                                                    const std::vector<Row>& rows);
};

}  // namespace maybms
