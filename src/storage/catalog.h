// The system catalog: named tables plus the world table. Mirrors the role
// of the patched PostgreSQL catalog, which "can distinguish between
// U-relations and standard relational tables" (paper §2.4).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/cond/constraint_store.h"
#include "src/prob/world_table.h"
#include "src/storage/table.h"

namespace maybms {

/// Name → table registry (case-insensitive names) plus the shared
/// WorldTable holding every random variable of the database and the
/// ConstraintStore holding asserted evidence (conditioning subsystem).
class Catalog {
 public:
  /// Creates a table; errors if the (case-insensitive) name exists.
  Result<TablePtr> CreateTable(const std::string& name, Schema schema,
                               bool uncertain = false);

  /// Registers an externally-built table under its own name.
  Status RegisterTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  WorldTable& world_table() { return world_table_; }
  const WorldTable& world_table() const { return world_table_; }

  /// Evidence asserted against this database (ASSERT / CONDITION ON).
  ConstraintStore& constraints() { return constraints_; }
  const ConstraintStore& constraints() const { return constraints_; }

 private:
  std::map<std::string, TablePtr> tables_;  // key: lower-cased name
  WorldTable world_table_;
  ConstraintStore constraints_;
};

}  // namespace maybms
