// The system catalog: named tables plus the world table. Mirrors the role
// of the patched PostgreSQL catalog, which "can distinguish between
// U-relations and standard relational tables" (paper §2.4).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/index/index_manager.h"
#include "src/lineage/dtree_cache.h"
#include "src/prob/world_table.h"
#include "src/storage/table.h"

namespace maybms {

/// Name → table registry (case-insensitive names) plus the shared
/// WorldTable holding every random variable of the database. Asserted
/// evidence (the conditioning subsystem's ConstraintStore) deliberately
/// does NOT live here: each Session owns its own store, so concurrent
/// sessions over one catalog condition independently (src/engine/
/// session.h). The catalog itself is unsynchronized — multi-session
/// access goes through SessionManager, which serializes structure changes
/// behind its catalog lock and row writes behind per-table locks.
class Catalog {
 public:
  /// Creates a table; errors if the (case-insensitive) name exists.
  Result<TablePtr> CreateTable(const std::string& name, Schema schema,
                               bool uncertain = false);

  /// Registers an externally-built table under its own name.
  Status RegisterTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  /// Drops the table AND every secondary index built over it.
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Applies the snapshot chunk layout (SET snapshot_chunk_rows) to every
  /// registered table and remembers it for tables created/registered
  /// later. No-op per table when the layout is unchanged (Table::
  /// SetChunkRows), so calling this every statement is free.
  void SetSnapshotChunkRows(size_t rows);
  size_t snapshot_chunk_rows() const { return snapshot_chunk_rows_; }

  WorldTable& world_table() { return world_table_; }
  const WorldTable& world_table() const { return world_table_; }

  /// The cross-statement d-tree compilation cache. Owned here — next to
  /// the world table and tables whose version counters key it — so its
  /// lifetime matches the lineage it caches; the Database facade wires it
  /// into ExactOptions per statement (ExecOptions::dtree_cache). Behind a
  /// unique_ptr (the cache holds a mutex) so the Catalog stays movable and
  /// the cache's address survives a Database move.
  DTreeCache& dtree_cache() { return *dtree_cache_; }
  const DTreeCache& dtree_cache() const { return *dtree_cache_; }

  /// The secondary-index registry (src/index/index_manager.h). Owned here
  /// for the same reason as the d-tree cache: index lifetimes match the
  /// tables they cover, and DROP TABLE reaps both. Behind a unique_ptr
  /// (per-index mutexes) so the Catalog stays movable.
  IndexManager& index_manager() { return *index_manager_; }
  const IndexManager& index_manager() const { return *index_manager_; }

 private:
  std::map<std::string, TablePtr> tables_;  // key: lower-cased name
  size_t snapshot_chunk_rows_ = Batch::kDefaultCapacity;
  WorldTable world_table_;
  std::unique_ptr<DTreeCache> dtree_cache_ = std::make_unique<DTreeCache>();
  std::unique_ptr<IndexManager> index_manager_ = std::make_unique<IndexManager>();
};

}  // namespace maybms
