#include "src/sql/ast.h"

#include "src/common/str_util.h"

namespace maybms {

std::string LiteralExpr::ToString() const {
  if (value.type() == TypeId::kString) return "'" + value.ToString() + "'";
  return value.ToString();
}

std::string ColumnRefExpr::ToString() const {
  if (table.empty()) return column;
  return table + "." + column;
}

std::string StarExpr::ToString() const {
  if (table.empty()) return "*";
  return table + ".*";
}

std::string UnaryExpr::ToString() const {
  switch (op) {
    case UnaryOp::kNot:
      return "not " + operand->ToString();
    case UnaryOp::kNegate:
      return "-" + operand->ToString();
  }
  return "?";
}

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
  }
  return "?";
}

std::string BinaryExpr::ToString() const {
  return "(" + left->ToString() + " " + std::string(BinaryOpToString(op)) + " " +
         right->ToString() + ")";
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToString();
  }
  out += ")";
  return out;
}

InSubqueryExpr::~InSubqueryExpr() = default;

std::string InSubqueryExpr::ToString() const {
  return operand->ToString() + (negated ? " not in (...)" : " in (...)");
}

std::string IsNullExpr::ToString() const {
  return operand->ToString() + (negated ? " is not null" : " is null");
}

SubqueryRef::SubqueryRef(std::unique_ptr<SelectStmt> s)
    : TableRef(TableRefKind::kSubquery), select(std::move(s)) {}
SubqueryRef::~SubqueryRef() = default;
RepairKeyRef::~RepairKeyRef() = default;
PickTuplesRef::~PickTuplesRef() = default;

}  // namespace maybms
