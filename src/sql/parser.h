// Recursive-descent parser for the MayBMS query language.
#pragma once

#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"

namespace maybms {

/// Parses a single SQL statement (a trailing ';' is permitted).
Result<StatementPtr> ParseStatement(std::string_view sql);

/// Parses a ';'-separated script.
Result<std::vector<StatementPtr>> ParseScript(std::string_view sql);

}  // namespace maybms
