#include "src/sql/parser.h"

#include <unordered_set>

#include "src/common/str_util.h"
#include "src/sql/lexer.h"

namespace maybms {

namespace {

// Words that cannot be used as bare aliases (so clause boundaries are
// detected after a table reference or select item).
const std::unordered_set<std::string>& ReservedWords() {
  static const std::unordered_set<std::string> kReserved = {
      "select", "from",  "where",  "group",  "order", "limit",  "union",
      "and",    "or",    "not",    "in",     "is",    "as",     "by",
      "asc",    "desc",  "repair", "pick",   "weight", "with",  "on",
      "independently",   "probability",      "key",   "tuples", "possible",
      "distinct", "create", "table", "insert", "into", "values", "update",
      "set",    "delete", "drop",   "all",    "null",  "true",   "false",
  };
  return kReserved;
}

bool IsReserved(const std::string& word) {
  return ReservedWords().count(ToLower(word)) > 0;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string_view sql)
      : tokens_(std::move(tokens)), lines_(sql) {}

  Result<StatementPtr> ParseSingleStatement() {
    MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement());
    AcceptSymbol(";");
    if (!AtEof()) return Unexpected("end of statement");
    return stmt;
  }

  Result<std::vector<StatementPtr>> ParseAll() {
    std::vector<StatementPtr> stmts;
    while (!AtEof()) {
      if (AcceptSymbol(";")) continue;
      MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement());
      stmts.push_back(std::move(stmt));
      if (!AtEof()) MAYBMS_RETURN_NOT_OK(ExpectSymbol(";"));
    }
    return stmts;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEof() const { return Peek().type == TokenType::kEof; }

  /// 1-based "line:col" of a byte offset (the lexer's shared LineIndex) —
  /// the source position carried by parse errors and stamped onto AST
  /// nodes for binder errors.
  std::string Pos(size_t offset) const { return lines_.Format(offset); }
  /// Stamps an AST node (Expr or TableRef) with a token's position.
  template <typename Node>
  void Tag(Node* node, const Token& tok) const {
    lines_.Lookup(tok.offset, &node->line, &node->col);
  }

  bool AcceptWord(std::string_view w) {
    if (Peek().IsWord(w)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectWord(std::string_view w) {
    if (!AcceptWord(w)) {
      return Status::ParseError(StringFormat("expected '%.*s' at %s (got '%s')",
                                             static_cast<int>(w.size()), w.data(),
                                             Pos(Peek().offset).c_str(),
                                             Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!AcceptSymbol(s)) {
      return Status::ParseError(StringFormat("expected '%.*s' at %s (got '%s')",
                                             static_cast<int>(s.size()), s.data(),
                                             Pos(Peek().offset).c_str(),
                                             Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status Unexpected(std::string_view what) {
    return Status::ParseError(StringFormat("expected %.*s at %s (got '%s')",
                                           static_cast<int>(what.size()), what.data(),
                                           Pos(Peek().offset).c_str(),
                                           Peek().type == TokenType::kEof
                                               ? "end of input"
                                               : Peek().text.c_str()));
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().type != TokenType::kIdentifier) {
      MAYBMS_RETURN_NOT_OK(Unexpected(what));
    }
    return Advance().text;
  }

  // --- statements ----------------------------------------------------------

  Result<StatementPtr> ParseStatement() {
    if (Peek().IsWord("select") || Peek().IsWord("repair") || Peek().IsWord("pick") ||
        Peek().IsSymbol("(")) {
      MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
      return StatementPtr(std::move(sel));
    }
    if (Peek().IsWord("create")) return ParseCreate();
    if (Peek().IsWord("insert")) return ParseInsert();
    if (Peek().IsWord("update")) return ParseUpdate();
    if (Peek().IsWord("delete")) return ParseDelete();
    if (Peek().IsWord("drop")) return ParseDrop();
    if (Peek().IsWord("assert")) return ParseAssert();
    if (Peek().IsWord("condition")) return ParseConditionOn();
    if (Peek().IsWord("show")) return ParseShow();
    if (Peek().IsWord("clear")) return ParseClearEvidence();
    if (Peek().IsWord("set")) return ParseSet();
    if (Peek().IsWord("explain")) return ParseExplain();
    // An identifier in statement position is an unsupported statement —
    // name it, instead of the generic "expected a statement" failure.
    if (Peek().type == TokenType::kIdentifier) {
      return Status::ParseError(StringFormat(
          "unsupported statement '%s' at %s (supported: SELECT, CREATE, "
          "INSERT, UPDATE, DELETE, DROP, ASSERT, CONDITION ON, SHOW "
          "EVIDENCE, SHOW STATS, CLEAR EVIDENCE, SET, EXPLAIN)",
          Peek().text.c_str(), Pos(Peek().offset).c_str()));
    }
    MAYBMS_RETURN_NOT_OK(Unexpected("a statement"));
    return Status::Internal("unreachable");
  }

  /// `SET <knob> = <value>`: value is a number or a bare word
  /// (on/off/true/false/dtree/legacy/row/batch/...).
  Result<StatementPtr> ParseSet() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("set"));
    auto stmt = std::make_unique<SetStmt>();
    if (Peek().type != TokenType::kIdentifier) {
      MAYBMS_RETURN_NOT_OK(Unexpected("a setting name"));
    }
    stmt->name = ToLower(Advance().text);
    MAYBMS_RETURN_NOT_OK(ExpectSymbol("="));
    const Token& tok = Peek();
    lines_.Lookup(tok.offset, &stmt->value_line, &stmt->value_col);
    if (tok.type == TokenType::kFloat) {
      stmt->value_num = tok.float_value;
      stmt->value_text = tok.text;
    } else if (tok.type == TokenType::kInteger) {
      stmt->value_num = static_cast<double>(tok.int_value);
      stmt->value_text = tok.text;
    } else if (tok.type == TokenType::kIdentifier ||
               tok.type == TokenType::kString) {
      stmt->value_text = ToLower(tok.text);
    } else {
      MAYBMS_RETURN_NOT_OK(Unexpected("a setting value"));
    }
    Advance();
    // Reject trailing garbage HERE, not at the generic statement-boundary
    // check, so `SET fallback_epsilon = 0.5abc` (which lexes as the float
    // `0.5` followed by the identifier `abc`) names the SET statement in
    // its position-stamped error instead of silently depending on the
    // caller's end-of-statement handling.
    if (!AtEof() && !Peek().IsSymbol(";")) {
      return Status::ParseError(StringFormat(
          "SET %s: unexpected '%s' after value '%s' at %s", stmt->name.c_str(),
          Peek().text.c_str(), stmt->value_text.c_str(),
          Pos(Peek().offset).c_str()));
    }
    return StatementPtr(std::move(stmt));
  }

  /// `ASSERT <select>` (conditioning) or
  /// `ASSERT CONFIDENCE >= <p> [FOR] <select>` (posterior check).
  Result<StatementPtr> ParseAssert() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("assert"));
    auto stmt = std::make_unique<AssertStmt>();
    if (AcceptWord("confidence")) {
      MAYBMS_RETURN_NOT_OK(ExpectSymbol(">="));
      const Token& tok = Peek();
      double p;
      if (tok.type == TokenType::kFloat) {
        p = tok.float_value;
      } else if (tok.type == TokenType::kInteger) {
        p = static_cast<double>(tok.int_value);
      } else {
        MAYBMS_RETURN_NOT_OK(Unexpected("a confidence threshold"));
        return Status::Internal("unreachable");
      }
      if (p < 0 || p > 1) {
        return Status::ParseError(StringFormat(
            "confidence threshold %g at %s outside [0,1]", p,
            Pos(tok.offset).c_str()));
      }
      Advance();
      stmt->min_confidence = p;
      AcceptWord("for");
    }
    MAYBMS_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return StatementPtr(std::move(stmt));
  }

  /// `CONDITION ON <select>` — synonym of the conditioning ASSERT.
  Result<StatementPtr> ParseConditionOn() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("condition"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("on"));
    auto stmt = std::make_unique<AssertStmt>();
    MAYBMS_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return StatementPtr(std::move(stmt));
  }

  /// `SHOW EVIDENCE`, `SHOW STATS [LIKE '<pattern>']`, or `SHOW INDEXES`.
  Result<StatementPtr> ParseShow() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("show"));
    if (AcceptWord("evidence")) {
      return StatementPtr(std::make_unique<ShowEvidenceStmt>());
    }
    if (AcceptWord("indexes") || AcceptWord("index")) {
      return StatementPtr(std::make_unique<ShowIndexesStmt>());
    }
    if (AcceptWord("stats")) {
      auto stmt = std::make_unique<ShowStatsStmt>();
      if (AcceptWord("like")) {
        if (Peek().type != TokenType::kString) {
          MAYBMS_RETURN_NOT_OK(Unexpected("a quoted LIKE pattern"));
        }
        stmt->pattern = Advance().text;
      }
      return StatementPtr(std::move(stmt));
    }
    MAYBMS_RETURN_NOT_OK(Unexpected("EVIDENCE, STATS, or INDEXES after SHOW"));
    return Status::Internal("unreachable");
  }

  /// `EXPLAIN [ANALYZE] <statement>`. The inner statement may be anything
  /// except another EXPLAIN (nested introspection has no meaning here).
  Result<StatementPtr> ParseExplain() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("explain"));
    auto stmt = std::make_unique<ExplainStmt>();
    stmt->analyze = AcceptWord("analyze");
    if (Peek().IsWord("explain")) {
      return Status::ParseError(StringFormat(
          "EXPLAIN cannot be nested at %s", Pos(Peek().offset).c_str()));
    }
    MAYBMS_ASSIGN_OR_RETURN(stmt->inner, ParseStatement());
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseClearEvidence() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("clear"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("evidence"));
    return StatementPtr(std::make_unique<ClearEvidenceStmt>());
  }

  Result<StatementPtr> ParseCreate() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("create"));
    if (AcceptWord("index")) return ParseCreateIndexTail();
    MAYBMS_RETURN_NOT_OK(ExpectWord("table"));
    MAYBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    if (AcceptWord("as")) {
      auto stmt = std::make_unique<CreateTableAsStmt>();
      stmt->name = std::move(name);
      MAYBMS_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return StatementPtr(std::move(stmt));
    }
    MAYBMS_RETURN_NOT_OK(ExpectSymbol("("));
    auto stmt = std::make_unique<CreateTableStmt>();
    stmt->name = std::move(name);
    do {
      ColumnDef col;
      MAYBMS_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      MAYBMS_ASSIGN_OR_RETURN(col.type, ParseTypeName());
      stmt->columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
    return StatementPtr(std::move(stmt));
  }

  /// `CREATE INDEX <name> ON <table> (<column>)` — "create index" already
  /// consumed by ParseCreate.
  Result<StatementPtr> ParseCreateIndexTail() {
    auto stmt = std::make_unique<CreateIndexStmt>();
    MAYBMS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("on"));
    MAYBMS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    MAYBMS_RETURN_NOT_OK(ExpectSymbol("("));
    MAYBMS_ASSIGN_OR_RETURN(stmt->column, ExpectIdentifier("column name"));
    MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
    return StatementPtr(std::move(stmt));
  }

  Result<TypeId> ParseTypeName() {
    MAYBMS_ASSIGN_OR_RETURN(std::string word, ExpectIdentifier("type name"));
    std::string t = ToLower(word);
    if (t == "int" || t == "integer" || t == "bigint" || t == "smallint") {
      return TypeId::kInt;
    }
    if (t == "double" || t == "float" || t == "real" || t == "numeric" ||
        t == "decimal") {
      // Allow "double precision".
      if (t == "double") AcceptWord("precision");
      return TypeId::kDouble;
    }
    if (t == "text" || t == "string" || t == "char") return TypeId::kString;
    if (t == "varchar") {
      if (AcceptSymbol("(")) {
        if (Peek().type != TokenType::kInteger) {
          MAYBMS_RETURN_NOT_OK(Unexpected("varchar length"));
        }
        Advance();
        MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return TypeId::kString;
    }
    if (t == "bool" || t == "boolean") return TypeId::kBool;
    return Status::ParseError(StringFormat("unknown type name '%s'", word.c_str()));
  }

  Result<StatementPtr> ParseInsert() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("insert"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("into"));
    auto stmt = std::make_unique<InsertStmt>();
    MAYBMS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (Peek().IsSymbol("(")) {
      Advance();
      do {
        MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
      MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (AcceptWord("values")) {
      do {
        MAYBMS_RETURN_NOT_OK(ExpectSymbol("("));
        std::vector<ExprPtr> row;
        do {
          MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
        } while (AcceptSymbol(","));
        MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
        stmt->rows.push_back(std::move(row));
      } while (AcceptSymbol(","));
    } else {
      MAYBMS_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseUpdate() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("update"));
    auto stmt = std::make_unique<UpdateStmt>();
    MAYBMS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("set"));
    do {
      MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      MAYBMS_RETURN_NOT_OK(ExpectSymbol("="));
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
    } while (AcceptSymbol(","));
    if (AcceptWord("where")) {
      MAYBMS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDelete() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("delete"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("from"));
    auto stmt = std::make_unique<DeleteStmt>();
    MAYBMS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (AcceptWord("where")) {
      MAYBMS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDrop() {
    MAYBMS_RETURN_NOT_OK(ExpectWord("drop"));
    if (AcceptWord("index")) {
      auto stmt = std::make_unique<DropIndexStmt>();
      if (AcceptWord("if")) {
        MAYBMS_RETURN_NOT_OK(ExpectWord("exists"));
        stmt->if_exists = true;
      }
      MAYBMS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
      return StatementPtr(std::move(stmt));
    }
    MAYBMS_RETURN_NOT_OK(ExpectWord("table"));
    auto stmt = std::make_unique<DropTableStmt>();
    if (AcceptWord("if")) {
      MAYBMS_RETURN_NOT_OK(ExpectWord("exists"));
      stmt->if_exists = true;
    }
    MAYBMS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("table name"));
    return StatementPtr(std::move(stmt));
  }

  // --- select --------------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> first, ParseSelectCore());
    SelectStmt* tail = first.get();
    while (Peek().IsWord("union")) {
      Advance();
      bool all = AcceptWord("all");
      MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> next, ParseSelectCore());
      next->union_all = all;
      tail->union_next = std::move(next);
      tail = tail->union_next.get();
    }
    return first;
  }

  // One select block (no UNION), or a bare repair-key / pick-tuples query
  // (wrapped into SELECT * FROM <construct>).
  Result<std::unique_ptr<SelectStmt>> ParseSelectCore() {
    if (Peek().IsWord("repair") || Peek().IsWord("pick")) {
      MAYBMS_ASSIGN_OR_RETURN(TableRefPtr ref, ParseRepairOrPick());
      auto sel = std::make_unique<SelectStmt>();
      SelectItem item;
      item.expr = std::make_unique<StarExpr>();
      sel->items.push_back(std::move(item));
      sel->from.push_back(std::move(ref));
      return sel;
    }
    if (Peek().IsSymbol("(")) {
      // Parenthesized select (e.g. the left side of a UNION).
      Advance();
      MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
      MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
      return sel;
    }
    MAYBMS_RETURN_NOT_OK(ExpectWord("select"));
    auto sel = std::make_unique<SelectStmt>();
    if (AcceptWord("possible")) {
      sel->possible = true;
    } else if (AcceptWord("distinct")) {
      sel->distinct = true;
    }
    do {
      MAYBMS_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      sel->items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    if (AcceptWord("from")) {
      do {
        MAYBMS_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
        sel->from.push_back(std::move(ref));
      } while (AcceptSymbol(","));
    }
    if (AcceptWord("where")) {
      MAYBMS_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (AcceptWord("group")) {
      MAYBMS_RETURN_NOT_OK(ExpectWord("by"));
      do {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel->group_by.push_back(std::move(e));
      } while (AcceptSymbol(","));
    }
    if (AcceptWord("order")) {
      MAYBMS_RETURN_NOT_OK(ExpectWord("by"));
      do {
        OrderItem item;
        MAYBMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptWord("desc")) {
          item.descending = true;
        } else {
          AcceptWord("asc");
        }
        sel->order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptWord("limit")) {
      if (Peek().type != TokenType::kInteger) {
        MAYBMS_RETURN_NOT_OK(Unexpected("limit count"));
      }
      sel->limit = Advance().int_value;
    }
    return sel;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      Advance();
      item.expr = std::make_unique<StarExpr>();
      return item;
    }
    // table.* ?
    if (Peek().type == TokenType::kIdentifier && Peek(1).IsSymbol(".") &&
        Peek(2).IsSymbol("*")) {
      std::string table = Advance().text;
      Advance();
      Advance();
      item.expr = std::make_unique<StarExpr>(std::move(table));
      return item;
    }
    MAYBMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (AcceptWord("as")) {
      MAYBMS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
    } else if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
      item.alias = Advance().text;
    }
    return item;
  }

  // --- table references ----------------------------------------------------

  Result<TableRefPtr> ParseTableRef() {
    TableRefPtr ref;
    const Token& first = Peek();
    if (Peek().IsWord("repair") || Peek().IsWord("pick")) {
      MAYBMS_ASSIGN_OR_RETURN(ref, ParseRepairOrPick());
    } else if (Peek().IsSymbol("(")) {
      Advance();
      if (Peek().IsWord("repair") || Peek().IsWord("pick")) {
        MAYBMS_ASSIGN_OR_RETURN(ref, ParseRepairOrPick());
        MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
      } else {
        MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
        MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
        ref = std::make_unique<SubqueryRef>(std::move(sel));
      }
    } else {
      MAYBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
      ref = std::make_unique<BaseTableRef>(std::move(name));
    }
    Tag(ref.get(), first);
    if (AcceptWord("as")) {
      MAYBMS_ASSIGN_OR_RETURN(ref->alias, ExpectIdentifier("table alias"));
    } else if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
      ref->alias = Advance().text;
    }
    return ref;
  }

  Result<TableRefPtr> ParseRepairOrPick() {
    if (AcceptWord("repair")) {
      MAYBMS_RETURN_NOT_OK(ExpectWord("key"));
      auto ref = std::make_unique<RepairKeyRef>();
      do {
        MAYBMS_ASSIGN_OR_RETURN(ColumnRefExpr col, ParseQualifiedColumn());
        ref->key_columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
      MAYBMS_RETURN_NOT_OK(ExpectWord("in"));
      MAYBMS_ASSIGN_OR_RETURN(ref->input, ParseConstructInput());
      if (AcceptWord("weight")) {
        MAYBMS_RETURN_NOT_OK(ExpectWord("by"));
        MAYBMS_ASSIGN_OR_RETURN(ref->weight, ParseExpr());
      }
      return TableRefPtr(std::move(ref));
    }
    MAYBMS_RETURN_NOT_OK(ExpectWord("pick"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("tuples"));
    MAYBMS_RETURN_NOT_OK(ExpectWord("from"));
    auto ref = std::make_unique<PickTuplesRef>();
    MAYBMS_ASSIGN_OR_RETURN(ref->input, ParseConstructInput());
    if (AcceptWord("independently")) ref->independently = true;
    if (AcceptWord("with")) {
      MAYBMS_RETURN_NOT_OK(ExpectWord("probability"));
      MAYBMS_ASSIGN_OR_RETURN(ref->probability, ParseExpr());
    }
    return TableRefPtr(std::move(ref));
  }

  // The <t-certain-query> input of repair-key / pick-tuples: a table name
  // or a parenthesized select.
  Result<TableRefPtr> ParseConstructInput() {
    if (Peek().IsSymbol("(")) {
      Advance();
      MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
      MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
      return TableRefPtr(std::make_unique<SubqueryRef>(std::move(sel)));
    }
    MAYBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    return TableRefPtr(std::make_unique<BaseTableRef>(std::move(name)));
  }

  Result<ColumnRefExpr> ParseQualifiedColumn() {
    const Token& first_tok = Peek();
    MAYBMS_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column name"));
    if (AcceptSymbol(".")) {
      MAYBMS_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier("column name"));
      ColumnRefExpr col(std::move(first), std::move(second));
      Tag(&col, first_tok);
      return col;
    }
    ColumnRefExpr col("", std::move(first));
    Tag(&col, first_tok);
    return col;
  }

  // --- expressions (precedence climbing) -----------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptWord("or")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptWord("and")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptWord("not")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (Peek().IsWord("is")) {
      Advance();
      bool negated = AcceptWord("not");
      MAYBMS_RETURN_NOT_OK(ExpectWord("null"));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
    }
    // [NOT] IN (subquery | value list)
    bool negated_in = false;
    if (Peek().IsWord("not") && Peek(1).IsWord("in")) {
      Advance();
      negated_in = true;
    }
    if (Peek().IsWord("in")) {
      Advance();
      MAYBMS_RETURN_NOT_OK(ExpectSymbol("("));
      if (Peek().IsWord("select") || Peek().IsWord("repair") || Peek().IsWord("pick")) {
        MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
        MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
        return ExprPtr(std::make_unique<InSubqueryExpr>(std::move(left), std::move(sub),
                                                        negated_in));
      }
      // Value list: rewrite to a chain of (in)equalities. The operand
      // expression tree is reused across comparisons via a prototype copy
      // being unavailable (Exprs are move-only), so we parse into a
      // disjunction re-using ToString-identical clones of simple operands.
      std::vector<ExprPtr> values;
      do {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        values.push_back(std::move(v));
      } while (AcceptSymbol(","));
      MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr chain,
                              BuildInList(std::move(left), std::move(values), negated_in));
      return chain;
    }
    struct OpMap {
      const char* symbol;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"==", BinaryOp::kEq}, {"<>", BinaryOp::kNe},
        {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
        {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (Peek().IsSymbol(m.symbol)) {
        Advance();
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return ExprPtr(std::make_unique<BinaryExpr>(m.op, std::move(left),
                                                    std::move(right)));
      }
    }
    return left;
  }

  // expr IN (v1, v2, ...)  →  expr = v1 OR expr = v2 OR ...
  // Only column refs and literals can be cloned as the repeated operand.
  Result<ExprPtr> BuildInList(ExprPtr operand, std::vector<ExprPtr> values,
                              bool negated) {
    auto clone_operand = [&]() -> Result<ExprPtr> {
      switch (operand->kind) {
        case ExprKind::kColumnRef: {
          auto* col = static_cast<ColumnRefExpr*>(operand.get());
          return ExprPtr(std::make_unique<ColumnRefExpr>(col->table, col->column));
        }
        case ExprKind::kLiteral: {
          auto* lit = static_cast<LiteralExpr*>(operand.get());
          return ExprPtr(std::make_unique<LiteralExpr>(lit->value));
        }
        default:
          return Status::ParseError(
              "IN with a value list requires a column or literal on the left");
      }
    };
    ExprPtr chain;
    for (ExprPtr& v : values) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr lhs, clone_operand());
      auto eq = std::make_unique<BinaryExpr>(BinaryOp::kEq, std::move(lhs), std::move(v));
      if (!chain) {
        chain = std::move(eq);
      } else {
        chain = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(chain),
                                             std::move(eq));
      }
    }
    if (!chain) return Status::ParseError("empty IN list");
    if (negated) {
      chain = std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(chain));
    }
    return chain;
  }

  Result<ExprPtr> ParseAdditive() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().IsSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (Peek().IsSymbol("-")) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      Advance();
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().IsSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (Peek().IsSymbol("/")) {
        op = BinaryOp::kDiv;
      } else if (Peek().IsSymbol("%")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      Advance();
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(operand)));
    }
    if (AcceptSymbol("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Int(tok.int_value)));
      }
      case TokenType::kFloat: {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Double(tok.float_value)));
      }
      case TokenType::kString: {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::String(tok.text)));
      }
      case TokenType::kSymbol:
        if (tok.IsSymbol("(")) {
          Advance();
          MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
          return e;
        }
        break;
      case TokenType::kIdentifier: {
        if (tok.IsWord("null")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
        }
        if (tok.IsWord("true")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(true)));
        }
        if (tok.IsWord("false")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(false)));
        }
        // Function call?
        if (Peek(1).IsSymbol("(")) {
          const Token name_tok = Peek();
          std::string name = ToLower(Advance().text);
          Advance();  // '('
          std::vector<ExprPtr> args;
          if (!Peek().IsSymbol(")")) {
            do {
              if (Peek().IsSymbol("*")) {
                Advance();
                args.push_back(std::make_unique<StarExpr>());
              } else {
                MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
                args.push_back(std::move(e));
              }
            } while (AcceptSymbol(","));
          }
          MAYBMS_RETURN_NOT_OK(ExpectSymbol(")"));
          auto call =
              std::make_unique<FunctionCallExpr>(std::move(name), std::move(args));
          Tag(call.get(), name_tok);
          return ExprPtr(std::move(call));
        }
        // Column reference. Reserved words cannot be bare column names —
        // this catches malformed statements like "select from t" early.
        if (IsReserved(tok.text)) break;
        MAYBMS_ASSIGN_OR_RETURN(ColumnRefExpr col, ParseQualifiedColumn());
        return ExprPtr(std::make_unique<ColumnRefExpr>(std::move(col)));
      }
      default:
        break;
    }
    MAYBMS_RETURN_NOT_OK(Unexpected("an expression"));
    return Status::Internal("unreachable");
  }

  std::vector<Token> tokens_;
  LineIndex lines_;  // error/AST positions over the original text
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> ParseStatement(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), sql);
  return parser.ParseSingleStatement();
}

Result<std::vector<StatementPtr>> ParseScript(std::string_view sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), sql);
  return parser.ParseAll();
}

}  // namespace maybms
