#include "src/sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/common/str_util.h"

namespace maybms {

bool Token::IsSymbol(std::string_view s) const {
  return type == TokenType::kSymbol && text == s;
}

bool Token::IsWord(std::string_view word) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, word);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LineIndex::LineIndex(std::string_view sql) {
  line_starts_.push_back(0);
  for (size_t i = 0; i < sql.size(); ++i) {
    if (sql[i] == '\n') line_starts_.push_back(i + 1);
  }
}

void LineIndex::Lookup(size_t offset, uint32_t* line, uint32_t* col) const {
  size_t lo = 0, hi = line_starts_.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    (line_starts_[mid] <= offset ? lo : hi) = mid;
  }
  *line = static_cast<uint32_t>(lo + 1);
  *col = static_cast<uint32_t>(offset - line_starts_[lo] + 1);
}

std::string LineIndex::Format(size_t offset) const {
  uint32_t line = 1, col = 1;
  Lookup(offset, &line, &col);
  return StringFormat("%u:%u", line, col);
}

std::string OffsetLineCol(std::string_view sql, size_t offset) {
  return LineIndex(sql).Format(offset);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (sql[exp] == '+' || sql[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(sql[exp]))) {
          is_float = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StringFormat("unterminated string literal at %s",
                         OffsetLineCol(sql, tok.offset).c_str()));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto starts_with = [&](std::string_view op) {
      return sql.substr(i, op.size()) == op;
    };
    std::string_view two_char_ops[] = {"<=", ">=", "<>", "!=", "=="};
    bool matched = false;
    for (std::string_view op : two_char_ops) {
      if (starts_with(op)) {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(op);
        i += op.size();
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::string_view("(),.*=<>+-/%;").find(c) != std::string_view::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(StringFormat("unexpected character '%c' at %s", c,
                                           OffsetLineCol(sql, i).c_str()));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace maybms
