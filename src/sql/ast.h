// Abstract syntax tree for the MayBMS query language: SQL extended with
// the uncertainty-aware constructs of paper §2.2 — conf/aconf/tconf,
// possible, repair-key, pick-tuples, argmax, esum/ecount.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/types/value.h"

namespace maybms {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct SelectStmt;

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kStar,
  kUnary,
  kBinary,
  kFunctionCall,
  kInSubquery,
  kIsNull,
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  /// SQL-ish rendering, used in error messages and as default output
  /// column names.
  virtual std::string ToString() const = 0;

  const ExprKind kind;
  /// 1-based source position of the expression's first token (0 = unknown);
  /// binder errors cite it so the shell can point at the offending token.
  uint32_t line = 0;
  uint32_t col = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::string ToString() const override;

  Value value;
};

/// Possibly-qualified column reference: [table.]column.
struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string t, std::string c)
      : Expr(ExprKind::kColumnRef), table(std::move(t)), column(std::move(c)) {}
  std::string ToString() const override;

  std::string table;  ///< empty if unqualified
  std::string column;
};

/// '*' or 'table.*' in a select list or inside count(*).
struct StarExpr : Expr {
  explicit StarExpr(std::string t = "") : Expr(ExprKind::kStar), table(std::move(t)) {}
  std::string ToString() const override;

  std::string table;
};

enum class UnaryOp : uint8_t { kNot, kNegate };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  std::string ToString() const override;

  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp : uint8_t {
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
};

std::string_view BinaryOpToString(BinaryOp op);

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  std::string ToString() const override;

  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// Function call — scalar functions and all aggregates, including the
/// uncertainty-aware ones: conf(), aconf(ε,δ), tconf(), esum(e), ecount(e?),
/// argmax(arg, value), and the standard sum/count/avg/min/max.
struct FunctionCallExpr : Expr {
  FunctionCallExpr(std::string n, std::vector<ExprPtr> a)
      : Expr(ExprKind::kFunctionCall), name(std::move(n)), args(std::move(a)) {}
  std::string ToString() const override;

  std::string name;  ///< lower-cased
  std::vector<ExprPtr> args;
};

/// `expr IN (select ...)`. Per paper §2.2, uncertain subqueries may occur
/// here when the condition occurs positively.
struct InSubqueryExpr : Expr {
  InSubqueryExpr(ExprPtr op, std::unique_ptr<SelectStmt> sub, bool neg)
      : Expr(ExprKind::kInSubquery), operand(std::move(op)), subquery(std::move(sub)),
        negated(neg) {}
  ~InSubqueryExpr() override;
  std::string ToString() const override;

  ExprPtr operand;
  std::unique_ptr<SelectStmt> subquery;
  bool negated;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr op, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(op)), negated(neg) {}
  std::string ToString() const override;

  ExprPtr operand;
  bool negated;
};

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

enum class TableRefKind : uint8_t { kBaseTable, kSubquery, kRepairKey, kPickTuples };

struct TableRef {
  explicit TableRef(TableRefKind k) : kind(k) {}
  virtual ~TableRef() = default;

  const TableRefKind kind;
  std::string alias;  ///< empty if none
  /// 1-based source position of the reference's first token (0 = unknown).
  uint32_t line = 0;
  uint32_t col = 0;
};

using TableRefPtr = std::unique_ptr<TableRef>;

struct BaseTableRef : TableRef {
  explicit BaseTableRef(std::string n)
      : TableRef(TableRefKind::kBaseTable), name(std::move(n)) {}

  std::string name;
};

struct SubqueryRef : TableRef {
  explicit SubqueryRef(std::unique_ptr<SelectStmt> s);
  ~SubqueryRef() override;

  std::unique_ptr<SelectStmt> select;
};

/// `repair key <attrs> in <input> [weight by <expr>]` (paper §2.2 item 2):
/// nondeterministically chooses a maximal repair of the key in the input,
/// one possible world per combination of per-group choices.
struct RepairKeyRef : TableRef {
  RepairKeyRef() : TableRef(TableRefKind::kRepairKey) {}
  ~RepairKeyRef() override;

  std::vector<ColumnRefExpr> key_columns;
  TableRefPtr input;
  ExprPtr weight;  ///< nullable: uniform repairs when absent
};

/// `pick tuples from <input> [independently] [with probability <expr>]`:
/// the probabilistic relation of all possible subsets of the input.
struct PickTuplesRef : TableRef {
  PickTuplesRef() : TableRef(TableRefKind::kPickTuples) {}
  ~PickTuplesRef() override;

  TableRefPtr input;
  bool independently = false;
  ExprPtr probability;  ///< nullable: defaults to 0.5 (uniform subsets)
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind : uint8_t {
  kSelect,
  kCreateTable,
  kCreateTableAs,
  kInsert,
  kUpdate,
  kDelete,
  kDropTable,
  kAssert,        ///< ASSERT <query> / ASSERT CONFIDENCE >= p <query>
  kShowEvidence,  ///< SHOW EVIDENCE: constraint-store introspection
  kClearEvidence, ///< CLEAR EVIDENCE: drop all asserted constraints
  kSet,           ///< SET <knob> = <value>: session execution settings
  kExplain,       ///< EXPLAIN [ANALYZE] <stmt>: plan / execution trace
  kShowStats,     ///< SHOW STATS [LIKE 'pat']: metrics-registry snapshot
  kCreateIndex,   ///< CREATE INDEX <name> ON <table> (<column>)
  kDropIndex,     ///< DROP INDEX [IF EXISTS] <name>
  kShowIndexes,   ///< SHOW INDEXES: secondary-index catalog listing
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;

  const StatementKind kind;
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty if none
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt : Statement {
  SelectStmt() : Statement(StatementKind::kSelect) {}

  bool distinct = false;
  /// `select possible ...`: filter probability-0 tuples, eliminate
  /// duplicates, output t-certain (paper §2.2 item 1).
  bool possible = false;
  std::vector<SelectItem> items;
  std::vector<TableRefPtr> from;
  ExprPtr where;                  ///< nullable
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  /// UNION chain: this select UNION union_next (multiset union, §2.2).
  std::unique_ptr<SelectStmt> union_next;
  /// True if the UNION was spelled UNION ALL (always multiset). Plain
  /// UNION additionally deduplicates when both sides are t-certain.
  bool union_all = false;
};

struct ColumnDef {
  std::string name;
  TypeId type;
};

struct CreateTableStmt : Statement {
  CreateTableStmt() : Statement(StatementKind::kCreateTable) {}

  std::string name;
  std::vector<ColumnDef> columns;
};

struct CreateTableAsStmt : Statement {
  CreateTableAsStmt() : Statement(StatementKind::kCreateTableAs) {}

  std::string name;
  std::unique_ptr<SelectStmt> select;
};

struct InsertStmt : Statement {
  InsertStmt() : Statement(StatementKind::kInsert) {}

  std::string table;
  std::vector<std::string> columns;  ///< empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows;  ///< VALUES lists
  std::unique_ptr<SelectStmt> select;      ///< INSERT ... SELECT (or null)
};

struct UpdateStmt : Statement {
  UpdateStmt() : Statement(StatementKind::kUpdate) {}

  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< nullable
};

struct DeleteStmt : Statement {
  DeleteStmt() : Statement(StatementKind::kDelete) {}

  std::string table;
  ExprPtr where;  ///< nullable
};

struct DropTableStmt : Statement {
  DropTableStmt() : Statement(StatementKind::kDropTable) {}

  std::string name;
  bool if_exists = false;
};

/// `ASSERT <query>` / `CONDITION ON <query>`: conditions the database on
/// the event "the query has at least one answer" — the query result's
/// lineage is conjoined into the constraint store, worlds violating it are
/// pruned, and all later confidence answers become posteriors (Koch &
/// Olteanu, VLDB'08). `ASSERT CONFIDENCE >= p [FOR] <query>` instead
/// *checks* that the event's posterior confidence reaches `p`, changing
/// nothing (a guarded sanity assertion).
struct AssertStmt : Statement {
  AssertStmt() : Statement(StatementKind::kAssert) {}

  std::unique_ptr<SelectStmt> select;
  std::optional<double> min_confidence;  ///< set = check-only mode
};

struct ShowEvidenceStmt : Statement {
  ShowEvidenceStmt() : Statement(StatementKind::kShowEvidence) {}
};

struct ClearEvidenceStmt : Statement {
  ClearEvidenceStmt() : Statement(StatementKind::kClearEvidence) {}
};

/// `SET <knob> = <value>`: adjusts a session execution setting (e.g.
/// `SET dtree_node_budget = 4000000`, `SET conf_fallback = on`). Handled
/// by the engine facade (Database), not the planner — the knobs live in
/// DatabaseOptions. See DESIGN.md for the knob list.
struct SetStmt : Statement {
  SetStmt() : Statement(StatementKind::kSet) {}

  std::string name;        ///< knob name, lowercased
  std::string value_text;  ///< raw value spelling (word literals)
  std::optional<double> value_num;  ///< set for numeric values
  /// Source position of the value token (1-based; 0 = statement built
  /// programmatically). The engine's knob validation stamps its
  /// InvalidArgument errors with this, matching the parser's "at l:c"
  /// style — numeric knobs re-parse value_text strictly (whole token,
  /// range-checked) instead of trusting the lexer's partial conversion.
  uint32_t value_line = 0;
  uint32_t value_col = 0;
};

/// `EXPLAIN <stmt>` renders the bound plan without executing; `EXPLAIN
/// ANALYZE <stmt>` executes the inner statement normally (answers are
/// bit-identical to the untraced run) while collecting a per-operator
/// execution trace (src/obs/trace.h) rendered into the result message.
/// Handled by the Session, not the executor: tracing hooks into the
/// statement lifecycle (parse/bind/lock/execute phases) that only the
/// session sees end to end.
struct ExplainStmt : Statement {
  ExplainStmt() : Statement(StatementKind::kExplain) {}

  bool analyze = false;
  StatementPtr inner;  ///< never null; never itself an EXPLAIN
};

/// `SHOW STATS [LIKE '<pattern>']`: one (metric, value) row per counter /
/// histogram aggregate in the engine's metrics registry (src/obs/),
/// optionally filtered by a SQL LIKE pattern over the metric name.
struct ShowStatsStmt : Statement {
  ShowStatsStmt() : Statement(StatementKind::kShowStats) {}

  std::string pattern;  ///< empty = all metrics
};

/// `CREATE INDEX <name> ON <table> (<column>)`: a single-column B+ tree
/// secondary index (src/index/). Built eagerly; maintained incrementally
/// on INSERT and rebuilt lazily after other DML (see index_manager.h).
struct CreateIndexStmt : Statement {
  CreateIndexStmt() : Statement(StatementKind::kCreateIndex) {}

  std::string name;
  std::string table;
  std::string column;
};

struct DropIndexStmt : Statement {
  DropIndexStmt() : Statement(StatementKind::kDropIndex) {}

  std::string name;
  bool if_exists = false;
};

/// `SHOW INDEXES`: one (index_name, table_name, column_name) row per
/// registered secondary index, sorted by index name.
struct ShowIndexesStmt : Statement {
  ShowIndexesStmt() : Statement(StatementKind::kShowIndexes) {}
};

}  // namespace maybms
