// SQL lexer for the MayBMS dialect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace maybms {

enum class TokenType : uint8_t {
  kIdentifier,  ///< bare or keyword word (keywords resolved by the parser)
  kInteger,
  kFloat,
  kString,  ///< single-quoted literal, quotes stripped, '' unescaped
  kSymbol,  ///< punctuation / operator, text holds the exact symbol
  kEof,
};

/// One lexed token. `text` is the raw identifier/symbol (identifiers keep
/// original case; comparisons are case-insensitive), numeric fields hold
/// parsed literal values.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;  ///< byte offset in the input (for error messages)

  bool IsSymbol(std::string_view s) const;
  /// Case-insensitive identifier/keyword match.
  bool IsWord(std::string_view word) const;
};

/// Tokenizes `sql`. Comments ("-- ..." to end of line) are skipped.
/// Returns ParseError with offset context for malformed input.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace maybms
