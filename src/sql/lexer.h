// SQL lexer for the MayBMS dialect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace maybms {

enum class TokenType : uint8_t {
  kIdentifier,  ///< bare or keyword word (keywords resolved by the parser)
  kInteger,
  kFloat,
  kString,  ///< single-quoted literal, quotes stripped, '' unescaped
  kSymbol,  ///< punctuation / operator, text holds the exact symbol
  kEof,
};

/// One lexed token. `text` is the raw identifier/symbol (identifiers keep
/// original case; comparisons are case-insensitive), numeric fields hold
/// parsed literal values.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;  ///< byte offset in the input (for error messages)

  bool IsSymbol(std::string_view s) const;
  /// Case-insensitive identifier/keyword match.
  bool IsWord(std::string_view word) const;
};

/// Tokenizes `sql`. Comments ("-- ..." to end of line) are skipped.
/// Returns ParseError with line:col context for malformed input.
Result<std::vector<Token>> Tokenize(std::string_view sql);

/// Byte-offset → 1-based (line, col) mapping over one SQL text — the
/// single source of the position rule every sql-layer error shares (lexer
/// and parser errors, and the positions the parser stamps onto AST nodes
/// for binder errors). Construction indexes the newlines once; Lookup is
/// a binary search, so stamping many AST nodes stays O(log lines) each.
class LineIndex {
 public:
  explicit LineIndex(std::string_view sql);

  void Lookup(size_t offset, uint32_t* line, uint32_t* col) const;
  /// Lookup rendered as "line:col".
  std::string Format(size_t offset) const;

 private:
  std::vector<size_t> line_starts_;  // byte offset of each line start
};

/// One-shot convenience for error paths that position a single offset.
std::string OffsetLineCol(std::string_view sql, size_t offset);

}  // namespace maybms
