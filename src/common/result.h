// Result<T>: a value or a Status, in the style of arrow::Result.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace maybms {

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; undefined if !ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define MAYBMS_CONCAT_IMPL(a, b) a##b
#define MAYBMS_CONCAT(a, b) MAYBMS_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define MAYBMS_ASSIGN_OR_RETURN(lhs, expr)                            \
  MAYBMS_ASSIGN_OR_RETURN_IMPL(MAYBMS_CONCAT(_res_, __LINE__), lhs, expr)

#define MAYBMS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace maybms
