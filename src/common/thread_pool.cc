#include "src/common/thread_pool.h"

#include <algorithm>

namespace maybms {

namespace {

// Which pool (if any) the current thread is a worker of. Lets Submit keep
// nested submissions on the submitting worker's own deque (LIFO locality)
// and lets stealing start from a stable home slot.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

}  // namespace

unsigned ThreadPool::DefaultThreads() {
#ifdef MAYBMS_DEFAULT_THREADS_OVERRIDE
  // Build-time pin (cmake -DCMAKE_CXX_FLAGS=-DMAYBMS_DEFAULT_THREADS_OVERRIDE=4):
  // lets CI exercise the full suite under a parallel default on any host.
  return MAYBMS_DEFAULT_THREADS_OVERRIDE;
#else
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
#endif
}

ThreadPool::ThreadPool(unsigned num_threads) {
  parallelism_ = std::max(1u, num_threads);
  // The ParallelFor caller is one of the compute threads, so spawn one
  // fewer worker — num_threads=N means N runnable threads, not N+1.
  size_t n = parallelism_ - 1;
  deques_.resize(n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t target;
    if (tls_pool == this) {
      target = tls_worker_index;  // nested submit: stay local
    } else {
      target = next_deque_;
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
    deques_[target].push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker_index = index;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::function<void()> task;
    // Own deque first (LIFO: newest task, warm caches), then steal the
    // oldest task from a sibling (FIFO keeps stolen work coarse).
    if (!deques_[index].empty()) {
      task = std::move(deques_[index].back());
      deques_[index].pop_back();
    } else {
      for (size_t k = 1; k < deques_.size() && !task; ++k) {
        size_t victim = (index + k) % deques_.size();
        if (!deques_[victim].empty()) {
          task = std::move(deques_[victim].front());
          deques_[victim].pop_front();
          tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (task) {
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (stop_) return;
    cv_.wait(lock);
  }
}

void ThreadPool::RunChunks(const std::shared_ptr<ForState>& state) {
  while (true) {
    size_t chunk_begin, chunk_end;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->next >= state->end) return;
      chunk_begin = state->next;
      chunk_end = std::min(state->end, chunk_begin + state->grain);
      state->next = chunk_end;
    }
    state->fn(chunk_begin, chunk_end);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->completed += chunk_end - chunk_begin;
      if (state->completed == state->end - state->begin) {
        state->done_cv.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<size_t>(grain, 1);
  size_t n = end - begin;
  if (n <= grain) {
    fn(begin, end);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->next = begin;
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->fn = fn;

  size_t chunks = (n + grain - 1) / grain;
  size_t helpers = std::min(chunks - 1, workers_.size());
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { RunChunks(state); });
  }
  // The caller claims chunks too: even if every helper is busy elsewhere
  // (or queued behind this very call, in the nested case), the loop below
  // finishes the whole range by itself.
  RunChunks(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->completed == n; });
}

Status ThreadPool::ParallelForStatus(size_t begin, size_t end,
                                     const std::function<Status(size_t)>& fn) {
  if (end <= begin) return Status::OK();
  std::vector<Status> statuses(end - begin, Status::OK());
  ParallelFor(begin, end, 1, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t i = chunk_begin; i < chunk_end; ++i) {
      statuses[i - begin] = fn(i);
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;  // lowest index: deterministic
  }
  return Status::OK();
}

}  // namespace maybms
