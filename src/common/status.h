// Status: error propagation without exceptions, in the style used by
// database engines (RocksDB, Arrow). Engine code paths return Status or
// Result<T> (see result.h) instead of throwing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace maybms {

/// Error category for a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTypeError,
  kParseError,
  kBindError,
  kExecutionError,
  kOutOfRange,
  kNotImplemented,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for a status code (e.g. "Parse error").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation: either OK or an error code plus message.
///
/// The OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<Code>: <message>" or "OK".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define MAYBMS_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::maybms::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace maybms
