#include "src/common/status.h"

namespace maybms {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace maybms
