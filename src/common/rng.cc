#include "src/common/rng.h"

namespace maybms {

Rng::Rng(uint64_t seed) {
  state_ = 0;
  Next();
  state_ += (static_cast<__uint128_t>(seed) << 64) | (seed * 0x9e3779b97f4a7c15ULL);
  Next();
}

uint64_t Rng::Next() {
  state_ = state_ * kMultiplier + kIncrement;
  // XSL-RR output function: xor-fold the 128-bit state, then rotate by the
  // top 6 bits.
  uint64_t xored = static_cast<uint64_t>(state_ >> 64) ^ static_cast<uint64_t>(state_);
  unsigned rot = static_cast<unsigned>(state_ >> 122);
  return (xored >> rot) | (xored << ((-rot) & 63));
}

double Rng::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace maybms
