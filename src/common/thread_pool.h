// A small work-stealing thread pool for intra-query parallelism.
//
// Workers keep per-thread deques: a worker pops its own deque LIFO (cache
// locality for nested submissions) and steals FIFO from its siblings when
// its own deque runs dry. ParallelFor() is the primitive everything in the
// engine builds on: the caller participates in chunk execution, so nested
// ParallelFor calls from inside a worker task always make progress (the
// waiter drains its own chunk counter before blocking) — the pool cannot
// deadlock on recursive parallelism.
//
// Determinism contract: ParallelFor chunk boundaries depend only on
// (begin, end, grain), never on the number of threads or on scheduling.
// Callers that write results into per-chunk slots and fold them in index
// order therefore produce bit-identical output at any thread count — the
// property the parallel engine's parity and determinism tests pin down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace maybms {

class ThreadPool {
 public:
  /// A pool of `num_threads` total compute threads (clamped to >= 1):
  /// since the caller of ParallelFor always participates, only
  /// num_threads - 1 workers are spawned. The pool is usable from any
  /// thread, including from inside its own worker tasks.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the participating caller).
  unsigned num_threads() const { return parallelism_; }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks
  /// of at most `grain` items (grain clamped to >= 1). Blocks until every
  /// chunk has finished. The calling thread executes chunks itself while
  /// idle workers steal the rest; fn must be thread-safe. Chunk boundaries
  /// are a pure function of (begin, end, grain).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// ParallelFor over single indexes with Status-returning work: per-index
  /// statuses land in slots and the FIRST failure in index order is
  /// returned — the deterministic error-propagation contract every
  /// parallel operator shares.
  Status ParallelForStatus(size_t begin, size_t end,
                           const std::function<Status(size_t)>& fn);

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static unsigned DefaultThreads();

  /// Observability: tasks executed by workers and how many of those were
  /// stolen from a sibling's deque (relaxed counters; the metrics
  /// registry snapshots them, see src/obs/metrics.h).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

 private:
  // Shared state of one ParallelFor: helpers hold a shared_ptr so a helper
  // task that only starts after the caller returned finds the chunk
  // counter exhausted instead of dangling stack state.
  struct ForState {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t next = 0;       // next unclaimed item index (guarded by mu)
    size_t completed = 0;  // items finished (guarded by mu)
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    std::function<void(size_t, size_t)> fn;
  };

  static void RunChunks(const std::shared_ptr<ForState>& state);

  void Submit(std::function<void()> task);
  void WorkerLoop(size_t index);

  std::mutex mu_;                // guards deques_ and stop_
  std::condition_variable cv_;   // wakes idle workers
  std::vector<std::deque<std::function<void()>>> deques_;
  size_t next_deque_ = 0;        // round-robin target for external submits
  bool stop_ = false;
  unsigned parallelism_ = 1;     // workers_.size() + 1 (the caller)
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::vector<std::thread> workers_;
};

}  // namespace maybms
