// Deterministic pseudo-random number generation (PCG64). All randomized
// engine components (Monte Carlo confidence, world sampling, workload
// generators) take an explicit Rng so runs are reproducible.
//
// Fully inline: the Karp-Luby trial kernel draws tens of millions of
// uniforms per aconf() call, so the generator must compile into its loop.
#pragma once

#include <cstdint>

namespace maybms {

/// PCG-XSL-RR 128/64 generator (O'Neill, 2014). Deterministic, seedable,
/// passes statistical test batteries; far better than std::minstd and much
/// cheaper than std::mt19937_64 to seed and copy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    state_ = 0;
    Next();
    state_ += (static_cast<__uint128_t>(seed) << 64) | (seed * 0x9e3779b97f4a7c15ULL);
    Next();
  }

  /// Next uniform 64-bit value.
  uint64_t Next() {
    state_ = state_ * kMultiplier + kIncrement;
    // XSL-RR output function: xor-fold the 128-bit state, then rotate by the
    // top 6 bits.
    uint64_t xored =
        static_cast<uint64_t>(state_ >> 64) ^ static_cast<uint64_t>(state_);
    unsigned rot = static_cast<unsigned>(state_ >> 122);
    return (xored >> rot) | (xored << ((-rot) & 63));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    // 53 random bits scaled into [0, 1).
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method with rejection for exact uniformity.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

 private:
  __uint128_t state_;
  static constexpr __uint128_t kMultiplier =
      (static_cast<__uint128_t>(2549297995355413924ULL) << 64) |
      4865540595714422341ULL;
  static constexpr __uint128_t kIncrement =
      (static_cast<__uint128_t>(6364136223846793005ULL) << 64) |
      1442695040888963407ULL;
};

}  // namespace maybms
