// Deterministic pseudo-random number generation (PCG64). All randomized
// engine components (Monte Carlo confidence, world sampling, workload
// generators) take an explicit Rng so runs are reproducible.
#pragma once

#include <cstdint>

namespace maybms {

/// PCG-XSL-RR 128/64 generator (O'Neill, 2014). Deterministic, seedable,
/// passes statistical test batteries; far better than std::minstd and much
/// cheaper than std::mt19937_64 to seed and copy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  __uint128_t state_;
  static constexpr __uint128_t kMultiplier =
      (static_cast<__uint128_t>(2549297995355413924ULL) << 64) |
      4865540595714422341ULL;
  static constexpr __uint128_t kIncrement =
      (static_cast<__uint128_t>(6364136223846793005ULL) << 64) |
      1442695040888963407ULL;
};

}  // namespace maybms
