// Open-addressed (hash, row-number) multimap used by hash joins, group-by,
// and duplicate elimination: one flat array instead of a heap-allocated
// bucket vector per key. Callers keep the actual keys in their own row
// storage and re-check equality on hash matches.
#pragma once

#include <cstdint>
#include <vector>

namespace maybms {

/// fmix64 finalizer (murmur3). Every table here masks hashes with a power
/// of two, so low bits must depend on all input bits; apply this to any
/// hand-rolled FNV-style hash before insertion.
inline uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

class HashRowIndex {
 public:
  static constexpr uint32_t kNoRow = 0xffffffffu;

  explicit HashRowIndex(size_t expected = 0) { Rehash(CapacityFor(expected)); }

  void Insert(uint64_t h, uint32_t row) {
    if ((count_ + 1) * 4 >= hash_.size() * 3) Rehash(hash_.size() * 2);
    size_t mask = hash_.size() - 1;
    size_t slot = static_cast<size_t>(h) & mask;
    while (row_[slot] != kNoRow) slot = (slot + 1) & mask;
    hash_[slot] = h;
    row_[slot] = row;
    ++count_;
  }

  /// Calls f(row) for every entry with this hash, in insertion order;
  /// f returns false to stop early.
  template <typename F>
  void ForEach(uint64_t h, F&& f) const {
    size_t mask = hash_.size() - 1;
    size_t slot = static_cast<size_t>(h) & mask;
    while (row_[slot] != kNoRow) {
      if (hash_[slot] == h && !f(row_[slot])) return;
      slot = (slot + 1) & mask;
    }
  }

  size_t size() const { return count_; }

 private:
  static size_t CapacityFor(size_t expected) {
    size_t cap = 64;
    while (cap * 3 < expected * 4) cap *= 2;
    return cap;
  }

  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old_hash = std::move(hash_);
    std::vector<uint32_t> old_row = std::move(row_);
    hash_.assign(new_cap, 0);
    row_.assign(new_cap, kNoRow);
    size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_row.size(); ++i) {
      if (old_row[i] == kNoRow) continue;
      size_t slot = static_cast<size_t>(old_hash[i]) & mask;
      while (row_[slot] != kNoRow) slot = (slot + 1) & mask;
      hash_[slot] = old_hash[i];
      row_[slot] = old_row[i];
    }
  }

  std::vector<uint64_t> hash_;
  std::vector<uint32_t> row_;
  size_t count_ = 0;
};

}  // namespace maybms
