// Small string helpers shared across the engine.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace maybms {

/// ASCII lower-casing (SQL identifiers and keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Splits on a delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace maybms
