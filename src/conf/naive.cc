#include "src/conf/naive.h"

#include "src/prob/world_enum.h"

namespace maybms {

Result<double> NaiveConfidence(const Dnf& dnf, const WorldTable& wt,
                               uint64_t max_worlds) {
  if (dnf.IsEmpty()) return 0.0;
  if (dnf.HasEmptyClause()) return 1.0;
  double p = 0;
  Status st = EnumerateWorlds(wt, dnf.Variables(), max_worlds, [&](const World& w) {
    for (const Condition& clause : dnf.clauses()) {
      if (w.Satisfies(clause)) {
        p += w.probability;
        return;
      }
    }
  });
  MAYBMS_RETURN_NOT_OK(st);
  return p;
}

}  // namespace maybms
