// Optimal Monte Carlo estimation (Dagum, Karp, Luby, Ross — "An Optimal
// Algorithm for Monte Carlo Estimation", SIAM J. Comput. 29(5), 2000).
//
// The paper (§2.3) combines the Karp-Luby estimator with the DKLR
// "optimal algorithm ... based on sequential analysis [which] determines
// the number of invocations of the Karp-Luby estimator needed to achieve
// the required bound by running the estimator a small number of times to
// estimate its mean and variance."
//
// This file implements both the Stopping Rule Algorithm (SRA) and the
// three-phase approximation algorithm AA, plus aconf(ε,δ) on DNF lineage.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"

namespace maybms {

class DTreeCache;
class ThreadPool;
struct ConfPhaseCounters;  // src/obs/metrics.h

/// A randomized experiment producing values in [0, 1].
using TrialFn = std::function<double(Rng*)>;

/// Produces independent TrialFn instances: each returned trial owns its
/// own scratch state, so distinct instances may run on distinct threads.
using TrialFactory = std::function<TrialFn()>;

/// Outcome of a sequential estimation run.
struct MonteCarloResult {
  double estimate = 0;
  uint64_t samples = 0;  ///< total trials consumed (all phases)
};

/// Knobs for the DKLR algorithms.
struct MonteCarloOptions {
  /// Hard cap on total trials (guards #P-hard worst cases); 0 = unlimited.
  uint64_t max_samples = 200'000'000;
  /// Batched (parallel-capable) sampling: trials per RNG substream batch.
  /// Batch k of a seeded run draws from Rng(SubstreamSeed(phase_seed, k)),
  /// so the trial-value sequence depends only on the seed — never on the
  /// thread count.
  uint64_t sample_batch_size = 2048;
  /// Max batches materialized per scheduling wave in the seeded
  /// stopping-rule phases (waves start at one batch and double up to this
  /// cap). A pure scheduling knob: the trial stream and the stop index
  /// depend only on the seed and sample_batch_size, so changing the wave
  /// cap (or the thread count) never changes the estimate — larger waves
  /// just parallelize better while wasting more trials past the stopping
  /// point.
  uint64_t batches_per_wave = 8;
  /// Run Karp-Luby trials on the pre-kernel reference loop
  /// (KarpLubyEstimator::TrialReference) instead of the packed kernels.
  /// The two consume identical RNG draws and return identical outcomes on
  /// every input — this knob only exists so parity tests and the bench
  /// self-check can pin that equivalence (and measure the kernel speedup).
  bool use_reference_kernel = false;
  /// Cross-statement estimate cache (src/lineage/dtree_cache.h kind-2
  /// entries), or null to sample fresh every call. Non-owning: the
  /// Database wires the catalog's cache in per statement alongside
  /// ExactOptions::cache. Consulted only by the SEEDED entry points below
  /// — their result is a pure function of (lineage content, world version,
  /// base seed, ε, δ, sampling knobs), so a hit returns exactly the value
  /// a rerun would sample. The legacy session-RNG paths are never cached.
  DTreeCache* cache = nullptr;
  /// World-table version the lineage's probabilities were baked from (the
  /// probability axis of the estimate key; see dtree_cache.h).
  uint64_t world_version = 0;
  /// Observability sink (src/obs/metrics.h), or null when metrics are
  /// off. Counters only (trials, rejections, estimate-cache hits, call
  /// timing); never consulted for any sampling decision, and OUTSIDE the
  /// estimate cache key (BuildEstimateKey hashes named sampling knobs
  /// only), so attaching it cannot perturb cached estimates. Non-owning.
  ConfPhaseCounters* counters = nullptr;
};

/// Counter-based substream seeding (SplitMix64 finalizer over
/// base + k·golden-ratio): maps a (base seed, batch index) pair to the
/// seed of that batch's private RNG. Exposed so tests can pin the scheme.
uint64_t SubstreamSeed(uint64_t base_seed, uint64_t batch_index);

/// DKLR Stopping Rule Algorithm: runs trials until the running sum reaches
/// Υ₁ = 1 + (1+ε)·4(e−2)·ln(2/δ)/ε²; the output μ̂ = Υ₁/N satisfies
/// P(|μ̂ − μ| ≤ εμ) ≥ 1 − δ for any [0,1]-valued trial with mean μ > 0.
Result<MonteCarloResult> StoppingRuleEstimate(const TrialFn& trial, double epsilon,
                                              double delta, Rng* rng,
                                              const MonteCarloOptions& options = {});

/// DKLR ΑΑ algorithm (optimal up to constants): phase 1 estimates μ
/// roughly via SRA, phase 2 estimates the variance, phase 3 runs the
/// number of trials prescribed by the sequential analysis.
Result<MonteCarloResult> OptimalEstimate(const TrialFn& trial, double epsilon,
                                         double delta, Rng* rng,
                                         const MonteCarloOptions& options = {});

/// aconf(ε,δ): (ε,δ)-approximation of the confidence of a DNF — the
/// probability that the computed value deviates from the correct
/// probability p by more than ε·p is less than δ (paper §2.2). Combines
/// the Karp-Luby estimator with OptimalEstimate.
Result<MonteCarloResult> ApproxConfidence(const Dnf& dnf, const WorldTable& wt,
                                          double epsilon, double delta, Rng* rng,
                                          const MonteCarloOptions& options = {});

/// Same, over pre-compiled lineage (the batch engine's aconf path).
Result<MonteCarloResult> ApproxConfidence(CompiledDnf dnf, double epsilon,
                                          double delta, Rng* rng,
                                          const MonteCarloOptions& options = {});

/// (ε,δ)-estimate of P(Q ∧ C) over combined lineage whose original clauses
/// split into a query prefix [0, num_query_clauses) and a constraint
/// suffix: Karp-Luby coverage trials draw from the prefix and count only
/// when the sampled world also satisfies the constraint disjunction (the
/// conditioning subsystem's rejecting sampler — src/cond/posterior.h
/// divides the result by the exact P(C)). The caller must rule out the
/// zero-probability conjunction (the trial mean would be 0 and the
/// stopping rule would only terminate at the sample cap).
Result<MonteCarloResult> ApproxConjunctionConfidence(
    CompiledDnf dnf, size_t num_query_clauses, double epsilon, double delta,
    Rng* rng, const MonteCarloOptions& options = {});

// ---------------------------------------------------------------------------
// Seeded (deterministic, parallel-capable) estimation
// ---------------------------------------------------------------------------
//
// The sequential DKLR algorithms above consume one shared RNG stream, so
// their results depend on every preceding draw — fine for a single-threaded
// session, unusable for parallel sampling. The *seeded* variants instead
// draw trials in fixed-size batches on counter-based RNG substreams
// (SubstreamSeed): the trial-value sequence, the stopping decisions, and
// the final estimate are a pure function of (base_seed, epsilon, delta,
// options) — bit-identical whether computed serially (pool == nullptr) or
// on a pool of any size. The engines switch aconf() to this path whenever
// ExecOptions::num_threads > 1, deriving base_seed from the lineage
// content (LineageSeed in src/exec/conf_fallback.h) so repeated aconf
// statements over unchanged lineage are repeatable — and cacheable
// (MonteCarloOptions::cache).

/// DKLR AA over a deterministic batched trial stream. `make_trial` is
/// invoked once per batch task; each returned TrialFn must be independent
/// (own scratch). `pool` only changes wall-clock time, never the result.
Result<MonteCarloResult> OptimalEstimateSeeded(const TrialFactory& make_trial,
                                               double epsilon, double delta,
                                               uint64_t base_seed,
                                               const MonteCarloOptions& options = {},
                                               ThreadPool* pool = nullptr);

/// aconf(ε,δ) on compiled lineage via Karp-Luby trials on substreams.
Result<MonteCarloResult> ApproxConfidenceSeeded(CompiledDnf dnf, double epsilon,
                                                double delta, uint64_t base_seed,
                                                const MonteCarloOptions& options = {},
                                                ThreadPool* pool = nullptr);

/// ApproxConjunctionConfidence on deterministic substreams: the estimate of
/// P(Q ∧ C) is a pure function of (lineage, base_seed) — identical at any
/// thread count and across engines.
Result<MonteCarloResult> ApproxConjunctionConfidenceSeeded(
    CompiledDnf dnf, size_t num_query_clauses, double epsilon, double delta,
    uint64_t base_seed, const MonteCarloOptions& options = {},
    ThreadPool* pool = nullptr);

}  // namespace maybms
