// Optimal Monte Carlo estimation (Dagum, Karp, Luby, Ross — "An Optimal
// Algorithm for Monte Carlo Estimation", SIAM J. Comput. 29(5), 2000).
//
// The paper (§2.3) combines the Karp-Luby estimator with the DKLR
// "optimal algorithm ... based on sequential analysis [which] determines
// the number of invocations of the Karp-Luby estimator needed to achieve
// the required bound by running the estimator a small number of times to
// estimate its mean and variance."
//
// This file implements both the Stopping Rule Algorithm (SRA) and the
// three-phase approximation algorithm AA, plus aconf(ε,δ) on DNF lineage.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"

namespace maybms {

/// A randomized experiment producing values in [0, 1].
using TrialFn = std::function<double(Rng*)>;

/// Outcome of a sequential estimation run.
struct MonteCarloResult {
  double estimate = 0;
  uint64_t samples = 0;  ///< total trials consumed (all phases)
};

/// Knobs for the DKLR algorithms.
struct MonteCarloOptions {
  /// Hard cap on total trials (guards #P-hard worst cases); 0 = unlimited.
  uint64_t max_samples = 200'000'000;
};

/// DKLR Stopping Rule Algorithm: runs trials until the running sum reaches
/// Υ₁ = 1 + (1+ε)·4(e−2)·ln(2/δ)/ε²; the output μ̂ = Υ₁/N satisfies
/// P(|μ̂ − μ| ≤ εμ) ≥ 1 − δ for any [0,1]-valued trial with mean μ > 0.
Result<MonteCarloResult> StoppingRuleEstimate(const TrialFn& trial, double epsilon,
                                              double delta, Rng* rng,
                                              const MonteCarloOptions& options = {});

/// DKLR ΑΑ algorithm (optimal up to constants): phase 1 estimates μ
/// roughly via SRA, phase 2 estimates the variance, phase 3 runs the
/// number of trials prescribed by the sequential analysis.
Result<MonteCarloResult> OptimalEstimate(const TrialFn& trial, double epsilon,
                                         double delta, Rng* rng,
                                         const MonteCarloOptions& options = {});

/// aconf(ε,δ): (ε,δ)-approximation of the confidence of a DNF — the
/// probability that the computed value deviates from the correct
/// probability p by more than ε·p is less than δ (paper §2.2). Combines
/// the Karp-Luby estimator with OptimalEstimate.
Result<MonteCarloResult> ApproxConfidence(const Dnf& dnf, const WorldTable& wt,
                                          double epsilon, double delta, Rng* rng,
                                          const MonteCarloOptions& options = {});

/// Same, over pre-compiled lineage (the batch engine's aconf path).
Result<MonteCarloResult> ApproxConfidence(CompiledDnf dnf, double epsilon,
                                          double delta, Rng* rng,
                                          const MonteCarloOptions& options = {});

}  // namespace maybms
