#include "src/conf/exact.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/common/thread_pool.h"
#include "src/lineage/dtree.h"
#include "src/lineage/dtree_cache.h"
#include "src/obs/metrics.h"

// The LEGACY recursive solver (ExactOptions::use_legacy_solver). The
// default path compiles a d-tree instead (src/lineage/dtree.cc) and is
// substantially faster; this recursion is the reference its bit-identity
// contract is defined against, kept for parity tests and ablations.

namespace maybms {

namespace {

// A sub-DNF is a sorted, duplicate-free vector of interned clause ids.
using ClauseSet = std::vector<ClauseId>;

uint64_t HashClauseSet(const ClauseSet& set) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (ClauseId id : set) {
    h ^= id + 0x9e3779b9ULL + (h << 6) + (h >> 2);
  }
  return h;
}

struct MemoKey {
  ClauseSet set;
  uint64_t hash = 0;

  bool operator==(const MemoKey& other) const {
    return hash == other.hash && set == other.set;
  }
};

struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const { return static_cast<size_t>(k.hash); }
};

// True iff a's atoms are a subset of b's (both sorted by var, unique vars).
bool SpanSubset(AtomSpan a, AtomSpan b) {
  if (a.size > b.size) return false;
  size_t j = 0;
  for (const Atom& atom : a) {
    while (j < b.size && b[j].var < atom.var) ++j;
    if (j >= b.size || b[j].var != atom.var || b[j].asg != atom.asg) return false;
    ++j;
  }
  return true;
}

class ExactSolver {
 public:
  ExactSolver(CompiledDnf dnf, const ExactOptions& options, ExactStats* stats)
      : dnf_(std::move(dnf)), options_(options), stats_(stats) {
    size_t n_vars = dnf_.NumVars();
    var_occ_.assign(n_vars, 0);
    var_epoch_.assign(n_vars, 0);
    var_pos_.assign(n_vars, 0);
    asg_epoch_.assign(dnf_.NumVars() == 0 ? 0 : TotalProbSlots(), 0);
  }

  Result<double> SolveRoot(ThreadPool* pool) {
    // An empty clause (a valid DNF) can only occur in the root set:
    // AssignVar short-circuits instead of interning empty reductions, and
    // every other derived set is a subset of its parent. Checking here
    // keeps a per-node linear scan out of Solve().
    std::vector<ClauseId> root = dnf_.RootSet();
    for (ClauseId id : root) {
      if (dnf_.ClauseSize(id) == 0) {
        if (stats_) ++stats_->steps;
        BumpSteps();
        return 1.0;
      }
    }
    if (pool == nullptr) return Solve(std::move(root), 0);
    return SolveRootParallel(std::move(root), pool);
  }

  // Component-parallel root: probe the (subsumption-reduced) root set for
  // variable-disjoint components; when there is more than one, solve each
  // with a private solver over its own copy of the clause store. The
  // serial recursion computes exactly the same per-component probabilities
  // (components never share clause ids, so the shared memo contributes no
  // cross-component values) and folds them with the identical
  // `none *= 1 - p_i` product in component order — the parallel result is
  // bit-for-bit the serial one at any thread count.
  Result<double> SolveRootParallel(std::vector<ClauseId> root, ThreadPool* pool) {
    if (root.empty()) return Solve(std::move(root), 0);
    ClauseSet set = std::move(root);
    if (options_.remove_subsumed) RemoveSubsumed(&set);
    std::vector<ClauseSet> components =
        set.size() > 1 ? Components(set) : std::vector<ClauseSet>{};
    // Non-decomposable root: hand the already-reduced set to the serial
    // recursion (its own subsumption pass is idempotent — same result,
    // one less scan).
    if (components.size() <= 1) return Solve(std::move(set), 0);
    if (stats_) {
      ++stats_->steps;
      ++stats_->decompositions;
    }
    // One cross-shard step budget, seeded with the root node itself.
    std::atomic<uint64_t> shared_steps{steps_};
    shared_steps_ = &shared_steps;
    BumpSteps();
    const size_t n = components.size();
    // Shard components into at most kRootShards contiguous ranges: each
    // shard copies the clause store once and solves its components with one
    // private solver. The shard count is FIXED (not thread-derived) so the
    // per-solver max_steps budget — and with it success/failure — cannot
    // depend on the thread count.
    constexpr size_t kRootShards = 16;
    const size_t grain = std::max<size_t>(1, (n + kRootShards - 1) / kRootShards);
    const size_t num_shards = (n + grain - 1) / grain;
    std::vector<double> probs(n, 0.0);
    std::vector<Status> statuses(n, Status::OK());
    std::vector<ExactStats> shard_stats(stats_ != nullptr ? num_shards : 0);
    pool->ParallelFor(0, n, grain, [&](size_t chunk_begin, size_t chunk_end) {
      CompiledDnf copy = dnf_;
      ExactSolver sub(std::move(copy), options_,
                      stats_ != nullptr ? &shard_stats[chunk_begin / grain] : nullptr);
      sub.shared_steps_ = &shared_steps;
      for (size_t i = chunk_begin; i < chunk_end; ++i) {
        Result<double> r = sub.Solve(std::move(components[i]), 1);
        if (r.ok()) {
          probs[i] = *r;
        } else {
          statuses[i] = r.status();
        }
      }
    });
    shared_steps_ = nullptr;
    for (const Status& s : statuses) {
      if (!s.ok()) return s;  // first failed component in order
    }
    if (stats_) {
      for (const ExactStats& cs : shard_stats) {
        stats_->steps += cs.steps;
        stats_->decompositions += cs.decompositions;
        stats_->shannon_expansions += cs.shannon_expansions;
        stats_->max_depth = std::max(stats_->max_depth, cs.max_depth);
        stats_->cache_hits += cs.cache_hits;
        stats_->cache_entries += cs.cache_entries;
      }
    }
    double none = 1.0;
    for (double p : probs) none *= (1.0 - p);
    return 1.0 - none;
  }

 private:
  size_t TotalProbSlots() const {
    size_t slots = 0;
    for (size_t v = 0; v < dnf_.NumVars(); ++v) slots += dnf_.DomainSize(v);
    return slots;
  }
  size_t ProbSlot(LocalVar v, AsgId a) const {
    return static_cast<size_t>(dnf_.VarProbs(v) - dnf_.VarProbs(0)) + a;
  }

  // Counts one visited recursion node; returns the value to compare
  // against max_steps. In component-parallel mode the budget is the SHARED
  // cross-shard total (matching the serial cumulative semantics): whether
  // the total ever crosses max_steps depends only on the amount of work,
  // not on scheduling, so success/failure stays deterministic at any
  // thread count.
  uint64_t BumpSteps() {
    ++steps_;
    if (shared_steps_ != nullptr) {
      return shared_steps_->fetch_add(1, std::memory_order_relaxed) + 1;
    }
    return steps_;
  }

  Result<double> Solve(ClauseSet set, uint64_t depth) {
    if (stats_) {
      ++stats_->steps;
      stats_->max_depth = std::max(stats_->max_depth, depth);
    }
    uint64_t visited = BumpSteps();
    if (options_.max_steps != 0 && visited > options_.max_steps) {
      return Status::OutOfRange("exact confidence computation exceeded max_steps");
    }

    if (set.empty()) return 0.0;
    if (options_.remove_subsumed) RemoveSubsumed(&set);

    // Single clause: product of independent atom probabilities.
    if (set.size() == 1) return dnf_.ClauseProb(set[0]);

    // Memoization: distinct Shannon branches often reconverge to the same
    // residual sub-DNF (the sharing exploited by ws-trees). Interning makes
    // the key a plain id vector, moved (not copied) into the table. Sets of
    // two clauses resolve in a couple of nodes — caching them costs more
    // than re-solving.
    bool use_cache = options_.use_cache && set.size() > 2;
    MemoKey key;
    if (use_cache) {
      key.hash = HashClauseSet(set);
      key.set = std::move(set);
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        ++cache_hits_;
        if (stats_) ++stats_->cache_hits;
        return it->second;
      }
    }
    const ClauseSet& work = use_cache ? key.set : set;
    MAYBMS_ASSIGN_OR_RETURN(double p, SolveUncached(work, depth));
    // Hierarchical lineage decomposes without ever reconverging; stop
    // filling a cache that has produced no hit by the time it holds many
    // thousands of entries (probes stay on — they only cost the hash
    // already computed above).
    bool keep_filling = cache_hits_ > 0 || memo_.size() < kCacheNoHitCap;
    if (use_cache && keep_filling &&
        (options_.max_cache_entries == 0 || memo_.size() < options_.max_cache_entries)) {
      memo_.emplace(std::move(key), p);
      if (stats_) stats_->cache_entries = memo_.size();
    }
    return p;
  }

  Result<double> SolveUncached(const ClauseSet& set, uint64_t depth) {
    // (1) Decomposition into variable-disjoint independent components
    // (Components returns empty when the set is one component).
    std::vector<ClauseSet> components = Components(set);
    if (components.size() > 1) {
      if (stats_) ++stats_->decompositions;
      double none = 1.0;
      for (ClauseSet& comp : components) {
        MAYBMS_ASSIGN_OR_RETURN(double p, Solve(std::move(comp), depth + 1));
        none *= (1.0 - p);
      }
      return 1.0 - none;
    }

    // (2) Variable elimination: Shannon expansion over one variable.
    LocalVar var = ChooseVariable(set);
    if (stats_) ++stats_->shannon_expansions;

    // Assignments of `var` actually mentioned by the sub-DNF.
    std::vector<AsgId> mentioned;
    for (ClauseId id : set) {
      const Atom* atom = FindVar(dnf_.Clause(id), var);
      if (atom != nullptr) mentioned.push_back(atom->asg);
    }
    std::sort(mentioned.begin(), mentioned.end());
    mentioned.erase(std::unique(mentioned.begin(), mentioned.end()), mentioned.end());

    double total = 0;
    double mentioned_mass = 0;
    for (AsgId a : mentioned) {
      double pa = dnf_.AtomProbLocal(var, a);
      mentioned_mass += pa;
      if (pa == 0.0) continue;
      bool valid = false;
      ClauseSet assigned = AssignVar(set, var, a, &valid);
      double sub;
      if (valid) {
        sub = 1.0;
        // The branch is decided, but it still counts as one visited node so
        // step accounting stays comparable across representations.
        if (stats_) ++stats_->steps;
        BumpSteps();
      } else {
        MAYBMS_ASSIGN_OR_RETURN(sub, Solve(std::move(assigned), depth + 1));
      }
      total += pa * sub;
    }
    // Residual branch: var takes an assignment not mentioned in the DNF;
    // every clause mentioning var is false there.
    double other_mass = 1.0 - mentioned_mass;
    if (other_mass > 1e-15) {
      ClauseSet rest;
      rest.reserve(set.size());
      for (ClauseId id : set) {
        if (FindVar(dnf_.Clause(id), var) == nullptr) rest.push_back(id);
      }
      MAYBMS_ASSIGN_OR_RETURN(double sub, Solve(std::move(rest), depth + 1));
      total += other_mass * sub;
    }
    return total;
  }

  static const Atom* FindVar(AtomSpan span, LocalVar var) {
    const Atom* it = std::lower_bound(
        span.begin(), span.end(), var,
        [](const Atom& a, LocalVar v) { return a.var < v; });
    if (it != span.end() && it->var == var) return it;
    return nullptr;
  }

  // Conditions the set on var := asg. Clauses with a conflicting atom drop
  // out; a clause shrinking to empty makes the branch valid (*valid set).
  ClauseSet AssignVar(const ClauseSet& set, LocalVar var, AsgId asg, bool* valid) {
    ClauseSet out;
    out.reserve(set.size());
    for (ClauseId id : set) {
      AtomSpan span = dnf_.Clause(id);
      const Atom* atom = FindVar(span, var);
      if (atom == nullptr) {
        out.push_back(id);
        continue;
      }
      if (atom->asg != asg) continue;  // clause false under this branch
      if (span.size == 1) {
        *valid = true;
        return {};
      }
      scratch_atoms_.clear();
      for (const Atom& a : span) {
        if (a.var != var) scratch_atoms_.push_back(a);
      }
      out.push_back(dnf_.Intern(scratch_atoms_.data(), scratch_atoms_.size()));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // Connected components under "shares a variable", as sorted id sets.
  // Returns an empty vector for the (frequent) single-component case so
  // the caller skips materialization entirely.
  std::vector<ClauseSet> Components(const ClauseSet& set) {
    // Union-find over positions in `set`, joined through shared variables
    // via an epoch-stamped var -> first-position table.
    parent_.resize(set.size());
    for (size_t i = 0; i < set.size(); ++i) parent_[i] = i;
    auto find = [&](size_t x) {
      while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];
        x = parent_[x];
      }
      return x;
    };
    ++epoch_;
    for (size_t i = 0; i < set.size(); ++i) {
      for (const Atom& a : dnf_.Clause(set[i])) {
        if (var_epoch_[a.var] == epoch_) {
          parent_[find(i)] = find(var_pos_[a.var]);
        } else {
          var_epoch_[a.var] = epoch_;
          var_pos_[a.var] = static_cast<uint32_t>(i);
        }
      }
    }
    size_t root0 = find(0);
    bool single = true;
    for (size_t i = 1; i < set.size(); ++i) {
      if (find(i) != root0) {
        single = false;
        break;
      }
    }
    if (single) return {};
    std::vector<ClauseSet> components;
    std::unordered_map<size_t, size_t> root_to_component;
    for (size_t i = 0; i < set.size(); ++i) {
      size_t root = find(i);
      auto [it, inserted] = root_to_component.try_emplace(root, components.size());
      if (inserted) components.emplace_back();
      components[it->second].push_back(set[i]);
    }
    return components;  // position order preserves the sets' sortedness
  }

  LocalVar ChooseVariable(const ClauseSet& set) {
    // Occurrence counts over an epoch-stamped array: O(atoms), no allocs.
    ++epoch_;
    touched_.clear();
    for (ClauseId id : set) {
      for (const Atom& a : dnf_.Clause(id)) {
        if (var_epoch_[a.var] != epoch_) {
          var_epoch_[a.var] = epoch_;
          var_occ_[a.var] = 0;
          touched_.push_back(a.var);
        }
        ++var_occ_[a.var];
      }
    }
    switch (options_.heuristic) {
      case EliminationHeuristic::kFirstVariable: {
        // Local ids preserve global id order.
        return *std::min_element(touched_.begin(), touched_.end());
      }
      case EliminationHeuristic::kMaxOccurrence: {
        LocalVar best = touched_[0];
        uint32_t best_n = 0;
        for (LocalVar v : touched_) {
          uint32_t n = var_occ_[v];
          if (n > best_n || (n == best_n && v < best)) {
            best = v;
            best_n = n;
          }
        }
        return best;
      }
      case EliminationHeuristic::kMinCostEstimate: {
        // Distinct assignments per variable via a second epoch array over
        // flattened (var, asg) probability slots.
        ++asg_pass_;
        asg_count_.assign(touched_.size(), 0);
        // Map var -> index in touched_ through var_pos_ (reuse the slot).
        for (size_t i = 0; i < touched_.size(); ++i) {
          var_pos_[touched_[i]] = static_cast<uint32_t>(i);
        }
        for (ClauseId id : set) {
          for (const Atom& a : dnf_.Clause(id)) {
            size_t slot = ProbSlot(a.var, a.asg);
            if (asg_epoch_[slot] != asg_pass_) {
              asg_epoch_[slot] = asg_pass_;
              ++asg_count_[var_pos_[a.var]];
            }
          }
        }
        LocalVar best = touched_[0];
        double best_cost = std::numeric_limits<double>::infinity();
        size_t total = set.size();
        for (size_t i = 0; i < touched_.size(); ++i) {
          LocalVar v = touched_[i];
          uint32_t n = var_occ_[v];
          double branches = static_cast<double>(asg_count_[i]) + 1;
          double survivors = static_cast<double>(total - n) + 1;
          double cost = branches * survivors / (static_cast<double>(n) + 1);
          if (cost < best_cost || (cost == best_cost && v < best)) {
            best = v;
            best_cost = cost;
          }
        }
        return best;
      }
    }
    return touched_[0];
  }

  void RemoveSubsumed(ClauseSet* set) {
    // Interned ids are already duplicate-free; only pairwise absorption
    // remains (a clause is redundant if a more general clause's atoms are a
    // subset of its atoms). Quadratic, so capped like the Dnf version.
    constexpr size_t kSubsumptionLimit = 512;
    if (set->size() > kSubsumptionLimit) return;

    order_.assign(set->begin(), set->end());
    std::sort(order_.begin(), order_.end(), [&](ClauseId a, ClauseId b) {
      return dnf_.ClauseSize(a) < dnf_.ClauseSize(b);
    });
    ClauseSet kept;
    kept.reserve(order_.size());
    for (ClauseId cand : order_) {
      AtomSpan cand_span = dnf_.Clause(cand);
      bool subsumed = false;
      for (ClauseId k : kept) {
        if (SpanSubset(dnf_.Clause(k), cand_span)) {
          subsumed = true;
          break;
        }
      }
      if (!subsumed) kept.push_back(cand);
    }
    std::sort(kept.begin(), kept.end());
    *set = std::move(kept);
  }

  static constexpr size_t kCacheNoHitCap = 16384;

  CompiledDnf dnf_;
  const ExactOptions& options_;
  ExactStats* stats_;
  uint64_t steps_ = 0;
  // Component-parallel mode: the cross-shard step total the max_steps
  // budget applies to (null in serial mode, where steps_ is the budget).
  std::atomic<uint64_t>* shared_steps_ = nullptr;
  uint64_t cache_hits_ = 0;
  std::unordered_map<MemoKey, double, MemoKeyHash> memo_;

  // Reusable scratch (epoch-stamped so per-node work is O(touched)).
  std::vector<uint32_t> var_occ_;
  std::vector<uint64_t> var_epoch_;
  std::vector<uint32_t> var_pos_;
  std::vector<uint64_t> asg_epoch_;
  std::vector<uint32_t> asg_count_;
  std::vector<LocalVar> touched_;
  std::vector<size_t> parent_;
  std::vector<Atom> scratch_atoms_;
  std::vector<ClauseId> order_;
  uint64_t epoch_ = 0;
  uint64_t asg_pass_ = 0;
};

// ---------------------------------------------------------------------------
// Component-level cache path (ExactOptions::component_cache)
// ---------------------------------------------------------------------------
//
// On a whole-statement cache miss, the lineage's root set is partitioned
// into connected components exactly the way the compiler's root pass would
// (same subsumption kept-set, same first-occurrence component order), each
// component is answered from its kind-1 cache entry or compiled fresh as
// its own CompiledDnf, and the values fold as 1 − Π(1 − p_i) in component
// order — the identical arithmetic, in the identical order, the compiler's
// CompileIndep / width-1 / pair root paths perform. Under streaming ingest
// appended clauses arrive as NEW components (fresh variables), so a
// dashboard statement recompiles only the delta.
//
// Bit-identity of the per-component fresh compiles rests on CompiledDnf's
// canonicalization: local variable ids are a monotone remap of sorted
// global ids, so relative id order — and with it every heuristic
// tie-break, atom order, and clause sort — is preserved in the
// sub-lineage; reduced clauses always retain a component variable, so no
// memo set can ever span components. Step budgets are the one
// mode-specific axis (each component compiles under the REMAINING budget
// instead of one shared cumulative counter — same caveat as the
// documented CompileRootParallel boundary behavior); values that complete
// are bit-identical regardless.

// The compilers' root absorption pass (FullReduce / RemoveSubsumed): the
// kept set is exactly the clauses with no strict subset present, which is
// order-independent, so this standalone replication yields the same
// (ascending) set.
void ReduceRootSet(const CompiledDnf& dnf, std::vector<ClauseId>* set) {
  constexpr size_t kSubsumptionLimit = 512;  // matches both solvers
  if (set->size() > kSubsumptionLimit) return;
  std::vector<ClauseId> order(*set);
  std::sort(order.begin(), order.end(), [&](ClauseId a, ClauseId b) {
    return dnf.ClauseSize(a) < dnf.ClauseSize(b);
  });
  std::vector<ClauseId> kept;
  kept.reserve(order.size());
  for (ClauseId cand : order) {
    AtomSpan cand_span = dnf.Clause(cand);
    bool subsumed = false;
    for (ClauseId k : kept) {
      if (SpanSubset(dnf.Clause(k), cand_span)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(cand);
  }
  std::sort(kept.begin(), kept.end());
  *set = std::move(kept);
}

// Connected components of `set` under "shares a variable", in
// first-occurrence order with each component ascending (position order
// over the sorted set) — the partition and order Components() produces in
// both compilers.
std::vector<std::vector<ClauseId>> RootComponents(const CompiledDnf& dnf,
                                                  const std::vector<ClauseId>& set) {
  std::vector<size_t> parent(set.size());
  for (size_t i = 0; i < set.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<uint32_t> var_pos(dnf.NumVars(), 0xffffffffu);
  for (size_t i = 0; i < set.size(); ++i) {
    for (const Atom& a : dnf.Clause(set[i])) {
      if (var_pos[a.var] != 0xffffffffu) {
        parent[find(i)] = find(var_pos[a.var]);
      } else {
        var_pos[a.var] = static_cast<uint32_t>(i);
      }
    }
  }
  std::vector<std::vector<ClauseId>> components;
  std::unordered_map<size_t, size_t> root_to_component;
  for (size_t i = 0; i < set.size(); ++i) {
    auto [it, inserted] = root_to_component.try_emplace(find(i), components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(set[i]);
  }
  return components;
}

// Attempts the component-cached computation. Returns false when the
// lineage does not decompose (or closes trivially) — the caller falls
// through to the whole compile. On true, *out holds the result (or the
// first failed component's status, e.g. OutOfRange).
bool ComponentConfidence(const CompiledDnf& dnf, const WorldTable& wt,
                         const ExactOptions& options, DTreeCache* cache,
                         Result<double>* out) {
  std::vector<ClauseId> root = dnf.RootSet();
  for (ClauseId id : root) {
    if (dnf.ClauseSize(id) == 0) return false;  // decided: whole path is O(1)
  }
  if (options.remove_subsumed) ReduceRootSet(dnf, &root);
  if (root.size() < 2) return false;
  std::vector<std::vector<ClauseId>> components = RootComponents(dnf, root);
  if (components.size() < 2) return false;

  const uint64_t world_version = wt.version();
  const uint64_t budget = options.max_steps;
  uint64_t used = 0;
  std::vector<Atom> atoms;
  std::vector<uint32_t> offsets;
  double none = 1.0;
  for (const std::vector<ClauseId>& comp : components) {
    double cp;
    LineageKey ckey;
    const bool cacheable = comp.size() >= DTreeCache::kMinCachedClauses;
    if (cacheable) {
      ckey = BuildComponentKey(dnf, comp.data(), comp.size(), world_version,
                               options);
      if (cache->LookupComponent(ckey, &cp)) {
        if (options.counters != nullptr) {
          options.counters->component_hits.fetch_add(
              1, std::memory_order_relaxed);
        }
        none *= (1.0 - cp);
        continue;
      }
    }
    // Fresh compile of just this component over its global-atom content
    // (local atom order is var-sorted, and local→global is monotone, so
    // the CSR stays var-sorted as required).
    atoms.clear();
    offsets.assign(1, 0);
    for (ClauseId id : comp) {
      for (const Atom& a : dnf.Clause(id)) {
        atoms.push_back(Atom{dnf.GlobalVar(a.var), a.asg});
      }
      offsets.push_back(static_cast<uint32_t>(atoms.size()));
    }
    ExactOptions sub_options = options;
    if (budget != 0) {
      if (used >= budget) {
        *out = Status::OutOfRange(
            "exact confidence compilation exceeded max_steps");
        return true;
      }
      sub_options.max_steps = budget - used;
    }
    // The running budget and the compile_nodes counter both read the
    // compiler's own step count — no ExactStats sink, so the recursion
    // carries no per-node stats increments.
    DTreeCompiler compiler(
        CompiledDnf(atoms.data(), offsets.data(), comp.size(), wt),
        sub_options);
    Result<DTree> tree = compiler.Compile(nullptr);
    if (!tree.ok()) {
      *out = tree.status();
      return true;
    }
    used += compiler.StepsUsed();
    if (options.counters != nullptr) {
      options.counters->compiles.fetch_add(1, std::memory_order_relaxed);
      options.counters->compile_nodes.fetch_add(compiler.StepsUsed(),
                                                std::memory_order_relaxed);
    }
    cp = tree->root_value();
    if (cacheable) {
      cache->InsertComponent(ckey, cp,
                             std::make_shared<const DTree>(std::move(*tree)));
    }
    none *= (1.0 - cp);
  }
  *out = 1.0 - none;
  return true;
}

}  // namespace

namespace {

Result<double> ExactConfidenceImpl(CompiledDnf dnf, const WorldTable& wt,
                                   const ExactOptions& options,
                                   ExactStats* stats, ThreadPool* pool) {
  double p;
  ConfPhaseCounters* obs = options.counters;
  if (options.use_legacy_solver) {
    // The legacy recursion is the reference the d-tree (and with it the
    // compilation cache's) bit-identity contract is defined against: it
    // always recomputes, never consults or fills the cache.
    if (obs != nullptr) obs->compiles.fetch_add(1, std::memory_order_relaxed);
    ScopedNsTimer timer(obs != nullptr ? &obs->exact_ns : nullptr);
    ExactSolver solver(std::move(dnf), options, stats);
    MAYBMS_ASSIGN_OR_RETURN(p, solver.SolveRoot(pool));
    return std::min(1.0, std::max(0.0, p));
  }
  // Cross-statement compilation cache (src/lineage/dtree_cache.h), keyed
  // by canonical lineage content + the world table's distribution version
  // + an options fingerprint (budget included — a value compiled under a
  // looser budget never answers for a tighter one). Skipped for trivial
  // lineages (compilation is already in the key-probe noise floor) and
  // when the caller wants ExactStats (a hit has no step counts to report).
  DTreeCache* cache = options.cache;
  const bool use_cache =
      cache != nullptr && stats == nullptr &&
      dnf.original_clauses().size() >= DTreeCache::kMinCachedClauses;
  LineageKey key;
  if (use_cache) {
    key = BuildLineageKey(dnf, wt.version(), options);
    if (cache->Lookup(key, &p)) {  // stored values are clamped
      if (obs != nullptr) {
        obs->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      // Deliberately clock-free: the hit path is the warm-statement hot
      // path and its sub-microsecond duration is probe noise, not solver
      // time. exact_ns times real solver work (the miss tail) only.
      return p;
    }
  }
  // Miss (or uncacheable) tail: everything from here is real solver work
  // and lands in the conf-phase exact_ns total.
  ScopedNsTimer miss_timer(obs != nullptr ? &obs->exact_ns : nullptr);
  if (use_cache && options.component_cache) {
    // Whole-statement miss: try answering component-by-component, reusing
    // kind-1 entries for untouched components and compiling only the
    // delta. Bit-identical to the whole compile below (see the helper's
    // comment), so the kind-0 entry it fills is indistinguishable from
    // one the whole compile would have produced.
    Result<double> component_result = 0.0;
    if (ComponentConfidence(dnf, wt, options, cache, &component_result)) {
      MAYBMS_ASSIGN_OR_RETURN(p, component_result);
      p = std::min(1.0, std::max(0.0, p));
      cache->Insert(key, p);
      return p;
    }
  }
  // Node-count observability rides on the compiler's own budget counter
  // (StepsUsed()), so wiring obs counters attaches NO ExactStats sink and
  // the compile recursion runs the identical instruction stream with
  // metrics on or off.
  DTreeCompiler compiler(std::move(dnf), options, stats);
  const uint64_t c0 = obs != nullptr ? MonotonicNs() : 0;
  Result<double> compiled = compiler.CompileValue(pool);
  if (obs != nullptr) {
    obs->compiles.fetch_add(1, std::memory_order_relaxed);
    obs->compile_ns.fetch_add(MonotonicNs() - c0, std::memory_order_relaxed);
    obs->compile_nodes.fetch_add(compiler.StepsUsed(),
                                 std::memory_order_relaxed);
  }
  MAYBMS_ASSIGN_OR_RETURN(p, compiled);
  // Clamp tiny floating-point drift.
  p = std::min(1.0, std::max(0.0, p));
  // Budget failures returned above; only completed compilations persist.
  if (use_cache) cache->Insert(key, p);
  return p;
}

}  // namespace

Result<double> ExactConfidence(CompiledDnf dnf, const WorldTable& wt,
                               const ExactOptions& options, ExactStats* stats,
                               ThreadPool* pool) {
  // Count-only here: exact_ns is accumulated inside the impl around the
  // cache-miss tail, so warm cache hits stay clock-free (the registry's
  // overhead budget is set by exactly that path).
  if (ConfPhaseCounters* obs = options.counters; obs != nullptr) {
    obs->exact_calls.fetch_add(1, std::memory_order_relaxed);
  }
  return ExactConfidenceImpl(std::move(dnf), wt, options, stats, pool);
}

Result<double> ExactConfidence(const Dnf& dnf, const WorldTable& wt,
                               const ExactOptions& options, ExactStats* stats,
                               ThreadPool* pool) {
  return ExactConfidence(CompiledDnf(dnf, wt), wt, options, stats, pool);
}

}  // namespace maybms
