#include "src/conf/exact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace maybms {

namespace {

// Canonical clause-set key for the memo table.
struct MemoKey {
  std::vector<Condition> clauses;  // sorted
  size_t hash = 0;

  static MemoKey Make(const Dnf& dnf) {
    MemoKey key;
    key.clauses = dnf.clauses();
    std::sort(key.clauses.begin(), key.clauses.end());
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Condition& c : key.clauses) {
      h ^= c.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    key.hash = h;
    return key;
  }

  bool operator==(const MemoKey& other) const {
    return hash == other.hash && clauses == other.clauses;
  }
};

struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const { return k.hash; }
};

class ExactSolver {
 public:
  ExactSolver(const WorldTable& wt, const ExactOptions& options, ExactStats* stats)
      : wt_(wt), options_(options), stats_(stats) {}

  Result<double> Solve(Dnf dnf, uint64_t depth) {
    if (stats_) {
      ++stats_->steps;
      stats_->max_depth = std::max(stats_->max_depth, depth);
    }
    ++steps_;
    if (options_.max_steps != 0 && steps_ > options_.max_steps) {
      return Status::OutOfRange("exact confidence computation exceeded max_steps");
    }

    if (dnf.IsEmpty()) return 0.0;
    if (dnf.HasEmptyClause()) return 1.0;
    if (options_.remove_subsumed) dnf.RemoveSubsumed();

    // Single clause: product of independent atom probabilities.
    if (dnf.NumClauses() == 1) {
      return wt_.ConditionProb(dnf.clauses()[0]);
    }

    // Memoization: distinct Shannon branches often reconverge to the same
    // residual sub-DNF (the sharing exploited by ws-trees).
    MemoKey key;
    if (options_.use_cache) {
      key = MemoKey::Make(dnf);
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        if (stats_) ++stats_->cache_hits;
        return it->second;
      }
    }
    MAYBMS_ASSIGN_OR_RETURN(double p, SolveUncached(std::move(dnf), depth));
    if (options_.use_cache &&
        (options_.max_cache_entries == 0 || memo_.size() < options_.max_cache_entries)) {
      memo_.emplace(std::move(key), p);
      if (stats_) stats_->cache_entries = memo_.size();
    }
    return p;
  }

 private:
  Result<double> SolveUncached(Dnf dnf, uint64_t depth) {

    // (1) Decomposition into variable-disjoint independent components.
    std::vector<std::vector<size_t>> components = dnf.IndependentComponents();
    if (components.size() > 1) {
      if (stats_) ++stats_->decompositions;
      double none = 1.0;
      for (const std::vector<size_t>& comp : components) {
        Dnf sub;
        for (size_t idx : comp) sub.AddClause(dnf.clauses()[idx]);
        MAYBMS_ASSIGN_OR_RETURN(double p, Solve(std::move(sub), depth + 1));
        none *= (1.0 - p);
      }
      return 1.0 - none;
    }

    // (2) Variable elimination: Shannon expansion over one variable.
    VarId var = ChooseVariable(dnf);
    if (stats_) ++stats_->shannon_expansions;

    // Assignments of `var` actually mentioned by the DNF.
    std::vector<AsgId> mentioned;
    for (const Condition& c : dnf.clauses()) {
      if (auto a = c.Lookup(var)) mentioned.push_back(*a);
    }
    std::sort(mentioned.begin(), mentioned.end());
    mentioned.erase(std::unique(mentioned.begin(), mentioned.end()), mentioned.end());

    double total = 0;
    double mentioned_mass = 0;
    for (AsgId a : mentioned) {
      double pa = wt_.AtomProb(Atom{var, a});
      mentioned_mass += pa;
      if (pa == 0.0) continue;
      MAYBMS_ASSIGN_OR_RETURN(double sub, Solve(dnf.Assign(var, a), depth + 1));
      total += pa * sub;
    }
    // Residual branch: var takes an assignment not mentioned in the DNF;
    // every clause mentioning var is false there.
    double other_mass = 1.0 - mentioned_mass;
    if (other_mass > 1e-15) {
      MAYBMS_ASSIGN_OR_RETURN(double sub, Solve(dnf.DropVariable(var), depth + 1));
      total += other_mass * sub;
    }
    return total;
  }

 private:
  VarId ChooseVariable(const Dnf& dnf) const {
    // Count occurrences (clauses containing each variable).
    std::unordered_map<VarId, uint32_t> occurrences;
    for (const Condition& c : dnf.clauses()) {
      for (const Atom& a : c.atoms()) ++occurrences[a.var];
    }
    switch (options_.heuristic) {
      case EliminationHeuristic::kFirstVariable: {
        VarId best = occurrences.begin()->first;
        for (const auto& [v, n] : occurrences) best = std::min(best, v);
        return best;
      }
      case EliminationHeuristic::kMaxOccurrence: {
        VarId best = occurrences.begin()->first;
        uint32_t best_n = 0;
        for (const auto& [v, n] : occurrences) {
          if (n > best_n || (n == best_n && v < best)) {
            best = v;
            best_n = n;
          }
        }
        return best;
      }
      case EliminationHeuristic::kMinCostEstimate: {
        // Cost of expanding x ≈ (#branches) × (clauses that survive per
        // branch). Approximate the survivors by (total - occurrences):
        // clauses not mentioning x survive all branches.
        VarId best = occurrences.begin()->first;
        double best_cost = std::numeric_limits<double>::infinity();
        size_t total = dnf.NumClauses();
        for (const auto& [v, n] : occurrences) {
          std::unordered_map<AsgId, bool> asgs;
          for (const Condition& c : dnf.clauses()) {
            if (auto a = c.Lookup(v)) asgs[*a] = true;
          }
          double branches = static_cast<double>(asgs.size()) + 1;
          double survivors = static_cast<double>(total - n) + 1;
          double cost = branches * survivors / (static_cast<double>(n) + 1);
          if (cost < best_cost || (cost == best_cost && v < best)) {
            best = v;
            best_cost = cost;
          }
        }
        return best;
      }
    }
    return occurrences.begin()->first;
  }

  const WorldTable& wt_;
  const ExactOptions& options_;
  ExactStats* stats_;
  uint64_t steps_ = 0;
  std::unordered_map<MemoKey, double, MemoKeyHash> memo_;
};

}  // namespace

Result<double> ExactConfidence(const Dnf& dnf, const WorldTable& wt,
                               const ExactOptions& options, ExactStats* stats) {
  ExactSolver solver(wt, options, stats);
  MAYBMS_ASSIGN_OR_RETURN(double p, solver.Solve(dnf, 0));
  // Clamp tiny floating-point drift.
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace maybms
