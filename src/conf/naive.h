// Naive confidence computation by possible-world enumeration. Exponential
// in the number of variables; exists as the ground-truth oracle for tests
// and as the brute-force baseline in benchmarks.
#pragma once

#include <cstdint>

#include "src/common/result.h"
#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"

namespace maybms {

/// Sums the probability of every world (over the DNF's variables) that
/// satisfies at least one clause. Errors if more than `max_worlds` worlds
/// would be enumerated.
Result<double> NaiveConfidence(const Dnf& dnf, const WorldTable& wt,
                               uint64_t max_worlds = 1u << 22);

}  // namespace maybms
