// The Karp-Luby unbiased estimator for DNF counting, "in a modified version
// adapted to confidence computation in probabilistic databases" (paper
// §2.3, citing [2]).
//
// Coverage construction: let U = Σ_i P(C_i) (clause marginals). A trial
// samples a clause i with probability P(C_i)/U, then samples a world from
// the distribution conditioned on C_i being true. The Bernoulli outcome
// Z = 1 iff i is the *first* clause the world satisfies; E[Z] = P(⋃C_i)/U,
// so U·Z̄ is an unbiased estimate of the confidence.
//
// Trials run on PACKED KERNELS built once per estimator from the compiled
// lineage:
//   - clause atoms are flattened into per-position arrays (no clause-id
//     indirection in the scanning loop), with a dedicated branchless layout
//     when every coverage clause is a single atom — the dominant
//     tuple-level-uncertainty shape;
//   - per-variable cumulative distribution tables replace the inner
//     running-sum inverse-CDF loop (the partial sums are precomputed with
//     the identical left-to-right additions, so every draw maps to the
//     identical assignment);
//   - clause selection runs on a bucket-indexed lower bound over the
//     cumulative weights with an exactness correction, replacing the
//     branchy binary search;
//   - the conditioned rejection check reads the constraint suffix from the
//     same flattened atom arrays (the compiled evidence), not the clause
//     store.
// The kernels consume the SAME RNG draws in the SAME order as the
// reference implementation (TrialReference — the pre-kernel trial loop,
// kept for parity): for any Rng state, Trial and TrialReference return the
// same outcome and leave the generator in the same state. Seeded aconf
// streams are therefore bit-identical to the pre-kernel engine
// (MonteCarloOptions::use_reference_kernel and the parity tests pin this).
#pragma once

#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"

namespace maybms {

/// Per-thread trial state: the lazily-sampled world, epoch-stamped per
/// trial. One scratch per concurrent sampling thread lets many threads run
/// Trial() against the same (read-only) estimator. Each entry packs
/// (trial epoch << 32 | assignment) so the hot loop answers "sampled this
/// trial?" and "to what?" with a single load. Epochs start at 1; on the
/// (2^32-trial) wraparound the world resets.
struct KarpLubyScratch {
  std::vector<uint64_t> world;
  uint32_t epoch = 0;
};

/// Reusable trial generator over a fixed DNF.
class KarpLubyEstimator {
 public:
  /// Precomputes clause weights. The DNF must have consistent clauses
  /// (guaranteed for lineage built from Conditions).
  KarpLubyEstimator(const Dnf& dnf, const WorldTable& wt);

  /// Over pre-compiled lineage (batch-engine aconf path).
  explicit KarpLubyEstimator(CompiledDnf dnf);

  /// Conditioned sampler (posterior aconf, see src/cond/posterior.h): the
  /// compiled DNF's original clauses split into a QUERY prefix
  /// [0, num_query_clauses) and a CONSTRAINT suffix. Coverage trials draw
  /// from the query prefix as usual, but Z = 1 additionally requires the
  /// sampled world to satisfy at least one constraint clause — so
  /// E[Z] = P(query ∧ constraint) / TotalWeight(). Worlds violating the
  /// constraint are rejected by zeroing the trial, keeping the estimator
  /// unbiased; the caller divides by the exactly-known P(constraint).
  KarpLubyEstimator(CompiledDnf dnf, size_t num_query_clauses);

  /// Σ_i P(C_i): the normalization constant (upper bound on the
  /// confidence by the union bound).
  double TotalWeight() const { return total_weight_; }

  /// True if the DNF is trivially decided (no clauses / an empty clause /
  /// all clause weights zero); Trial() must not be called then.
  bool Trivial() const { return trivial_; }
  /// The trivial probability when Trivial() is true.
  double TrivialProbability() const { return trivial_probability_; }

  /// One Bernoulli trial Z with E[Z] = P(dnf)/TotalWeight(), using the
  /// estimator's internal scratch (single-threaded use only).
  bool Trial(Rng* rng) const;

  /// Same trial over caller-owned scratch. Thread-safe with respect to
  /// *this: concurrent callers with distinct scratches (and distinct RNGs)
  /// never touch shared mutable state.
  bool Trial(Rng* rng, KarpLubyScratch* scratch) const;

  /// The pre-kernel reference trial loop: identical outcomes and identical
  /// RNG consumption to Trial() on every input. Kept for parity tests and
  /// the bench self-check (MonteCarloOptions::use_reference_kernel).
  bool TrialReference(Rng* rng, KarpLubyScratch* scratch) const;

 private:
  void Init();
  void BuildKernels();
  AsgId AssignmentOf(LocalVar var, uint64_t tag, Rng* rng,
                     KarpLubyScratch* scratch) const;
  AsgId SampleVar(LocalVar var, uint64_t tag, Rng* rng,
                  KarpLubyScratch* scratch) const;
  static uint64_t BeginTrial(size_t num_vars, KarpLubyScratch* scratch);
  size_t SelectClause(double u) const;

  CompiledDnf dnf_;
  /// Clauses [0, num_coverage_) of original_clauses() are the coverage
  /// (query) clauses; the rest are the conditioning constraint disjunction.
  size_t num_coverage_ = 0;
  std::vector<double> cumulative_;  // cumulative clause weights
  double total_weight_ = 0;
  bool trivial_ = false;
  double trivial_probability_ = 0;

  // -- packed kernels (built once by BuildKernels) --------------------------

  /// Clause atoms flattened by POSITION in original_clauses() order:
  /// positions [pos_off_[j], pos_off_[j+1]) of pos_atoms_. Coverage prefix
  /// and constraint suffix share the arrays.
  std::vector<Atom> pos_atoms_;
  std::vector<uint32_t> pos_off_;
  /// All coverage clauses are single atoms: the scan reads one packed
  /// (asg << 32 | var) word per clause instead of spans.
  bool coverage_width1_ = false;
  std::vector<uint64_t> w1_atoms_;
  /// Per-variable cumulative distributions (partial sums in domain order),
  /// indexed by the compiled DNF's variable offsets.
  std::vector<double> var_cum_;
  std::vector<uint32_t> var_cum_off_;
  /// Clause-selection bucket index: start position of the lower-bound scan
  /// for u in bucket floor(u · sel_scale_).
  std::vector<uint32_t> sel_start_;
  double sel_scale_ = 0;

  mutable KarpLubyScratch scratch_;  // backs the single-threaded Trial()
};

}  // namespace maybms
