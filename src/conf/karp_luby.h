// The Karp-Luby unbiased estimator for DNF counting, "in a modified version
// adapted to confidence computation in probabilistic databases" (paper
// §2.3, citing [2]).
//
// Coverage construction: let U = Σ_i P(C_i) (clause marginals). A trial
// samples a clause i with probability P(C_i)/U, then samples a world from
// the distribution conditioned on C_i being true. The Bernoulli outcome
// Z = 1 iff i is the *first* clause the world satisfies; E[Z] = P(⋃C_i)/U,
// so U·Z̄ is an unbiased estimate of the confidence.
//
// Trials run over compiled lineage (CompiledDnf): clause scans walk one
// packed atom array and the partially-sampled world lives in flat
// epoch-stamped arrays indexed by dense variable ids — no hashing in the
// sampling loop.
#pragma once

#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"

namespace maybms {

/// Per-thread trial state: the lazily-sampled world, epoch-stamped per
/// trial. One scratch per concurrent sampling thread lets many threads run
/// Trial() against the same (read-only) estimator.
struct KarpLubyScratch {
  std::vector<AsgId> world_val;
  std::vector<uint64_t> world_epoch;
  uint64_t epoch = 0;
};

/// Reusable trial generator over a fixed DNF.
class KarpLubyEstimator {
 public:
  /// Precomputes clause weights. The DNF must have consistent clauses
  /// (guaranteed for lineage built from Conditions).
  KarpLubyEstimator(const Dnf& dnf, const WorldTable& wt);

  /// Over pre-compiled lineage (batch-engine aconf path).
  explicit KarpLubyEstimator(CompiledDnf dnf);

  /// Conditioned sampler (posterior aconf, see src/cond/posterior.h): the
  /// compiled DNF's original clauses split into a QUERY prefix
  /// [0, num_query_clauses) and a CONSTRAINT suffix. Coverage trials draw
  /// from the query prefix as usual, but Z = 1 additionally requires the
  /// sampled world to satisfy at least one constraint clause — so
  /// E[Z] = P(query ∧ constraint) / TotalWeight(). Worlds violating the
  /// constraint are rejected by zeroing the trial, keeping the estimator
  /// unbiased; the caller divides by the exactly-known P(constraint).
  KarpLubyEstimator(CompiledDnf dnf, size_t num_query_clauses);

  /// Σ_i P(C_i): the normalization constant (upper bound on the
  /// confidence by the union bound).
  double TotalWeight() const { return total_weight_; }

  /// True if the DNF is trivially decided (no clauses / an empty clause /
  /// all clause weights zero); Trial() must not be called then.
  bool Trivial() const { return trivial_; }
  /// The trivial probability when Trivial() is true.
  double TrivialProbability() const { return trivial_probability_; }

  /// One Bernoulli trial Z with E[Z] = P(dnf)/TotalWeight(), using the
  /// estimator's internal scratch (single-threaded use only).
  bool Trial(Rng* rng) const;

  /// Same trial over caller-owned scratch. Thread-safe with respect to
  /// *this: concurrent callers with distinct scratches (and distinct RNGs)
  /// never touch shared mutable state.
  bool Trial(Rng* rng, KarpLubyScratch* scratch) const;

 private:
  void Init();
  AsgId AssignmentOf(LocalVar var, Rng* rng, KarpLubyScratch* scratch) const;

  CompiledDnf dnf_;
  /// Clauses [0, num_coverage_) of original_clauses() are the coverage
  /// (query) clauses; the rest are the conditioning constraint disjunction.
  size_t num_coverage_ = 0;
  std::vector<double> cumulative_;  // cumulative clause weights
  double total_weight_ = 0;
  bool trivial_ = false;
  double trivial_probability_ = 0;

  mutable KarpLubyScratch scratch_;  // backs the single-threaded Trial()
};

}  // namespace maybms
