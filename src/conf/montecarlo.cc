#include "src/conf/montecarlo.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/conf/karp_luby.h"
#include "src/lineage/dtree_cache.h"
#include "src/obs/metrics.h"

namespace maybms {

namespace {

constexpr double kEMinus2 = 0.7182818284590452;  // e − 2

// Observability scope for one sampled aconf entry point: counts the call,
// records the guarantee parameter ε of the run (the "epsilon achieved" in
// the (ε,δ)-approximation sense — the DKLR stopping rule delivers exactly
// the requested bound when it completes), and times the call. No clock
// calls at all when counters are absent (metrics off).
class AconfScope {
 public:
  AconfScope(ConfPhaseCounters* obs, double epsilon) : obs_(obs) {
    if (obs_ == nullptr) return;
    obs_->aconf_calls.fetch_add(1, std::memory_order_relaxed);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(epsilon), "bit width");
    std::memcpy(&bits, &epsilon, sizeof(bits));
    obs_->epsilon_bits.store(bits, std::memory_order_relaxed);
    t0_ = MonotonicNs();
  }
  ~AconfScope() {
    if (obs_ != nullptr) {
      obs_->aconf_ns.fetch_add(MonotonicNs() - t0_,
                               std::memory_order_relaxed);
    }
  }
  AconfScope(const AconfScope&) = delete;
  AconfScope& operator=(const AconfScope&) = delete;

 private:
  ConfPhaseCounters* obs_;
  uint64_t t0_ = 0;
};

Status ValidateParams(double epsilon, double delta) {
  if (!(epsilon > 0) || epsilon >= 1) {
    return Status::InvalidArgument(
        StringFormat("aconf epsilon must be in (0,1), got %g", epsilon));
  }
  if (!(delta > 0) || delta >= 1) {
    return Status::InvalidArgument(
        StringFormat("aconf delta must be in (0,1), got %g", delta));
  }
  return Status::OK();
}

// Υ = 4(e−2)·ln(2/δ)/ε² — the master sample-complexity constant of DKLR.
double Upsilon(double epsilon, double delta) {
  return 4 * kEMinus2 * std::log(2.0 / delta) / (epsilon * epsilon);
}

}  // namespace

namespace {

// The DKLR drivers are templated on the trial callable so the Karp-Luby
// kernels inline into the sampling loops (the public TrialFn entry points
// instantiate them with the type-erased std::function).
template <class TrialF>
Result<MonteCarloResult> StoppingRuleT(TrialF&& trial, double epsilon,
                                       double delta, Rng* rng,
                                       const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  const double upsilon1 = 1 + (1 + epsilon) * Upsilon(epsilon, delta);
  double sum = 0;
  uint64_t n = 0;
  while (sum < upsilon1) {
    if (options.max_samples != 0 && n >= options.max_samples) {
      return Status::OutOfRange(StringFormat(
          "stopping-rule estimation exceeded %llu samples (mean too small "
          "for requested ε=%g, δ=%g)",
          static_cast<unsigned long long>(options.max_samples), epsilon, delta));
    }
    sum += trial(rng);
    ++n;
  }
  MonteCarloResult result;
  result.estimate = upsilon1 / static_cast<double>(n);
  result.samples = n;
  return result;
}

template <class TrialF>
Result<MonteCarloResult> OptimalEstimateT(TrialF&& trial, double epsilon,
                                          double delta, Rng* rng,
                                          const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  const double sqrt_eps = std::sqrt(epsilon);
  const double upsilon = Upsilon(epsilon, delta);
  const double upsilon2 = 2 * (1 + sqrt_eps) * (1 + 2 * sqrt_eps) *
                          (1 + std::log(1.5) / std::log(2.0 / delta)) * upsilon;

  // Phase 1: rough estimate with relaxed accuracy min(1/2, √ε), δ/3.
  const double eps1 = std::min(0.5, sqrt_eps);
  MAYBMS_ASSIGN_OR_RETURN(
      MonteCarloResult phase1,
      StoppingRuleT(trial, eps1, delta / 3, rng, options));
  const double mu_hat = phase1.estimate;
  uint64_t used = phase1.samples;

  auto budget_left = [&]() -> uint64_t {
    if (options.max_samples == 0) return UINT64_MAX;
    return options.max_samples > used ? options.max_samples - used : 0;
  };

  // Phase 2: variance estimate from squared differences of trial pairs.
  uint64_t n2 = static_cast<uint64_t>(std::ceil(upsilon2 * epsilon / mu_hat));
  n2 = std::max<uint64_t>(n2, 1);
  if (n2 > budget_left() / 2) {
    return Status::OutOfRange("optimal estimation phase 2 exceeded sample budget");
  }
  double s = 0;
  for (uint64_t i = 0; i < n2; ++i) {
    double a = trial(rng);
    double b = trial(rng);
    s += (a - b) * (a - b) / 2;
  }
  used += 2 * n2;
  const double rho_hat = std::max(s / static_cast<double>(n2), epsilon * mu_hat);

  // Phase 3: the sequentially-determined definitive run.
  uint64_t n3 = static_cast<uint64_t>(std::ceil(upsilon2 * rho_hat / (mu_hat * mu_hat)));
  n3 = std::max<uint64_t>(n3, 1);
  if (n3 > budget_left()) {
    return Status::OutOfRange("optimal estimation phase 3 exceeded sample budget");
  }
  double sum = 0;
  for (uint64_t i = 0; i < n3; ++i) sum += trial(rng);
  used += n3;

  MonteCarloResult result;
  result.estimate = sum / static_cast<double>(n3);
  result.samples = used;
  return result;
}

/// One Karp-Luby Bernoulli trial over caller-owned scratch; the kernel
/// choice (packed vs reference) is fixed per estimation run.
///
/// Trial/rejection observability uses functor-LOCAL plain counters
/// flushed into the shared atomics once, on destruction — the hot trial
/// loop never touches an atomic. The functor is created exactly once per
/// run and passed by reference (never copied), so the flush fires once.
struct KlTrial {
  const KarpLubyEstimator* estimator;
  KarpLubyScratch* scratch;
  bool reference;
  ConfPhaseCounters* counters = nullptr;
  mutable uint64_t local_trials = 0;
  mutable uint64_t local_rejections = 0;

  ~KlTrial() {
    if (counters != nullptr && local_trials != 0) {
      counters->kl_trials.fetch_add(local_trials, std::memory_order_relaxed);
      counters->kl_rejections.fetch_add(local_rejections,
                                        std::memory_order_relaxed);
    }
  }

  double operator()(Rng* rng) const {
    bool z = reference ? estimator->TrialReference(rng, scratch)
                       : estimator->Trial(rng, scratch);
    if (counters != nullptr) {
      ++local_trials;
      if (!z) ++local_rejections;
    }
    return z ? 1.0 : 0.0;
  }
};

Result<MonteCarloResult> ApproxWithEstimator(const KarpLubyEstimator& estimator,
                                             size_t num_clauses, double single_prob,
                                             double epsilon, double delta, Rng* rng,
                                             const MonteCarloOptions& options) {
  if (estimator.Trivial()) {
    MonteCarloResult result;
    result.estimate = estimator.TrivialProbability();
    result.samples = 0;
    return result;
  }
  // Single-clause DNFs are exact products; no sampling needed.
  if (num_clauses == 1) {
    MonteCarloResult result;
    result.estimate = single_prob;
    result.samples = 0;
    return result;
  }
  KarpLubyScratch scratch;
  KlTrial trial{&estimator, &scratch, options.use_reference_kernel,
                options.counters};
  // Z̄ estimates p/U with relative error ε, hence U·Z̄ estimates p with
  // relative error ε: the mean μ = p/U ≥ 1/m (m clauses) keeps the DKLR
  // sample bound polynomial — the Karp-Luby property.
  MAYBMS_ASSIGN_OR_RETURN(MonteCarloResult mc,
                          OptimalEstimateT(trial, epsilon, delta, rng, options));
  mc.estimate = std::min(1.0, mc.estimate * estimator.TotalWeight());
  return mc;
}

}  // namespace

Result<MonteCarloResult> StoppingRuleEstimate(const TrialFn& trial, double epsilon,
                                              double delta, Rng* rng,
                                              const MonteCarloOptions& options) {
  return StoppingRuleT(trial, epsilon, delta, rng, options);
}

Result<MonteCarloResult> OptimalEstimate(const TrialFn& trial, double epsilon,
                                         double delta, Rng* rng,
                                         const MonteCarloOptions& options) {
  return OptimalEstimateT(trial, epsilon, delta, rng, options);
}

Result<MonteCarloResult> ApproxConfidence(const Dnf& dnf, const WorldTable& wt,
                                          double epsilon, double delta, Rng* rng,
                                          const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  AconfScope obs_scope(options.counters, epsilon);
  KarpLubyEstimator estimator(dnf, wt);
  double single_prob =
      dnf.NumClauses() == 1 ? wt.ConditionProb(dnf.clauses()[0]) : 0;
  return ApproxWithEstimator(estimator, dnf.NumClauses(), single_prob, epsilon,
                             delta, rng, options);
}

Result<MonteCarloResult> ApproxConfidence(CompiledDnf dnf, double epsilon,
                                          double delta, Rng* rng,
                                          const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  AconfScope obs_scope(options.counters, epsilon);
  size_t num_clauses = dnf.original_clauses().size();
  double single_prob =
      num_clauses == 1 ? dnf.ClauseProb(dnf.original_clauses()[0]) : 0;
  KarpLubyEstimator estimator(std::move(dnf));
  return ApproxWithEstimator(estimator, num_clauses, single_prob, epsilon, delta,
                             rng, options);
}

Result<MonteCarloResult> ApproxConjunctionConfidence(
    CompiledDnf dnf, size_t num_query_clauses, double epsilon, double delta,
    Rng* rng, const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  AconfScope obs_scope(options.counters, epsilon);
  KarpLubyEstimator estimator(std::move(dnf), num_query_clauses);
  if (estimator.Trivial()) {
    MonteCarloResult result;
    result.estimate = estimator.TrivialProbability();
    result.samples = 0;
    return result;
  }
  // No single-clause shortcut: P(q1 ∧ C) is not a plain product. The
  // posterior layer handles single-clause queries exactly before reaching
  // the sampler.
  KarpLubyScratch scratch;
  KlTrial trial{&estimator, &scratch, options.use_reference_kernel,
                options.counters};
  MAYBMS_ASSIGN_OR_RETURN(MonteCarloResult mc,
                          OptimalEstimateT(trial, epsilon, delta, rng, options));
  mc.estimate = std::min(1.0, mc.estimate * estimator.TotalWeight());
  return mc;
}

// ---------------------------------------------------------------------------
// Seeded (deterministic, parallel-capable) estimation
// ---------------------------------------------------------------------------

uint64_t SubstreamSeed(uint64_t base_seed, uint64_t batch_index) {
  // SplitMix64 finalizer over base + (k+1)·φ⁻¹: adjacent counters land in
  // statistically unrelated PCG seeds, and the map is pure — batch k's
  // stream never depends on which thread draws it or on other batches.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (batch_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

// Fills `out` with the trial values of batches [first_batch,
// first_batch + count) of the phase's deterministic stream. Each batch
// gets a fresh trial instance and its own substream RNG; with a pool the
// batches compute concurrently, but the values are identical either way.
// Templated on the factory so concrete trial functors (the Karp-Luby
// kernels) inline into the fill loop.
template <class MakeTrial>
void MaterializeBatches(const MakeTrial& make_trial, uint64_t phase_seed,
                        uint64_t first_batch, uint64_t count, uint64_t batch_size,
                        ThreadPool* pool, std::vector<std::vector<double>>* out) {
  out->assign(count, {});
  auto fill = [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      auto trial = make_trial();
      Rng rng(SubstreamSeed(phase_seed, first_batch + i));
      std::vector<double>& vals = (*out)[i];
      vals.resize(batch_size);
      for (uint64_t t = 0; t < batch_size; ++t) vals[t] = trial(&rng);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, count, 1, fill);
  } else {
    fill(0, count);
  }
}

// Stopping Rule Algorithm over the deterministic batched stream: whole
// waves of batches materialize (in parallel), then the stopping rule folds
// trial values strictly in stream order — so the stop index, the estimate,
// and even budget errors are thread-count independent. The trial stream is
// a pure function of (phase_seed, sample_batch_size); the wave size is
// only a SCHEDULING knob (it bounds speculation, never shifts values), so
// waves grow geometrically — one batch first, doubling up to
// batches_per_wave — and cheap stopping-rule runs don't eagerly burn a
// full wave of trials. Trials past the stopping point inside the final
// wave are wasted (bounded by that wave).
template <class MakeTrial>
Result<MonteCarloResult> StoppingRuleSeeded(const MakeTrial& make_trial,
                                            double epsilon, double delta,
                                            uint64_t phase_seed,
                                            const MonteCarloOptions& options,
                                            ThreadPool* pool) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  const double upsilon1 = 1 + (1 + epsilon) * Upsilon(epsilon, delta);
  const uint64_t batch_size = std::max<uint64_t>(options.sample_batch_size, 1);
  const uint64_t max_wave = std::max<uint64_t>(options.batches_per_wave, 1);
  uint64_t wave = 1;
  double sum = 0;
  uint64_t n = 0;
  uint64_t next_batch = 0;
  std::vector<std::vector<double>> values;
  while (sum < upsilon1) {
    MaterializeBatches(make_trial, phase_seed, next_batch, wave, batch_size, pool,
                       &values);
    next_batch += wave;
    wave = std::min(max_wave, wave * 2);
    for (const std::vector<double>& batch : values) {
      for (double v : batch) {
        if (sum >= upsilon1) break;
        if (options.max_samples != 0 && n >= options.max_samples) {
          return Status::OutOfRange(StringFormat(
              "stopping-rule estimation exceeded %llu samples (mean too small "
              "for requested ε=%g, δ=%g)",
              static_cast<unsigned long long>(options.max_samples), epsilon,
              delta));
        }
        sum += v;
        ++n;
      }
    }
  }
  MonteCarloResult result;
  result.estimate = upsilon1 / static_cast<double>(n);
  result.samples = n;
  return result;
}

// Feeds the first `total` trial values of a phase stream to `consume`,
// strictly in stream order, streaming wave by wave to bound memory.
template <class MakeTrial, class Consume>
void SumSeededTrials(const MakeTrial& make_trial, uint64_t phase_seed,
                     uint64_t total, const MonteCarloOptions& options,
                     ThreadPool* pool, const Consume& consume) {
  const uint64_t batch_size = std::max<uint64_t>(options.sample_batch_size, 1);
  const uint64_t wave = std::max<uint64_t>(options.batches_per_wave, 1);
  uint64_t consumed = 0;
  uint64_t next_batch = 0;
  std::vector<std::vector<double>> values;
  while (consumed < total) {
    uint64_t batches_left = (total - consumed + batch_size - 1) / batch_size;
    uint64_t count = std::min(wave, batches_left);
    MaterializeBatches(make_trial, phase_seed, next_batch, count, batch_size, pool,
                       &values);
    next_batch += count;
    for (const std::vector<double>& batch : values) {
      for (double v : batch) {
        if (consumed >= total) break;
        consume(v);
        ++consumed;
      }
    }
  }
}

template <class MakeTrial>
Result<MonteCarloResult> OptimalEstimateSeededT(const MakeTrial& make_trial,
                                                double epsilon, double delta,
                                                uint64_t base_seed,
                                                const MonteCarloOptions& options,
                                                ThreadPool* pool) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  const double sqrt_eps = std::sqrt(epsilon);
  const double upsilon = Upsilon(epsilon, delta);
  const double upsilon2 = 2 * (1 + sqrt_eps) * (1 + 2 * sqrt_eps) *
                          (1 + std::log(1.5) / std::log(2.0 / delta)) * upsilon;

  // Each phase runs on its own substream family so phase boundaries never
  // shift trial values between phases.
  const uint64_t p1_seed = SubstreamSeed(base_seed, 0xA1);
  const uint64_t p2_seed = SubstreamSeed(base_seed, 0xA2);
  const uint64_t p3_seed = SubstreamSeed(base_seed, 0xA3);

  // Phase 1: rough estimate with relaxed accuracy min(1/2, √ε), δ/3.
  const double eps1 = std::min(0.5, sqrt_eps);
  MAYBMS_ASSIGN_OR_RETURN(
      MonteCarloResult phase1,
      StoppingRuleSeeded(make_trial, eps1, delta / 3, p1_seed, options, pool));
  const double mu_hat = phase1.estimate;
  uint64_t used = phase1.samples;

  auto budget_left = [&]() -> uint64_t {
    if (options.max_samples == 0) return UINT64_MAX;
    return options.max_samples > used ? options.max_samples - used : 0;
  };

  // Phase 2: variance estimate from squared differences of trial pairs
  // (consecutive stream values pair up).
  uint64_t n2 = static_cast<uint64_t>(std::ceil(upsilon2 * epsilon / mu_hat));
  n2 = std::max<uint64_t>(n2, 1);
  if (n2 > budget_left() / 2) {
    return Status::OutOfRange("optimal estimation phase 2 exceeded sample budget");
  }
  double s = 0;
  double pending = 0;
  bool have_pending = false;
  SumSeededTrials(make_trial, p2_seed, 2 * n2, options, pool, [&](double v) {
    if (have_pending) {
      s += (pending - v) * (pending - v) / 2;
      have_pending = false;
    } else {
      pending = v;
      have_pending = true;
    }
  });
  used += 2 * n2;
  const double rho_hat = std::max(s / static_cast<double>(n2), epsilon * mu_hat);

  // Phase 3: the sequentially-determined definitive run.
  uint64_t n3 = static_cast<uint64_t>(std::ceil(upsilon2 * rho_hat / (mu_hat * mu_hat)));
  n3 = std::max<uint64_t>(n3, 1);
  if (n3 > budget_left()) {
    return Status::OutOfRange("optimal estimation phase 3 exceeded sample budget");
  }
  double sum = 0;
  SumSeededTrials(make_trial, p3_seed, n3, options, pool,
                  [&](double v) { sum += v; });
  used += n3;

  MonteCarloResult result;
  result.estimate = sum / static_cast<double>(n3);
  result.samples = used;
  return result;
}

/// Per-batch Karp-Luby trial: owns its scratch, so each batch task samples
/// independently (the estimator itself is read-only during trials).
///
/// Like KlTrial, trial/rejection counts accumulate in plain locals and
/// flush into the shared atomics on destruction — one atomic add pair per
/// ~batch_size trials. The factory returns a prvalue, so each instance is
/// constructed in place in MaterializeBatches (guaranteed elision) and
/// destroyed exactly once at the end of its batch.
struct KlBatchTrial {
  const KarpLubyEstimator* estimator;
  bool reference;
  ConfPhaseCounters* counters;
  KarpLubyScratch scratch;
  uint64_t local_trials = 0;
  uint64_t local_rejections = 0;

  ~KlBatchTrial() {
    if (counters != nullptr && local_trials != 0) {
      counters->kl_trials.fetch_add(local_trials, std::memory_order_relaxed);
      counters->kl_rejections.fetch_add(local_rejections,
                                        std::memory_order_relaxed);
    }
  }

  double operator()(Rng* rng) {
    bool z = reference ? estimator->TrialReference(rng, &scratch)
                       : estimator->Trial(rng, &scratch);
    if (counters != nullptr) {
      ++local_trials;
      if (!z) ++local_rejections;
    }
    return z ? 1.0 : 0.0;
  }
};

struct KlTrialFactory {
  const KarpLubyEstimator* estimator;
  bool reference;
  ConfPhaseCounters* counters;

  KlBatchTrial operator()() const {
    return KlBatchTrial{estimator, reference, counters, {}};
  }
};

}  // namespace

Result<MonteCarloResult> OptimalEstimateSeeded(const TrialFactory& make_trial,
                                               double epsilon, double delta,
                                               uint64_t base_seed,
                                               const MonteCarloOptions& options,
                                               ThreadPool* pool) {
  return OptimalEstimateSeededT(make_trial, epsilon, delta, base_seed, options,
                                pool);
}

Result<MonteCarloResult> ApproxConfidenceSeeded(CompiledDnf dnf, double epsilon,
                                                double delta, uint64_t base_seed,
                                                const MonteCarloOptions& options,
                                                ThreadPool* pool) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  AconfScope obs_scope(options.counters, epsilon);
  size_t num_clauses = dnf.original_clauses().size();
  // The seeded estimate is a pure function of (content, world version,
  // seed, ε, δ, sampling knobs), so a cached result IS the value a rerun
  // would sample. The key must capture the lineage before it is moved into
  // the estimator below.
  LineageKey key;
  const bool use_cache = options.cache != nullptr &&
                         num_clauses >= DTreeCache::kMinCachedClauses;
  if (use_cache) {
    key = BuildEstimateKey(dnf, options.world_version, base_seed, epsilon,
                           delta, ~0ull, options);
    MonteCarloResult cached;
    if (options.cache->LookupEstimate(key, &cached.estimate, &cached.samples)) {
      if (options.counters != nullptr) {
        options.counters->estimate_hits.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      return cached;
    }
  }
  double single_prob =
      num_clauses == 1 ? dnf.ClauseProb(dnf.original_clauses()[0]) : 0;
  KarpLubyEstimator estimator(std::move(dnf));
  if (estimator.Trivial()) {
    MonteCarloResult result;
    result.estimate = estimator.TrivialProbability();
    result.samples = 0;
    if (use_cache) options.cache->InsertEstimate(key, result.estimate, 0);
    return result;
  }
  if (num_clauses == 1) {
    MonteCarloResult result;
    result.estimate = single_prob;
    result.samples = 0;
    return result;
  }
  KlTrialFactory factory{&estimator, options.use_reference_kernel,
                         options.counters};
  MAYBMS_ASSIGN_OR_RETURN(
      MonteCarloResult mc,
      OptimalEstimateSeededT(factory, epsilon, delta, base_seed, options, pool));
  mc.estimate = std::min(1.0, mc.estimate * estimator.TotalWeight());
  if (use_cache) options.cache->InsertEstimate(key, mc.estimate, mc.samples);
  return mc;
}

Result<MonteCarloResult> ApproxConjunctionConfidenceSeeded(
    CompiledDnf dnf, size_t num_query_clauses, double epsilon, double delta,
    uint64_t base_seed, const MonteCarloOptions& options, ThreadPool* pool) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  AconfScope obs_scope(options.counters, epsilon);
  LineageKey key;
  const bool use_cache =
      options.cache != nullptr &&
      dnf.original_clauses().size() >= DTreeCache::kMinCachedClauses;
  if (use_cache) {
    key = BuildEstimateKey(dnf, options.world_version, base_seed, epsilon,
                           delta, num_query_clauses, options);
    MonteCarloResult cached;
    if (options.cache->LookupEstimate(key, &cached.estimate, &cached.samples)) {
      if (options.counters != nullptr) {
        options.counters->estimate_hits.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      return cached;
    }
  }
  KarpLubyEstimator estimator(std::move(dnf), num_query_clauses);
  if (estimator.Trivial()) {
    MonteCarloResult result;
    result.estimate = estimator.TrivialProbability();
    result.samples = 0;
    if (use_cache) options.cache->InsertEstimate(key, result.estimate, 0);
    return result;
  }
  KlTrialFactory factory{&estimator, options.use_reference_kernel,
                         options.counters};
  MAYBMS_ASSIGN_OR_RETURN(
      MonteCarloResult mc,
      OptimalEstimateSeededT(factory, epsilon, delta, base_seed, options, pool));
  mc.estimate = std::min(1.0, mc.estimate * estimator.TotalWeight());
  if (use_cache) options.cache->InsertEstimate(key, mc.estimate, mc.samples);
  return mc;
}

}  // namespace maybms
