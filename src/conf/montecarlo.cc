#include "src/conf/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "src/common/str_util.h"
#include "src/conf/karp_luby.h"

namespace maybms {

namespace {

constexpr double kEMinus2 = 0.7182818284590452;  // e − 2

Status ValidateParams(double epsilon, double delta) {
  if (!(epsilon > 0) || epsilon >= 1) {
    return Status::InvalidArgument(
        StringFormat("aconf epsilon must be in (0,1), got %g", epsilon));
  }
  if (!(delta > 0) || delta >= 1) {
    return Status::InvalidArgument(
        StringFormat("aconf delta must be in (0,1), got %g", delta));
  }
  return Status::OK();
}

// Υ = 4(e−2)·ln(2/δ)/ε² — the master sample-complexity constant of DKLR.
double Upsilon(double epsilon, double delta) {
  return 4 * kEMinus2 * std::log(2.0 / delta) / (epsilon * epsilon);
}

}  // namespace

Result<MonteCarloResult> StoppingRuleEstimate(const TrialFn& trial, double epsilon,
                                              double delta, Rng* rng,
                                              const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  const double upsilon1 = 1 + (1 + epsilon) * Upsilon(epsilon, delta);
  double sum = 0;
  uint64_t n = 0;
  while (sum < upsilon1) {
    if (options.max_samples != 0 && n >= options.max_samples) {
      return Status::OutOfRange(StringFormat(
          "stopping-rule estimation exceeded %llu samples (mean too small "
          "for requested ε=%g, δ=%g)",
          static_cast<unsigned long long>(options.max_samples), epsilon, delta));
    }
    sum += trial(rng);
    ++n;
  }
  MonteCarloResult result;
  result.estimate = upsilon1 / static_cast<double>(n);
  result.samples = n;
  return result;
}

Result<MonteCarloResult> OptimalEstimate(const TrialFn& trial, double epsilon,
                                         double delta, Rng* rng,
                                         const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  const double sqrt_eps = std::sqrt(epsilon);
  const double upsilon = Upsilon(epsilon, delta);
  const double upsilon2 = 2 * (1 + sqrt_eps) * (1 + 2 * sqrt_eps) *
                          (1 + std::log(1.5) / std::log(2.0 / delta)) * upsilon;

  // Phase 1: rough estimate with relaxed accuracy min(1/2, √ε), δ/3.
  const double eps1 = std::min(0.5, sqrt_eps);
  MAYBMS_ASSIGN_OR_RETURN(
      MonteCarloResult phase1,
      StoppingRuleEstimate(trial, eps1, delta / 3, rng, options));
  const double mu_hat = phase1.estimate;
  uint64_t used = phase1.samples;

  auto budget_left = [&]() -> uint64_t {
    if (options.max_samples == 0) return UINT64_MAX;
    return options.max_samples > used ? options.max_samples - used : 0;
  };

  // Phase 2: variance estimate from squared differences of trial pairs.
  uint64_t n2 = static_cast<uint64_t>(std::ceil(upsilon2 * epsilon / mu_hat));
  n2 = std::max<uint64_t>(n2, 1);
  if (n2 > budget_left() / 2) {
    return Status::OutOfRange("optimal estimation phase 2 exceeded sample budget");
  }
  double s = 0;
  for (uint64_t i = 0; i < n2; ++i) {
    double a = trial(rng);
    double b = trial(rng);
    s += (a - b) * (a - b) / 2;
  }
  used += 2 * n2;
  const double rho_hat = std::max(s / static_cast<double>(n2), epsilon * mu_hat);

  // Phase 3: the sequentially-determined definitive run.
  uint64_t n3 = static_cast<uint64_t>(std::ceil(upsilon2 * rho_hat / (mu_hat * mu_hat)));
  n3 = std::max<uint64_t>(n3, 1);
  if (n3 > budget_left()) {
    return Status::OutOfRange("optimal estimation phase 3 exceeded sample budget");
  }
  double sum = 0;
  for (uint64_t i = 0; i < n3; ++i) sum += trial(rng);
  used += n3;

  MonteCarloResult result;
  result.estimate = sum / static_cast<double>(n3);
  result.samples = used;
  return result;
}

namespace {

Result<MonteCarloResult> ApproxWithEstimator(const KarpLubyEstimator& estimator,
                                             size_t num_clauses, double single_prob,
                                             double epsilon, double delta, Rng* rng,
                                             const MonteCarloOptions& options) {
  if (estimator.Trivial()) {
    MonteCarloResult result;
    result.estimate = estimator.TrivialProbability();
    result.samples = 0;
    return result;
  }
  // Single-clause DNFs are exact products; no sampling needed.
  if (num_clauses == 1) {
    MonteCarloResult result;
    result.estimate = single_prob;
    result.samples = 0;
    return result;
  }
  TrialFn trial = [&estimator](Rng* r) -> double {
    return estimator.Trial(r) ? 1.0 : 0.0;
  };
  // Z̄ estimates p/U with relative error ε, hence U·Z̄ estimates p with
  // relative error ε: the mean μ = p/U ≥ 1/m (m clauses) keeps the DKLR
  // sample bound polynomial — the Karp-Luby property.
  MAYBMS_ASSIGN_OR_RETURN(MonteCarloResult mc,
                          OptimalEstimate(trial, epsilon, delta, rng, options));
  mc.estimate = std::min(1.0, mc.estimate * estimator.TotalWeight());
  return mc;
}

}  // namespace

Result<MonteCarloResult> ApproxConfidence(const Dnf& dnf, const WorldTable& wt,
                                          double epsilon, double delta, Rng* rng,
                                          const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  KarpLubyEstimator estimator(dnf, wt);
  double single_prob =
      dnf.NumClauses() == 1 ? wt.ConditionProb(dnf.clauses()[0]) : 0;
  return ApproxWithEstimator(estimator, dnf.NumClauses(), single_prob, epsilon,
                             delta, rng, options);
}

Result<MonteCarloResult> ApproxConfidence(CompiledDnf dnf, double epsilon,
                                          double delta, Rng* rng,
                                          const MonteCarloOptions& options) {
  MAYBMS_RETURN_NOT_OK(ValidateParams(epsilon, delta));
  size_t num_clauses = dnf.original_clauses().size();
  double single_prob =
      num_clauses == 1 ? dnf.ClauseProb(dnf.original_clauses()[0]) : 0;
  KarpLubyEstimator estimator(std::move(dnf));
  return ApproxWithEstimator(estimator, num_clauses, single_prob, epsilon, delta,
                             rng, options);
}

}  // namespace maybms
