// Exact confidence computation (paper §2.3, citing Koch & Olteanu,
// "Conditioning Probabilistic Databases", VLDB 2008).
//
// Given a DNF whose clauses are conjunctive local conditions, the
// probability is computed by recursively applying
//   (1) DECOMPOSITION of the DNF into independent subsets of clauses
//       (subsets that do not share variables): the probabilities combine as
//       P = 1 - Π(1 - P_i); and
//   (2) VARIABLE ELIMINATION (Shannon expansion over the assignments of one
//       variable): P = Σ_a P(x=a)·P(DNF | x:=a) + P(other)·P(DNF \ x),
// with cost-estimation heuristics for choosing which variable to eliminate.
//
// Two implementations share this entry point:
//   - the d-tree KNOWLEDGE COMPILER (src/lineage/dtree.h, the default):
//     compiles the rule applications into a hash-consed decomposition tree
//     whose bottom-up evaluation is the probability — with word-wide mask
//     prefilters, arena clause sets and closed 1-OF nodes making the same
//     decisions far cheaper; and
//   - the LEGACY RECURSIVE SOLVER (this file, ExactOptions::
//     use_legacy_solver): the direct recursion the compiler's decisions
//     are defined against.
// Both return bit-identical probabilities on every input (pinned by
// tests/dtree_property_test.cc); only step/budget counts differ.
//
// ExactOptions / ExactStats / EliminationHeuristic live in
// src/lineage/dtree.h (the compilation layer) and are re-exported here.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dnf.h"
#include "src/lineage/dtree.h"
#include "src/prob/world_table.h"

namespace maybms {

class ThreadPool;

/// Computes P(dnf) exactly. Returns OutOfRange if the `max_steps` node
/// budget is hit.
///
/// With a non-null `pool`, the root-level DECOMPOSITION step fans its
/// variable-connected components out across threads: each component gets a
/// private compiler/solver (own hash-cons table, own scratch, own copy of
/// the clause store) and the component probabilities fold as
/// P = 1 − Π(1 − P_i) in component order — the same arithmetic, in the
/// same order, as the serial pass, so the returned probability is
/// bit-identical at any thread count (including pool == nullptr).
/// `max_steps` keeps its cumulative meaning: the parallel shards share one
/// step budget, so the budget outcome is deterministic at any pool size.
/// (Near the exact budget boundary the parallel mode may count slightly
/// differently from serial — per-shard private caches cross fill caps at
/// different points — but for a fixed mode the outcome never varies.)
Result<double> ExactConfidence(const Dnf& dnf, const WorldTable& wt,
                               const ExactOptions& options = {},
                               ExactStats* stats = nullptr,
                               ThreadPool* pool = nullptr);

/// Same, over pre-compiled lineage (the batch engine builds CompiledDnf
/// straight from condition-column spans; probabilities were captured at
/// compile time). `wt` MUST be the world table `dnf` was compiled against:
/// its version() is the probability axis of the compilation-cache key
/// (ExactOptions::cache; see src/lineage/dtree_cache.h).
Result<double> ExactConfidence(CompiledDnf dnf, const WorldTable& wt,
                               const ExactOptions& options = {},
                               ExactStats* stats = nullptr,
                               ThreadPool* pool = nullptr);

}  // namespace maybms
