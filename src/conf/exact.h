// Exact confidence computation (paper §2.3, citing Koch & Olteanu,
// "Conditioning Probabilistic Databases", VLDB 2008).
//
// Given a DNF whose clauses are conjunctive local conditions, the algorithm
// recursively applies
//   (1) DECOMPOSITION of the DNF into independent subsets of clauses
//       (subsets that do not share variables): the probabilities combine as
//       P = 1 - Π(1 - P_i); and
//   (2) VARIABLE ELIMINATION (Shannon expansion over the assignments of one
//       variable): P = Σ_a P(x=a)·P(DNF | x:=a) + P(other)·P(DNF \ x),
// with cost-estimation heuristics for choosing which variable to eliminate.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/lineage/compiled_dnf.h"
#include "src/lineage/dnf.h"
#include "src/prob/world_table.h"

namespace maybms {

class ThreadPool;

/// Which variable the elimination step picks inside a component.
enum class EliminationHeuristic {
  /// Variable occurring in the most clauses — maximizes immediate
  /// simplification and the chance of disconnecting the component (the
  /// paper's cost-estimation-driven default behaves like this on most
  /// inputs).
  kMaxOccurrence,
  /// Variable minimizing (branching factor) / (clauses touched): a direct
  /// cost estimate of the expansion.
  kMinCostEstimate,
  /// First variable in id order (baseline for ablation benchmarks).
  kFirstVariable,
};

/// Tuning knobs for the exact algorithm.
struct ExactOptions {
  EliminationHeuristic heuristic = EliminationHeuristic::kMaxOccurrence;
  /// Remove subsumed clauses before recursion (absorption).
  bool remove_subsumed = true;
  /// Memoize sub-DNF probabilities (the ws-tree sharing of [Koch &
  /// Olteanu '08]): Shannon branches frequently reconverge to the same
  /// residual formula.
  bool use_cache = true;
  /// Cap on memo entries (0 disables the cap).
  size_t max_cache_entries = 1u << 20;
  /// Abort once this many recursion nodes have been expanded (0 = no
  /// limit). Exact confidence is #P-hard; callers that prefer fallback to
  /// approximation can bound the work.
  uint64_t max_steps = 0;
};

/// Counters describing the shape of the decomposition tree that was built.
struct ExactStats {
  uint64_t steps = 0;             ///< recursion nodes expanded
  uint64_t decompositions = 0;    ///< independent-partition applications
  uint64_t shannon_expansions = 0;///< variable eliminations
  uint64_t max_depth = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_entries = 0;
};

/// Computes P(dnf) exactly. Returns OutOfRange if `max_steps` is hit.
///
/// With a non-null `pool`, the root-level DECOMPOSITION step fans its
/// variable-connected components out across threads: each component gets a
/// private solver (own memo, own scratch, own copy of the clause store)
/// and the component probabilities fold as P = 1 − Π(1 − P_i) in component
/// order — the same arithmetic, in the same order, as the serial recursion,
/// so the returned probability is bit-identical at any thread count
/// (including pool == nullptr). `max_steps` keeps its cumulative meaning:
/// the parallel shards share one step budget, so the budget outcome is
/// deterministic at any pool size. (Near the exact budget boundary the
/// parallel mode may count slightly differently from serial — per-shard
/// private memos cross the cache-fill caps at different points than the
/// serial shared memo — but for a fixed mode the outcome never varies.)
Result<double> ExactConfidence(const Dnf& dnf, const WorldTable& wt,
                               const ExactOptions& options = {},
                               ExactStats* stats = nullptr,
                               ThreadPool* pool = nullptr);

/// Same, over pre-compiled lineage (the batch engine builds CompiledDnf
/// straight from condition-column spans; `wt` is unused — probabilities
/// were captured at compile time).
Result<double> ExactConfidence(CompiledDnf dnf, const WorldTable& wt,
                               const ExactOptions& options = {},
                               ExactStats* stats = nullptr,
                               ThreadPool* pool = nullptr);

}  // namespace maybms
