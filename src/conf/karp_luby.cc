#include "src/conf/karp_luby.h"

#include <algorithm>
#include <unordered_map>

namespace maybms {

KarpLubyEstimator::KarpLubyEstimator(const Dnf& dnf, const WorldTable& wt)
    : dnf_(dnf), wt_(wt) {
  if (dnf.IsEmpty()) {
    trivial_ = true;
    trivial_probability_ = 0;
    return;
  }
  if (dnf.HasEmptyClause()) {
    trivial_ = true;
    trivial_probability_ = 1;
    return;
  }
  cumulative_.reserve(dnf.NumClauses());
  double acc = 0;
  for (const Condition& c : dnf.clauses()) {
    acc += wt.ConditionProb(c);
    cumulative_.push_back(acc);
  }
  total_weight_ = acc;
  if (total_weight_ <= 0) {
    trivial_ = true;
    trivial_probability_ = 0;
  }
}

bool KarpLubyEstimator::Trial(Rng* rng) const {
  // Sample clause index i proportional to its marginal probability.
  double u = rng->NextDouble() * total_weight_;
  size_t i = static_cast<size_t>(
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
      cumulative_.begin());
  if (i >= cumulative_.size()) i = cumulative_.size() - 1;

  // Sample a world conditioned on clause i: its atoms are fixed; all other
  // variables follow their prior. Variables are sampled lazily on demand.
  std::unordered_map<VarId, AsgId> world;
  for (const Atom& a : dnf_.clauses()[i].atoms()) world.emplace(a.var, a.asg);
  auto assignment_of = [&](VarId var) -> AsgId {
    auto it = world.find(var);
    if (it != world.end()) return it->second;
    AsgId a = wt_.SampleAssignment(var, rng);
    world.emplace(var, a);
    return a;
  };

  // Z = 1 iff no earlier clause is satisfied by the sampled world (clause i
  // is satisfied by construction, so i is then the minimal satisfying
  // index — the canonical-cover trick making trials unbiased).
  for (size_t j = 0; j < i; ++j) {
    bool satisfied = true;
    for (const Atom& a : dnf_.clauses()[j].atoms()) {
      if (assignment_of(a.var) != a.asg) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return false;
  }
  return true;
}

}  // namespace maybms
