#include "src/conf/karp_luby.h"

#include <algorithm>

namespace maybms {

KarpLubyEstimator::KarpLubyEstimator(const Dnf& dnf, const WorldTable& wt)
    : dnf_(dnf, wt), num_coverage_(dnf_.original_clauses().size()) {
  Init();
}

KarpLubyEstimator::KarpLubyEstimator(CompiledDnf dnf)
    : dnf_(std::move(dnf)), num_coverage_(dnf_.original_clauses().size()) {
  Init();
}

KarpLubyEstimator::KarpLubyEstimator(CompiledDnf dnf, size_t num_query_clauses)
    : dnf_(std::move(dnf)),
      num_coverage_(std::min(num_query_clauses, dnf_.original_clauses().size())) {
  Init();
}

void KarpLubyEstimator::Init() {
  const std::vector<ClauseId>& clauses = dnf_.original_clauses();
  const bool constrained = num_coverage_ < clauses.size();
  if (num_coverage_ == 0) {
    trivial_ = true;
    trivial_probability_ = 0;
    return;
  }
  if (!constrained) {
    // An empty clause makes the (unconditioned) DNF valid. Conditioned
    // estimators skip this shortcut: an always-true query clause still
    // requires the sampled world to satisfy the constraint.
    for (ClauseId id : clauses) {
      if (dnf_.ClauseSize(id) == 0) {
        trivial_ = true;
        trivial_probability_ = 1;
        return;
      }
    }
  }
  cumulative_.reserve(num_coverage_);
  double acc = 0;
  for (size_t i = 0; i < num_coverage_; ++i) {
    acc += dnf_.ClauseProb(clauses[i]);
    cumulative_.push_back(acc);
  }
  total_weight_ = acc;
  // Size the world arrays before any early return: Trial() on a trivial
  // estimator is a contract violation, but it must not scribble past an
  // empty vector (the old map-based sampling was memory-safe there too).
  scratch_.world_val.assign(dnf_.NumVars(), 0);
  scratch_.world_epoch.assign(dnf_.NumVars(), 0);
  if (total_weight_ <= 0) {
    trivial_ = true;
    trivial_probability_ = 0;
  }
}

AsgId KarpLubyEstimator::AssignmentOf(LocalVar var, Rng* rng,
                                      KarpLubyScratch* scratch) const {
  if (scratch->world_epoch[var] == scratch->epoch) return scratch->world_val[var];
  // Inverse-CDF sample from the variable's prior (same scheme as
  // WorldTable::SampleAssignment).
  const double* probs = dnf_.VarProbs(var);
  uint32_t domain = dnf_.DomainSize(var);
  double u = rng->NextDouble();
  double cdf = 0;
  AsgId a = domain - 1;
  for (uint32_t i = 0; i + 1 < domain; ++i) {
    cdf += probs[i];
    if (u < cdf) {
      a = static_cast<AsgId>(i);
      break;
    }
  }
  scratch->world_epoch[var] = scratch->epoch;
  scratch->world_val[var] = a;
  return a;
}

bool KarpLubyEstimator::Trial(Rng* rng) const { return Trial(rng, &scratch_); }

bool KarpLubyEstimator::Trial(Rng* rng, KarpLubyScratch* scratch) const {
  if (scratch->world_epoch.size() != dnf_.NumVars()) {
    scratch->world_val.assign(dnf_.NumVars(), 0);
    scratch->world_epoch.assign(dnf_.NumVars(), 0);
    scratch->epoch = 0;
  }
  // Sample clause index i proportional to its marginal probability.
  double u = rng->NextDouble() * total_weight_;
  size_t i = static_cast<size_t>(
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
      cumulative_.begin());
  if (i >= cumulative_.size()) i = cumulative_.size() - 1;

  // Sample a world conditioned on clause i: its atoms are fixed; all other
  // variables follow their prior, sampled lazily on demand.
  ++scratch->epoch;
  const std::vector<ClauseId>& clauses = dnf_.original_clauses();
  for (const Atom& a : dnf_.Clause(clauses[i])) {
    scratch->world_epoch[a.var] = scratch->epoch;
    scratch->world_val[a.var] = a.asg;
  }

  // Z = 1 iff no earlier clause is satisfied by the sampled world (clause i
  // is satisfied by construction, so i is then the minimal satisfying
  // index — the canonical-cover trick making trials unbiased).
  for (size_t j = 0; j < i; ++j) {
    bool satisfied = true;
    for (const Atom& a : dnf_.Clause(clauses[j])) {
      if (AssignmentOf(a.var, rng, scratch) != a.asg) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return false;
  }
  if (num_coverage_ == clauses.size()) return true;
  // Conditioned trial: the world (still lazily extended from the prior for
  // variables no clause has touched yet) must also satisfy the constraint
  // disjunction, else the trial is rejected (Z = 0).
  for (size_t j = num_coverage_; j < clauses.size(); ++j) {
    bool satisfied = true;
    for (const Atom& a : dnf_.Clause(clauses[j])) {
      if (AssignmentOf(a.var, rng, scratch) != a.asg) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return true;
  }
  return false;
}

}  // namespace maybms
