#include "src/conf/karp_luby.h"

#include <algorithm>

namespace maybms {

KarpLubyEstimator::KarpLubyEstimator(const Dnf& dnf, const WorldTable& wt)
    : dnf_(dnf, wt), num_coverage_(dnf_.original_clauses().size()) {
  Init();
}

KarpLubyEstimator::KarpLubyEstimator(CompiledDnf dnf)
    : dnf_(std::move(dnf)), num_coverage_(dnf_.original_clauses().size()) {
  Init();
}

KarpLubyEstimator::KarpLubyEstimator(CompiledDnf dnf, size_t num_query_clauses)
    : dnf_(std::move(dnf)),
      num_coverage_(std::min(num_query_clauses, dnf_.original_clauses().size())) {
  Init();
}

void KarpLubyEstimator::Init() {
  const std::vector<ClauseId>& clauses = dnf_.original_clauses();
  const bool constrained = num_coverage_ < clauses.size();
  if (num_coverage_ == 0) {
    trivial_ = true;
    trivial_probability_ = 0;
    return;
  }
  if (!constrained) {
    // An empty clause makes the (unconditioned) DNF valid. Conditioned
    // estimators skip this shortcut: an always-true query clause still
    // requires the sampled world to satisfy the constraint.
    for (ClauseId id : clauses) {
      if (dnf_.ClauseSize(id) == 0) {
        trivial_ = true;
        trivial_probability_ = 1;
        return;
      }
    }
  }
  cumulative_.reserve(num_coverage_);
  double acc = 0;
  for (size_t i = 0; i < num_coverage_; ++i) {
    acc += dnf_.ClauseProb(clauses[i]);
    cumulative_.push_back(acc);
  }
  total_weight_ = acc;
  // Size the world array before any early return: Trial() on a trivial
  // estimator is a contract violation, but it must not scribble past an
  // empty vector (the old map-based sampling was memory-safe there too).
  scratch_.world.assign(dnf_.NumVars(), 0);
  if (total_weight_ <= 0) {
    trivial_ = true;
    trivial_probability_ = 0;
    return;
  }
  BuildKernels();
}

void KarpLubyEstimator::BuildKernels() {
  const std::vector<ClauseId>& clauses = dnf_.original_clauses();
  // Flatten clause atoms by position so the trial scan walks one packed
  // array in stream order instead of chasing clause ids.
  pos_off_.reserve(clauses.size() + 1);
  pos_off_.push_back(0);
  coverage_width1_ = true;
  for (size_t j = 0; j < clauses.size(); ++j) {
    AtomSpan span = dnf_.Clause(clauses[j]);
    pos_atoms_.insert(pos_atoms_.end(), span.begin(), span.end());
    pos_off_.push_back(static_cast<uint32_t>(pos_atoms_.size()));
    if (j < num_coverage_ && span.size != 1) coverage_width1_ = false;
  }
  if (coverage_width1_) {
    w1_atoms_.reserve(num_coverage_);
    for (size_t j = 0; j < num_coverage_; ++j) {
      const Atom& a = pos_atoms_[pos_off_[j]];
      w1_atoms_.push_back(static_cast<uint64_t>(a.asg) << 32 | a.var);
    }
  }
  // Per-variable cumulative distributions: cum[k] = probs[0] + … + probs[k]
  // accumulated left to right — bit-equal to the running sum the reference
  // sampler computes per draw, so u maps to the identical assignment.
  size_t n_vars = dnf_.NumVars();
  var_cum_off_.reserve(n_vars + 1);
  var_cum_off_.push_back(0);
  for (size_t v = 0; v < n_vars; ++v) {
    const double* probs = dnf_.VarProbs(static_cast<LocalVar>(v));
    uint32_t domain = dnf_.DomainSize(static_cast<LocalVar>(v));
    double cdf = 0;
    for (uint32_t k = 0; k + 1 < domain; ++k) {
      cdf += probs[k];
      var_cum_.push_back(cdf);
    }
    var_cum_off_.push_back(static_cast<uint32_t>(var_cum_.size()));
  }
  // Clause-selection buckets: sel_start_[b] lower-bounds the scan for any
  // u in bucket b. The runtime correction loops make selection exact even
  // under floating-point bucket rounding, so this is pure acceleration.
  size_t buckets = 16;
  while (buckets < 2 * num_coverage_ && buckets < (1u << 20)) buckets *= 2;
  sel_scale_ = static_cast<double>(buckets) / total_weight_;
  sel_start_.reserve(buckets);
  size_t j = 0;
  for (size_t b = 0; b < buckets; ++b) {
    double threshold = static_cast<double>(b) / sel_scale_;
    while (j < cumulative_.size() && cumulative_[j] < threshold) ++j;
    sel_start_.push_back(static_cast<uint32_t>(j));
  }
}

size_t KarpLubyEstimator::SelectClause(double u) const {
  // Exact lower bound (first i with cumulative_[i] >= u), bucket-started.
  const double* cum = cumulative_.data();
  const size_t n = cumulative_.size();
  size_t b = static_cast<size_t>(u * sel_scale_);
  if (b >= sel_start_.size()) b = sel_start_.size() - 1;
  size_t i = sel_start_[b];
  while (i < n && cum[i] < u) ++i;
  while (i > 0 && !(cum[i - 1] < u)) --i;  // fp bucket-rounding correction
  if (i >= n) i = n - 1;  // same clamp as the reference lower_bound
  return i;
}

uint64_t KarpLubyEstimator::BeginTrial(size_t num_vars,
                                       KarpLubyScratch* scratch) {
  if (scratch->world.size() != num_vars) {
    scratch->world.assign(num_vars, 0);
    scratch->epoch = 0;
  }
  if (++scratch->epoch == 0) {  // 2^32-trial wraparound: flush stale tags
    std::fill(scratch->world.begin(), scratch->world.end(), 0);
    scratch->epoch = 1;
  }
  return static_cast<uint64_t>(scratch->epoch) << 32;
}

AsgId KarpLubyEstimator::SampleVar(LocalVar var, uint64_t tag, Rng* rng,
                                   KarpLubyScratch* scratch) const {
  // Inverse-CDF draw over the precomputed partial sums; identical
  // comparisons to the reference running-sum loop.
  double u = rng->NextDouble();
  const double* cum = var_cum_.data() + var_cum_off_[var];
  uint32_t points = var_cum_off_[var + 1] - var_cum_off_[var];  // domain − 1
  AsgId a = points;  // defaults to domain − 1
  for (uint32_t k = 0; k < points; ++k) {
    if (u < cum[k]) {
      a = static_cast<AsgId>(k);
      break;
    }
  }
  scratch->world[var] = tag | a;
  return a;
}

AsgId KarpLubyEstimator::AssignmentOf(LocalVar var, uint64_t tag, Rng* rng,
                                      KarpLubyScratch* scratch) const {
  uint64_t w = scratch->world[var];
  if ((w & 0xffffffff00000000ull) == tag) return static_cast<AsgId>(w);
  return SampleVar(var, tag, rng, scratch);
}

bool KarpLubyEstimator::Trial(Rng* rng) const { return Trial(rng, &scratch_); }

bool KarpLubyEstimator::Trial(Rng* rng, KarpLubyScratch* scratch) const {
  const uint64_t tag = BeginTrial(dnf_.NumVars(), scratch);
  // Sample clause index i proportional to its marginal probability.
  double u = rng->NextDouble() * total_weight_;
  size_t i = SelectClause(u);

  // Sample a world conditioned on clause i: its atoms are fixed; all other
  // variables follow their prior, sampled lazily on demand.
  uint64_t* world = scratch->world.data();
  for (uint32_t p = pos_off_[i]; p < pos_off_[i + 1]; ++p) {
    const Atom& a = pos_atoms_[p];
    world[a.var] = tag | a.asg;
  }

  // Z = 1 iff no earlier clause is satisfied by the sampled world (clause i
  // is satisfied by construction, so i is then the minimal satisfying
  // index — the canonical-cover trick making trials unbiased).
  if (coverage_width1_) {
    // Single-atom coverage clauses: one packed word per clause, no inner
    // loop. The world is consulted (and lazily drawn) in exactly the
    // reference order.
    const uint64_t* atoms = w1_atoms_.data();
    for (size_t j = 0; j < i; ++j) {
      uint64_t packed = atoms[j];
      LocalVar v = static_cast<LocalVar>(packed);
      uint64_t w = world[v];
      AsgId a = (w & 0xffffffff00000000ull) == tag
                    ? static_cast<AsgId>(w)
                    : SampleVar(v, tag, rng, scratch);
      if (a == static_cast<AsgId>(packed >> 32)) return false;
    }
  } else {
    for (size_t j = 0; j < i; ++j) {
      bool satisfied = true;
      for (uint32_t p = pos_off_[j]; p < pos_off_[j + 1]; ++p) {
        const Atom& a = pos_atoms_[p];
        if (AssignmentOf(a.var, tag, rng, scratch) != a.asg) {
          satisfied = false;
          break;
        }
      }
      if (satisfied) return false;
    }
  }
  const size_t num_clauses = pos_off_.size() - 1;
  if (num_coverage_ == num_clauses) return true;
  // Conditioned trial: the world (still lazily extended from the prior for
  // variables no clause has touched yet) must also satisfy the constraint
  // disjunction, else the trial is rejected (Z = 0). The suffix reads the
  // compiled evidence straight from the flattened atom arrays.
  for (size_t j = num_coverage_; j < num_clauses; ++j) {
    bool satisfied = true;
    for (uint32_t p = pos_off_[j]; p < pos_off_[j + 1]; ++p) {
      const Atom& a = pos_atoms_[p];
      if (AssignmentOf(a.var, tag, rng, scratch) != a.asg) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return true;
  }
  return false;
}

bool KarpLubyEstimator::TrialReference(Rng* rng, KarpLubyScratch* scratch) const {
  const uint64_t tag = BeginTrial(dnf_.NumVars(), scratch);
  // Sample clause index i proportional to its marginal probability.
  double u = rng->NextDouble() * total_weight_;
  size_t i = static_cast<size_t>(
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
      cumulative_.begin());
  if (i >= cumulative_.size()) i = cumulative_.size() - 1;

  // Sample a world conditioned on clause i.
  const std::vector<ClauseId>& clauses = dnf_.original_clauses();
  for (const Atom& a : dnf_.Clause(clauses[i])) {
    scratch->world[a.var] = tag | a.asg;
  }

  auto assignment_of = [&](LocalVar var) -> AsgId {
    uint64_t w = scratch->world[var];
    if ((w & 0xffffffff00000000ull) == tag) return static_cast<AsgId>(w);
    // Inverse-CDF sample from the variable's prior (the original running
    // sum; SampleVar's precomputed partial sums are bit-equal to cdf here).
    const double* probs = dnf_.VarProbs(var);
    uint32_t domain = dnf_.DomainSize(var);
    double u2 = rng->NextDouble();
    double cdf = 0;
    AsgId a = domain - 1;
    for (uint32_t k = 0; k + 1 < domain; ++k) {
      cdf += probs[k];
      if (u2 < cdf) {
        a = static_cast<AsgId>(k);
        break;
      }
    }
    scratch->world[var] = tag | a;
    return a;
  };

  for (size_t j = 0; j < i; ++j) {
    bool satisfied = true;
    for (const Atom& a : dnf_.Clause(clauses[j])) {
      if (assignment_of(a.var) != a.asg) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return false;
  }
  if (num_coverage_ == clauses.size()) return true;
  for (size_t j = num_coverage_; j < clauses.size(); ++j) {
    bool satisfied = true;
    for (const Atom& a : dnf_.Clause(clauses[j])) {
      if (assignment_of(a.var) != a.asg) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return true;
  }
  return false;
}

}  // namespace maybms
