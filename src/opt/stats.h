// Table/column statistics for the cost-based optimizer (src/opt/optimizer.h).
//
// Statistics derive from the chunked columnar snapshots (src/storage/
// columnar.h) and refresh incrementally exactly like the snapshots do:
// per-chunk statistics are keyed by the chunk Batch's identity, and since
// an incremental snapshot rebuild ADOPTS every clean chunk's shared_ptr
// unchanged (only dirty chunks re-columnarize), a DML statement invalidates
// precisely the per-chunk stats of the chunks it dirtied. A version
// fast-path skips even the merge when the table has not changed at all.
//
// Per column: row/null counts, min/max (total Value order), and a KMV
// (k-minimum-values) distinct sketch — small, mergeable across chunks, and
// exact below k distinct values. Per table: the average condition-column
// width (atoms per row), the optimizer's lineage-cost signal — uncertain
// relations' intermediates cost more because every extra row grows the DNF
// the confidence solvers chew through downstream.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/table.h"
#include "src/types/value.h"

namespace maybms {

struct Batch;

/// KMV distinct-count sketch: keeps the k smallest distinct 64-bit hashes.
/// With m < k distinct hashes seen the estimate is exact (= m); at
/// saturation it is the classic (k-1)/R estimator where R is the k-th
/// smallest hash normalized to (0, 1]. Mergeable: the union of two sketches
/// is the k smallest of their combined hash sets.
class KmvSketch {
 public:
  static constexpr size_t kDefaultK = 256;

  explicit KmvSketch(size_t k = kDefaultK) : k_(k == 0 ? 1 : k) {}

  void Add(const Value& v);
  void AddHash(uint64_t h);
  void Merge(const KmvSketch& other);

  /// Estimated number of distinct values added.
  double Estimate() const;

  size_t k() const { return k_; }

 private:
  size_t k_;
  std::vector<uint64_t> hashes_;  // sorted ascending, distinct, size <= k_
};

/// Statistics of one column (of a chunk, or merged across chunks).
struct ColumnStats {
  uint64_t null_count = 0;
  /// Min/max over non-null cells (Value total order); null when the column
  /// has no non-null cell.
  Value min_v;
  Value max_v;
  KmvSketch sketch;

  double Ndv() const { return sketch.Estimate(); }

  /// Folds `other` into this (chunk merge).
  void Merge(const ColumnStats& other);
};

/// Merged statistics of a whole table at one snapshot version.
struct TableStats {
  uint64_t num_rows = 0;
  uint64_t version = 0;  ///< Table::version() the stats were derived at
  /// Average condition-column atoms per row — the lineage width the
  /// optimizer charges for moving this table's tuples through a join.
  double avg_condition_atoms = 0;
  std::vector<ColumnStats> columns;  // parallel to the table schema

  double ColumnNdv(size_t col) const {
    return col < columns.size() ? columns[col].Ndv() : 0;
  }
};

/// Thread-safe, chunk-incremental statistics cache. One per SessionManager
/// (shared across sessions like the columnar snapshots themselves).
class StatsCache {
 public:
  /// Statistics for the table's current version. Cheap when nothing
  /// changed (version fast-path); otherwise recomputes only chunks whose
  /// snapshot Batch is new and merges. Never fails: statistics are
  /// advisory.
  std::shared_ptr<const TableStats> Get(const Table& table);

  /// Lifetime count of per-chunk stat computations (tests pin the
  /// incremental-refresh behaviour with it).
  uint64_t chunk_computations() const;

 private:
  struct ChunkStats {
    uint64_t rows = 0;
    uint64_t condition_atoms = 0;
    std::vector<ColumnStats> columns;
  };
  struct CachedTable {
    const Table* table = nullptr;  // identity check (name reuse after drop)
    uint64_t version = ~0ull;
    std::shared_ptr<const TableStats> merged;
    /// Per-chunk stats keyed by the snapshot chunk's identity: clean
    /// chunks keep their Batch pointer across incremental rebuilds.
    std::unordered_map<const Batch*, std::shared_ptr<const ChunkStats>> chunks;
  };

  static ChunkStats ComputeChunk(const Batch& chunk);

  mutable std::mutex mu_;
  std::unordered_map<std::string, CachedTable> tables_;
  uint64_t chunk_computations_ = 0;
};

}  // namespace maybms
