// Cost-based plan optimizer between binder and executor: join-order
// enumeration over snapshot-derived statistics (src/opt/stats.h), predicate
// pushdown through the reordered tree, and annotated semijoin reduction
// (Kolaitis, "Semijoins of Annotated Relations") that shrinks join inputs —
// and with them the condition columns every downstream confidence solver
// sees — before the full hash join runs.
//
// The cost model charges each intermediate both its estimated rows and its
// estimated lineage width (condition atoms per row): uncertain relations'
// intermediates cost more, because every extra row grows the DNF the
// exact/d-tree/Karp-Luby solvers must chew through later.
//
// Determinism / bit-identity: the optimized plan produces the same answer
// multiset as the translated plan, with bit-identical conf()/aconf()/
// tconf() values — the engines canonicalize per-group clause order at the
// confidence funnels (a joined row's condition CONTENT is merge-order
// invariant; only the clause-list order could differ, and the funnels sort
// it), serial aconf() samples on lineage-content-derived seeds, and join
// regions containing repair-key/pick-tuples are never reordered (variable
// minting order is engine-observable state).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/opt/stats.h"
#include "src/plan/logical_plan.h"

namespace maybms {

struct ExecOptions;
class IndexManager;  // src/index/index_manager.h

/// Counters the session folds into the metrics registry (opt.*).
struct OptimizerCounters {
  uint64_t plans_considered = 0;    ///< candidate join extensions costed
  uint64_t reorders_applied = 0;    ///< regions rebuilt in a new order
  uint64_t semijoins_inserted = 0;  ///< SemiJoinReduce operators inserted
  uint64_t semijoins_skipped = 0;   ///< eligible reducers rejected by cost
  uint64_t index_scans = 0;         ///< Filter(Scan) sites given an index path
};

/// Join-order enumerator inputs, exposed for unit tests.
struct JoinLeafInfo {
  double rows = 1;   ///< estimated rows out of the leaf
  double width = 0;  ///< estimated condition atoms per row (lineage width)
};
struct JoinEdgeInfo {
  size_t a = 0;            ///< leaf indices the predicate connects
  size_t b = 0;
  double selectivity = 1;  ///< estimated selectivity of the predicate
};

/// Chooses a left-deep join order: exhaustive DP over subsets for up to 8
/// leaves, greedy beyond (or when forced). Deterministic: ties break toward
/// the syntactic order. Returns the leaf indices in join order.
std::vector<size_t> ChooseJoinOrder(const std::vector<JoinLeafInfo>& leaves,
                                    const std::vector<JoinEdgeInfo>& edges,
                                    bool force_greedy = false,
                                    uint64_t* plans_considered = nullptr);

/// Optimizes a bound plan in place (no-op when options.optimizer is off or
/// the plan is null). `stats` may be null — estimation then falls back to
/// coarse defaults and only structural rewrites with sure wins apply.
/// `indexes` (the catalog's secondary-index registry) enables the final
/// access-path pass: Filter(Scan) sites whose predicate bounds an indexed
/// column become Filter(IndexScan) when the cost model (tree height +
/// estimated matching rows vs. a full scan) clearly favors it. The filter
/// keeps its FULL predicate and re-checks every candidate, so the rewrite
/// never changes answers. Null `indexes` — or options.use_indexes = false —
/// skips the pass entirely.
Status OptimizePlan(PlanNodePtr* plan, StatsCache* stats,
                    const ExecOptions& options, OptimizerCounters* counters,
                    IndexManager* indexes = nullptr);

}  // namespace maybms
