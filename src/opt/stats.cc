#include "src/opt/stats.h"

#include <algorithm>

#include "src/storage/columnar.h"
#include "src/types/batch.h"

namespace maybms {

// The shared SplitMix64 finalizer (src/common/row_index.h) decorrelates
// Value::Hash, which is equality-consistent but not uniform enough for
// order statistics.
void KmvSketch::Add(const Value& v) { AddHash(Mix64(v.Hash() | 1)); }

void KmvSketch::AddHash(uint64_t h) {
  auto it = std::lower_bound(hashes_.begin(), hashes_.end(), h);
  if (it != hashes_.end() && *it == h) return;  // already counted
  if (hashes_.size() < k_) {
    hashes_.insert(it, h);
    return;
  }
  if (h >= hashes_.back()) return;  // not among the k smallest
  hashes_.insert(it, h);
  hashes_.pop_back();
}

void KmvSketch::Merge(const KmvSketch& other) {
  for (uint64_t h : other.hashes_) AddHash(h);
}

double KmvSketch::Estimate() const {
  size_t m = hashes_.size();
  if (m < k_) return static_cast<double>(m);  // exact below saturation
  // R = k-th smallest hash mapped to (0, 1]; NDV ~ (k-1)/R.
  double r = (static_cast<double>(hashes_.back()) + 1.0) / 18446744073709551616.0;
  if (r <= 0) return static_cast<double>(m);
  return static_cast<double>(k_ - 1) / r;
}

void ColumnStats::Merge(const ColumnStats& other) {
  null_count += other.null_count;
  if (!other.min_v.is_null() &&
      (min_v.is_null() || other.min_v.Compare(min_v) < 0)) {
    min_v = other.min_v;
  }
  if (!other.max_v.is_null() &&
      (max_v.is_null() || other.max_v.Compare(max_v) > 0)) {
    max_v = other.max_v;
  }
  sketch.Merge(other.sketch);
}

StatsCache::ChunkStats StatsCache::ComputeChunk(const Batch& chunk) {
  ChunkStats out;
  out.rows = chunk.num_rows;
  out.condition_atoms = chunk.conditions.NumAtoms();
  out.columns.resize(chunk.columns.size());
  for (size_t c = 0; c < chunk.columns.size(); ++c) {
    const ColumnVector& col = *chunk.columns[c];
    ColumnStats& stats = out.columns[c];
    for (size_t i = 0; i < col.size(); ++i) {
      if (col.IsNull(i)) {
        ++stats.null_count;
        continue;
      }
      Value v = col.GetValue(i);
      if (stats.min_v.is_null() || v.Compare(stats.min_v) < 0) stats.min_v = v;
      if (stats.max_v.is_null() || v.Compare(stats.max_v) > 0) stats.max_v = v;
      stats.sketch.Add(v);
    }
  }
  return out;
}

std::shared_ptr<const TableStats> StatsCache::Get(const Table& table) {
  std::lock_guard<std::mutex> lock(mu_);
  CachedTable& cached = tables_[table.name()];
  if (cached.table == &table && cached.version == table.version() &&
      cached.merged != nullptr) {
    return cached.merged;  // version fast-path: nothing changed
  }
  if (cached.table != &table) cached.chunks.clear();  // dropped + recreated

  std::shared_ptr<const ColumnarTable> columnar = table.Columnar();

  auto merged = std::make_shared<TableStats>();
  merged->version = table.version();
  merged->columns.resize(table.schema().NumColumns());
  uint64_t total_atoms = 0;
  std::unordered_map<const Batch*, std::shared_ptr<const ChunkStats>> fresh;
  fresh.reserve(columnar->chunks.size());
  for (const std::shared_ptr<const Batch>& chunk : columnar->chunks) {
    std::shared_ptr<const ChunkStats> stats;
    auto it = cached.chunks.find(chunk.get());
    if (it != cached.chunks.end()) {
      stats = it->second;  // clean chunk: snapshot adopted it, so do we
    } else {
      stats = std::make_shared<const ChunkStats>(ComputeChunk(*chunk));
      ++chunk_computations_;
    }
    fresh.emplace(chunk.get(), stats);
    merged->num_rows += stats->rows;
    total_atoms += stats->condition_atoms;
    for (size_t c = 0; c < merged->columns.size() && c < stats->columns.size();
         ++c) {
      merged->columns[c].Merge(stats->columns[c]);
    }
  }
  if (merged->num_rows > 0) {
    merged->avg_condition_atoms =
        static_cast<double>(total_atoms) / static_cast<double>(merged->num_rows);
  }

  cached.table = &table;
  cached.version = merged->version;
  cached.merged = merged;
  cached.chunks = std::move(fresh);  // stale chunk entries drop out here
  return merged;
}

uint64_t StatsCache::chunk_computations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunk_computations_;
}

}  // namespace maybms
